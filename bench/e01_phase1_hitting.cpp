// E1 — Phase 1 hitting time (Theorem 2.5).
//
// Claim: from an arbitrary (worst-case) start the process enters the
// equilibrium region E(δ) within τ₁ = O(W²·n·log n) steps.  We measure
// the first entry time from the adversarial start (one dark agent per
// minority colour) and print τ₁/(n log n) across n — the column should
// stay roughly flat — and τ₁/(W² n log n) across W — the growth in W
// should be at most quadratic.
//
// Flags: --ns=<list> --seeds=<count> --delta=0.25

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/convergence.h"
#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::WeightMap;

double measure_tau1(const WeightMap& weights, std::int64_t n, double delta,
                    std::uint64_t seed) {
  auto sim = CountSimulation::adversarial_start(weights, n);
  divpp::rng::Xoshiro256 gen(seed);
  const auto horizon = static_cast<std::int64_t>(
      50.0 * divpp::core::convergence_time_scale(n, weights.total()));
  const std::int64_t check = std::max<std::int64_t>(n / 8, 64);
  const std::int64_t tau = divpp::analysis::time_to_equilibrium_region(
      sim, delta, horizon, check, gen);
  return tau < 0 ? std::nan("") : static_cast<double>(tau);
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const auto ns = args.get_int_list("ns", {1024, 4096, 16384, 65536});
  const std::int64_t seeds = args.get_int("seeds", 3);
  const double delta = args.get_double("delta", 0.25);

  std::cout << divpp::io::banner(
      "E1: Phase-1 hitting time of E(delta)  [Theorem 2.5]");

  {
    const WeightMap weights({1.0, 2.0, 4.0});  // W = 7, fixed
    std::cout << "Sweep over n (weights " << weights.to_string()
              << ", delta = " << delta << "):\n";
    divpp::io::Table table({"n", "tau1 (mean)", "tau1/(n log n)",
                            "tau1/(W^2 n log n)"});
    for (const std::int64_t n : ns) {
      divpp::stats::OnlineStats acc;
      for (std::int64_t s = 0; s < seeds; ++s)
        acc.add(measure_tau1(weights, n, delta,
                             17 + static_cast<std::uint64_t>(s)));
      const double nlogn =
          static_cast<double>(n) * std::log(static_cast<double>(n));
      table.begin_row()
          .add_cell(n)
          .add_cell(acc.mean(), 4)
          .add_cell(acc.mean() / nlogn, 3)
          .add_cell(acc.mean() /
                        divpp::core::convergence_time_scale(n,
                                                            weights.total()),
                    3);
    }
    std::cout << table.to_text()
              << "Expected shape: tau1/(n log n) roughly flat in n.\n\n";
  }

  {
    const std::int64_t n = args.get_int("wn", 16384);
    std::cout << "Sweep over total weight W (n = " << n
              << ", k = 2, delta = " << delta << "):\n";
    divpp::io::Table table({"weights", "W", "tau1 (mean)",
                            "tau1/(n log n)", "tau1/(W^2 n log n)"});
    for (const double w : {1.0, 2.0, 4.0, 8.0}) {
      const WeightMap weights({w, w});
      divpp::stats::OnlineStats acc;
      for (std::int64_t s = 0; s < seeds; ++s)
        acc.add(measure_tau1(weights, n, delta,
                             41 + static_cast<std::uint64_t>(s)));
      const double nlogn =
          static_cast<double>(n) * std::log(static_cast<double>(n));
      table.begin_row()
          .add_cell(weights.to_string())
          .add_cell(weights.total(), 3)
          .add_cell(acc.mean(), 4)
          .add_cell(acc.mean() / nlogn, 3)
          .add_cell(acc.mean() /
                        divpp::core::convergence_time_scale(n,
                                                            weights.total()),
                    3);
    }
    std::cout << table.to_text()
              << "Expected shape: tau1/(W^2 n log n) flat or shrinking — "
                 "the W^2 factor is an upper bound.\n";
  }
  return 0;
}
