// E1 — Phase 1 hitting time (Theorem 2.5).
//
// Claim: from an arbitrary (worst-case) start the process enters the
// equilibrium region E(δ) within τ₁ = O(W²·n·log n) steps.  We measure
// the first entry time from the adversarial start (one dark agent per
// minority colour) and print τ₁/(n log n) across n — the column should
// stay roughly flat — and τ₁/(W² n log n) across W — the growth in W
// should be at most quadratic.
//
// Flags: --ns=<list> --seeds=<count> --delta=0.25
//        --engine=jump   (step | jump | batch | auto; all sample the
//                         same law — batch is the fast choice at large
//                         n, auto picks jump/batch per window)
//        --threads=0 (0 = all hardware threads)
//
// Seed replicas run in parallel under BatchRunner: replica s draws from
// the jump()-offset stream s of the sweep's base seed, so the printed
// statistics are identical at any thread count.  The final line is a
// machine-readable JSON timing summary.

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/convergence.h"
#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "runtime/batch_runner.h"
#include "stats/online_stats.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::WeightMap;

double measure_tau1(const WeightMap& weights, std::int64_t n, double delta,
                    divpp::rng::Xoshiro256& gen,
                    divpp::core::Engine engine) {
  auto sim = CountSimulation::adversarial_start(weights, n);
  const auto horizon = static_cast<std::int64_t>(
      50.0 * divpp::core::convergence_time_scale(n, weights.total()));
  const std::int64_t check = std::max<std::int64_t>(n / 8, 64);
  const std::int64_t tau = divpp::analysis::time_to_equilibrium_region(
      sim, delta, horizon, check, gen, engine);
  return tau < 0 ? std::nan("") : static_cast<double>(tau);
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const auto ns = args.get_int_list("ns", {1024, 4096, 16384, 65536});
  const std::int64_t seeds = args.get_int("seeds", 3);
  const double delta = args.get_double("delta", 0.25);
  const divpp::core::Engine engine =
      divpp::core::parse_engine(args.get_string("engine", "jump"));
  divpp::runtime::BatchRunner runner(
      static_cast<int>(args.get_int("threads", 0)));
  double wall_n_sweep = 0.0;
  double wall_w_sweep = 0.0;

  std::cout << divpp::io::banner(
      "E1: Phase-1 hitting time of E(delta)  [Theorem 2.5]");

  {
    const WeightMap weights({1.0, 2.0, 4.0});  // W = 7, fixed
    std::cout << "Sweep over n (weights " << weights.to_string()
              << ", delta = " << delta << "):\n";
    divpp::io::Table table({"n", "tau1 (mean)", "tau1/(n log n)",
                            "tau1/(W^2 n log n)"});
    for (const std::int64_t n : ns) {
      const auto batch = runner.run_stats(
          seeds, 17, [&](std::int64_t, divpp::rng::Xoshiro256& gen) {
            return measure_tau1(weights, n, delta, gen, engine);
          });
      const divpp::stats::OnlineStats& acc = batch.stats;
      wall_n_sweep += batch.timing.wall_seconds;
      const double nlogn =
          static_cast<double>(n) * std::log(static_cast<double>(n));
      table.begin_row()
          .add_cell(n)
          .add_cell(acc.mean(), 4)
          .add_cell(acc.mean() / nlogn, 3)
          .add_cell(acc.mean() /
                        divpp::core::convergence_time_scale(n,
                                                            weights.total()),
                    3);
    }
    std::cout << table.to_text()
              << "Expected shape: tau1/(n log n) roughly flat in n.\n\n";
  }

  {
    const std::int64_t n = args.get_int("wn", 16384);
    std::cout << "Sweep over total weight W (n = " << n
              << ", k = 2, delta = " << delta << "):\n";
    divpp::io::Table table({"weights", "W", "tau1 (mean)",
                            "tau1/(n log n)", "tau1/(W^2 n log n)"});
    for (const double w : {1.0, 2.0, 4.0, 8.0}) {
      const WeightMap weights({w, w});
      const auto batch = runner.run_stats(
          seeds, 41, [&](std::int64_t, divpp::rng::Xoshiro256& gen) {
            return measure_tau1(weights, n, delta, gen, engine);
          });
      const divpp::stats::OnlineStats& acc = batch.stats;
      wall_w_sweep += batch.timing.wall_seconds;
      const double nlogn =
          static_cast<double>(n) * std::log(static_cast<double>(n));
      table.begin_row()
          .add_cell(weights.to_string())
          .add_cell(weights.total(), 3)
          .add_cell(acc.mean(), 4)
          .add_cell(acc.mean() / nlogn, 3)
          .add_cell(acc.mean() /
                        divpp::core::convergence_time_scale(n,
                                                            weights.total()),
                    3);
    }
    std::cout << table.to_text()
              << "Expected shape: tau1/(W^2 n log n) flat or shrinking — "
                 "the W^2 factor is an upper bound.\n";
  }

  std::cout << "\n"
            << divpp::io::Json()
                   .set("bench", "e01_phase1_hitting")
                   .set("engine", divpp::core::engine_name(engine))
                   .set("threads", runner.threads())
                   .set("seeds", seeds)
                   .set("wall_seconds_n_sweep", wall_n_sweep)
                   .set("wall_seconds_w_sweep", wall_w_sweep)
                   .to_string()
            << "\n";
  return 0;
}
