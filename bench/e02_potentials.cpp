// E2 — Potential collapse and persistence (Theorem 1.3 / Theorem 2.8).
//
// Claim: after τ = O(W² n log n) steps both potentials
// φ(t) = ΣΣ (A_i/w_i − A_j/w_j)² and ψ(t) (light counts) stay below
// C·W·n·log n, for an enormous window.  We print the trajectory of both
// potentials from an adversarial start, then the supremum over a probe
// window of many multiples of n·log n, normalised by W·n·log n — the
// normalised sup should be O(1) across n.
//
// Flags: --ns=<list> --seeds=<count> --window-mult=20

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/convergence.h"
#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"

namespace {

using divpp::analysis::PotentialKind;
using divpp::core::CountSimulation;
using divpp::core::WeightMap;

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const auto ns = args.get_int_list("ns", {4096, 16384, 65536});
  const std::int64_t seeds = args.get_int("seeds", 3);
  const std::int64_t window_mult = args.get_int("window-mult", 20);
  const WeightMap weights({1.0, 2.0, 4.0});  // W = 7

  std::cout << divpp::io::banner(
      "E2: potential collapse phi/psi  [Thm 1.3 / Thm 2.8]");

  // (a) One decimated trajectory for the smallest n: the collapse curve.
  {
    const std::int64_t n = ns.front();
    auto sim = CountSimulation::adversarial_start(weights, n);
    divpp::rng::Xoshiro256 gen(11);
    divpp::io::Table table({"t", "phi(t)", "psi(t)", "phi/(W n log n)"});
    const double envelope =
        divpp::core::theorem28_envelope(n, weights.total(), 1.0);
    std::int64_t t = 0;
    const auto tau_scale = static_cast<std::int64_t>(
        divpp::core::convergence_time_scale(n, weights.total()));
    while (t <= 3 * tau_scale) {
      sim.advance_to(t, gen);
      const double phi =
          divpp::analysis::evaluate_potential(sim, PotentialKind::kPhi);
      const double psi =
          divpp::analysis::evaluate_potential(sim, PotentialKind::kPsi);
      table.begin_row()
          .add_cell(t)
          .add_cell(phi, 4)
          .add_cell(psi, 4)
          .add_cell(phi / envelope, 3);
      t = t == 0 ? std::max<std::int64_t>(n / 4, 1) : t * 4;
    }
    std::cout << "Trajectory (n = " << n << ", weights "
              << weights.to_string() << "):\n"
              << table.to_text() << "\n";
  }

  // (b) Post-convergence persistence: sup over the probe window.
  divpp::io::Table table({"n", "sup phi / (W n log n)",
                          "sup psi / (W n log n)", "window (steps)"});
  for (const std::int64_t n : ns) {
    divpp::stats::OnlineStats phi_sup;
    divpp::stats::OnlineStats psi_sup;
    const auto tau = static_cast<std::int64_t>(
        3.0 * divpp::core::convergence_time_scale(n, weights.total()));
    const double nlogn =
        static_cast<double>(n) * std::log(static_cast<double>(n));
    const auto window = static_cast<std::int64_t>(
        static_cast<double>(window_mult) * nlogn);
    const double envelope =
        divpp::core::theorem28_envelope(n, weights.total(), 1.0);
    for (std::int64_t s = 0; s < seeds; ++s) {
      auto sim = CountSimulation::adversarial_start(weights, n);
      divpp::rng::Xoshiro256 gen(100 + static_cast<std::uint64_t>(s));
      sim.advance_to(tau, gen);
      double worst_phi = 0.0;
      double worst_psi = 0.0;
      const std::int64_t probe = std::max<std::int64_t>(n / 4, 64);
      while (sim.time() < tau + window) {
        sim.advance_to(sim.time() + probe, gen);
        worst_phi = std::max(worst_phi, divpp::analysis::evaluate_potential(
                                            sim, PotentialKind::kPhi));
        worst_psi = std::max(worst_psi, divpp::analysis::evaluate_potential(
                                            sim, PotentialKind::kPsi));
      }
      phi_sup.add(worst_phi / envelope);
      psi_sup.add(worst_psi / envelope);
    }
    table.begin_row()
        .add_cell(n)
        .add_cell(phi_sup.mean(), 3)
        .add_cell(psi_sup.mean(), 3)
        .add_cell(window);
  }
  std::cout << "Post-convergence persistence (window = " << window_mult
            << "·n·log n after tau = 3·W²·n·log n):\n"
            << table.to_text()
            << "Expected shape: both normalised sup columns O(1), not "
               "growing with n.\n";
  return 0;
}
