// E3 — Diversity (Definition 1.1(1), Eq. (4)).
//
// Claim: at equilibrium every colour's support satisfies
// |C_i(t)/n − w_i/W| = Õ(1/√n).  We measure the worst per-colour share
// deviation at many probe points after convergence and print it scaled
// by √(n / log n): the scaled column should stay O(1) as n grows 64×.
//
// Flags: --ns=<list> --seeds=<count> --probes=<count>

#include <cmath>
#include <iostream>
#include <vector>

#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"
#include "stats/potentials.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const auto ns =
      args.get_int_list("ns", {1024, 4096, 16384, 65536, 262144});
  const std::int64_t seeds = args.get_int("seeds", 3);
  const std::int64_t probes = args.get_int("probes", 40);
  const divpp::core::WeightMap weights({1.0, 2.0, 5.0});  // W = 8

  std::cout << divpp::io::banner(
      "E3: diversity error is O~(1/sqrt(n))  [Defn 1.1(1), Eq. (4)]");
  std::cout << "weights " << weights.to_string()
            << "; error = max_i |C_i/n - w_i/W| sampled at " << probes
            << " probe points after convergence\n\n";

  divpp::io::Table table({"n", "mean error", "max error",
                          "mean error * sqrt(n/log n)",
                          "max error * sqrt(n/log n)"});
  for (const std::int64_t n : ns) {
    divpp::stats::OnlineStats errors;
    const auto tau = static_cast<std::int64_t>(
        3.0 * divpp::core::convergence_time_scale(n, weights.total()));
    const auto gap = static_cast<std::int64_t>(
        2.0 * static_cast<double>(n));  // decorrelate probes
    for (std::int64_t s = 0; s < seeds; ++s) {
      auto sim =
          divpp::core::CountSimulation::adversarial_start(weights, n);
      divpp::rng::Xoshiro256 gen(7 + static_cast<std::uint64_t>(s));
      sim.advance_to(tau, gen);
      for (std::int64_t p = 0; p < probes; ++p) {
        sim.advance_to(sim.time() + gap, gen);
        const auto supports = sim.supports();
        errors.add(divpp::stats::diversity_error(supports,
                                                 weights.weights()));
      }
    }
    const double scale = 1.0 / divpp::core::diversity_error_scale(n);
    table.begin_row()
        .add_cell(n)
        .add_cell(errors.mean(), 4)
        .add_cell(errors.max(), 4)
        .add_cell(errors.mean() * scale, 3)
        .add_cell(errors.max() * scale, 3);
  }
  std::cout << table.to_text()
            << "Expected shape: the scaled columns stay O(1) while n grows "
               "256x — the error obeys the O~(1/sqrt(n)) law.\n";
  return 0;
}
