// E4 — The finer equilibrium of Phase 3 (Theorem 2.13).
//
// Claim: after τ = O(W² n log n) the *shade-resolved* counts satisfy
//   |A_i(t) − w_i·n/(1+W)|       <= C n^{3/4} (log n)^{1/4}
//   |a_i(t) − (w_i/W)·n/(1+W)|   <= C n^{3/4} (log n)^{1/4}
// for a long window.  We record the windowed supremum of both deviations
// normalised by n^{3/4}(log n)^{1/4}: the column should stay O(1) in n.
//
// Flags: --ns=<list> --seeds=<count> --window-mult=20

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::Equilibrium;
using divpp::core::WeightMap;

/// Windowed sup of the Theorem 2.13 deviations, normalised by the
/// n^{3/4}(log n)^{1/4} envelope.  Returns {dark_sup, light_sup}.
std::pair<double, double> windowed_sup(const WeightMap& weights,
                                       std::int64_t n, std::int64_t window,
                                       std::uint64_t seed) {
  auto sim = CountSimulation::adversarial_start(weights, n);
  divpp::rng::Xoshiro256 gen(seed);
  const auto tau = static_cast<std::int64_t>(
      3.0 * divpp::core::convergence_time_scale(n, weights.total()));
  sim.advance_to(tau, gen);
  const Equilibrium eq = divpp::core::equilibrium_shares(weights);
  const double envelope = divpp::core::theorem213_envelope(n, 1.0);
  const double dn = static_cast<double>(n);
  double dark_sup = 0.0;
  double light_sup = 0.0;
  const std::int64_t probe = std::max<std::int64_t>(n / 4, 64);
  while (sim.time() < tau + window) {
    sim.advance_to(sim.time() + probe, gen);
    for (divpp::core::ColorId i = 0; i < sim.num_colors(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      dark_sup = std::max(
          dark_sup, std::abs(static_cast<double>(sim.dark(i)) -
                             eq.dark_share[idx] * dn) /
                        envelope);
      light_sup = std::max(
          light_sup, std::abs(static_cast<double>(sim.light(i)) -
                              eq.light_share[idx] * dn) /
                         envelope);
    }
  }
  return {dark_sup, light_sup};
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const auto ns = args.get_int_list("ns", {4096, 16384, 65536, 262144});
  const std::int64_t seeds = args.get_int("seeds", 3);
  const std::int64_t window_mult = args.get_int("window-mult", 20);
  const WeightMap weights({1.0, 3.0});  // W = 4

  std::cout << divpp::io::banner(
      "E4: finer (shade-resolved) equilibrium  [Theorem 2.13]");
  std::cout << "weights " << weights.to_string()
            << "; sup over a window of " << window_mult
            << "*n*log n steps, normalised by n^(3/4) (log n)^(1/4)\n\n";

  divpp::io::Table table(
      {"n", "sup dark dev (norm)", "sup light dev (norm)"});
  for (const std::int64_t n : ns) {
    divpp::stats::OnlineStats dark_acc;
    divpp::stats::OnlineStats light_acc;
    const auto window = static_cast<std::int64_t>(
        static_cast<double>(window_mult) * static_cast<double>(n) *
        std::log(static_cast<double>(n)));
    for (std::int64_t s = 0; s < seeds; ++s) {
      const auto [dark_sup, light_sup] =
          windowed_sup(weights, n, window, 23 + static_cast<std::uint64_t>(s));
      dark_acc.add(dark_sup);
      light_acc.add(light_sup);
    }
    table.begin_row()
        .add_cell(n)
        .add_cell(dark_acc.mean(), 3)
        .add_cell(light_acc.mean(), 3);
  }
  std::cout << table.to_text()
            << "Expected shape: both normalised sup columns O(1) across a "
               "64x growth in n — the n^(3/4)(log n)^(1/4) envelope of "
               "Theorem 2.13 holds.\n";
  return 0;
}
