// E5 — Fairness (Definition 1.1(2), Theorem 2.12).
//
// Claim: over a horizon T, every agent holds colour i for a
// (w_i/W)(1 ± o(1)) fraction of time.  We track *every* agent on the
// agent-based engine and print the worst per-agent relative deviation as
// the horizon grows — it must shrink — plus the mean occupancy against
// the fair share per colour.
//
// Flags: --n=256 --seeds=3 --horizon-mults=50,200,800,3200

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/fairness.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 256);
  const std::int64_t seeds = args.get_int("seeds", 3);
  const auto mults = args.get_int_list("horizon-mults", {50, 200, 800, 3200});
  const divpp::core::WeightMap weights({1.0, 2.0, 3.0});  // W = 6

  std::cout << divpp::io::banner(
      "E5: fairness of per-agent colour occupancy  [Defn 1.1(2) / Thm 2.12]");
  std::cout << "n = " << n << ", weights " << weights.to_string()
            << "; occupancy accounted for every agent after a warm-up of "
               "60*n steps\n\n";

  const divpp::graph::CompleteGraph graph(n);
  std::vector<std::int64_t> init(3, n / 3);
  init[0] += n - 3 * (n / 3);  // remainder to colour 0

  divpp::io::Table table({"horizon (xn)", "worst rel. error",
                          "worst abs. error", "occ c0 vs 1/6",
                          "occ c2 vs 1/2"});
  for (const std::int64_t mult : mults) {
    divpp::stats::OnlineStats worst_acc;
    divpp::stats::OnlineStats abs_acc;
    divpp::stats::OnlineStats occ0;
    divpp::stats::OnlineStats occ2;
    for (std::int64_t s = 0; s < seeds; ++s) {
      auto pop = divpp::core::make_population(
          graph, init, divpp::core::DiversificationRule(weights));
      divpp::rng::Xoshiro256 gen(31 + static_cast<std::uint64_t>(s));
      pop.run(60 * n, gen);  // warm up past convergence
      divpp::analysis::FairnessTracker tracker(pop.states(), 3, pop.time());
      pop.run_observed(
          mult * n, gen,
          [&](const divpp::core::StepEvent<divpp::core::AgentState>& event) {
            tracker.observe(event);
          });
      tracker.finalize(pop.time());
      worst_acc.add(tracker.worst_relative_error(weights));
      abs_acc.add(tracker.worst_absolute_error(weights));
      occ0.add(tracker.mean_occupancy(0));
      occ2.add(tracker.mean_occupancy(2));
    }
    table.begin_row()
        .add_cell(mult)
        .add_cell(worst_acc.mean(), 3)
        .add_cell(abs_acc.mean(), 3)
        .add_cell(occ0.mean(), 4)
        .add_cell(occ2.mean(), 4);
  }
  std::cout << table.to_text()
            << "Expected shape: worst relative error shrinks as the horizon "
               "grows (the paper's (1 +- o(1)) factor); mean occupancies sit "
               "at the fair shares 1/6 and 1/2.\n";
  return 0;
}
