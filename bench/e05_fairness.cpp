// E5 — Fairness (Definition 1.1(2), Theorem 2.12) at batch speed (PR 5).
//
// Claim: over a horizon T, every agent holds colour i for a
// (w_i/W)(1 ± o(1)) fraction of time.  On the complete graph the agents
// are exchangeable, so one *tagged* agent's exact marginal
// (core::TaggedCountSimulation) IS the per-agent property — and since
// PR 5 the tagged chain runs under every lumped engine, so fairness
// trajectories are measured at count-simulation scale instead of the
// old n = 256 agent-based sweep.  Each seed replica tags one agent; the
// worst per-replica relative deviation must shrink as the horizon
// grows, and the mean occupancies must sit at the fair shares.
//
// Flags: --n=10000 --seeds=8 --horizon-mults=50,200,800,3200
//        --engine=auto        (step | jump | batch | auto)
//        --warmup-mult=60     (warm-up interactions = mult * n)
//        --threads=0          (0 = all hardware threads)
//
// Throughput-sweep mode (the PR 5 acceptance harness):
//        --pr5-json=FILE      measure tagged step/jump/batch/auto
//                             ns/interaction at each --ns entry
//                             (default 1e5,1e6,1e7,1e8; k equal colours
//                             via --k=8 --w=4, window via --window=0)
//                             and write the JSON summary (BENCH_pr5.json
//                             in the repo root records the committed
//                             trajectory)
//        --smoke              CI guard: n = 10⁶ only, exit non-zero
//                             unless tagged-batch ≥ 5× tagged-step
//
// Seed replicas are fanned across threads by BatchRunner; each replica
// tracks its own tagged simulation with its own jump()-offset stream,
// so the printed statistics do not depend on the thread count.  The
// final line is a machine-readable JSON summary.

#include <array>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/fairness.h"
#include "core/agent.h"
#include "core/count_simulation.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "runtime/batch_runner.h"
#include "stats/online_stats.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::Engine;
using divpp::core::TaggedCountSimulation;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

constexpr std::int64_t kMaxPopulation = 1'000'000'000;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Throughput {
  double interactions_per_sec = 0.0;
  double ns_per_interaction = 0.0;
  double wall_seconds = 0.0;  ///< warmup + timed window (budgeting aid)
};

/// Warm one window with `engine`, then time `window` tagged interactions.
Throughput measure_tagged(const WeightMap& weights, std::int64_t n,
                          Engine engine, std::int64_t window,
                          std::uint64_t seed) {
  const auto wall0 = std::chrono::steady_clock::now();
  auto base = CountSimulation::equal_start(weights, n);
  TaggedCountSimulation sim(std::move(base), 0, /*tagged_dark=*/true);
  Xoshiro256 gen(seed);
  sim.advance_with(engine, std::min(window, n), gen);  // warm, untimed
  const std::int64_t start = sim.time();
  const auto t0 = std::chrono::steady_clock::now();
  sim.advance_with(engine, start + window, gen);
  const double elapsed = seconds_since(t0);
  Throughput out;
  out.ns_per_interaction = elapsed * 1e9 / static_cast<double>(window);
  out.interactions_per_sec = static_cast<double>(window) / elapsed;
  out.wall_seconds = seconds_since(wall0);
  return out;
}

/// Step/jump windows shrink at huge n so the sweep stays minutes (same
/// policy as e20); batch and auto always get the full window.
std::int64_t capped_window(std::int64_t window, Engine engine) {
  if (engine == Engine::kBatch || engine == Engine::kAuto) return window;
  const std::int64_t cap =
      engine == Engine::kStep ? 50'000'000 : 200'000'000;
  return std::min(window, cap);
}

/// The tagged engine throughput sweep behind --pr5-json / --smoke.
int run_sweep(const divpp::io::Args& args, bool smoke,
              const std::string& json_path) {
  const auto ns =
      smoke ? std::vector<std::int64_t>{1'000'000}
            : args.get_int_list("ns",
                                {100'000, 1'000'000, 10'000'000, 100'000'000});
  for (const std::int64_t n : ns) {
    if (n < 64 || n > kMaxPopulation) {
      std::cerr << "e05_fairness: --ns entries must be in [64, 1e9] (got "
                << n << "); below 64 every tagged engine falls back to the "
                   "step loop anyway\n";
      return 1;
    }
  }
  const std::int64_t k = args.get_int("k", 8);
  const double w = args.get_double("w", 4.0);
  const std::int64_t window_flag = args.get_int("window", 0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 99));
  const WeightMap weights(
      std::vector<double>(static_cast<std::size_t>(k), w));

  std::cout << divpp::io::banner(
      "E5 sweep: tagged-engine throughput (fairness at batch speed)");
  std::cout << "k = " << k << " colours of weight " << w
            << " (W = " << weights.total()
            << "); joint (tagged, counts) chain, distributionally "
               "identical engines.\n\n";

  divpp::io::Table table({"n", "engine", "window", "ns/interaction",
                          "interactions/sec", "speedup vs step", "wall s"});
  divpp::io::Json out;
  out.set("bench", "e05_fairness_pr5");
  out.set("k", k);
  out.set("w", w);
  out.set("W", weights.total());
  out.set("seed", static_cast<std::int64_t>(seed));

  bool smoke_ok = true;
  for (const std::int64_t n : ns) {
    const std::int64_t window =
        window_flag > 0 ? window_flag
                        : std::max<std::int64_t>(4'000'000, 2 * n);
    double step_ips = 0.0;
    for (const Engine engine : {Engine::kStep, Engine::kJump, Engine::kBatch,
                                Engine::kAuto}) {
      const std::int64_t engine_window = capped_window(window, engine);
      const Throughput t =
          measure_tagged(weights, n, engine, engine_window, seed);
      if (engine == Engine::kStep) step_ips = t.interactions_per_sec;
      table.begin_row()
          .add_cell(n)
          .add_cell(divpp::core::engine_name(engine))
          .add_cell(engine_window)
          .add_cell(t.ns_per_interaction, 3)
          .add_cell(t.interactions_per_sec, 0)
          .add_cell(t.interactions_per_sec / step_ips, 2)
          .add_cell(t.wall_seconds, 2);
      const std::string suffix = "_n" + std::to_string(n);
      const std::string name = divpp::core::engine_name(engine);
      out.set("tagged_" + name + "_ips" + suffix, t.interactions_per_sec);
      out.set("tagged_" + name + "_ns" + suffix, t.ns_per_interaction);
      out.set("tagged_" + name + "_wall_s" + suffix, t.wall_seconds);
      if (engine != Engine::kStep) {
        out.set("tagged_" + name + "_vs_step" + suffix,
                t.interactions_per_sec / step_ips);
      }
      if (engine == Engine::kBatch && smoke &&
          t.interactions_per_sec < 5.0 * step_ips) {
        smoke_ok = false;
        std::cerr << "e05 smoke FAILED: tagged-batch "
                  << t.interactions_per_sec << " int/s < 5x tagged-step "
                  << step_ips << " int/s at n = " << n << "\n";
      }
    }
  }
  std::cout << table.to_text()
            << "Reading: tagged-step is flat in n; tagged-jump pays only "
               "per active transition; tagged-batch amortises each "
               "collision-free stretch of the held-out n-1 chain, so its "
               "ns/interaction falls like ~1/sqrt(n).\n\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "e05_fairness: cannot write " << json_path << "\n";
      return 1;
    }
    file << out.to_string() << "\n";
  }
  std::cout << out.to_string() << "\n";
  return smoke_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const std::string json_path = args.get_string("pr5-json", "");
  if (smoke || !json_path.empty()) return run_sweep(args, smoke, json_path);

  const std::int64_t n = args.get_int("n", 10'000);
  const std::int64_t seeds = args.get_int("seeds", 8);
  const auto mults = args.get_int_list("horizon-mults", {50, 200, 800, 3200});
  const Engine engine = divpp::core::parse_engine(
      args.get_string("engine", "auto"));
  const std::int64_t warmup_mult = args.get_int("warmup-mult", 60);
  divpp::runtime::BatchRunner runner(
      static_cast<int>(args.get_int("threads", 0)));
  double wall_total = 0.0;
  const WeightMap weights({1.0, 2.0, 3.0});  // W = 6

  std::cout << divpp::io::banner(
      "E5: fairness of per-agent colour occupancy  [Defn 1.1(2) / Thm 2.12]");
  std::cout << "n = " << n << ", weights " << weights.to_string()
            << ", engine " << divpp::core::engine_name(engine)
            << "; one tagged agent per replica (exchangeability makes its "
               "marginal the per-agent property), occupancy accounted "
               "after a warm-up of "
            << warmup_mult << "*n interactions\n\n";

  divpp::io::Table table({"horizon (xn)", "worst rel. error",
                          "worst abs. error", "occ c0 vs 1/6",
                          "occ c2 vs 1/2"});
  for (const std::int64_t mult : mults) {
    const auto metrics = runner.map(
        seeds, 31,
        [&](std::int64_t, Xoshiro256& gen) -> std::array<double, 4> {
          // Tag at the all-dark start (an exchangeable draw from the
          // initial configuration) and warm the *joint* chain, so the
          // tracked marginal starts from a warmed tagged state, not a
          // forced one.
          auto base = CountSimulation::equal_start(weights, n);
          TaggedCountSimulation sim(std::move(base), 0, /*tagged_dark=*/true);
          sim.advance_with(engine, warmup_mult * n, gen);  // warm up
          const std::vector<divpp::core::AgentState> init = {
              sim.tagged_state()};
          divpp::analysis::FairnessTracker tracker(init, 3, sim.time());
          sim.run_changes(engine, sim.time() + mult * n, gen,
                          [&](std::int64_t change_time,
                              divpp::core::AgentState next) {
                            tracker.observe_change(0, change_time, next);
                          });
          tracker.finalize(sim.time());
          return {tracker.worst_relative_error(weights),
                  tracker.worst_absolute_error(weights),
                  tracker.occupancy_fraction(0, 0),
                  tracker.occupancy_fraction(0, 2)};
        });
    wall_total += runner.last_timing().wall_seconds;
    divpp::stats::OnlineStats worst_acc;
    divpp::stats::OnlineStats abs_acc;
    divpp::stats::OnlineStats occ0;
    divpp::stats::OnlineStats occ2;
    for (const auto& [worst_rel, worst_abs, m_occ0, m_occ2] : metrics) {
      worst_acc.add(worst_rel);
      abs_acc.add(worst_abs);
      occ0.add(m_occ0);
      occ2.add(m_occ2);
    }
    table.begin_row()
        .add_cell(mult)
        .add_cell(worst_acc.mean(), 3)
        .add_cell(abs_acc.mean(), 3)
        .add_cell(occ0.mean(), 4)
        .add_cell(occ2.mean(), 4);
  }
  std::cout << table.to_text()
            << "Expected shape: worst relative error shrinks as the horizon "
               "grows (the paper's (1 +- o(1)) factor); mean occupancies sit "
               "at the fair shares 1/6 and 1/2.\n";

  std::cout << "\n"
            << divpp::io::Json()
                   .set("bench", "e05_fairness")
                   .set("threads", runner.threads())
                   .set("n", n)
                   .set("seeds", seeds)
                   .set("engine", divpp::core::engine_name(engine))
                   .set("wall_seconds", wall_total)
                   .to_string()
            << "\n";
  return 0;
}
