// E5 — Fairness (Definition 1.1(2), Theorem 2.12).
//
// Claim: over a horizon T, every agent holds colour i for a
// (w_i/W)(1 ± o(1)) fraction of time.  We track *every* agent on the
// agent-based engine and print the worst per-agent relative deviation as
// the horizon grows — it must shrink — plus the mean occupancy against
// the fair share per colour.
//
// Flags: --n=256 --seeds=3 --horizon-mults=50,200,800,3200
//        --threads=0 (0 = all hardware threads)
//
// Seed replicas are fanned across threads by BatchRunner; each replica
// tracks its own population with its own jump()-offset stream, so the
// printed statistics do not depend on the thread count.  The final line
// is a machine-readable JSON timing summary.

#include <array>
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/fairness.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "runtime/batch_runner.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 256);
  const std::int64_t seeds = args.get_int("seeds", 3);
  const auto mults = args.get_int_list("horizon-mults", {50, 200, 800, 3200});
  divpp::runtime::BatchRunner runner(
      static_cast<int>(args.get_int("threads", 0)));
  double wall_total = 0.0;
  const divpp::core::WeightMap weights({1.0, 2.0, 3.0});  // W = 6

  std::cout << divpp::io::banner(
      "E5: fairness of per-agent colour occupancy  [Defn 1.1(2) / Thm 2.12]");
  std::cout << "n = " << n << ", weights " << weights.to_string()
            << "; occupancy accounted for every agent after a warm-up of "
               "60*n steps\n\n";

  const divpp::graph::CompleteGraph graph(n);
  std::vector<std::int64_t> init(3, n / 3);
  init[0] += n - 3 * (n / 3);  // remainder to colour 0

  divpp::io::Table table({"horizon (xn)", "worst rel. error",
                          "worst abs. error", "occ c0 vs 1/6",
                          "occ c2 vs 1/2"});
  for (const std::int64_t mult : mults) {
    const auto metrics = runner.map(
        seeds, 31,
        [&](std::int64_t, divpp::rng::Xoshiro256& gen)
            -> std::array<double, 4> {
          auto pop = divpp::core::make_population(
              graph, init, divpp::core::DiversificationRule(weights));
          pop.run(60 * n, gen);  // warm up past convergence
          divpp::analysis::FairnessTracker tracker(pop.states(), 3,
                                                   pop.time());
          pop.run_observed(
              mult * n, gen,
              [&](const divpp::core::StepEvent<divpp::core::AgentState>&
                      event) { tracker.observe(event); });
          tracker.finalize(pop.time());
          return {tracker.worst_relative_error(weights),
                  tracker.worst_absolute_error(weights),
                  tracker.mean_occupancy(0), tracker.mean_occupancy(2)};
        });
    wall_total += runner.last_timing().wall_seconds;
    divpp::stats::OnlineStats worst_acc;
    divpp::stats::OnlineStats abs_acc;
    divpp::stats::OnlineStats occ0;
    divpp::stats::OnlineStats occ2;
    for (const auto& [worst_rel, worst_abs, m_occ0, m_occ2] : metrics) {
      worst_acc.add(worst_rel);
      abs_acc.add(worst_abs);
      occ0.add(m_occ0);
      occ2.add(m_occ2);
    }
    table.begin_row()
        .add_cell(mult)
        .add_cell(worst_acc.mean(), 3)
        .add_cell(abs_acc.mean(), 3)
        .add_cell(occ0.mean(), 4)
        .add_cell(occ2.mean(), 4);
  }
  std::cout << table.to_text()
            << "Expected shape: worst relative error shrinks as the horizon "
               "grows (the paper's (1 +- o(1)) factor); mean occupancies sit "
               "at the fair shares 1/6 and 1/2.\n";

  std::cout << "\n"
            << divpp::io::Json()
                   .set("bench", "e05_fairness")
                   .set("threads", runner.threads())
                   .set("n", n)
                   .set("seeds", seeds)
                   .set("wall_seconds", wall_total)
                   .to_string()
            << "\n";
  return 0;
}
