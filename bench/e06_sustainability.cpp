// E6 — Sustainability (Definition 1.1(3)).
//
// Claim: under the Diversification protocol no colour ever vanishes —
// with probability 1 — because a dark agent only fades after meeting
// another dark agent of its colour.  We track the minimum per-colour
// dark support over long runs and many seeds (it must never hit 0), and
// contrast with the Voter model, where colours die quickly.
//
// Flags: --n=512 --seeds=8 --steps-mult=2000

#include <iostream>
#include <vector>

#include "analysis/sustainability.h"
#include "core/count_simulation.h"
#include "core/population.h"
#include "core/weights.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "protocols/opinion.h"
#include "protocols/voter.h"
#include "rng/xoshiro.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 512);
  const std::int64_t seeds = args.get_int("seeds", 8);
  const std::int64_t steps_mult = args.get_int("steps-mult", 2000);
  const divpp::core::WeightMap weights({1.0, 2.0, 4.0});

  std::cout << divpp::io::banner(
      "E6: sustainability — no colour ever vanishes  [Defn 1.1(3)]");
  std::cout << "n = " << n << ", weights " << weights.to_string()
            << ", horizon " << steps_mult << "*n steps per seed\n\n";

  // (a) Diversification: min dark support per seed, from the worst start.
  divpp::io::Table table({"seed", "min dark support ever",
                          "colours died (diversification)",
                          "voter: colours left", "voter: first death at"});
  std::int64_t diversification_deaths = 0;
  std::int64_t voter_survivor_total = 0;
  for (std::int64_t s = 0; s < seeds; ++s) {
    // Diversification on the lumped chain (equal split: both protocols
    // start from the same balanced configuration).
    auto sim = divpp::core::CountSimulation::equal_start(weights, n);
    divpp::rng::Xoshiro256 gen(51 + static_cast<std::uint64_t>(s));
    divpp::analysis::SustainabilityMonitor monitor(3);
    while (sim.time() < steps_mult * n) {
      sim.advance_to(sim.time() + n, gen);
      monitor.observe(sim.dark_counts(), sim.time());
    }
    diversification_deaths += monitor.colors_died();

    // Voter baseline with the same initial supports (agent-based).
    const divpp::graph::CompleteGraph graph(n);
    std::vector<std::int64_t> supports(3, n / 3);
    supports[0] += n - 3 * (n / 3);
    divpp::core::Population<divpp::core::AgentState,
                            divpp::protocols::VoterRule>
        voter(graph, divpp::protocols::opinion_initial(supports),
              divpp::protocols::VoterRule{});
    divpp::analysis::SustainabilityMonitor voter_monitor(3);
    while (voter.time() < steps_mult * n) {
      voter.run(n, gen);
      voter_monitor.observe(
          divpp::core::tally(voter.states(), 3).supports(), voter.time());
      if (divpp::protocols::is_consensus(voter.states())) break;
    }
    const std::int64_t survivors =
        divpp::protocols::surviving_colors(voter.states(), 3);
    voter_survivor_total += survivors;
    std::int64_t first_death = -1;
    for (std::int64_t c = 0; c < 3; ++c) {
      const std::int64_t d = voter_monitor.death_time(c);
      if (d >= 0 && (first_death < 0 || d < first_death)) first_death = d;
    }
    table.begin_row()
        .add_cell(51 + s)
        .add_cell(monitor.min_count_ever())
        .add_cell(monitor.colors_died())
        .add_cell(survivors)
        .add_cell(first_death);
  }
  std::cout << table.to_text() << "\n"
            << "Diversification colours died (all seeds): "
            << diversification_deaths << " (expected 0 — probability-1 "
            << "invariant)\n"
            << "Voter mean surviving colours: "
            << static_cast<double>(voter_survivor_total) /
                   static_cast<double>(seeds)
            << " of 3 (expected to collapse towards 1)\n";
  return 0;
}
