// E7 — Consensus baselines vs. Diversification (§1.1 related work).
//
// Claim: the well-studied dynamics (Voter, 2-Choices, 3-Majority) solve
// the *opposite* problem — they collapse k colours to 1 — while the
// Diversification protocol holds all k at their fair shares; the
// anti-voter keeps exactly 2 colours balanced but cannot scale to k > 2.
// We run all protocols from identical initial configurations and report
// surviving-colour counts over time and consensus times.
//
// Flags: --n=1024 --k=8 --consensus-n=256 --seed=9

#include <iostream>
#include <string>
#include <vector>

#include "core/count_simulation.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "protocols/anti_voter.h"
#include "protocols/opinion.h"
#include "protocols/three_majority.h"
#include "protocols/two_choices.h"
#include "protocols/voter.h"
#include "rng/xoshiro.h"
#include "stats/potentials.h"

namespace {

using divpp::core::AgentState;
using divpp::core::Population;
using divpp::core::WeightMap;
using divpp::graph::CompleteGraph;
using divpp::rng::Xoshiro256;

template <typename Rule>
std::vector<std::int64_t> survivors_over_time(
    const CompleteGraph& graph, const std::vector<std::int64_t>& supports,
    Rule rule, const std::vector<std::int64_t>& checkpoints,
    std::int64_t num_colors, Xoshiro256& gen) {
  Population<AgentState, Rule> pop(
      graph, divpp::protocols::opinion_initial(supports), std::move(rule));
  std::vector<std::int64_t> result;
  for (const std::int64_t target : checkpoints) {
    pop.run(target - pop.time(), gen);
    result.push_back(
        divpp::protocols::surviving_colors(pop.states(), num_colors));
  }
  return result;
}

template <typename Rule>
std::int64_t consensus_time(std::int64_t n, std::int64_t k, Rule rule,
                            std::int64_t cap, Xoshiro256& gen) {
  const CompleteGraph graph(n);
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), n / k);
  supports[0] += n - k * (n / k);
  Population<AgentState, Rule> pop(
      graph, divpp::protocols::opinion_initial(supports), std::move(rule));
  return divpp::protocols::run_until_consensus(pop, cap, gen);
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 1024);
  const std::int64_t k = args.get_int("k", 8);
  const std::int64_t consensus_n = args.get_int("consensus-n", 256);
  Xoshiro256 gen(static_cast<std::uint64_t>(args.get_int("seed", 9)));

  std::cout << divpp::io::banner(
      "E7: consensus dynamics collapse diversity; Diversification keeps it");
  std::cout << "n = " << n << ", k = " << k
            << " equal colours, identical initial configurations\n\n";

  const CompleteGraph graph(n);
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), n / k);
  supports[0] += n - k * (n / k);
  const std::vector<std::int64_t> checkpoints = {10 * n, 50 * n, 200 * n,
                                                 800 * n};

  divpp::io::Table table({"protocol", "survivors@10n", "@50n", "@200n",
                          "@800n", "consensus time (n=" +
                                       std::to_string(consensus_n) + ")"});

  const auto add_row = [&](const std::string& name,
                           const std::vector<std::int64_t>& survivors,
                           std::int64_t ctime) {
    table.begin_row().add_cell(name);
    for (const std::int64_t s : survivors) table.add_cell(s);
    table.add_cell(ctime < 0 ? "not reached" : std::to_string(ctime));
  };

  add_row("voter",
          survivors_over_time(graph, supports, divpp::protocols::VoterRule{},
                              checkpoints, k, gen),
          consensus_time(consensus_n, k, divpp::protocols::VoterRule{},
                         40'000'000, gen));
  add_row("2-choices",
          survivors_over_time(graph, supports,
                              divpp::protocols::TwoChoicesRule{},
                              checkpoints, k, gen),
          consensus_time(consensus_n, k, divpp::protocols::TwoChoicesRule{},
                         40'000'000, gen));
  add_row("3-majority",
          survivors_over_time(graph, supports,
                              divpp::protocols::ThreeMajorityRule{},
                              checkpoints, k, gen),
          consensus_time(consensus_n, k,
                         divpp::protocols::ThreeMajorityRule{}, 40'000'000,
                         gen));

  // Diversification: same configuration (uniform weights); survivors plus
  // the diversity error at the end — consensus is never reached by design.
  {
    const WeightMap weights = WeightMap::uniform(k);
    auto pop = divpp::core::make_population(
        graph, supports, divpp::core::DiversificationRule(weights));
    std::vector<std::int64_t> survivors;
    for (const std::int64_t target : checkpoints) {
      pop.run(target - pop.time(), gen);
      survivors.push_back(
          divpp::protocols::surviving_colors(pop.states(), k));
    }
    add_row("diversification (w=1)", survivors, -1);
    const auto final_supports = divpp::core::tally(pop.states(), k).supports();
    std::cout << table.to_text() << "\n"
              << "Diversification final diversity error: "
              << divpp::io::format_double(
                     divpp::stats::diversity_error(final_supports,
                                                   weights.weights()),
                     3)
              << " (fair share 1/" << k << " each)\n";
  }

  // Anti-voter: k = 2 balance, but inapplicable beyond two colours.
  {
    std::vector<std::int64_t> binary = {n / 2, n - n / 2};
    Population<AgentState, divpp::protocols::AntiVoterRule> pop(
        graph, divpp::protocols::opinion_initial(binary),
        divpp::protocols::AntiVoterRule{});
    pop.run(200 * n, gen);
    const auto counts = divpp::core::tally(pop.states(), 2).supports();
    std::cout << "Anti-voter (k=2 only): surviving colours = "
              << divpp::protocols::surviving_colors(pop.states(), 2)
              << ", share of colour 0 = "
              << divpp::io::format_double(
                     static_cast<double>(counts[0]) / static_cast<double>(n),
                     3)
              << " — balanced, but the rule cannot express k > 2 or "
                 "weights.\n\n";
  }

  std::cout << "Expected shape: the three consensus dynamics lose colours "
               "monotonically (voter slowest, 3-majority fastest) and reach "
               "consensus on the small instance; Diversification keeps all "
            << k << " colours alive at equal shares forever.\n";
  return 0;
}
