// E8 — Robustness to structural change (paper abstract & §1).
//
// Claim: "even when an adversary adds agents or colours, the protocol
// quickly returns into a state of diversity and fairness" — recovery
// takes O(W² n log n) again.  We settle the system, apply a shock, and
// measure the time to re-enter E(δ); the recovery normalised by
// W'² n' log n' (post-shock parameters) should be O(1).
//
// The "trivial" global-sampling protocol from the introduction is run as
// the non-robust contrast: after a new colour appears, its frozen
// distribution erases the colour instead of adopting it.
//
// Flags: --n=8192 --seeds=3 --delta=0.25

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/events.h"
#include "analysis/convergence.h"
#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/population.h"
#include "core/weights.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "protocols/global_sampling.h"
#include "protocols/opinion.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"

namespace {

using divpp::adversary::Event;
using divpp::core::CountSimulation;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

/// Settles, applies `event`, and measures re-entry into E(delta).
/// Returns the recovery time normalised by W'² n' log n'.
double recovery(const Event& event, std::int64_t n, double delta,
                std::uint64_t seed) {
  const WeightMap weights({1.0, 2.0});
  auto sim = CountSimulation::proportional_start(weights, n);
  Xoshiro256 gen(seed);
  const auto settle = static_cast<std::int64_t>(
      3.0 * divpp::core::convergence_time_scale(n, weights.total()));
  sim.advance_to(settle, gen);
  divpp::adversary::apply_event(sim, event);
  const std::int64_t shock_time = sim.time();
  const double post_scale =
      divpp::core::convergence_time_scale(sim.n(), sim.weights().total());
  const auto horizon =
      shock_time + static_cast<std::int64_t>(50.0 * post_scale);
  const std::int64_t recovered = divpp::analysis::time_to_equilibrium_region(
      sim, delta, horizon, std::max<std::int64_t>(sim.n() / 8, 64), gen);
  if (recovered < 0) return std::nan("");
  return static_cast<double>(recovered - shock_time) / post_scale;
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 8192);
  const std::int64_t seeds = args.get_int("seeds", 3);
  const double delta = args.get_double("delta", 0.25);

  std::cout << divpp::io::banner(
      "E8: adversarial robustness — recovery after structural shocks");
  std::cout << "n = " << n << ", base weights {1, 2}, recovery = time to "
            << "re-enter E(" << delta << ") / (W'^2 n' log n')\n\n";

  struct Scenario {
    std::string name;
    Event event;
  };
  const std::vector<Scenario> scenarios = {
      {"add colour (w=4, 1 dark agent)", divpp::adversary::AddColor{4.0, 1}},
      {"add n/2 dark agents of colour 0",
       divpp::adversary::AddAgents{0, n / 2, true}},
      {"add n/2 light agents of colour 1",
       divpp::adversary::AddAgents{1, n / 2, false}},
      {"recolour 90% of colour 0 to 1",
       divpp::adversary::PartialRecolor{0, 1, 0.9}},
      {"retire colour 0 entirely (recolour to 1)",
       divpp::adversary::RemoveColor{0, 1}},
  };

  divpp::io::Table table(
      {"shock", "normalised recovery time (mean over seeds)", "note"});
  for (const Scenario& scenario : scenarios) {
    divpp::stats::OnlineStats acc;
    for (std::int64_t s = 0; s < seeds; ++s)
      acc.add(recovery(scenario.event, n, delta,
                       71 + static_cast<std::uint64_t>(s)));
    std::string note = "recovers";
    if (std::holds_alternative<divpp::adversary::RemoveColor>(
            scenario.event) &&
        std::isnan(acc.mean()))
      note = "never recovers: last dark agent destroyed (as the paper "
             "requires for sustainability)";
    table.begin_row()
        .add_cell(scenario.name)
        .add_cell(std::isnan(acc.mean()) ? "—"
                                         : divpp::io::format_double(
                                               acc.mean(), 3))
        .add_cell(note);
  }
  std::cout << table.to_text() << "\n";

  // The trivial protocol contrast (frozen global distribution).
  {
    const std::int64_t small_n = 512;
    const WeightMap frozen({1.0, 1.0});
    const divpp::graph::CompleteGraph graph(small_n);
    std::vector<std::int64_t> supports = {small_n / 2, small_n / 2, 0};
    divpp::core::Population<divpp::core::AgentState,
                            divpp::protocols::GlobalSamplingRule>
        trivial(graph,
                divpp::protocols::opinion_initial(
                    std::vector<std::int64_t>{small_n / 2, small_n / 2}),
                divpp::protocols::GlobalSamplingRule(frozen));
    Xoshiro256 gen(99);
    trivial.run(20 * small_n, gen);
    // A new colour 2 appears on 10% of the agents…
    for (std::int64_t u = 0; u < small_n / 10; ++u)
      trivial.set_state(u, divpp::core::AgentState{2, divpp::core::kDark});
    trivial.run(50 * small_n, gen);
    const auto counts = divpp::core::tally(trivial.states(), 3).supports();
    std::cout << "Trivial (global-sampling) protocol contrast: after a new "
                 "colour appeared on 10% of agents, its support is now "
              << counts[2] << "/" << small_n
              << " — the frozen distribution erased it (not robust), while "
                 "Diversification adopts new colours (rows above).\n";
  }
  return 0;
}
