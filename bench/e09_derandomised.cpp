// E9 — The derandomised protocol (paper §1.2 "Derandomisation"; its
// analysis is §3 future work).
//
// Claim (empirical): replacing the 1/w_i coin with 1+w_i integer shades
// preserves the equilibrium (fair shares) at a comparable convergence
// rate.  We run both variants from identical starts and compare the time
// to reach a small diversity error and the final shares.
//
// Flags: --ns=1024,4096,16384 --seeds=3

#include <cmath>
#include <iostream>
#include <vector>

#include "core/diversification.h"
#include "core/equilibrium.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"
#include "stats/potentials.h"

namespace {

using divpp::core::AgentState;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

/// Runs one population until the diversity error drops below the target
/// or the cap is reached; returns steps (or -1) and writes final shares.
template <typename Rule>
std::int64_t time_to_diversity(const divpp::graph::CompleteGraph& graph,
                               const std::vector<std::int64_t>& supports,
                               Rule rule, const WeightMap& weights,
                               double target, std::int64_t cap,
                               Xoshiro256& gen,
                               std::vector<double>* final_shares) {
  auto pop = divpp::core::make_population(graph, supports, std::move(rule));
  std::int64_t hit = -1;
  const std::int64_t check = std::max<std::int64_t>(graph.num_nodes() / 4, 64);
  while (pop.time() < cap) {
    pop.run(check, gen);
    const auto counts = divpp::core::tally(
        pop.states(), weights.num_colors());
    const auto sup = counts.supports();
    if (divpp::stats::diversity_error(sup, weights.weights()) <= target) {
      hit = pop.time();
      break;
    }
  }
  // Read the equilibrium shares after an extra settling period (time-
  // averaged over several probes), not at the first-hit instant.
  const std::int64_t settle = 20 * graph.num_nodes();
  std::vector<double> mean_shares(
      static_cast<std::size_t>(weights.num_colors()), 0.0);
  constexpr int kProbes = 16;
  for (int probe = 0; probe < kProbes; ++probe) {
    pop.run(settle / kProbes, gen);
    const auto counts =
        divpp::core::tally(pop.states(), weights.num_colors()).supports();
    for (std::size_t i = 0; i < mean_shares.size(); ++i)
      mean_shares[i] += static_cast<double>(counts[i]) /
                        static_cast<double>(graph.num_nodes()) / kProbes;
  }
  *final_shares = std::move(mean_shares);
  return hit;
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const auto ns = args.get_int_list("ns", {1024, 4096, 16384});
  const std::int64_t seeds = args.get_int("seeds", 3);
  const WeightMap weights({1.0, 3.0});  // integral: both variants apply

  std::cout << divpp::io::banner(
      "E9: randomized vs derandomised Diversification  [§1.2, §3]");
  std::cout << "weights " << weights.to_string()
            << "; convergence = first time diversity error <= "
               "4*sqrt(log n / n); identical worst-case starts\n\n";

  divpp::io::Table table({"n", "randomized: steps/(n log n)",
                          "derandomised: steps/(n log n)",
                          "randomized share c1", "derandomised share c1"});
  for (const std::int64_t n : ns) {
    const divpp::graph::CompleteGraph graph(n);
    std::vector<std::int64_t> supports = {n - 1, 1};
    const double target = 4.0 * divpp::core::diversity_error_scale(n);
    const auto cap = static_cast<std::int64_t>(
        60.0 * divpp::core::convergence_time_scale(n, weights.total()));
    const double nlogn =
        static_cast<double>(n) * std::log(static_cast<double>(n));

    divpp::stats::OnlineStats rand_time;
    divpp::stats::OnlineStats derand_time;
    divpp::stats::OnlineStats rand_share;
    divpp::stats::OnlineStats derand_share;
    for (std::int64_t s = 0; s < seeds; ++s) {
      Xoshiro256 gen_a(61 + static_cast<std::uint64_t>(s));
      std::vector<double> shares;
      const std::int64_t t_rand = time_to_diversity(
          graph, supports, divpp::core::DiversificationRule(weights),
          weights, target, cap, gen_a, &shares);
      if (t_rand >= 0) rand_time.add(static_cast<double>(t_rand) / nlogn);
      rand_share.add(shares[1]);

      Xoshiro256 gen_b(81 + static_cast<std::uint64_t>(s));
      const std::int64_t t_der = time_to_diversity(
          graph, supports, divpp::core::DerandomisedRule(weights), weights,
          target, cap, gen_b, &shares);
      if (t_der >= 0) derand_time.add(static_cast<double>(t_der) / nlogn);
      derand_share.add(shares[1]);
    }
    table.begin_row()
        .add_cell(n)
        .add_cell(rand_time.mean(), 3)
        .add_cell(derand_time.mean(), 3)
        .add_cell(rand_share.mean(), 3)
        .add_cell(derand_share.mean(), 3);
  }
  std::cout << table.to_text()
            << "Expected shape: both variants converge at the same "
               "O(n log n) scale and land on the fair share 0.75 for "
               "colour 1 — the derandomisation preserves the equilibrium "
               "(open problem §3, answered empirically).\n";
  return 0;
}
