// E10 — Diversification on other graph topologies (paper §3 future work).
//
// Claim to explore (the paper proves the complete graph only): on
// well-connected graphs the protocol still concentrates supports near
// the fair shares; poorly-mixing topologies (cycle) and bottlenecked
// ones (star) degrade gracefully; sustainability holds on every graph
// because it is a structural property of the rule.
//
// Flags: --n=4096 --seeds=3 --steps-mult=400

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/sustainability.h"
#include "core/diversification.h"
#include "core/equilibrium.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"
#include "stats/potentials.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 4096);  // 64² for the torus
  const std::int64_t seeds = args.get_int("seeds", 3);
  const std::int64_t steps_mult = args.get_int("steps-mult", 400);
  const divpp::core::WeightMap weights({1.0, 2.0, 5.0});

  std::cout << divpp::io::banner(
      "E10: Diversification beyond the complete graph  [§3 future work]");
  std::cout << "n = " << n << ", weights " << weights.to_string()
            << ", budget " << steps_mult
            << "*n steps, diversity error scaled by sqrt(n/log n)\n\n";

  const std::vector<std::string> topologies = {
      "complete", "regular:16", "regular:4", "er:0.01", "hypercube",
      "bipartite", "torus",     "grid",      "barbell", "cycle",
      "star"};

  divpp::io::Table table({"topology", "scaled diversity error (mean)",
                          "share c2 (fair 0.625)", "min dark ever",
                          "sustained"});
  for (const std::string& spec : topologies) {
    divpp::stats::OnlineStats err_acc;
    divpp::stats::OnlineStats share_acc;
    std::int64_t min_dark = n;
    bool sustained = true;
    for (std::int64_t s = 0; s < seeds; ++s) {
      divpp::rng::Xoshiro256 gen(91 + static_cast<std::uint64_t>(s));
      const auto graph = divpp::graph::make_topology(spec, n, gen);
      std::vector<std::int64_t> supports(3, 1);
      supports[0] = n - 2;
      auto pop = divpp::core::make_population(
          *graph, supports, divpp::core::DiversificationRule(weights));
      divpp::analysis::SustainabilityMonitor monitor(3);
      for (std::int64_t burst = 0; burst < steps_mult; ++burst) {
        pop.run(n, gen);
        monitor.observe(divpp::core::tally(pop.states(), 3).dark,
                        pop.time());
      }
      const auto sup = divpp::core::tally(pop.states(), 3).supports();
      err_acc.add(divpp::stats::diversity_error(sup, weights.weights()) /
                  divpp::core::diversity_error_scale(n));
      share_acc.add(static_cast<double>(sup[2]) / static_cast<double>(n));
      min_dark = std::min(min_dark, monitor.min_count_ever());
      sustained = sustained && monitor.sustained();
    }
    table.begin_row()
        .add_cell(spec)
        .add_cell(err_acc.mean(), 3)
        .add_cell(share_acc.mean(), 3)
        .add_cell(min_dark)
        .add_cell(sustained ? "yes" : "NO");
  }
  std::cout << table.to_text()
            << "Expected shape: complete graph and expanders (regular, er) "
               "have the smallest scaled error; the cycle lags behind at "
               "this budget (slow mixing) and the star funnels through the "
               "hub; 'sustained' is yes on every topology.\n";
  return 0;
}
