// E11 — The Markov-chain approximation of one agent (paper §2.4).
//
// Claims reproduced:
//  (a) the chain M has stationary π(D_i) = w_i/(1+W),
//      π(L_i) = (w_i/W)/(1+W) (Eqs. 18/19) — checked against the solver;
//  (b) the *actual* (non-Markovian) trajectory of a tagged agent in the
//      full protocol has empirical state occupancies within o(1) of π;
//  (c) the perturbed chains P± bracket the unperturbed stationary mass of
//      the target state: π⁻(D_l) < π(D_l) < π⁺(D_l).
//
// Flags: --n=64 --horizon=4000000 --seed=3

#include <cmath>
#include <iostream>
#include <vector>

#include "core/count_simulation.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "markov/equilibrium_chain.h"
#include "markov/markov_chain.h"
#include "rng/xoshiro.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 64);
  const std::int64_t horizon = args.get_int("horizon", 4'000'000);
  divpp::rng::Xoshiro256 gen(
      static_cast<std::uint64_t>(args.get_int("seed", 3)));
  const divpp::core::WeightMap weights({1.0, 3.0});  // W = 4, k = 2
  const std::int64_t k = weights.num_colors();

  std::cout << divpp::io::banner(
      "E11: one agent's trajectory vs the equilibrium chain M  [§2.4]");

  // (a) Stationary distribution: closed form vs numerical solve.
  const auto chain = divpp::markov::build_equilibrium_chain(weights, n);
  const auto pi_closed = divpp::markov::equilibrium_stationary(weights);
  const auto pi_solved = chain.stationary_direct();
  std::cout << "TV(closed-form pi, solver pi) = "
            << divpp::io::format_double(
                   divpp::markov::total_variation(pi_closed, pi_solved), 3)
            << " (expected ~0); 1/8-mixing time of M = "
            << chain.mixing_time() << " steps\n\n";

  // (b) Tagged agent in the real protocol vs pi.
  auto base = divpp::core::CountSimulation::proportional_start(weights, n);
  divpp::core::TaggedCountSimulation tagged(base, 0, true);
  // Warm up.
  const std::int64_t warmup = 50 * n * n / 10;
  while (tagged.time() < warmup) tagged.step(gen);
  std::vector<std::int64_t> occupancy(static_cast<std::size_t>(2 * k), 0);
  const std::int64_t start = tagged.time();
  tagged.run_observed(start + horizon, gen,
                      [&](std::int64_t, divpp::core::AgentState s) {
                        const std::int64_t state =
                            s.is_dark()
                                ? divpp::markov::dark_state(s.color)
                                : divpp::markov::light_state(s.color, k);
                        ++occupancy[static_cast<std::size_t>(state)];
                      });

  std::vector<double> empirical(occupancy.size());
  for (std::size_t i = 0; i < occupancy.size(); ++i)
    empirical[i] = static_cast<double>(occupancy[i]) /
                   static_cast<double>(horizon);

  divpp::io::Table table({"state", "pi (closed form)", "tagged empirical",
                          "pi- (err)", "pi+ (err)"});
  // Perturbation radius: the paper's err is an additive error on
  // transition probabilities of size O(1/n) (Eq. 20), i.e. a vanishing
  // *relative* perturbation.  We use 20% of the smallest transition
  // probability so that every P± entry stays a probability.
  const double err =
      0.2 / ((1.0 + weights.total()) * static_cast<double>(n));
  const char* names[] = {"D0", "D1", "L0", "L1"};
  for (std::int64_t s = 0; s < 2 * k; ++s) {
    // Perturbed chains target dark states (as in the paper's proof).
    std::string lo = "—";
    std::string hi = "—";
    if (divpp::markov::is_dark_state(s, k)) {
      const auto color = divpp::markov::state_color(s, k);
      const auto minus =
          divpp::markov::build_perturbed_chain(
              weights, n, color, err, divpp::markov::Perturbation::kAway)
              .stationary_direct();
      const auto plus =
          divpp::markov::build_perturbed_chain(
              weights, n, color, err,
              divpp::markov::Perturbation::kTowards)
              .stationary_direct();
      lo = divpp::io::format_double(minus[static_cast<std::size_t>(s)], 4);
      hi = divpp::io::format_double(plus[static_cast<std::size_t>(s)], 4);
    }
    table.begin_row()
        .add_cell(names[s])
        .add_cell(pi_closed[static_cast<std::size_t>(s)], 4)
        .add_cell(empirical[static_cast<std::size_t>(s)], 4)
        .add_cell(lo)
        .add_cell(hi);
  }
  std::cout << table.to_text() << "\n"
            << "TV(empirical occupancy, pi) = "
            << divpp::io::format_double(
                   divpp::markov::total_variation(empirical, pi_closed), 3)
            << "\n\n"
            << "Expected shape: the tagged agent's occupancy matches pi to "
               "within the finite-n error (TV -> 0 as the horizon grows), "
               "and each dark state's pi lies inside its [pi-, pi+] "
               "bracket — the sandwich argument of §2.4.\n"
            << "Per-colour totals: colour occupancy D_i + L_i = fair share "
               "w_i/W (fairness, Thm 2.12): c0 = "
            << divpp::io::format_double(empirical[0] + empirical[2], 3)
            << " vs 0.25, c1 = "
            << divpp::io::format_double(empirical[1] + empirical[3], 3)
            << " vs 0.75.\n";
  return 0;
}
