// E12 — The Lemma 2.11 concentration inequality and the Theorem A.2
// Markov-chain Chernoff bound, validated empirically.
//
// (a) Synthetic contraction processes satisfying hypotheses (i)–(iii)
//     exactly: the empirical tail P(M(t) >= E M(t) + lambda) must lie
//     below the Lemma 2.11 bound for every lambda.
// (b) A two-state chain: |N_i − π_i t| observed over many runs, compared
//     with the Thm A.2 tail at matching deviations.
//
// Flags: --replicas=20000 --t=300 --threads=0 (0 = all hardware threads)
//
// Both Monte-Carlo batches run under BatchRunner: replica r draws from
// the jump()-offset stream r of the batch seed, so the empirical tails
// are identical at any thread count.  The final line is a
// machine-readable JSON timing summary.

#include <cmath>
#include <iostream>
#include <vector>

#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "markov/concentration.h"
#include "markov/markov_chain.h"
#include "rng/xoshiro.h"
#include "runtime/batch_runner.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t replicas = args.get_int("replicas", 20'000);
  const std::int64_t t_steps = args.get_int("t", 300);
  divpp::runtime::BatchRunner runner(
      static_cast<int>(args.get_int("threads", 0)));
  double wall_contraction = 0.0;

  std::cout << divpp::io::banner(
      "E12: concentration bounds hold empirically  [Lemma 2.11 / Thm A.2]");

  // (a) Lemma 2.11 on synthetic contraction processes.
  struct Config {
    double alpha;
    double beta;
    double gamma;
  };
  const std::vector<Config> configs = {
      {0.10, 1.0, 1.0}, {0.30, 2.0, 1.0}, {0.05, 1.0, 0.5}};
  divpp::io::Table table({"alpha", "gamma", "lambda", "empirical tail",
                          "Lemma 2.11 bound", "holds"});
  for (const Config& config : configs) {
    const divpp::markov::SyntheticContraction reference(
        config.alpha, config.beta, config.gamma, 0.0);
    const double expectation = reference.expected_value(t_steps);
    const std::vector<double> finals = runner.map(
        replicas, 3000, [&](std::int64_t, divpp::rng::Xoshiro256& gen) {
          divpp::markov::SyntheticContraction process(
              config.alpha, config.beta, config.gamma, 0.0);
          double value = 0.0;
          for (std::int64_t i = 0; i < t_steps; ++i)
            value = process.step(gen);
          return value;
        });
    wall_contraction += runner.last_timing().wall_seconds;
    for (const double lambda : {1.0, 2.0, 3.0}) {
      std::int64_t exceed = 0;
      for (const double v : finals) {
        if (v >= expectation + lambda) ++exceed;
      }
      const double empirical =
          static_cast<double>(exceed) / static_cast<double>(replicas);
      const double bound =
          divpp::markov::chung_lu_tail(reference.hypotheses(), lambda);
      table.begin_row()
          .add_cell(config.alpha, 3)
          .add_cell(config.gamma, 3)
          .add_cell(lambda, 2)
          .add_cell(empirical, 3)
          .add_cell(bound, 3)
          .add_cell(empirical <= bound ? "yes" : "NO");
    }
  }
  std::cout << table.to_text() << "\n";

  // (b) Theorem A.2 on a two-state chain.
  const double a = 0.2;
  const double b = 0.1;
  const divpp::markov::DenseChain chain(2, {1.0 - a, a, b, 1.0 - b});
  const double pi1 = a / (a + b);
  const std::int64_t t_mix = chain.mixing_time();
  const std::int64_t chain_t = 20'000;
  divpp::io::Table chernoff({"delta", "empirical P(|N1 - pi1 t| >= d pi1 t)",
                             "Thm A.2 tail exp(-d^2 pi t / 72 Tmix)",
                             "holds"});
  const std::vector<std::int64_t> hits = runner.map(
      2000, 7000, [&](std::int64_t, divpp::rng::Xoshiro256& gen) {
        return chain.simulate_hits(0, chain_t, gen)[1];
      });
  const double wall_chain = runner.last_timing().wall_seconds;
  for (const double delta : {0.02, 0.04, 0.08}) {
    std::int64_t exceed = 0;
    const double bar = delta * pi1 * static_cast<double>(chain_t);
    for (const std::int64_t h : hits) {
      if (std::abs(static_cast<double>(h) -
                   pi1 * static_cast<double>(chain_t)) >= bar)
        ++exceed;
    }
    const double empirical =
        static_cast<double>(exceed) / static_cast<double>(hits.size());
    const double bound =
        divpp::markov::markov_chernoff_tail(pi1, chain_t, delta, t_mix);
    chernoff.begin_row()
        .add_cell(delta, 3)
        .add_cell(empirical, 3)
        .add_cell(bound, 3)
        .add_cell(empirical <= bound ? "yes" : "(bound > 1: trivial)");
  }
  std::cout << "Two-state chain (a = 0.2, b = 0.1, t = " << chain_t
            << ", Tmix = " << t_mix << "):\n"
            << chernoff.to_text()
            << "\nExpected shape: every empirical tail sits at or below its "
               "bound (the Thm A.2 form is loose — constants 72 — so its "
               "column may be trivially >= 1 for small deltas).\n";

  std::cout << "\n"
            << divpp::io::Json()
                   .set("bench", "e12_concentration")
                   .set("threads", runner.threads())
                   .set("replicas", replicas)
                   .set("wall_seconds_contraction", wall_contraction)
                   .set("wall_seconds_chain", wall_chain)
                   .to_string()
            << "\n";
  return 0;
}
