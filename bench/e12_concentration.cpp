// E12 — The Lemma 2.11 concentration inequality and the Theorem A.2
// Markov-chain Chernoff bound, validated empirically.
//
// (a) Synthetic contraction processes satisfying hypotheses (i)–(iii)
//     exactly: the empirical tail P(M(t) >= E M(t) + lambda) must lie
//     below the Lemma 2.11 bound for every lambda.
// (b) A two-state chain: |N_i − π_i t| observed over many runs, compared
//     with the Thm A.2 tail at matching deviations.
//
// Flags: --replicas=20000 --t=300

#include <cmath>
#include <iostream>
#include <vector>

#include "io/args.h"
#include "io/table.h"
#include "markov/concentration.h"
#include "markov/markov_chain.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t replicas = args.get_int("replicas", 20'000);
  const std::int64_t t_steps = args.get_int("t", 300);

  std::cout << divpp::io::banner(
      "E12: concentration bounds hold empirically  [Lemma 2.11 / Thm A.2]");

  // (a) Lemma 2.11 on synthetic contraction processes.
  struct Config {
    double alpha;
    double beta;
    double gamma;
  };
  const std::vector<Config> configs = {
      {0.10, 1.0, 1.0}, {0.30, 2.0, 1.0}, {0.05, 1.0, 0.5}};
  divpp::io::Table table({"alpha", "gamma", "lambda", "empirical tail",
                          "Lemma 2.11 bound", "holds"});
  for (const Config& config : configs) {
    const divpp::markov::SyntheticContraction reference(
        config.alpha, config.beta, config.gamma, 0.0);
    const double expectation = reference.expected_value(t_steps);
    std::vector<double> finals;
    finals.reserve(static_cast<std::size_t>(replicas));
    for (std::int64_t r = 0; r < replicas; ++r) {
      divpp::markov::SyntheticContraction process(config.alpha, config.beta,
                                                  config.gamma, 0.0);
      divpp::rng::Xoshiro256 gen(3000 + static_cast<std::uint64_t>(r));
      double value = 0.0;
      for (std::int64_t i = 0; i < t_steps; ++i) value = process.step(gen);
      finals.push_back(value);
    }
    for (const double lambda : {1.0, 2.0, 3.0}) {
      std::int64_t exceed = 0;
      for (const double v : finals) {
        if (v >= expectation + lambda) ++exceed;
      }
      const double empirical =
          static_cast<double>(exceed) / static_cast<double>(replicas);
      const double bound =
          divpp::markov::chung_lu_tail(reference.hypotheses(), lambda);
      table.begin_row()
          .add_cell(config.alpha, 3)
          .add_cell(config.gamma, 3)
          .add_cell(lambda, 2)
          .add_cell(empirical, 3)
          .add_cell(bound, 3)
          .add_cell(empirical <= bound ? "yes" : "NO");
    }
  }
  std::cout << table.to_text() << "\n";

  // (b) Theorem A.2 on a two-state chain.
  const double a = 0.2;
  const double b = 0.1;
  const divpp::markov::DenseChain chain(2, {1.0 - a, a, b, 1.0 - b});
  const double pi1 = a / (a + b);
  const std::int64_t t_mix = chain.mixing_time();
  const std::int64_t chain_t = 20'000;
  divpp::io::Table chernoff({"delta", "empirical P(|N1 - pi1 t| >= d pi1 t)",
                             "Thm A.2 tail exp(-d^2 pi t / 72 Tmix)",
                             "holds"});
  std::vector<std::int64_t> hits;
  hits.reserve(2000);
  for (std::int64_t r = 0; r < 2000; ++r) {
    divpp::rng::Xoshiro256 gen(7000 + static_cast<std::uint64_t>(r));
    hits.push_back(chain.simulate_hits(0, chain_t, gen)[1]);
  }
  for (const double delta : {0.02, 0.04, 0.08}) {
    std::int64_t exceed = 0;
    const double bar = delta * pi1 * static_cast<double>(chain_t);
    for (const std::int64_t h : hits) {
      if (std::abs(static_cast<double>(h) -
                   pi1 * static_cast<double>(chain_t)) >= bar)
        ++exceed;
    }
    const double empirical =
        static_cast<double>(exceed) / static_cast<double>(hits.size());
    const double bound =
        divpp::markov::markov_chernoff_tail(pi1, chain_t, delta, t_mix);
    chernoff.begin_row()
        .add_cell(delta, 3)
        .add_cell(empirical, 3)
        .add_cell(bound, 3)
        .add_cell(empirical <= bound ? "yes" : "(bound > 1: trivial)");
  }
  std::cout << "Two-state chain (a = 0.2, b = 0.1, t = " << chain_t
            << ", Tmix = " << t_mix << "):\n"
            << chernoff.to_text()
            << "\nExpected shape: every empirical tail sits at or below its "
               "bound (the Thm A.2 form is loose — constants 72 — so its "
               "column may be trivially >= 1 for small deltas).\n";
  return 0;
}
