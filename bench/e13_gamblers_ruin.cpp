// E13 — Theorem A.1 (gambler's ruin) closed forms vs Monte Carlo.
//
// The Phase-1 analysis couples count trajectories with biased walks and
// reads absorption probabilities/times off Theorem A.1.  This bench
// sweeps (p, b, s) and prints formula vs simulation for both the
// absorption probability and the expected absorption time.
//
// Flags: --trials=50000

#include <cmath>
#include <iostream>
#include <vector>

#include "io/args.h"
#include "io/table.h"
#include "markov/gamblers_ruin.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t trials = args.get_int("trials", 50'000);

  std::cout << divpp::io::banner(
      "E13: gambler's-ruin closed forms vs Monte Carlo  [Theorem A.1]");
  std::cout << trials << " simulated walks per row\n\n";

  const std::vector<divpp::markov::GamblersRuin> walks = {
      {0.50, 10, 5},  {0.50, 20, 4},  {0.55, 10, 5},  {0.55, 40, 10},
      {0.45, 10, 5},  {0.60, 30, 3},  {0.40, 12, 9},  {0.52, 100, 50},
  };

  divpp::io::Table table({"p", "b", "s", "P(top) formula", "P(top) MC",
                          "E[T] formula", "E[T] MC", "|dP|", "rel dT"});
  divpp::rng::Xoshiro256 gen(13);
  for (const auto& walk : walks) {
    std::int64_t tops = 0;
    divpp::stats::OnlineStats times;
    for (std::int64_t i = 0; i < trials; ++i) {
      const auto outcome = divpp::markov::simulate_ruin(walk, gen);
      if (outcome.absorbed_top) ++tops;
      times.add(static_cast<double>(outcome.steps));
    }
    const double p_mc =
        static_cast<double>(tops) / static_cast<double>(trials);
    const double p_formula = walk.probability_top();
    const double t_formula = walk.expected_time();
    table.begin_row()
        .add_cell(walk.p, 3)
        .add_cell(walk.b)
        .add_cell(walk.s)
        .add_cell(p_formula, 4)
        .add_cell(p_mc, 4)
        .add_cell(t_formula, 5)
        .add_cell(times.mean(), 5)
        .add_cell(std::abs(p_formula - p_mc), 2)
        .add_cell(std::abs(times.mean() - t_formula) /
                      std::max(t_formula, 1.0),
                  2);
  }
  std::cout << table.to_text()
            << "Expected shape: |dP| and rel dT at Monte Carlo noise level "
               "(~1/sqrt(trials)) for every parameter combination.\n";
  return 0;
}
