// E14 — Engine equivalence and throughput (design ablation, DESIGN.md §5).
//
// (a) Statistical equivalence of the three execution engines on K_n:
//     agent-based, count-chain (plain), count-chain (jump) — the mean and
//     standard deviation of colour-0 support after T steps must agree
//     across replicas.
// (b) Scheduler ablation: uniform (paper), round-robin initiator, random
//     matching — equilibrium shares under each schedule.
// (c) Throughput: steps/second per engine at large n.  The replica batch
//     is fanned across --threads workers by BatchRunner; the statistical
//     output (per-replica final supports and their sum) is bit-identical
//     for a fixed seed at any thread count, only the wall clock changes.
//
// Flags: --replicas=300 --throughput-steps=10000000 --tp-replicas=8
//        --threads=0 (0 = all hardware threads)
//
// The final line of output is a machine-readable JSON summary with the
// wall-clock timings, for harvesting into BENCH_*.json trajectories.

#include <array>
#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "core/count_simulation.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "runtime/batch_runner.h"
#include "sched/schedulers.h"
#include "stats/online_stats.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;
using divpp::runtime::BatchRunner;

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t replicas = args.get_int("replicas", 300);
  const std::int64_t throughput_steps =
      args.get_int("throughput-steps", 10'000'000);
  const std::int64_t tp_replicas = args.get_int("tp-replicas", 8);
  if (tp_replicas < 1)
    throw std::invalid_argument("e14: --tp-replicas must be >= 1");
  BatchRunner runner(static_cast<int>(args.get_int("threads", 0)));
  const WeightMap weights({1.0, 3.0});

  std::cout << divpp::io::banner(
      "E14: engine equivalence + scheduler ablation + throughput");
  std::cout << "BatchRunner threads: " << runner.threads() << "\n\n";

  divpp::io::Json summary;
  summary.set("bench", "e14_engines").set("threads", runner.threads());

  // (a) Equivalence of engines.  One batch; each replica runs all three
  // engines on generators forked from its own jump()-offset stream.
  {
    constexpr std::int64_t kN = 48;
    constexpr std::int64_t kT = 3000;
    const divpp::graph::CompleteGraph graph(kN);
    const std::vector<std::int64_t> supports = {24, 24};
    const auto finals = runner.map(
        replicas, 14'001,
        [&](std::int64_t, Xoshiro256& gen) -> std::array<double, 3> {
          // Per-engine generators are re-seeded from draws of the replica
          // stream (splitmix expansion), NOT fork()ed: BatchRunner spaces
          // replicas one jump() apart, so fork()'s jump-based offsets
          // would land exactly on a neighbouring replica's stream.
          Xoshiro256 g1(gen());
          Xoshiro256 g2(gen());
          Xoshiro256 g3(gen());
          auto pop = divpp::core::make_population(
              graph, supports, divpp::core::DiversificationRule(weights));
          pop.run(kT, g1);
          const double agent_c0 = static_cast<double>(
              divpp::core::tally(pop.states(), 2).supports()[0]);
          CountSimulation a(weights, {24, 24}, {0, 0});
          a.run_to(kT, g2);
          CountSimulation b(weights, {24, 24}, {0, 0});
          b.advance_to(kT, g3);
          return {agent_c0, static_cast<double>(a.support(0)),
                  static_cast<double>(b.support(0))};
        });
    divpp::stats::OnlineStats agent;
    divpp::stats::OnlineStats plain;
    divpp::stats::OnlineStats jump;
    for (const auto& [agent_c0, plain_c0, jump_c0] : finals) {
      agent.add(agent_c0);
      plain.add(plain_c0);
      jump.add(jump_c0);
    }
    divpp::io::Table table({"engine", "mean C0(T)", "stddev C0(T)"});
    table.begin_row().add_cell("agent-based").add_cell(agent.mean(), 4)
        .add_cell(agent.stddev(), 3);
    table.begin_row().add_cell("count (plain)").add_cell(plain.mean(), 4)
        .add_cell(plain.stddev(), 3);
    table.begin_row().add_cell("count (jump)").add_cell(jump.mean(), 4)
        .add_cell(jump.stddev(), 3);
    std::cout << "(a) Engine equivalence: n = 48, T = 3000, " << replicas
              << " replicas\n"
              << table.to_text()
              << "Expected: all three rows statistically identical.\n\n";
    summary.set("equivalence",
                divpp::io::Json()
                    .set("replicas", replicas)
                    .set("wall_seconds", runner.last_timing().wall_seconds)
                    .set("agent_mean", agent.mean())
                    .set("plain_mean", plain.mean())
                    .set("jump_mean", jump.mean()));
  }

  // (b) Scheduler ablation.
  {
    constexpr std::int64_t kN = 1024;
    const divpp::graph::CompleteGraph graph(kN);
    const std::vector<std::int64_t> supports = {512, 512};
    divpp::io::Table table({"scheduler", "share c1 (fair 0.75)",
                            "interactions executed"});
    {
      Xoshiro256 gen(41);
      auto pop = divpp::core::make_population(
          graph, supports, divpp::core::DiversificationRule(weights));
      pop.run(400 * kN, gen);
      table.begin_row()
          .add_cell("uniform random (paper)")
          .add_cell(static_cast<double>(divpp::core::tally(pop.states(), 2)
                                            .supports()[1]) /
                        kN,
                    3)
          .add_cell(pop.time());
    }
    {
      Xoshiro256 gen(42);
      auto pop = divpp::core::make_population(
          graph, supports, divpp::core::DiversificationRule(weights));
      divpp::sched::run_round_robin(pop, 400 * kN, gen);
      table.begin_row()
          .add_cell("round-robin initiator")
          .add_cell(static_cast<double>(divpp::core::tally(pop.states(), 2)
                                            .supports()[1]) /
                        kN,
                    3)
          .add_cell(pop.time());
    }
    {
      Xoshiro256 gen(43);
      auto pop = divpp::core::make_population(
          graph, supports, divpp::core::DiversificationRule(weights));
      const std::int64_t interactions =
          divpp::sched::run_matching(pop, 800, gen);
      table.begin_row()
          .add_cell("random matching rounds")
          .add_cell(static_cast<double>(divpp::core::tally(pop.states(), 2)
                                            .supports()[1]) /
                        kN,
                    3)
          .add_cell(interactions);
    }
    std::cout << "(b) Scheduler ablation: n = 1024, weights {1,3}\n"
              << table.to_text()
              << "Expected: all schedules land on the fair share 0.75 — "
                 "the protocol does not depend on the paper's scheduler "
                 "for its equilibrium (only the analysis does).\n\n";
  }

  // (c) Throughput.  Total work per engine is fixed (--tp-replicas
  // replicas of steps/replica each, regardless of --threads), so the
  // wall clock shrinks with the worker count while the support-0
  // checksum stays identical.
  {
    divpp::io::Table table({"engine", "n", "replicas", "wall s",
                            "steps/s (millions)", "C0 checksum"});
    const std::int64_t big_n = 262'144;
    const std::int64_t steps_per_replica =
        std::max<std::int64_t>(throughput_steps / tp_replicas, 1);
    divpp::io::Json throughput;

    const auto record = [&](const char* engine, std::int64_t total_steps,
                            const std::vector<std::int64_t>& supports0) {
      const double wall = runner.last_timing().wall_seconds;
      std::int64_t checksum = 0;
      for (const std::int64_t s : supports0) checksum += s;
      const double rate = static_cast<double>(total_steps) / wall;
      table.begin_row()
          .add_cell(engine)
          .add_cell(big_n)
          .add_cell(tp_replicas)
          .add_cell(wall, 4)
          .add_cell(rate / 1e6, 4)
          .add_cell(checksum);
      throughput.set(engine, divpp::io::Json()
                                 .set("n", big_n)
                                 .set("replicas", tp_replicas)
                                 .set("total_steps", total_steps)
                                 .set("wall_seconds", wall)
                                 .set("steps_per_second", rate)
                                 .set("support0_checksum", checksum));
    };

    {
      const divpp::graph::CompleteGraph graph(big_n);
      const auto supports0 = runner.map(
          tp_replicas, 14'044, [&](std::int64_t, Xoshiro256& gen) {
            std::vector<std::int64_t> supports = {big_n / 2, big_n / 2};
            auto pop = divpp::core::make_population(
                graph, supports, divpp::core::DiversificationRule(weights));
            pop.run(steps_per_replica, gen);
            return divpp::core::tally(pop.states(), 2).supports()[0];
          });
      record("agent-based", steps_per_replica * tp_replicas, supports0);
    }
    {
      const auto supports0 = runner.map(
          tp_replicas, 14'045, [&](std::int64_t, Xoshiro256& gen) {
            auto sim = CountSimulation::equal_start(weights, big_n);
            sim.run_to(steps_per_replica, gen);
            return sim.support(0);
          });
      record("count-plain", steps_per_replica * tp_replicas, supports0);
    }
    {
      const auto supports0 = runner.map(
          tp_replicas, 14'046, [&](std::int64_t, Xoshiro256& gen) {
            auto sim = CountSimulation::equal_start(weights, big_n);
            sim.advance_to(steps_per_replica * 10, gen);
            return sim.support(0);
          });
      record("count-jump", steps_per_replica * 10 * tp_replicas, supports0);
    }
    std::cout << "(c) Throughput: " << tp_replicas << " replicas over "
              << runner.threads() << " threads\n"
              << table.to_text()
              << "Expected: the jump chain dominates (it skips the ~"
              << "(1 - 1/W) no-op fraction in O(k) per active event); the "
                 "checksum column is thread-count invariant.\n";
    summary.set("throughput", throughput);
  }

  std::cout << "\n" << summary.to_string() << "\n";
  return 0;
}
