// E14 — Engine equivalence and throughput (design ablation, DESIGN.md §5).
//
// (a) Statistical equivalence of the three execution engines on K_n:
//     agent-based, count-chain (plain), count-chain (jump) — the mean and
//     standard deviation of colour-0 support after T steps must agree
//     across replicas.
// (b) Scheduler ablation: uniform (paper), round-robin initiator, random
//     matching — equilibrium shares under each schedule.
// (c) Throughput: steps/second per engine at large n (the reason the
//     count chain exists: its cost is O(k), independent of n).
//
// Flags: --replicas=300 --throughput-steps=10000000

#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/count_simulation.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "sched/schedulers.h"
#include "stats/online_stats.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;
using Clock = std::chrono::steady_clock;

double steps_per_second(std::int64_t steps, Clock::time_point t0,
                        Clock::time_point t1) {
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  return static_cast<double>(steps) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t replicas = args.get_int("replicas", 300);
  const std::int64_t throughput_steps =
      args.get_int("throughput-steps", 10'000'000);
  const WeightMap weights({1.0, 3.0});

  std::cout << divpp::io::banner(
      "E14: engine equivalence + scheduler ablation + throughput");

  // (a) Equivalence of engines.
  {
    constexpr std::int64_t kN = 48;
    constexpr std::int64_t kT = 3000;
    const divpp::graph::CompleteGraph graph(kN);
    const std::vector<std::int64_t> supports = {24, 24};
    divpp::stats::OnlineStats agent;
    divpp::stats::OnlineStats plain;
    divpp::stats::OnlineStats jump;
    for (std::int64_t r = 0; r < replicas; ++r) {
      Xoshiro256 g1(10'000 + static_cast<std::uint64_t>(r));
      auto pop = divpp::core::make_population(
          graph, supports, divpp::core::DiversificationRule(weights));
      pop.run(kT, g1);
      agent.add(static_cast<double>(
          divpp::core::tally(pop.states(), 2).supports()[0]));

      Xoshiro256 g2(20'000 + static_cast<std::uint64_t>(r));
      CountSimulation a(weights, {24, 24}, {0, 0});
      a.run_to(kT, g2);
      plain.add(static_cast<double>(a.support(0)));

      Xoshiro256 g3(30'000 + static_cast<std::uint64_t>(r));
      CountSimulation b(weights, {24, 24}, {0, 0});
      b.advance_to(kT, g3);
      jump.add(static_cast<double>(b.support(0)));
    }
    divpp::io::Table table({"engine", "mean C0(T)", "stddev C0(T)"});
    table.begin_row().add_cell("agent-based").add_cell(agent.mean(), 4)
        .add_cell(agent.stddev(), 3);
    table.begin_row().add_cell("count (plain)").add_cell(plain.mean(), 4)
        .add_cell(plain.stddev(), 3);
    table.begin_row().add_cell("count (jump)").add_cell(jump.mean(), 4)
        .add_cell(jump.stddev(), 3);
    std::cout << "(a) Engine equivalence: n = 48, T = 3000, " << replicas
              << " replicas\n"
              << table.to_text()
              << "Expected: all three rows statistically identical.\n\n";
  }

  // (b) Scheduler ablation.
  {
    constexpr std::int64_t kN = 1024;
    const divpp::graph::CompleteGraph graph(kN);
    const std::vector<std::int64_t> supports = {512, 512};
    divpp::io::Table table({"scheduler", "share c1 (fair 0.75)",
                            "interactions executed"});
    {
      Xoshiro256 gen(41);
      auto pop = divpp::core::make_population(
          graph, supports, divpp::core::DiversificationRule(weights));
      pop.run(400 * kN, gen);
      table.begin_row()
          .add_cell("uniform random (paper)")
          .add_cell(static_cast<double>(divpp::core::tally(pop.states(), 2)
                                            .supports()[1]) /
                        kN,
                    3)
          .add_cell(pop.time());
    }
    {
      Xoshiro256 gen(42);
      auto pop = divpp::core::make_population(
          graph, supports, divpp::core::DiversificationRule(weights));
      divpp::sched::run_round_robin(pop, 400 * kN, gen);
      table.begin_row()
          .add_cell("round-robin initiator")
          .add_cell(static_cast<double>(divpp::core::tally(pop.states(), 2)
                                            .supports()[1]) /
                        kN,
                    3)
          .add_cell(pop.time());
    }
    {
      Xoshiro256 gen(43);
      auto pop = divpp::core::make_population(
          graph, supports, divpp::core::DiversificationRule(weights));
      const std::int64_t interactions =
          divpp::sched::run_matching(pop, 800, gen);
      table.begin_row()
          .add_cell("random matching rounds")
          .add_cell(static_cast<double>(divpp::core::tally(pop.states(), 2)
                                            .supports()[1]) /
                        kN,
                    3)
          .add_cell(interactions);
    }
    std::cout << "(b) Scheduler ablation: n = 1024, weights {1,3}\n"
              << table.to_text()
              << "Expected: all schedules land on the fair share 0.75 — "
                 "the protocol does not depend on the paper's scheduler "
                 "for its equilibrium (only the analysis does).\n\n";
  }

  // (c) Throughput.
  {
    divpp::io::Table table({"engine", "n", "steps/s (millions)"});
    const std::int64_t big_n = 262'144;
    {
      Xoshiro256 gen(44);
      const divpp::graph::CompleteGraph graph(big_n);
      std::vector<std::int64_t> supports = {big_n / 2, big_n / 2};
      auto pop = divpp::core::make_population(
          graph, supports, divpp::core::DiversificationRule(weights));
      const auto t0 = Clock::now();
      pop.run(throughput_steps, gen);
      const auto t1 = Clock::now();
      table.begin_row().add_cell("agent-based").add_cell(big_n).add_cell(
          steps_per_second(throughput_steps, t0, t1) / 1e6, 4);
    }
    {
      Xoshiro256 gen(45);
      auto sim = CountSimulation::equal_start(weights, big_n);
      const auto t0 = Clock::now();
      sim.run_to(throughput_steps, gen);
      const auto t1 = Clock::now();
      table.begin_row().add_cell("count (plain)").add_cell(big_n).add_cell(
          steps_per_second(throughput_steps, t0, t1) / 1e6, 4);
    }
    {
      Xoshiro256 gen(46);
      auto sim = CountSimulation::equal_start(weights, big_n);
      const auto t0 = Clock::now();
      sim.advance_to(throughput_steps * 10, gen);
      const auto t1 = Clock::now();
      table.begin_row().add_cell("count (jump)").add_cell(big_n).add_cell(
          steps_per_second(throughput_steps * 10, t0, t1) / 1e6, 4);
    }
    std::cout << "(c) Throughput (single core)\n"
              << table.to_text()
              << "Expected: the jump chain dominates (it skips the ~"
              << "(1 - 1/W) no-op fraction in O(k) per active event).\n";
  }
  return 0;
}
