// E15 — google-benchmark micro-suite for the hot paths: RNG primitives,
// rule application, engine steps (agent-based and count-chain, plain and
// jump), and neighbour sampling on generated topologies.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/count_simulation.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

void BM_Xoshiro256(benchmark::State& state) {
  Xoshiro256 gen(1);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_Xoshiro256);

void BM_UniformBelow(benchmark::State& state) {
  Xoshiro256 gen(2);
  const std::int64_t bound = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(divpp::rng::uniform_below(gen, bound));
}
BENCHMARK(BM_UniformBelow)->Arg(1000)->Arg(1'000'000'000);

void BM_AliasTableSample(benchmark::State& state) {
  Xoshiro256 gen(3);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = static_cast<double>(i + 1);
  const divpp::rng::AliasTable table(weights);
  for (auto _ : state) benchmark::DoNotOptimize(table.sample(gen));
}
BENCHMARK(BM_AliasTableSample)->Arg(4)->Arg(64)->Arg(1024);

void BM_RuleApply(benchmark::State& state) {
  const divpp::core::DiversificationRule rule(WeightMap({1.0, 2.0, 4.0}));
  Xoshiro256 gen(4);
  divpp::core::AgentState me{0, divpp::core::kDark};
  const divpp::core::AgentState other{0, divpp::core::kDark};
  for (auto _ : state) {
    me.shade = divpp::core::kDark;
    benchmark::DoNotOptimize(rule.apply(me, other, gen));
  }
}
BENCHMARK(BM_RuleApply);

void BM_AgentStepComplete(benchmark::State& state) {
  const auto n = state.range(0);
  const divpp::graph::CompleteGraph graph(n);
  std::vector<std::int64_t> supports = {n / 2, n - n / 2};
  auto pop = divpp::core::make_population(
      graph, supports,
      divpp::core::DiversificationRule(WeightMap({1.0, 3.0})));
  Xoshiro256 gen(5);
  for (auto _ : state) benchmark::DoNotOptimize(pop.step(gen).transition);
}
BENCHMARK(BM_AgentStepComplete)->Arg(1024)->Arg(262'144);

void BM_AgentStepTorus(benchmark::State& state) {
  Xoshiro256 topo_gen(6);
  const auto graph = divpp::graph::make_torus(64, 64);
  std::vector<std::int64_t> supports = {2048, 2048};
  auto pop = divpp::core::make_population(
      graph, supports,
      divpp::core::DiversificationRule(WeightMap({1.0, 3.0})));
  Xoshiro256 gen(7);
  for (auto _ : state) benchmark::DoNotOptimize(pop.step(gen).transition);
}
BENCHMARK(BM_AgentStepTorus);

void BM_CountStep(benchmark::State& state) {
  const auto k = state.range(0);
  std::vector<double> w(static_cast<std::size_t>(k), 2.0);
  auto sim = CountSimulation::equal_start(WeightMap(w), 1 << 20);
  Xoshiro256 gen(8);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step(gen).transition);
}
BENCHMARK(BM_CountStep)->Arg(2)->Arg(8)->Arg(32);

void BM_CountJumpAdvance(benchmark::State& state) {
  const auto k = state.range(0);
  std::vector<double> w(static_cast<std::size_t>(k), 2.0);
  auto sim = CountSimulation::equal_start(WeightMap(w), 1 << 20);
  Xoshiro256 gen(9);
  // Measure per-simulated-step cost: each iteration advances 1024 steps.
  for (auto _ : state) {
    sim.advance_to(sim.time() + 1024, gen);
    benchmark::DoNotOptimize(sim.total_dark());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CountJumpAdvance)->Arg(2)->Arg(8)->Arg(32);

void BM_NeighborSampleRegular(benchmark::State& state) {
  Xoshiro256 topo_gen(10);
  const auto graph =
      divpp::graph::make_random_regular(4096, 8, topo_gen);
  Xoshiro256 gen(11);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph.sample_neighbor(17, gen));
}
BENCHMARK(BM_NeighborSampleRegular);

}  // namespace

BENCHMARK_MAIN();
