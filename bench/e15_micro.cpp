// E15 — google-benchmark micro-suite for the hot paths: RNG primitives,
// samplers (alias, Fenwick, linear-scan references), rule application,
// engine steps (agent-based and count-chain, plain and jump), and
// neighbour sampling on generated topologies.
//
// Besides the google-benchmark suite, `--pr2-json=FILE` runs a dedicated
// before/after harness that times the PR-2 rewrites against the retained
// linear-scan baselines (count step, jump chain, agent step) at
// k ∈ {8, 64, 256, 1024} and writes one machine-readable JSON object —
// the perf-trajectory record.  `--pr2-quick` shrinks the step counts for
// CI smoke runs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/count_simulation.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/json.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"
#include "sampling/alias.h"
#include "sampling/fenwick.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

// ---------------------------------------------------------------------------
// Linear-scan count-chain baseline: a faithful copy of the pre-Fenwick hot
// path (O(k) class scans per step; O(k) propensity rebuild per active jump
// transition), kept as the measured "before" of the PR-2 comparison.
// ---------------------------------------------------------------------------

struct LinearCountRef {
  std::vector<double> weights;
  std::vector<std::int64_t> dark;
  std::vector<std::int64_t> light;
  std::int64_t n = 0;
  std::int64_t total_dark = 0;
  std::int64_t time = 0;

  static LinearCountRef equal_start(std::int64_t k, std::int64_t n,
                                    double weight) {
    LinearCountRef sim;
    sim.weights.assign(static_cast<std::size_t>(k), weight);
    sim.dark.assign(static_cast<std::size_t>(k), n / k);
    for (std::int64_t i = 0; i < n % k; ++i)
      ++sim.dark[static_cast<std::size_t>(i)];
    sim.light.assign(static_cast<std::size_t>(k), 0);
    sim.n = n;
    sim.total_dark = n;
    return sim;
  }

  [[nodiscard]] std::int64_t total_light() const { return n - total_dark; }

  struct Pick {
    bool is_dark = false;
    std::int32_t color = 0;
  };

  Pick pick_class(Xoshiro256& gen, std::int64_t total,
                  const Pick* excluded) const {
    std::int64_t target = divpp::rng::uniform_below(gen, total);
    const auto k = dark.size();
    for (std::size_t i = 0; i < k; ++i) {
      std::int64_t available = dark[i];
      if (excluded != nullptr && excluded->is_dark &&
          excluded->color == static_cast<std::int32_t>(i))
        --available;
      if (target < available) return {true, static_cast<std::int32_t>(i)};
      target -= available;
    }
    for (std::size_t i = 0; i < k; ++i) {
      std::int64_t available = light[i];
      if (excluded != nullptr && !excluded->is_dark &&
          excluded->color == static_cast<std::int32_t>(i))
        --available;
      if (target < available) return {false, static_cast<std::int32_t>(i)};
      target -= available;
    }
    return {false, static_cast<std::int32_t>(k - 1)};
  }

  void apply_adopt(std::int32_t from, std::int32_t to) {
    --light[static_cast<std::size_t>(from)];
    ++dark[static_cast<std::size_t>(to)];
    ++total_dark;
  }

  void apply_fade(std::int32_t i) {
    --dark[static_cast<std::size_t>(i)];
    ++light[static_cast<std::size_t>(i)];
    --total_dark;
  }

  void step(Xoshiro256& gen) {
    const Pick initiator = pick_class(gen, n, nullptr);
    const Pick responder = pick_class(gen, n - 1, &initiator);
    if (!initiator.is_dark && responder.is_dark) {
      apply_adopt(initiator.color, responder.color);
    } else if (initiator.is_dark && responder.is_dark &&
               initiator.color == responder.color) {
      if (divpp::rng::bernoulli(
              gen, 1.0 / weights[static_cast<std::size_t>(initiator.color)]))
        apply_fade(initiator.color);
    }
    ++time;
  }

  void advance_to(std::int64_t target_time, Xoshiro256& gen) {
    const auto k = dark.size();
    std::vector<double> flip_weights(k);
    while (time < target_time) {
      const auto adopt_weight = static_cast<double>(total_light()) *
                                static_cast<double>(total_dark);
      double flip_total = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        flip_weights[i] = static_cast<double>(dark[i]) *
                          static_cast<double>(dark[i] - 1) / weights[i];
        flip_total += flip_weights[i];
      }
      const double denom =
          static_cast<double>(n) * static_cast<double>(n - 1);
      const double p_active = (adopt_weight + flip_total) / denom;
      if (!(p_active > 0.0)) {
        time = target_time;
        return;
      }
      const std::int64_t skip = divpp::rng::geometric_failures(
          gen, std::min(p_active, 1.0));
      if (time + skip >= target_time) {
        time = target_time;
        return;
      }
      time += skip;
      const double pick =
          divpp::rng::uniform01(gen) * (adopt_weight + flip_total);
      if (pick < adopt_weight) {
        const auto from = static_cast<std::int32_t>(
            divpp::rng::sample_counts(gen, light, total_light()));
        const auto to = static_cast<std::int32_t>(
            divpp::rng::sample_counts(gen, dark, total_dark));
        apply_adopt(from, to);
      } else {
        const auto faded = static_cast<std::int32_t>(
            divpp::rng::sample_discrete(gen, flip_weights));
        apply_fade(faded);
      }
      ++time;
    }
  }
};

// ---------------------------------------------------------------------------
// google-benchmark suite
// ---------------------------------------------------------------------------

void BM_Xoshiro256(benchmark::State& state) {
  Xoshiro256 gen(1);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_Xoshiro256);

void BM_UniformBelow(benchmark::State& state) {
  Xoshiro256 gen(2);
  const std::int64_t bound = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(divpp::rng::uniform_below(gen, bound));
}
BENCHMARK(BM_UniformBelow)->Arg(1000)->Arg(1'000'000'000);

void BM_AliasTableSample(benchmark::State& state) {
  Xoshiro256 gen(3);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = static_cast<double>(i + 1);
  const divpp::sampling::AliasTable table(weights);
  for (auto _ : state) benchmark::DoNotOptimize(table.sample(gen));
}
BENCHMARK(BM_AliasTableSample)->Arg(4)->Arg(64)->Arg(1024);

void BM_FenwickCountsSample(benchmark::State& state) {
  Xoshiro256 gen(3);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = static_cast<std::int64_t>(i + 1);
  const divpp::sampling::FenwickCounts tree(counts);
  for (auto _ : state) benchmark::DoNotOptimize(tree.sample(gen));
}
BENCHMARK(BM_FenwickCountsSample)->Arg(4)->Arg(64)->Arg(1024);

void BM_LinearSampleCounts(benchmark::State& state) {
  Xoshiro256 gen(3);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(state.range(0)));
  std::int64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::int64_t>(i + 1);
    total += counts[i];
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(divpp::rng::sample_counts(gen, counts, total));
}
BENCHMARK(BM_LinearSampleCounts)->Arg(4)->Arg(64)->Arg(1024);

void BM_RuleApply(benchmark::State& state) {
  const divpp::core::DiversificationRule rule(WeightMap({1.0, 2.0, 4.0}));
  Xoshiro256 gen(4);
  divpp::core::AgentState me{0, divpp::core::kDark};
  const divpp::core::AgentState other{0, divpp::core::kDark};
  for (auto _ : state) {
    me.shade = divpp::core::kDark;
    benchmark::DoNotOptimize(rule.apply(me, other, gen));
  }
}
BENCHMARK(BM_RuleApply);

void BM_AgentStepComplete(benchmark::State& state) {
  const auto n = state.range(0);
  const divpp::graph::CompleteGraph graph(n);
  std::vector<std::int64_t> supports = {n / 2, n - n / 2};
  // Concrete graph type: devirtualised sampling fast path.
  auto pop = divpp::core::make_population(
      graph, supports,
      divpp::core::DiversificationRule(WeightMap({1.0, 3.0})));
  Xoshiro256 gen(5);
  for (auto _ : state) benchmark::DoNotOptimize(pop.step(gen).transition);
}
BENCHMARK(BM_AgentStepComplete)->Arg(1024)->Arg(262'144);

void BM_AgentStepCompleteVirtual(benchmark::State& state) {
  const auto n = state.range(0);
  const divpp::graph::CompleteGraph graph(n);
  const divpp::graph::Graph& base = graph;  // erase the concrete type
  std::vector<std::int64_t> supports = {n / 2, n - n / 2};
  auto pop = divpp::core::make_population(
      base, supports,
      divpp::core::DiversificationRule(WeightMap({1.0, 3.0})));
  Xoshiro256 gen(5);
  for (auto _ : state) benchmark::DoNotOptimize(pop.step(gen).transition);
}
BENCHMARK(BM_AgentStepCompleteVirtual)->Arg(1024)->Arg(262'144);

void BM_AgentStepTorus(benchmark::State& state) {
  Xoshiro256 topo_gen(6);
  const auto graph = divpp::graph::make_torus(64, 64);
  std::vector<std::int64_t> supports = {2048, 2048};
  auto pop = divpp::core::make_population(
      graph, supports,
      divpp::core::DiversificationRule(WeightMap({1.0, 3.0})));
  Xoshiro256 gen(7);
  for (auto _ : state) benchmark::DoNotOptimize(pop.step(gen).transition);
}
BENCHMARK(BM_AgentStepTorus);

void BM_CountStep(benchmark::State& state) {
  const auto k = state.range(0);
  std::vector<double> w(static_cast<std::size_t>(k), 2.0);
  auto sim = CountSimulation::equal_start(WeightMap(w), 1 << 20);
  Xoshiro256 gen(8);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step(gen).transition);
}
BENCHMARK(BM_CountStep)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_CountStepLinear(benchmark::State& state) {
  const auto k = state.range(0);
  auto sim = LinearCountRef::equal_start(k, 1 << 20, 2.0);
  Xoshiro256 gen(8);
  for (auto _ : state) {
    sim.step(gen);
    benchmark::DoNotOptimize(sim.total_dark);
  }
}
BENCHMARK(BM_CountStepLinear)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_CountJumpAdvance(benchmark::State& state) {
  const auto k = state.range(0);
  std::vector<double> w(static_cast<std::size_t>(k), 2.0);
  auto sim = CountSimulation::equal_start(WeightMap(w), 1 << 20);
  Xoshiro256 gen(9);
  // Measure per-simulated-step cost: each iteration advances 1024 steps.
  for (auto _ : state) {
    sim.advance_to(sim.time() + 1024, gen);
    benchmark::DoNotOptimize(sim.total_dark());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CountJumpAdvance)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_CountJumpAdvanceLinear(benchmark::State& state) {
  const auto k = state.range(0);
  auto sim = LinearCountRef::equal_start(k, 1 << 20, 2.0);
  Xoshiro256 gen(9);
  for (auto _ : state) {
    sim.advance_to(sim.time + 1024, gen);
    benchmark::DoNotOptimize(sim.total_dark);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CountJumpAdvanceLinear)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_NeighborSampleRegular(benchmark::State& state) {
  Xoshiro256 topo_gen(10);
  const auto graph =
      divpp::graph::make_random_regular(4096, 8, topo_gen);
  Xoshiro256 gen(11);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph.sample_neighbor(17, gen));
}
BENCHMARK(BM_NeighborSampleRegular);

// ---------------------------------------------------------------------------
// PR-2 before/after harness (--pr2-json=FILE)
// ---------------------------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// ns per step over EXACTLY the measured window: the timer starts after
/// every warmup advance has completed and the divisor is the measured
/// step count alone, so warmup iterations can neither leak into the
/// elapsed time nor inflate the divisor.  The warmups are timed
/// separately (time_warmup below) and reported as their own JSON field —
/// verified against a plain untimed run in PR 3.
template <class Body>
double time_ns_per_step(std::int64_t steps, Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body(steps);
  return seconds_since(t0) * 1e9 / static_cast<double>(steps);
}

/// Runs a warmup body and returns its wall seconds (accumulated into the
/// harness-level "warmup_seconds_total" JSON field).
template <class Body>
double time_warmup(Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  return seconds_since(t0);
}

void run_pr2_harness(const std::string& path, bool quick) {
  constexpr std::int64_t kN = 1 << 20;
  const std::int64_t step_budget = quick ? 20'000 : 2'000'000;
  const std::int64_t jump_budget = quick ? 20'000 : 1'000'000;
  // Both engines are warmed to the same O(n log n)-scale time via their
  // jump chains, so the per-step costs are measured in the equilibrium
  // regime the paper's sweeps live in, not at the all-dark start.
  const std::int64_t warm_time = quick ? 100'000 : 32 * kN;
  double warmup_seconds = 0.0;
  divpp::io::Json out;
  out.set("bench", "e15_micro_pr2");
  out.set("n", kN);
  out.set("quick", quick);
  out.set("warm_time_steps", warm_time);

  for (const std::int64_t k : {8, 64, 256, 1024}) {
    const std::string suffix = "_k" + std::to_string(k);
    std::vector<double> w(static_cast<std::size_t>(k), 2.0);

    // Plain count-chain stepping: Fenwick vs linear scan.
    {
      auto sim = CountSimulation::equal_start(WeightMap(w), kN);
      Xoshiro256 gen(8);
      warmup_seconds += time_warmup([&] { sim.advance_to(warm_time, gen); });
      const double fenwick_ns = time_ns_per_step(
          step_budget, [&](std::int64_t s) { sim.run_to(sim.time() + s, gen); });
      auto ref = LinearCountRef::equal_start(k, kN, 2.0);
      Xoshiro256 ref_gen(8);
      warmup_seconds +=
          time_warmup([&] { ref.advance_to(warm_time, ref_gen); });
      const double linear_ns = time_ns_per_step(
          step_budget, [&](std::int64_t s) {
            for (std::int64_t i = 0; i < s; ++i) ref.step(ref_gen);
          });
      out.set("count_step_linear_ns" + suffix, linear_ns);
      out.set("count_step_fenwick_ns" + suffix, fenwick_ns);
      out.set("count_step_speedup" + suffix, linear_ns / fenwick_ns);
    }

    // Jump chain: incremental propensities vs per-transition rebuild.
    {
      auto sim = CountSimulation::equal_start(WeightMap(w), kN);
      Xoshiro256 gen(9);
      warmup_seconds += time_warmup([&] { sim.advance_to(warm_time, gen); });
      const double fenwick_ns = time_ns_per_step(
          jump_budget,
          [&](std::int64_t s) { sim.advance_to(sim.time() + s, gen); });
      auto ref = LinearCountRef::equal_start(k, kN, 2.0);
      Xoshiro256 ref_gen(9);
      warmup_seconds +=
          time_warmup([&] { ref.advance_to(warm_time, ref_gen); });
      const double linear_ns = time_ns_per_step(
          jump_budget,
          [&](std::int64_t s) { ref.advance_to(ref.time + s, ref_gen); });
      out.set("jump_linear_ns" + suffix, linear_ns);
      out.set("jump_fenwick_ns" + suffix, fenwick_ns);
      out.set("jump_speedup" + suffix, linear_ns / fenwick_ns);
    }
  }

  // Agent engine: virtual dispatch + per-step event structs ("before")
  // vs devirtualised complete-graph sampling + discard-path run().
  {
    constexpr std::int64_t kAgents = 262'144;
    const std::int64_t agent_budget = quick ? 100'000 : 4'000'000;
    const divpp::graph::CompleteGraph graph(kAgents);
    std::vector<std::int64_t> supports = {kAgents / 2, kAgents / 2};
    const divpp::core::DiversificationRule rule(WeightMap({1.0, 3.0}));

    const divpp::graph::Graph& base = graph;
    auto pop_virtual = divpp::core::make_population(base, supports, rule);
    Xoshiro256 gen_virtual(5);
    const double virtual_ns = time_ns_per_step(
        agent_budget, [&](std::int64_t s) {
          for (std::int64_t i = 0; i < s; ++i)
            (void)pop_virtual.step(gen_virtual);
        });

    auto pop_fast = divpp::core::make_population(graph, supports, rule);
    Xoshiro256 gen_fast(5);
    const double fast_ns = time_ns_per_step(
        agent_budget,
        [&](std::int64_t s) { pop_fast.run(s, gen_fast); });

    out.set("agent_step_virtual_ns", virtual_ns);
    out.set("agent_step_fast_ns", fast_ns);
    out.set("agent_step_speedup", virtual_ns / fast_ns);
  }
  out.set("warmup_seconds_total", warmup_seconds);

  std::ofstream file(path);
  if (!file) {
    std::cerr << "e15_micro: cannot write " << path << "\n";
    std::exit(1);
  }
  file << out.to_string() << "\n";
  std::cout << out.to_string() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string pr2_path;
  bool pr2_quick = false;
  std::vector<char*> remaining;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pr2-json=", 11) == 0) {
      pr2_path = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--pr2-quick") == 0) {
      pr2_quick = true;
    } else {
      remaining.push_back(argv[i]);
    }
  }
  if (!pr2_path.empty()) {
    run_pr2_harness(pr2_path, pr2_quick);
    return 0;
  }
  int rem_argc = static_cast<int>(remaining.size());
  benchmark::Initialize(&rem_argc, remaining.data());
  if (benchmark::ReportUnrecognizedArguments(rem_argc, remaining.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
