// E16 — The phase structure of the analysis (paper Fig. 1, §2.1–§2.3).
//
// Claim: from a worst-case start the process climbs through the region
// ladder of Phase 1 (R1 → S1 → R2 → S2 → S3 → S4), then the potentials
// collapse in order — φ first (Subphase 2.1), then ψ (Subphase 2.2),
// then σ² tightens (Phase 3) — all within O(W² n log n) steps.  We
// instrument one run per seed and print every boundary, normalised by
// n·log n, reproducing Fig. 1 as a table.
//
// Flags: --n=16384 --seeds=3 --epsilon=0.15

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/convergence.h"
#include "analysis/phase_tracker.h"
#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/potentials.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 16384);
  const std::int64_t seeds = args.get_int("seeds", 3);
  const double epsilon = args.get_double("epsilon", 0.15);
  const divpp::core::WeightMap weights({1.0, 2.0, 4.0});  // W = 7

  std::cout << divpp::io::banner(
      "E16: the three phases of the analysis  [Fig. 1]");
  std::cout << "n = " << n << ", weights " << weights.to_string()
            << ", epsilon = " << epsilon
            << "; all boundary times divided by n*log n\n\n";

  const double nlogn =
      static_cast<double>(n) * std::log(static_cast<double>(n));
  const double phi_threshold =
      divpp::core::theorem28_envelope(n, weights.total(), 1.0);
  // σ² target from Lemma 2.14: ĉ·n^{3/2}·sqrt(log n).
  const double sigma_threshold =
      std::pow(static_cast<double>(n), 1.5) *
      std::sqrt(std::log(static_cast<double>(n)));

  divpp::io::Table table({"seed", "R1", "S1", "R2", "S2", "S3", "S4",
                          "phi<=Wnlogn", "psi<=Wnlogn",
                          "sigma2<=n^1.5 sqrt(log n)"});
  for (std::int64_t s = 0; s < seeds; ++s) {
    auto sim =
        divpp::core::CountSimulation::adversarial_start(weights, n);
    divpp::rng::Xoshiro256 gen(300 + static_cast<std::uint64_t>(s));
    divpp::analysis::PhaseTracker tracker(epsilon);
    std::int64_t phi_time = -1;
    std::int64_t psi_time = -1;
    std::int64_t sigma_time = -1;
    const auto horizon = static_cast<std::int64_t>(
        20.0 * divpp::core::convergence_time_scale(n, weights.total()));
    const std::int64_t probe = std::max<std::int64_t>(n / 8, 64);
    while (sim.time() < horizon) {
      tracker.observe(sim);
      // The paper's Phase 2 starts only once Phase 1 has delivered its
      // multiplicative approximation (the S-regions); an all-dark start
      // trivially has ψ(0) = 0, so unconditioned clocks would be
      // meaningless.  Watch the potential clocks after S4 is reached.
      const bool phase1_done =
          tracker.first_hit(divpp::analysis::Region::kS4) >= 0;
      if (phase1_done) {
        if (phi_time < 0 &&
            divpp::analysis::evaluate_potential(
                sim, divpp::analysis::PotentialKind::kPhi) <= phi_threshold)
          phi_time = sim.time();
        if (phi_time >= 0 && psi_time < 0 &&
            divpp::analysis::evaluate_potential(
                sim, divpp::analysis::PotentialKind::kPsi) <= phi_threshold)
          psi_time = sim.time();
        if (psi_time >= 0 && sigma_time < 0 &&
            divpp::stats::sigma_potential(sim.total_dark(),
                                          sim.total_light(),
                                          weights.total()) <=
                sigma_threshold)
          sigma_time = sim.time();
      }
      const bool all_found =
          phase1_done && phi_time >= 0 && psi_time >= 0 && sigma_time >= 0;
      if (all_found) break;
      sim.advance_to(sim.time() + probe, gen);
    }
    const auto norm = [&](std::int64_t t) {
      return t < 0 ? std::string("—")
                   : divpp::io::format_double(
                         static_cast<double>(t) / nlogn, 3);
    };
    table.begin_row().add_cell(300 + s);
    for (const auto region :
         {divpp::analysis::Region::kR1, divpp::analysis::Region::kS1,
          divpp::analysis::Region::kR2, divpp::analysis::Region::kS2,
          divpp::analysis::Region::kS3, divpp::analysis::Region::kS4})
      table.add_cell(norm(tracker.first_hit(region)));
    table.add_cell(norm(phi_time));
    table.add_cell(norm(psi_time));
    table.add_cell(norm(sigma_time));
  }
  std::cout << table.to_text()
            << "\nExpected shape (Fig. 1): the light pool rises first (R1 "
               "within O(W) columns of 0), the minorities follow (R2), "
               "and every boundary lands at an O(1)–O(W²) multiple of "
               "n·log n.  The potential clocks are conditioned on Phase 1 "
               "completing (S4), mirroring the paper's sequential phases; "
               "phi is required before psi, psi before sigma² — at "
               "simulation scale the later phases complete almost "
               "immediately after Phase 1, i.e. the Phase-1 ladder "
               "dominates the constant, exactly as the paper's "
               "tau = tau1 + tau2,1 + tau2,2 + tau3 accounting suggests.\n";
  return 0;
}
