// E17 — k and W growing with n (paper §3 open problem).
//
// The paper's analysis fixes k and W as constants and asks, as future
// work, what happens when they grow with n.  Empirically we measure the
// time to enter E(δ):
//  (a) k = Θ(n^γ) equal-weight colours for γ ∈ {0, 1/4, 1/2} — does the
//      n·log n scaling survive a polynomial number of colours?
//  (b) two colours with W = Θ(n^γ) — how does the W-dependence behave
//      when the weights are no longer constant?
//
// This sweep is the large-k workload the Fenwick samplers (PR 2) exist
// for: with k ~ sqrt(n) the per-transition cost is O(log k), not O(k).
//
// Flags: --ns=4096,16384,65536 --seeds=3 --delta=0.3
//        --engine=jump   (step | jump | batch | auto; all sample the
//                         same law — batch is the fast choice at large
//                         n, auto picks jump/batch per window)
//        --threads=0 (0 = all hardware threads)
//
// Seed replicas run in parallel under BatchRunner: replica s draws from
// the jump()-offset stream s of the sweep's base seed, so the printed
// statistics are identical at any thread count.  The final line is a
// machine-readable JSON timing summary.

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/convergence.h"
#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "runtime/batch_runner.h"
#include "stats/online_stats.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::WeightMap;

double measure_tau(const WeightMap& weights, std::int64_t n, double delta,
                   divpp::rng::Xoshiro256& gen, double cap_scale,
                   divpp::core::Engine engine) {
  auto sim = CountSimulation::adversarial_start(weights, n);
  const auto horizon = static_cast<std::int64_t>(cap_scale);
  const std::int64_t tau = divpp::analysis::time_to_equilibrium_region(
      sim, delta, horizon, std::max<std::int64_t>(n / 8, 64), gen, engine);
  return tau < 0 ? std::nan("") : static_cast<double>(tau);
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const auto ns = args.get_int_list("ns", {4096, 16384, 65536});
  const std::int64_t seeds = args.get_int("seeds", 3);
  const double delta = args.get_double("delta", 0.3);
  const divpp::core::Engine engine =
      divpp::core::parse_engine(args.get_string("engine", "jump"));
  divpp::runtime::BatchRunner runner(
      static_cast<int>(args.get_int("threads", 0)));
  double wall_k_sweep = 0.0;
  double wall_w_sweep = 0.0;

  std::cout << divpp::io::banner(
      "E17: k and W growing with n  [§3 open problem, empirical]");

  // (a) k = n^gamma equal colours (W = k).
  std::cout << "(a) k = n^gamma equal-weight colours (adversarial start, "
               "delta = "
            << delta << "):\n";
  divpp::io::Table ktable({"n", "gamma", "k", "tau (mean)",
                           "tau/(n log n)", "tau/(k^2 n log n)"});
  for (const std::int64_t n : ns) {
    for (const double gamma : {0.0, 0.25, 0.5}) {
      const auto k = std::max<std::int64_t>(
          2, static_cast<std::int64_t>(
                 std::llround(std::pow(static_cast<double>(n), gamma))));
      if (n < 4 * k) continue;  // keep the adversarial start meaningful
      const WeightMap weights(
          std::vector<double>(static_cast<std::size_t>(k), 1.0));
      const double nlogn =
          static_cast<double>(n) * std::log(static_cast<double>(n));
      const double cap =
          200.0 * static_cast<double>(k) * nlogn;  // generous budget
      const auto batch = runner.run_stats(
          seeds, 400, [&](std::int64_t, divpp::rng::Xoshiro256& gen) {
            return measure_tau(weights, n, delta, gen, cap, engine);
          });
      const divpp::stats::OnlineStats& acc = batch.stats;
      wall_k_sweep += batch.timing.wall_seconds;
      ktable.begin_row()
          .add_cell(n)
          .add_cell(gamma, 2)
          .add_cell(k)
          .add_cell(acc.mean(), 4)
          .add_cell(acc.mean() / nlogn, 3)
          .add_cell(acc.mean() /
                        (static_cast<double>(k) * static_cast<double>(k) *
                         nlogn),
                    4);
    }
  }
  std::cout << ktable.to_text()
            << "Reading: with k ~ n^(1/2) the normalised time grows — the "
               "constant-k assumption is load-bearing; the k² envelope "
               "stays comfortably above every row.\n\n";

  // (b) W = n^gamma on two colours.
  std::cout << "(b) two colours, weights {1, n^gamma} (W grows with n):\n";
  divpp::io::Table wtable({"n", "gamma", "W", "tau (mean)",
                           "tau/(n log n)", "tau/(W^2 n log n)"});
  for (const std::int64_t n : ns) {
    for (const double gamma : {0.0, 0.25, 0.5}) {
      const double heavy =
          std::max(1.0, std::pow(static_cast<double>(n), gamma));
      const WeightMap weights({1.0, heavy});
      const double nlogn =
          static_cast<double>(n) * std::log(static_cast<double>(n));
      const double cap = 200.0 * weights.total() * nlogn;
      const auto batch = runner.run_stats(
          seeds, 500, [&](std::int64_t, divpp::rng::Xoshiro256& gen) {
            return measure_tau(weights, n, delta, gen, cap, engine);
          });
      const divpp::stats::OnlineStats& acc = batch.stats;
      wall_w_sweep += batch.timing.wall_seconds;
      wtable.begin_row()
          .add_cell(n)
          .add_cell(gamma, 2)
          .add_cell(weights.total(), 4)
          .add_cell(acc.mean(), 4)
          .add_cell(acc.mean() / nlogn, 3)
          .add_cell(acc.mean() /
                        (weights.total() * weights.total() * nlogn),
                    4);
    }
  }
  std::cout << wtable.to_text()
            << "Reading: the measured W-dependence is far milder than the "
               "theorem's W² envelope (last column shrinks), suggesting "
               "room in the paper's W-dependence — consistent with its "
               "note that the W terms were not optimised.\n";

  std::cout << "\n"
            << divpp::io::Json()
                   .set("bench", "e17_scaling_kw")
                   .set("engine", divpp::core::engine_name(engine))
                   .set("threads", runner.threads())
                   .set("seeds", seeds)
                   .set("delta", delta)
                   .set("wall_seconds_k_sweep", wall_k_sweep)
                   .set("wall_seconds_w_sweep", wall_w_sweep)
                   .to_string()
            << "\n";
  return 0;
}
