// E18 — Towards stronger diversity (paper §3 open problem).
//
// The paper asks for protocols whose instantaneous deviation from the
// fair share beats Õ(1/√n).  A cheap observation the bench quantifies:
// the *time-averaged* support (a quantity any observer of the system can
// maintain) concentrates strictly better than the instantaneous support,
// because the equilibrium fluctuations mix on the Θ((1+W)n) time-scale
// and average out.  We report instantaneous vs window-averaged deviation
// (both scaled by √(n/log n)) and the measured integrated
// autocorrelation time of the support observable, which quantifies how
// fast averaging pays off.
//
// Flags: --ns=4096,16384,65536 --seeds=3 --window-mults=1,8,64

#include <cmath>
#include <iostream>
#include <vector>

#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/autocorrelation.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const auto ns = args.get_int_list("ns", {4096, 16384, 65536});
  const std::int64_t seeds = args.get_int("seeds", 3);
  const auto window_mults = args.get_int_list("window-mults", {1, 8, 64});
  if (window_mults.size() != 3)
    throw std::invalid_argument(
        "e18: --window-mults must list exactly three window lengths");
  const divpp::core::WeightMap weights({1.0, 3.0});

  std::cout << divpp::io::banner(
      "E18: time-averaged supports beat instantaneous diversity  "
      "[§3 open problem]");
  std::cout << "weights " << weights.to_string()
            << "; deviation of colour 1's share from 0.75, scaled by "
               "sqrt(n/log n); samples every n steps\n\n";

  divpp::io::Table table({"n", "IAT (samples)", "instantaneous",
                          "avg over 8n", "avg over 64n",
                          "gain (inst/avg64)"});
  for (const std::int64_t n : ns) {
    divpp::stats::OnlineStats inst_dev;
    std::vector<divpp::stats::OnlineStats> avg_dev(window_mults.size());
    divpp::stats::OnlineStats iat_acc;
    const double fair = weights.fair_share(1);
    const double scale = 1.0 / divpp::core::diversity_error_scale(n);
    for (std::int64_t s = 0; s < seeds; ++s) {
      auto sim =
          divpp::core::CountSimulation::proportional_start(weights, n);
      divpp::rng::Xoshiro256 gen(800 + static_cast<std::uint64_t>(s));
      const auto settle = static_cast<std::int64_t>(
          3.0 * divpp::core::convergence_time_scale(n, weights.total()));
      sim.advance_to(settle, gen);
      // Collect a long share series sampled every n steps.
      constexpr std::int64_t kSamples = 512;
      std::vector<double> series;
      series.reserve(kSamples);
      for (std::int64_t i = 0; i < kSamples; ++i) {
        sim.advance_to(sim.time() + n, gen);
        series.push_back(static_cast<double>(sim.support(1)) /
                         static_cast<double>(n));
      }
      iat_acc.add(
          divpp::stats::integrated_autocorrelation_time(series, 128));
      // Instantaneous deviation: RMS of |share − fair|.
      double inst = 0.0;
      for (const double x : series) inst += (x - fair) * (x - fair);
      inst_dev.add(std::sqrt(inst / static_cast<double>(series.size())));
      // Window-averaged deviations.
      for (std::size_t w = 0; w < window_mults.size(); ++w) {
        const auto len = static_cast<std::size_t>(window_mults[w]);
        double dev = 0.0;
        std::int64_t count = 0;
        for (std::size_t start = 0; start + len <= series.size();
             start += len) {
          double mean = 0.0;
          for (std::size_t i = start; i < start + len; ++i)
            mean += series[i];
          mean /= static_cast<double>(len);
          dev += (mean - fair) * (mean - fair);
          ++count;
        }
        avg_dev[w].add(std::sqrt(dev / static_cast<double>(count)));
      }
    }
    table.begin_row()
        .add_cell(n)
        .add_cell(iat_acc.mean(), 3)
        .add_cell(inst_dev.mean() * scale, 3)
        .add_cell(avg_dev[1].mean() * scale, 3)
        .add_cell(avg_dev[2].mean() * scale, 3)
        .add_cell(inst_dev.mean() / avg_dev[2].mean(), 3);
  }
  std::cout << table.to_text()
            << "Reading: instantaneous deviation sits at the Õ(1/sqrt(n)) "
               "scale (flat scaled column), while 64n-window averages cut "
               "it by a factor ≈ sqrt(window/IAT) — an observer can beat "
               "the paper's diversity error without changing the "
               "protocol; a protocol achieving this *instantaneously* "
               "remains open.\n";
  return 0;
}
