// E19 — Between consensus and diversification (paper §3 question).
//
// Sweeps the BlendRule's epsilon (probability of a Voter move) from 0 to
// 1 and measures, at a fixed horizon: how many colours survive, the
// diversity error among survivors, and the first colour-death time.
// Expected picture: epsilon = 0 keeps all colours forever (the paper's
// protocol); *any* epsilon > 0 eventually kills colours (sustainability
// is knife-edge), but small epsilon still shows the diversification
// drift among the survivors for a long transient — consensus and
// diversity are the endpoints of a continuum of metastable mixtures.
//
// Flags: --n=1024 --k=8 --horizon-mult=600 --seeds=3

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/sustainability.h"
#include "core/population.h"
#include "core/weights.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "protocols/interpolated.h"
#include "protocols/opinion.h"
#include "rng/xoshiro.h"
#include "stats/online_stats.h"
#include "stats/potentials.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 1024);
  const std::int64_t k = args.get_int("k", 8);
  const std::int64_t horizon_mult = args.get_int("horizon-mult", 600);
  const std::int64_t seeds = args.get_int("seeds", 3);
  const divpp::core::WeightMap weights =
      divpp::core::WeightMap::uniform(k);

  std::cout << divpp::io::banner(
      "E19: between consensus and diversification  [§3 question]");
  std::cout << "n = " << n << ", k = " << k
            << " equal colours, horizon " << horizon_mult
            << "*n steps; epsilon = probability of a Voter move\n\n";

  divpp::io::Table table({"epsilon", "survivors (mean)",
                          "first death at (mean, xn)",
                          "diversity error of survivors", "regime"});
  const divpp::graph::CompleteGraph graph(n);
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), n / k);
  supports[0] += n - k * (n / k);

  for (const double epsilon :
       {0.0, 0.001, 0.005, 0.02, 0.1, 0.5, 1.0}) {
    divpp::stats::OnlineStats survivors;
    divpp::stats::OnlineStats first_death;
    divpp::stats::OnlineStats err;
    for (std::int64_t s = 0; s < seeds; ++s) {
      divpp::core::Population<divpp::core::AgentState,
                              divpp::protocols::BlendRule>
          pop(graph, divpp::protocols::opinion_initial(supports),
              divpp::protocols::BlendRule(weights, epsilon));
      divpp::rng::Xoshiro256 gen(900 + static_cast<std::uint64_t>(s));
      divpp::analysis::SustainabilityMonitor monitor(k);
      while (pop.time() < horizon_mult * n) {
        pop.run(n, gen);
        monitor.observe(
            divpp::core::tally(pop.states(), k).supports(), pop.time());
      }
      const auto counts = divpp::core::tally(pop.states(), k).supports();
      std::int64_t alive = 0;
      std::vector<std::int64_t> alive_counts;
      std::vector<double> alive_weights;
      for (std::int64_t c = 0; c < k; ++c) {
        if (counts[static_cast<std::size_t>(c)] > 0) {
          ++alive;
          alive_counts.push_back(counts[static_cast<std::size_t>(c)]);
          alive_weights.push_back(1.0);
        }
      }
      survivors.add(static_cast<double>(alive));
      std::int64_t death = -1;
      for (std::int64_t c = 0; c < k; ++c) {
        const std::int64_t d = monitor.death_time(c);
        if (d >= 0 && (death < 0 || d < death)) death = d;
      }
      if (death >= 0)
        first_death.add(static_cast<double>(death) /
                        static_cast<double>(n));
      if (alive >= 2) {
        err.add(divpp::stats::diversity_error(alive_counts, alive_weights));
      }
    }
    const char* regime = epsilon == 0.0           ? "diverse (sustained)"
                         : survivors.mean() > 2.0 ? "metastable mixture"
                         : survivors.mean() > 1.0 ? "near-consensus"
                                                  : "consensus";
    table.begin_row()
        .add_cell(epsilon, 4)
        .add_cell(survivors.mean(), 3)
        .add_cell(first_death.count() == 0
                      ? std::string("never (in horizon)")
                      : divpp::io::format_double(first_death.mean(), 4) +
                            " (" + std::to_string(first_death.count()) +
                            "/" + std::to_string(seeds) + " seeds)")
        .add_cell(err.count() > 0 ? divpp::io::format_double(err.mean(), 3)
                                  : std::string("—"))
        .add_cell(regime);
  }
  std::cout << table.to_text()
            << "\nReading: epsilon = 0 never loses a colour (the paper's "
               "sustainability); any epsilon > 0 loses colours in finite "
               "time (the property is knife-edge), with the death time "
               "exploding as epsilon -> 0; surviving colours still sit "
               "near their mutual fair shares for small epsilon — a "
               "metastable middle ground between the two regimes.\n";
  return 0;
}
