// E20 — collision-batch engine throughput (ISSUE 3).
//
// Measures interactions/second of the three distributionally identical
// lumped engines — step (plain per-interaction), jump (no-op-skipping
// chain) and batch (whole collision-free stretches applied in aggregate)
// — across population sizes n.  The amortised batch cost per interaction
// is O(k · n^{1/4} / √n) = O(k / n^{1/4}) and therefore *falls* as n
// grows, while step and jump stay flat: the crossover and the asymptotic
// gap are the point of the table.
//
// Flags: --ns=10000,100000,1000000,10000000   (append 100000000 for the
//                                              full n = 10⁸ sweep)
//        --k=8 --w=4         (k equal colours of weight w; W = k·w)
//        --window=0          (interactions measured per engine per n;
//                             0 = auto: max(4·10⁶, 2n), capped per run)
//        --seed=99
//        --pr3-json=FILE     write the machine-readable summary object
//                            (BENCH_pr3.json in the repo root records the
//                            committed perf trajectory)
//        --smoke             CI guard: n = 10⁶ only, and exit non-zero
//                            unless batch ≥ 2× step throughput
//
// Methodology: every engine starts from the same equal_start
// configuration, is warmed over one window of n interactions (its own
// engine, so each measures its steady-state regime), then timed over the
// measurement window.  Engines see independent fixed-seed generators —
// the comparison is throughput, not trajectories (the three engines
// deliberately consume different draw sequences; see README).

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/count_simulation.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::Engine;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Throughput {
  double interactions_per_sec = 0.0;
  double ns_per_interaction = 0.0;
};

/// Warm one window with `engine`, then time `window` interactions.
Throughput measure(const WeightMap& weights, std::int64_t n, Engine engine,
                   std::int64_t window, std::uint64_t seed) {
  auto sim = CountSimulation::equal_start(weights, n);
  Xoshiro256 gen(seed);
  sim.advance_with(engine, std::min(window, n), gen);  // warm, untimed
  const std::int64_t start = sim.time();
  const auto t0 = std::chrono::steady_clock::now();
  sim.advance_with(engine, start + window, gen);
  const double elapsed = seconds_since(t0);
  Throughput out;
  out.ns_per_interaction = elapsed * 1e9 / static_cast<double>(window);
  out.interactions_per_sec = static_cast<double>(window) / elapsed;
  return out;
}

/// Step/jump windows shrink at huge n so a sweep stays minutes, not
/// hours; the batch engine always gets the full window (it is the one
/// whose asymptotics we are demonstrating).
std::int64_t capped_window(std::int64_t window, std::int64_t n,
                           Engine engine) {
  if (engine == Engine::kBatch) return window;
  const std::int64_t cap =
      engine == Engine::kStep ? 50'000'000 : 200'000'000;
  (void)n;
  return std::min(window, cap);
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const auto ns = smoke ? std::vector<std::int64_t>{1'000'000}
                        : args.get_int_list(
                              "ns", {10'000, 100'000, 1'000'000, 10'000'000});
  const std::int64_t k = args.get_int("k", 8);
  const double w = args.get_double("w", 4.0);
  const std::int64_t window_flag = args.get_int("window", 0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 99));
  const std::string json_path = args.get_string("pr3-json", "");
  const WeightMap weights(
      std::vector<double>(static_cast<std::size_t>(k), w));

  std::cout << divpp::io::banner(
      "E20: batch-engine throughput (step vs jump vs batch)");
  std::cout << "k = " << k << " colours of weight " << w
            << " (W = " << weights.total() << "); throughput of "
            << "distributionally identical engines.\n\n";

  divpp::io::Table table({"n", "engine", "window", "ns/interaction",
                          "interactions/sec", "speedup vs step"});
  divpp::io::Json out;
  out.set("bench", "e20_batch");
  out.set("k", k);
  out.set("w", w);
  out.set("W", weights.total());
  out.set("seed", static_cast<std::int64_t>(seed));

  bool smoke_ok = true;
  for (const std::int64_t n : ns) {
    const std::int64_t window =
        window_flag > 0 ? window_flag
                        : std::max<std::int64_t>(4'000'000, 2 * n);
    double step_ips = 0.0;
    double jump_ips = 0.0;
    for (const Engine engine :
         {Engine::kStep, Engine::kJump, Engine::kBatch}) {
      const std::int64_t engine_window = capped_window(window, n, engine);
      const Throughput t = measure(weights, n, engine, engine_window, seed);
      if (engine == Engine::kStep) step_ips = t.interactions_per_sec;
      if (engine == Engine::kJump) jump_ips = t.interactions_per_sec;
      table.begin_row()
          .add_cell(n)
          .add_cell(divpp::core::engine_name(engine))
          .add_cell(engine_window)
          .add_cell(t.ns_per_interaction, 3)
          .add_cell(t.interactions_per_sec, 0)
          .add_cell(t.interactions_per_sec / step_ips, 2);
      const std::string suffix = "_n" + std::to_string(n);
      out.set(std::string(divpp::core::engine_name(engine)) + "_ips" +
                  suffix,
              t.interactions_per_sec);
      out.set(std::string(divpp::core::engine_name(engine)) + "_ns" + suffix,
              t.ns_per_interaction);
      if (engine == Engine::kBatch) {
        out.set("batch_vs_step" + suffix,
                t.interactions_per_sec / step_ips);
        out.set("batch_vs_jump" + suffix,
                t.interactions_per_sec / jump_ips);
        if (smoke && t.interactions_per_sec < 2.0 * step_ips) {
          smoke_ok = false;
          std::cerr << "e20 smoke FAILED: batch "
                    << t.interactions_per_sec << " int/s < 2x step "
                    << step_ips << " int/s at n = " << n << "\n";
        }
      }
    }
  }
  std::cout << table.to_text()
            << "Reading: step and jump are flat in n; the batch column's "
               "ns/interaction falls like ~1/sqrt(n) until the "
               "O(n^{1/4}) hypergeometric tail takes over.\n\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "e20_batch: cannot write " << json_path << "\n";
      return 1;
    }
    file << out.to_string() << "\n";
  }
  std::cout << out.to_string() << "\n";
  return smoke_ok ? 0 : 2;
}
