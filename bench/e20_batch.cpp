// E20 — collision-batch engine throughput (ISSUE 3, extended by ISSUE 4).
//
// Measures interactions/second of the distributionally identical lumped
// engines — step (plain per-interaction), jump (no-op-skipping chain),
// batch (whole collision-free stretches applied in aggregate) and auto
// (per-window jump/batch dispatch from the measured active fraction) —
// across population sizes n.  Since PR 4 the batch engine's counting
// draws are O(1) expected time (HRUA rejection, rng/discrete.h), so its
// amortised cost per interaction is O(k / √n) and *falls* as n grows,
// while step and jump stay flat: the crossover, the asymptotic gap, and
// auto's tracking of the per-n winner are the point of the table.
//
// Flags: --ns=10000,...,1000000000   (comma list, capped at 1e9; all
//                                     engines hold O(k) state so memory
//                                     never binds — only wall-clock does,
//                                     which the per-point wall column
//                                     makes budgetable)
//        --k=8 --w=4         (k equal colours of weight w; W = k·w)
//        --window=0          (interactions measured per engine per n;
//                             0 = auto: max(4·10⁶, 2n), capped per run)
//        --seed=99
//        --pr4-json=FILE     write the machine-readable summary object
//                            (BENCH_pr4.json in the repo root records the
//                            committed perf trajectory; --pr3-json is
//                            accepted as an alias for older harnesses)
//        --smoke             CI guard: n = 10⁶ only, and exit non-zero
//                            unless batch ≥ 2× step throughput AND auto
//                            ≥ 0.9× max(jump, batch)
//
// Methodology: every engine starts from the same equal_start
// configuration, is warmed over one window of n interactions (its own
// engine, so each measures its steady-state regime — for auto this also
// charges the EWMA), then timed over the measurement window.  Engines
// see independent fixed-seed generators — the comparison is throughput,
// not trajectories (the engines deliberately consume different draw
// sequences; see README).

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/count_simulation.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::Engine;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

constexpr std::int64_t kMaxPopulation = 1'000'000'000;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Throughput {
  double interactions_per_sec = 0.0;
  double ns_per_interaction = 0.0;
  double wall_seconds = 0.0;  ///< warmup + timed window (budgeting aid)
};

/// Warm one window with `engine`, then time `window` interactions.
Throughput measure(const WeightMap& weights, std::int64_t n, Engine engine,
                   std::int64_t window, std::uint64_t seed) {
  const auto wall0 = std::chrono::steady_clock::now();
  auto sim = CountSimulation::equal_start(weights, n);
  Xoshiro256 gen(seed);
  sim.advance_with(engine, std::min(window, n), gen);  // warm, untimed
  const std::int64_t start = sim.time();
  const auto t0 = std::chrono::steady_clock::now();
  sim.advance_with(engine, start + window, gen);
  const double elapsed = seconds_since(t0);
  Throughput out;
  out.ns_per_interaction = elapsed * 1e9 / static_cast<double>(window);
  out.interactions_per_sec = static_cast<double>(window) / elapsed;
  out.wall_seconds = seconds_since(wall0);
  return out;
}

/// Step/jump windows shrink at huge n so a sweep stays minutes, not
/// hours; batch and auto always get the full window (they are the ones
/// whose asymptotics we are demonstrating, and auto must be timed on the
/// same footing as whichever engine it delegates to).
std::int64_t capped_window(std::int64_t window, Engine engine) {
  if (engine == Engine::kBatch || engine == Engine::kAuto) return window;
  const std::int64_t cap =
      engine == Engine::kStep ? 50'000'000 : 200'000'000;
  return std::min(window, cap);
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const auto ns = smoke ? std::vector<std::int64_t>{1'000'000}
                        : args.get_int_list(
                              "ns", {10'000, 100'000, 1'000'000, 10'000'000});
  for (const std::int64_t n : ns) {
    if (n < 2 || n > kMaxPopulation) {
      std::cerr << "e20_batch: --ns entries must be in [2, 1e9] (got " << n
                << "); the engines are O(k) memory, the cap is purely a "
                   "wall-clock budget guard\n";
      return 1;
    }
  }
  const std::int64_t k = args.get_int("k", 8);
  const double w = args.get_double("w", 4.0);
  const std::int64_t window_flag = args.get_int("window", 0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 99));
  const std::string json_path =
      args.get_string("pr4-json", args.get_string("pr3-json", ""));
  const WeightMap weights(
      std::vector<double>(static_cast<std::size_t>(k), w));

  std::cout << divpp::io::banner(
      "E20: batch-engine throughput (step vs jump vs batch vs auto)");
  std::cout << "k = " << k << " colours of weight " << w
            << " (W = " << weights.total() << "); throughput of "
            << "distributionally identical engines.\n\n";

  divpp::io::Table table({"n", "engine", "window", "ns/interaction",
                          "interactions/sec", "speedup vs step", "wall s"});
  divpp::io::Json out;
  out.set("bench", "e20_batch");
  out.set("k", k);
  out.set("w", w);
  out.set("W", weights.total());
  out.set("seed", static_cast<std::int64_t>(seed));

  bool smoke_ok = true;
  for (const std::int64_t n : ns) {
    const std::int64_t window =
        window_flag > 0 ? window_flag
                        : std::max<std::int64_t>(4'000'000, 2 * n);
    double step_ips = 0.0;
    double jump_ips = 0.0;
    double batch_ips = 0.0;
    for (const Engine engine : {Engine::kStep, Engine::kJump, Engine::kBatch,
                                Engine::kAuto}) {
      const std::int64_t engine_window = capped_window(window, engine);
      const Throughput t = measure(weights, n, engine, engine_window, seed);
      if (engine == Engine::kStep) step_ips = t.interactions_per_sec;
      if (engine == Engine::kJump) jump_ips = t.interactions_per_sec;
      if (engine == Engine::kBatch) batch_ips = t.interactions_per_sec;
      table.begin_row()
          .add_cell(n)
          .add_cell(divpp::core::engine_name(engine))
          .add_cell(engine_window)
          .add_cell(t.ns_per_interaction, 3)
          .add_cell(t.interactions_per_sec, 0)
          .add_cell(t.interactions_per_sec / step_ips, 2)
          .add_cell(t.wall_seconds, 2);
      const std::string suffix = "_n" + std::to_string(n);
      out.set(std::string(divpp::core::engine_name(engine)) + "_ips" +
                  suffix,
              t.interactions_per_sec);
      out.set(std::string(divpp::core::engine_name(engine)) + "_ns" + suffix,
              t.ns_per_interaction);
      out.set(std::string(divpp::core::engine_name(engine)) + "_wall_s" +
                  suffix,
              t.wall_seconds);
      if (engine == Engine::kBatch) {
        out.set("batch_vs_step" + suffix,
                t.interactions_per_sec / step_ips);
        out.set("batch_vs_jump" + suffix,
                t.interactions_per_sec / jump_ips);
        if (smoke && t.interactions_per_sec < 2.0 * step_ips) {
          smoke_ok = false;
          std::cerr << "e20 smoke FAILED: batch "
                    << t.interactions_per_sec << " int/s < 2x step "
                    << step_ips << " int/s at n = " << n << "\n";
        }
      }
      if (engine == Engine::kAuto) {
        const double best = std::max(jump_ips, batch_ips);
        out.set("auto_vs_best" + suffix, t.interactions_per_sec / best);
        if (smoke && t.interactions_per_sec < 0.9 * best) {
          smoke_ok = false;
          std::cerr << "e20 smoke FAILED: auto " << t.interactions_per_sec
                    << " int/s < 0.9x best fixed engine " << best
                    << " int/s at n = " << n << "\n";
        }
      }
    }
  }
  std::cout << table.to_text()
            << "Reading: step and jump are flat in n; the batch column's "
               "ns/interaction falls like ~1/sqrt(n) (O(1) rejection "
               "draws per batch since PR 4), and auto should track "
               "max(jump, batch) within ~10% at every n.\n\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "e20_batch: cannot write " << json_path << "\n";
      return 1;
    }
    file << out.to_string() << "\n";
  }
  std::cout << out.to_string() << "\n";
  return smoke_ok ? 0 : 2;
}
