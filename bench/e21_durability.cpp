// E21 — durability overhead and kill-resume (ISSUE 7).
//
// Default mode measures what crash-safety costs: ns/interaction of the
// batch engine running *durably* (runtime/durable_runner.h — period-
// aligned windows, canonicalisation, v2 checkpoint serialisation, an
// atomic fsync'd write per boundary) against the raw engine, across
// population sizes n and checkpoint periods.  The checkpoint cost is
// O(k) text plus one fsync, amortised over `period` interactions, so
// overhead falls linearly as the period grows — at one checkpoint per
// measurement window it must be noise (the --smoke gate pins <= 5%).
//
// Flags: --ns=1000000,10000000,100000000   (comma list)
//        --k=8 --w=4          (palette, as e20)
//        --window=0           (interactions per measurement; 0 = auto:
//                              max(4e6, n))
//        --divisors=16,4,1    (periods = window / d; d=1 means one
//                              checkpoint per window)
//        --reps=3             (min-of-reps timing)
//        --seed=99
//        --ckpt=FILE          (checkpoint path; default under /tmp)
//        --pr7-json=FILE      (machine-readable summary; BENCH_pr7.json
//                              in the repo root records the committed
//                              trajectory)
//        --smoke              (CI guard: n = 1e6 only, exit non-zero
//                              unless overhead at period = window <= 5%)
//
// Kill-resume mode (--kill-resume) is the CI crash drill: one durable
// run to a fixed target that (a) resumes from --ckpt when a valid
// checkpoint exists, else starts fresh, and (b) writes the final state
// (clock, counts, 256-bit RNG state) as canonical JSON to
// --final-json.  CI runs it clean for a golden file, re-runs it with
// DIVPP_FAULT_SPEC="kill@time=..." (the process dies by real SIGKILL
// mid-run), runs it once more to resume, and diffs the JSONs — they
// must be byte-identical, which is the durability contract end to end.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/count_simulation.h"
#include "core/weights.h"
#include "fault/durable_file.h"
#include "fault/fault.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "runtime/durable_runner.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::Engine;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;
using divpp::runtime::DurableRunConfig;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string default_ckpt_path() {
  return (std::filesystem::temp_directory_path() / "e21_durability.ckpt")
      .string();
}

/// min-of-reps ns/interaction for the raw batch engine over `window`.
double baseline_ns(const CountSimulation& warmed, const Xoshiro256& gen0,
                   std::int64_t window, int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    CountSimulation sim = warmed;
    Xoshiro256 gen = gen0;
    const auto t0 = std::chrono::steady_clock::now();
    sim.advance_with(Engine::kBatch, sim.time() + window, gen);
    best = std::min(best,
                    seconds_since(t0) * 1e9 / static_cast<double>(window));
  }
  return best;
}

/// min-of-reps ns/interaction of the durable run at `period`.
double durable_ns(const CountSimulation& warmed, const Xoshiro256& gen0,
                  std::int64_t window, std::int64_t period, int reps,
                  const std::string& ckpt) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    CountSimulation sim = warmed;
    Xoshiro256 gen = gen0;
    DurableRunConfig config;
    config.engine = Engine::kBatch;
    config.target_time = sim.time() + window;
    config.checkpoint_period = period;
    config.checkpoint_path = ckpt;
    const auto t0 = std::chrono::steady_clock::now();
    (void)divpp::runtime::run_windows(sim, gen, config);
    best = std::min(best,
                    seconds_since(t0) * 1e9 / static_cast<double>(window));
  }
  return best;
}

int run_kill_resume(const divpp::io::Args& args) {
  const std::string ckpt = args.get_string("ckpt", default_ckpt_path());
  const std::string json_path = args.get_string("final-json", "");
  const std::int64_t n = args.get_int("n", 200'000);
  const std::int64_t target = args.get_int("target", 2'000'000);
  const std::int64_t period = args.get_int("period", 250'000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 99));
  const WeightMap weights({1.0, 2.0, 3.0, 4.0});

  CountSimulation sim = CountSimulation::adversarial_start(weights, n);
  Xoshiro256 gen(seed);
  bool resumed = false;
  try {
    const auto restore =
        divpp::core::resume_run_from_checkpoint(divpp::fault::read_durable(ckpt));
    sim = restore.sim;
    gen = restore.gen;
    resumed = true;
  } catch (const divpp::fault::DurableFileError&) {
    // No (or torn) checkpoint: a fresh run.
  }
  std::cerr << "e21 kill-resume: " << (resumed ? "resumed from " : "fresh; ")
            << (resumed ? ckpt + " at time " + std::to_string(sim.time())
                        : "checkpointing to " + ckpt)
            << "\n";

  DurableRunConfig config;
  config.engine = Engine::kBatch;
  config.target_time = target;
  config.checkpoint_period = period;
  config.checkpoint_path = ckpt;
  config.faults = &divpp::fault::global();  // DIVPP_FAULT_SPEC reaches here
  (void)divpp::runtime::run_windows(sim, gen, config);

  // The deterministic final state: byte-identical across clean,
  // killed-and-resumed, and any-thread runs.
  divpp::io::Json out;
  out.set("bench", "e21_kill_resume");
  out.set("n", n);
  out.set("target", target);
  out.set("period", period);
  out.set("seed", static_cast<std::int64_t>(seed));
  out.set("time", sim.time());
  out.set("min_dark", sim.min_dark());
  for (divpp::core::ColorId i = 0; i < sim.num_colors(); ++i) {
    out.set("dark_" + std::to_string(i), sim.dark(i));
    out.set("light_" + std::to_string(i), sim.light(i));
  }
  const auto state = gen.state();
  for (std::size_t word = 0; word < state.size(); ++word)
    out.set("rng_" + std::to_string(word),
            static_cast<std::int64_t>(state[word]));
  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "e21_durability: cannot write " << json_path << "\n";
      return 1;
    }
    file << out.to_string() << "\n";
  }
  std::cout << out.to_string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  if (args.get_bool("kill-resume", false)) return run_kill_resume(args);

  const bool smoke = args.get_bool("smoke", false);
  const auto ns =
      smoke ? std::vector<std::int64_t>{1'000'000}
            : args.get_int_list("ns",
                                {1'000'000, 10'000'000, 100'000'000});
  const std::int64_t k = args.get_int("k", 8);
  const double w = args.get_double("w", 4.0);
  const std::int64_t window_flag = args.get_int("window", 0);
  const auto divisors = args.get_int_list("divisors", {16, 4, 1});
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 99));
  const std::string ckpt = args.get_string("ckpt", default_ckpt_path());
  const std::string json_path = args.get_string("pr7-json", "");
  const WeightMap weights(std::vector<double>(static_cast<std::size_t>(k), w));

  std::cout << divpp::io::banner(
      "E21: durability overhead (batch engine, checkpoint-period sweep)");
  std::cout << "k = " << k << " colours of weight " << w
            << "; durable = period-aligned windows + canonicalize + v2 "
               "checkpoint + atomic fsync'd write per boundary.\n\n";

  divpp::io::Table table({"n", "period", "checkpoints", "raw ns/int",
                          "durable ns/int", "overhead %"});
  divpp::io::Json out;
  out.set("bench", "e21_durability");
  out.set("k", k);
  out.set("w", w);
  out.set("reps", static_cast<std::int64_t>(reps));
  out.set("seed", static_cast<std::int64_t>(seed));

  bool smoke_ok = true;
  for (const std::int64_t n : ns) {
    if (n < 2) {
      std::cerr << "e21_durability: --ns entries must be >= 2\n";
      return 1;
    }
    const std::int64_t window =
        window_flag > 0 ? window_flag : std::max<std::int64_t>(4'000'000, n);
    // One shared warmup per n: every measurement resumes from the same
    // (sim, gen) snapshot, so raw and durable time identical work.
    CountSimulation warmed = CountSimulation::equal_start(weights, n);
    Xoshiro256 gen(seed);
    warmed.advance_with(Engine::kBatch, std::min(window, n), gen);
    warmed.canonicalize();

    const double raw = baseline_ns(warmed, gen, window, reps);
    out.set("raw_ns_n" + std::to_string(n), raw);
    for (const std::int64_t d : divisors) {
      if (d < 1) {
        std::cerr << "e21_durability: --divisors entries must be >= 1\n";
        return 1;
      }
      const std::int64_t period = std::max<std::int64_t>(1, window / d);
      const double durable =
          durable_ns(warmed, gen, window, period, reps, ckpt);
      const double overhead = durable / raw - 1.0;
      table.begin_row()
          .add_cell(n)
          .add_cell(period)
          .add_cell(d)
          .add_cell(raw, 3)
          .add_cell(durable, 3)
          .add_cell(100.0 * overhead, 2);
      const std::string suffix =
          "_n" + std::to_string(n) + "_d" + std::to_string(d);
      out.set("durable_ns" + suffix, durable);
      out.set("overhead" + suffix, overhead);
      if (smoke && d == 1 && overhead > 0.05) {
        smoke_ok = false;
        std::cerr << "e21 smoke FAILED: durability overhead "
                  << 100.0 * overhead << "% > 5% at one checkpoint per "
                  << window << "-interaction window (n = " << n << ")\n";
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove(ckpt, ec);

  std::cout << table.to_text()
            << "Reading: the per-boundary cost (O(k) serialisation + one "
               "fsync) is amortised over `period` interactions, so the "
               "overhead column falls as the period grows and is noise at "
               "one checkpoint per window.\n\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "e21_durability: cannot write " << json_path << "\n";
      return 1;
    }
    file << out.to_string() << "\n";
  }
  std::cout << out.to_string() << "\n";
  return smoke_ok ? 0 : 2;
}
