// E22 — resilient scenario sweeps (ISSUE 8).
//
// Default mode measures what the sweep runtime costs: M heterogeneous
// scenarios (mixed populations, engines, targets) run twice to the same
// durable config —
//
//   * "dedicated": the scenarios drained from one atomic work counter by
//     raw std::threads, each calling run_windows directly with private
//     tables — no shared cache, no admission queue, no recovery wrapper;
//   * "sweep": the same scenarios through SweepRunner (shared
//     SamplerContextCache, bounded admission, per-scenario recovery).
//
// Both sides advance identical simulations through identical
// period-aligned boundaries with in-memory checkpoints, so the wall-time
// delta isolates the sweep machinery, and every scenario's statistic
// must match bit-for-bit (exit 1 if not — that is the sharing contract,
// not a tolerance).  The overhead gate is <= 10% (exit 2).
//
// Flags: --scenarios=10000  (M; the committed BENCH_pr8.json uses 10^4)
//        --threads=0        (0 = hardware concurrency; both sides)
//        --period=4096      (checkpoint period, both sides)
//        --reps=1           (min-of-reps walls; M already averages noise)
//        --seed=2024
//        --pr8-json=FILE    (machine-readable summary; BENCH_pr8.json in
//                            the repo root records the committed run)
//        --supervised       (PR 9: run the sweep side on forked worker
//                            processes under watchdog supervision.  The
//                            bit-identity check still applies; the 10%
//                            overhead gate is waived here because the
//                            supervised side must write durable
//                            checkpoints while the dedicated side keeps
//                            them in memory — bench/e23_containment
//                            gates overhead like-for-like)
//
// Smoke mode (--smoke) is the CI sweep-soak drill: three sweeps over the
// same ~96 small scenarios.
//   A. fault-free reference;
//   B. hostile faults (DIVPP_FAULT_SPEC when set, else a built-in mixed
//      crash/exception/torn/latency schedule) with max_retries=0, so a
//      lethal fault means instant quarantine: asserts quarantine hits
//      *only* fault-targeted scenarios and every untargeted scenario's
//      JSON is byte-identical to A;
//   C. drain mid-sweep (request_drain from inside the statistic), then
//      resume() from the manifest: asserts drained + completed add up
//      and the finished sweep is byte-identical to A.
// Exit 0 only if every assertion holds.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/count_simulation.h"
#include "core/weights.h"
#include "fault/fault.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "runtime/durable_runner.h"
#include "runtime/sweep_runner.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::Engine;
using divpp::core::WeightMap;
using divpp::fault::FaultKind;
using divpp::fault::FaultSchedule;
using divpp::rng::Xoshiro256;
using divpp::runtime::ScenarioOutcome;
using divpp::runtime::ScenarioSpec;
using divpp::runtime::SweepOptions;
using divpp::runtime::SweepResult;
using divpp::runtime::SweepRunner;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double min_dark_statistic(const CountSimulation& sim) {
  return static_cast<double>(sim.min_dark());
}

/// Mixed-n scenario list shared by both harnesses.  Proportional starts
/// only, so the dedicated side can rebuild the identical initial state.
std::vector<ScenarioSpec> mixed_scenarios(
    std::int64_t count, std::uint64_t seed,
    const std::vector<std::int64_t>& populations,
    std::int64_t target_multiple) {
  const WeightMap weights({1.0, 2.0, 3.0});
  const Engine engines[] = {Engine::kBatch, Engine::kAuto, Engine::kJump};
  std::vector<ScenarioSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    ScenarioSpec spec;
    std::string name = std::to_string(i);
    name.insert(0, 1, 's');
    spec.name = std::move(name);
    spec.n = populations[static_cast<std::size_t>(i) % populations.size()];
    spec.weights = weights;
    spec.start = ScenarioSpec::Start::kProportional;
    spec.engine = engines[static_cast<std::size_t>(i) % 3];
    spec.target_time = target_multiple * spec.n;
    spec.seed = seed + static_cast<std::uint64_t>(i);
    specs.push_back(spec);
  }
  return specs;
}

/// One dedicated pass: raw threads drain the spec list from an atomic
/// counter, each scenario solo — same durable config as the sweep.
double dedicated_pass(const std::vector<ScenarioSpec>& specs,
                      std::int64_t period, int threads,
                      std::vector<double>& values) {
  std::atomic<std::size_t> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= specs.size()) return;
        const ScenarioSpec& spec = specs[i];
        CountSimulation sim =
            CountSimulation::proportional_start(spec.weights, spec.n);
        Xoshiro256 gen(spec.seed);
        divpp::runtime::DurableRunConfig config;
        config.engine = spec.engine;
        config.target_time = spec.target_time;
        config.checkpoint_period = period;
        std::string latest;
        config.on_checkpoint = [&latest](const std::string& blob) {
          latest = blob;
        };
        (void)divpp::runtime::run_windows(sim, gen, config);
        values[i] = min_dark_statistic(sim);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return seconds_since(t0);
}

int run_bench(const divpp::io::Args& args) {
  const std::int64_t count = args.get_int("scenarios", 10'000);
  const std::int64_t period = args.get_int("period", 4096);
  const int reps = static_cast<int>(args.get_int("reps", 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  const std::string json_path = args.get_string("pr8-json", "");
  const bool supervised = args.get_bool("supervised", false);
  int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads <= 0)
    threads = std::max(1U, std::thread::hardware_concurrency());
  if (count < 1 || period < 1 || reps < 1) {
    std::cerr << "e22_sweep: --scenarios, --period, --reps must be >= 1\n";
    return 1;
  }

  const auto specs =
      mixed_scenarios(count, seed, {256, 1024, 4096, 16384}, 4);

  std::cout << divpp::io::banner(
      "E22: scenario-sweep overhead (SweepRunner vs dedicated threads)");
  std::cout << count << " mixed-n scenarios (n in {256..16384}, "
            << "batch/auto/jump, target = 4n), period " << period << ", "
            << threads << " threads, min of " << reps << " rep(s).\n\n";

  std::vector<double> dedicated_values(specs.size(), 0.0);
  double dedicated_wall = 1e300;
  for (int rep = 0; rep < reps; ++rep)
    dedicated_wall = std::min(
        dedicated_wall,
        dedicated_pass(specs, period, threads, dedicated_values));

  const FaultSchedule no_faults;
  SweepOptions options;
  options.threads = threads;
  options.checkpoint_period = period;
  options.faults = &no_faults;
  if (supervised) {
    options.sweep_dir =
        (std::filesystem::temp_directory_path() / "e22_sweep_supervised")
            .string();
    std::filesystem::remove_all(options.sweep_dir);
    options.supervision.enabled = true;
    options.supervision.workers = threads;
  }
  double sweep_wall = 1e300;
  SweepResult result;
  divpp::context::ContextCacheStats cache{};
  for (int rep = 0; rep < reps; ++rep) {
    SweepRunner runner(options);
    const auto t0 = std::chrono::steady_clock::now();
    result = runner.run(specs, min_dark_statistic);
    sweep_wall = std::min(sweep_wall, seconds_since(t0));
    cache = runner.context_stats();
  }

  // The sharing contract: multiplexed scenarios are bit-identical to
  // their dedicated runs.  A mismatch is a bug, not noise.
  std::int64_t mismatches = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (result.scenarios[i].outcome != ScenarioOutcome::kOk ||
        result.scenarios[i].value != dedicated_values[i])
      ++mismatches;
  }
  if (supervised) std::filesystem::remove_all(options.sweep_dir);
  if (mismatches > 0) {
    std::cerr << "e22_sweep FAILED: " << mismatches
              << " scenario(s) diverged from their dedicated runs\n";
    return 1;
  }

  const double overhead = sweep_wall / dedicated_wall - 1.0;
  divpp::io::Table table({"scenarios", "threads", "dedicated s", "sweep s",
                          "overhead %", "cache hits", "cache misses"});
  table.begin_row()
      .add_cell(count)
      .add_cell(static_cast<std::int64_t>(threads))
      .add_cell(dedicated_wall, 4)
      .add_cell(sweep_wall, 4)
      .add_cell(100.0 * overhead, 2)
      .add_cell(cache.hits)
      .add_cell(cache.misses);
  std::cout << table.to_text()
            << "Reading: the sweep pays the admission queue, the recovery "
               "wrapper, and one cache lock per scenario, but shares one "
               "run-length table per (n, k, w) instead of building "
            << count << " of them — the columns should be within noise.\n\n";

  divpp::io::Json out;
  out.set("bench", "e22_sweep");
  out.set("scenarios", count);
  out.set("threads", static_cast<std::int64_t>(threads));
  out.set("period", period);
  out.set("reps", static_cast<std::int64_t>(reps));
  out.set("seed", static_cast<std::int64_t>(seed));
  out.set("dedicated_wall_s", dedicated_wall);
  out.set("sweep_wall_s", sweep_wall);
  out.set("overhead", overhead);
  out.set("bit_identical", true);
  out.set("supervised", supervised);
  out.set("cache_hits", cache.hits);
  out.set("cache_misses", cache.misses);
  out.set("cache_entries", cache.entries);
  out.set("cache_resident_bytes",
          static_cast<std::int64_t>(cache.resident_bytes));
  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "e22_sweep: cannot write " << json_path << "\n";
      return 1;
    }
    file << out.to_string() << "\n";
  }
  std::cout << out.to_string() << "\n";

  // Supervised mode writes durable checkpoints the dedicated side does
  // not pay for, so its gate lives in e23_containment (like-for-like).
  if (!supervised && overhead > 0.10) {
    std::cerr << "e22_sweep FAILED: multiplexing overhead "
              << 100.0 * overhead << "% > 10%\n";
    return 2;
  }
  return 0;
}

int run_smoke(const divpp::io::Args& args) {
  const std::int64_t count = args.get_int("scenarios", 96);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  const int threads = static_cast<int>(args.get_int("threads", 4));
  // Small populations, >= 4 checkpoint boundaries per scenario so
  // window-triggered faults always find their boundary.
  const auto specs = mixed_scenarios(count, seed, {40, 150, 400, 1000}, 0);
  std::vector<ScenarioSpec> sized = specs;
  for (std::size_t i = 0; i < sized.size(); ++i)
    sized[i].target_time = 2000 + 500 * (static_cast<std::int64_t>(i) % 3);

  const FaultSchedule no_faults;
  SweepOptions base;
  base.threads = threads;
  base.checkpoint_period = 500;
  base.backoff_initial_ms = 0.0;
  base.faults = &no_faults;

  int failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      std::cerr << "e22 smoke FAILED: " << what << "\n";
    }
  };

  // A. The fault-free reference sweep.
  SweepResult ref;
  {
    SweepRunner runner(base);
    ref = runner.run(sized, min_dark_statistic);
  }
  check(ref.completed == count, "reference sweep left scenarios unfinished");

  // B. The hostile sweep: quarantine must hit only targeted scenarios,
  // and every untargeted scenario must be byte-identical to A.
  {
    FaultSchedule hostile = divpp::fault::global();
    if (hostile.empty())
      hostile = FaultSchedule::from_spec(
          "crash@window=1,replica=5;exception@window=2,replica=17;"
          "crash@window=2,replica=33;torn@window=1,replica=50;"
          "latency@window=1,replica=60,us=500");
    std::set<std::int64_t> lethal;   // crash/exception targets
    std::set<std::int64_t> touched;  // any fault target
    bool wildcard = false;  // a replica=-1 spec may hit any scenario
    for (const auto& spec : hostile.specs()) {
      if (spec.replica < 0) {
        wildcard = true;
        continue;
      }
      touched.insert(spec.replica);
      if (spec.kind == FaultKind::kCrash ||
          spec.kind == FaultKind::kException)
        lethal.insert(spec.replica);
    }
    SweepOptions options = base;
    options.faults = &hostile;
    options.max_retries = 0;  // a lethal fault == instant quarantine
    SweepRunner runner(options);
    const SweepResult hit = runner.run(sized, min_dark_statistic);
    bool expect_quarantine = wildcard;
    for (const std::int64_t r : lethal) expect_quarantine |= r < count;
    if (expect_quarantine)
      check(hit.quarantined > 0, "hostile sweep quarantined nothing");
    for (std::size_t i = 0; i < hit.scenarios.size(); ++i) {
      const auto index = static_cast<std::int64_t>(i);
      const auto& report = hit.scenarios[i];
      if (report.outcome == ScenarioOutcome::kQuarantined) {
        check(wildcard || lethal.count(index) > 0,
              "scenario " + report.name + " quarantined but not targeted");
      } else if (!wildcard && touched.count(index) == 0) {
        check(report.json == ref.scenarios[i].json,
              "untargeted scenario " + report.name +
                  " diverged from the fault-free sweep");
      }
    }
    std::cout << "hostile sweep: " << hit.quarantined << " quarantined, "
              << hit.completed << " completed untouched\n";
  }

  // C. Drain mid-sweep, then resume from the manifest.
  {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "e22_sweep_drain";
    fs::remove_all(dir);
    SweepOptions options = base;
    options.threads = 2;
    options.sweep_dir = dir.string();
    SweepRunner runner(options);
    const std::int64_t drain_after = std::max<std::int64_t>(1, count / 8);
    std::atomic<std::int64_t> completions{0};
    const SweepRunner::Statistic draining =
        [&](const CountSimulation& sim) {
          if (completions.fetch_add(1) + 1 == drain_after)
            runner.request_drain();
          return min_dark_statistic(sim);
        };
    const SweepResult first = runner.run(sized, draining);
    check(first.drain_requested, "drain request was lost");
    check(first.drained > 0, "drain parked no scenarios");
    check(first.completed + first.drained == count,
          "drained sweep lost scenarios");
    const SweepResult rest = runner.resume(sized, min_dark_statistic);
    check(rest.completed == count, "resume left scenarios unfinished");
    for (std::size_t i = 0; i < rest.scenarios.size(); ++i)
      check(rest.scenarios[i].json == ref.scenarios[i].json,
            "scenario " + sized[i].name + " diverged across drain+resume");
    std::cout << "drain+resume: " << first.completed << " before drain, "
              << first.drained << " parked, all " << rest.completed
              << " byte-identical after resume\n";
    fs::remove_all(dir);
  }

  if (failures == 0)
    std::cout << "e22 smoke OK: quarantine stayed on target, untargeted "
                 "scenarios byte-identical, drain+resume bit-exact\n";
  return failures == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  if (args.get_bool("smoke", false)) return run_smoke(args);
  return run_bench(args);
}
