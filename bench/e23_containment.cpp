// E23 — crash containment: supervised sweeps vs in-process (ISSUE 9).
//
// Default mode measures what process isolation costs: the same
// fault-free scenario list is swept twice through SweepRunner with the
// SAME durable configuration (a sweep_dir, so both sides pay identical
// checkpoint fsyncs — the delta isolates fork + pipes + watchdog, not
// disk):
//
//   * "in-process": the PR 8 thread-pool path;
//   * "supervised": forked worker processes under the PR 9 watchdog
//     (SweepOptions::supervision.enabled).
//
// Both paths drive the same execute_scenario(), so every scenario's
// JSON must match byte-for-byte (exit 1 if not — that is the
// bit-identity contract, not a tolerance).  The overhead gate is
// <= 10% (exit 2).
//
// Flags: --scenarios=128   (the committed BENCH_pr9.json uses 128)
//        --workers=0       (0 = hardware concurrency; both sides)
//        --period=4096     (checkpoint period, both sides)
//        --reps=4          (min-of-reps walls; checkpoint fsync latency
//                           is jittery, so the min needs a few samples)
//        --seed=2024
//        --pr9-json=FILE   (machine-readable summary; BENCH_pr9.json in
//                           the repo root records the committed run)
//
// Smoke mode (--smoke) is the CI crash-containment drill: a supervised
// sweep under a hostile schedule of REAL faults (DIVPP_FAULT_SPEC when
// set, else a built-in mix of segv/kill/oom/hang/abort across five
// scenarios) with max_retries=0.  Asserts the sweep completes; that
// quarantined/recovered scenarios are exactly fault targets; that every
// untargeted scenario's JSON is byte-identical to a fault-free
// in-process reference; and that the wedged (hang) scenario was killed
// within the hang timeout — the sweep's wall clock stays a small
// multiple of it.  Exit 0 only if every assertion holds.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/count_simulation.h"
#include "core/weights.h"
#include "fault/fault.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "runtime/sweep_runner.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::Engine;
using divpp::core::WeightMap;
using divpp::fault::FaultKind;
using divpp::fault::FaultSchedule;
using divpp::runtime::ScenarioOutcome;
using divpp::runtime::ScenarioSpec;
using divpp::runtime::SweepOptions;
using divpp::runtime::SweepResult;
using divpp::runtime::SweepRunner;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double min_dark_statistic(const CountSimulation& sim) {
  return static_cast<double>(sim.min_dark());
}

std::vector<ScenarioSpec> mixed_scenarios(
    std::int64_t count, std::uint64_t seed,
    const std::vector<std::int64_t>& populations,
    std::int64_t target_multiple) {
  const WeightMap weights({1.0, 2.0, 3.0});
  const Engine engines[] = {Engine::kBatch, Engine::kAuto, Engine::kJump};
  std::vector<ScenarioSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    ScenarioSpec spec;
    // insert() instead of "s" + to_string(): GCC 12's -Wrestrict trips
    // a known false positive on the operator+ chain.
    std::string name = std::to_string(i);
    name.insert(0, 1, 's');
    spec.name = std::move(name);
    spec.n = populations[static_cast<std::size_t>(i) % populations.size()];
    spec.weights = weights;
    spec.start = ScenarioSpec::Start::kProportional;
    spec.engine = engines[static_cast<std::size_t>(i) % 3];
    spec.target_time = target_multiple * spec.n;
    spec.seed = seed + static_cast<std::uint64_t>(i);
    specs.push_back(spec);
  }
  return specs;
}

std::string fresh_dir(const std::string& name) {
  namespace fs = std::filesystem;
  // Prefer tmpfs: the bench gates supervision overhead, and on a real
  // disk the checkpoint fsyncs carry multi-millisecond jitter that
  // swamps a 10% wall-clock comparison.  Both sides use the same
  // backing store either way.
  fs::path base = fs::temp_directory_path();
  std::error_code ec;
  if (fs::is_directory("/dev/shm", ec)) base = "/dev/shm";
  const fs::path dir = base / name;
  fs::remove_all(dir);
  return dir.string();
}

int run_bench(const divpp::io::Args& args) {
  const std::int64_t count = args.get_int("scenarios", 384);
  const std::int64_t period = args.get_int("period", 4096);
  const int reps = static_cast<int>(args.get_int("reps", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  const std::string json_path = args.get_string("pr9-json", "");
  int workers = static_cast<int>(args.get_int("workers", 0));
  if (workers <= 0)
    workers = static_cast<int>(
        std::max(1U, std::thread::hardware_concurrency()));
  if (count < 1 || period < 1 || reps < 1) {
    std::cerr << "e23_containment: --scenarios, --period, --reps must be "
                 ">= 1\n";
    return 1;
  }

  const auto specs =
      mixed_scenarios(count, seed, {256, 1024, 4096, 16384}, 4);
  const FaultSchedule no_faults;

  std::cout << divpp::io::banner(
      "E23: crash-containment overhead (supervised vs in-process sweep)");
  std::cout << count << " mixed-n scenarios (n in {256..16384}, "
            << "batch/auto/jump, target = 4n), period " << period << ", "
            << workers << " workers, min of " << reps
            << " rep(s); both sides write durable checkpoints.\n\n";

  // In-process reference: same durable config, thread-pool path.
  SweepOptions in_proc;
  in_proc.threads = workers;
  in_proc.checkpoint_period = period;
  in_proc.sweep_dir = fresh_dir("e23_in_process");
  in_proc.faults = &no_faults;

  SweepOptions supervised = in_proc;
  supervised.sweep_dir = fresh_dir("e23_supervised");
  supervised.supervision.enabled = true;
  supervised.supervision.workers = workers;

  // Interleaved reps: checkpoint fsync latency drifts over seconds on
  // real disks, so back-to-back pairs sample the same conditions for
  // both sides where sequential phases would hand all the jitter to
  // one of them.  Each runner is scoped so its pool threads are joined
  // before the supervised side forks (fork needs a single-threaded
  // parent).
  double in_proc_wall = 1e300;
  double supervised_wall = 1e300;
  SweepResult reference;
  SweepResult result;
  for (int rep = 0; rep < reps; ++rep) {
    {
      SweepRunner runner(in_proc);
      const auto t0 = std::chrono::steady_clock::now();
      reference = runner.run(specs, min_dark_statistic);
      in_proc_wall = std::min(in_proc_wall, seconds_since(t0));
    }
    {
      SweepRunner runner(supervised);
      const auto t0 = std::chrono::steady_clock::now();
      result = runner.run(specs, min_dark_statistic);
      supervised_wall = std::min(supervised_wall, seconds_since(t0));
    }
  }

  // The bit-identity contract: both paths drive execute_scenario(), so
  // a single diverging byte is a bug, not noise.
  std::int64_t mismatches = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (result.scenarios[i].outcome != ScenarioOutcome::kOk ||
        result.scenarios[i].json != reference.scenarios[i].json)
      ++mismatches;
  }
  std::filesystem::remove_all(in_proc.sweep_dir);
  std::filesystem::remove_all(supervised.sweep_dir);
  if (mismatches > 0) {
    std::cerr << "e23_containment FAILED: " << mismatches
              << " scenario(s) diverged across the process boundary\n";
    return 1;
  }

  const double overhead = supervised_wall / in_proc_wall - 1.0;
  divpp::io::Table table({"scenarios", "workers", "in-process s",
                          "supervised s", "overhead %"});
  table.begin_row()
      .add_cell(count)
      .add_cell(static_cast<std::int64_t>(workers))
      .add_cell(in_proc_wall, 4)
      .add_cell(supervised_wall, 4)
      .add_cell(100.0 * overhead, 2);
  std::cout << table.to_text()
            << "Reading: supervision pays one fork per worker (not per "
               "scenario), a ~100-byte pipe frame per dispatch, and the "
               "parent's poll loop — against identical simulation and "
               "checkpoint work, the columns should be within noise.\n\n";

  divpp::io::Json out;
  out.set("bench", "e23_containment");
  out.set("scenarios", count);
  out.set("workers", static_cast<std::int64_t>(workers));
  out.set("period", period);
  out.set("reps", static_cast<std::int64_t>(reps));
  out.set("seed", static_cast<std::int64_t>(seed));
  out.set("in_process_wall_s", in_proc_wall);
  out.set("supervised_wall_s", supervised_wall);
  out.set("overhead", overhead);
  out.set("bit_identical", true);
  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "e23_containment: cannot write " << json_path << "\n";
      return 1;
    }
    file << out.to_string() << "\n";
  }
  std::cout << out.to_string() << "\n";

  if (overhead > 0.10) {
    std::cerr << "e23_containment FAILED: supervision overhead "
              << 100.0 * overhead << "% > 10%\n";
    return 2;
  }
  return 0;
}

int run_smoke(const divpp::io::Args& args) {
  const std::int64_t count = args.get_int("scenarios", 32);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const double hang_timeout = 2.0;

  // Small populations, >= 4 checkpoint boundaries per scenario so
  // window-triggered faults always find their boundary.
  auto specs = mixed_scenarios(count, seed, {40, 150, 400, 1000}, 0);
  for (std::size_t i = 0; i < specs.size(); ++i)
    specs[i].target_time = 2000 + 500 * (static_cast<std::int64_t>(i) % 3);

  int failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      std::cerr << "e23 smoke FAILED: " << what << "\n";
    }
  };

  SweepOptions base;
  base.threads = 2;
  base.checkpoint_period = 500;
  base.backoff_initial_ms = 0.0;

  // A. Fault-free in-process reference (explicit empty schedule, so a
  // hostile DIVPP_FAULT_SPEC in the environment cannot leak into it).
  // Scoped: its pool threads must be joined before the supervisor forks.
  const FaultSchedule no_faults;
  SweepResult ref;
  {
    SweepOptions options = base;
    options.faults = &no_faults;
    SweepRunner runner(options);
    ref = runner.run(specs, min_dark_statistic);
  }
  check(ref.completed == count, "reference sweep left scenarios unfinished");

  // B. The containment drill: REAL faults under supervision.  The
  // built-in schedule wedges one scenario (hang), kills workers three
  // ways (segv / SIGKILL / abort), and fails one allocation storm (oom)
  // — five targeted scenarios, every kind the in-process path cannot
  // contain.  max_retries=0 so any in-worker failure quarantines.
  FaultSchedule hostile = divpp::fault::global();
  if (hostile.empty())
    hostile = FaultSchedule::from_spec(
        "segv@window=1,replica=3;kill@window=2,replica=7;"
        "oom@window=1,replica=11;hang@window=1,replica=15;"
        "abort@window=2,replica=19");
  std::set<std::int64_t> touched;  // any fault target
  bool wildcard = false;           // a replica=-1 spec may hit anything
  for (const auto& spec : hostile.specs()) {
    if (spec.replica < 0)
      wildcard = true;
    else
      touched.insert(spec.replica);
  }

  const std::string dir = fresh_dir("e23_containment_smoke");
  SweepOptions options = base;
  options.sweep_dir = dir;
  options.faults = &hostile;
  options.max_retries = 0;
  options.supervision.enabled = true;
  options.supervision.workers = workers;
  options.supervision.heartbeat_period_seconds = 0.05;
  options.supervision.hang_timeout_seconds = hang_timeout;

  const auto t0 = std::chrono::steady_clock::now();
  SweepResult hit;
  {
    SweepRunner runner(options);
    hit = runner.run(specs, min_dark_statistic);
  }
  const double wall = seconds_since(t0);

  // The sweep settled every scenario despite real deaths: nothing lost.
  check(hit.completed + hit.quarantined + hit.rejected == count,
        "supervised sweep lost scenarios");
  std::int64_t disturbed = 0;
  for (std::size_t i = 0; i < hit.scenarios.size(); ++i) {
    const auto index = static_cast<std::int64_t>(i);
    const auto& report = hit.scenarios[i];
    const bool targeted = wildcard || touched.count(index) > 0;
    if (report.outcome != ScenarioOutcome::kOk) ++disturbed;
    if (report.outcome == ScenarioOutcome::kQuarantined ||
        report.outcome == ScenarioOutcome::kRecovered) {
      check(targeted, "scenario " + report.name +
                          " was disturbed but never targeted");
    }
    if (!targeted)
      check(report.json == ref.scenarios[i].json,
            "untargeted scenario " + report.name +
                " diverged from the fault-free reference");
  }
  check(disturbed > 0, "hostile schedule disturbed nothing — dead drill");

  // The wedged scenario can only be freed by the watchdog, and the rest
  // of the sweep is millisecond-scale: a wall clock beyond a few hang
  // timeouts means the kill did not happen at the timeout.
  check(wall < 5.0 * hang_timeout,
        "sweep took " + std::to_string(wall) +
            "s — the wedged worker was not killed within the hang timeout");

  std::cout << "containment drill: " << hit.recovered << " recovered, "
            << hit.quarantined << " quarantined (targets only), "
            << (count - disturbed)
            << " untargeted byte-identical; wall " << wall << "s with a "
            << hang_timeout << "s hang timeout\n";
  std::filesystem::remove_all(dir);

  if (failures == 0)
    std::cout << "e23 smoke OK: real faults contained to their targets, "
                 "wedged worker killed by the watchdog, untargeted "
                 "scenarios byte-identical\n";
  return failures == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  if (args.get_bool("smoke", false)) return run_smoke(args);
  return run_bench(args);
}
