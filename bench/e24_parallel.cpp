// E24 — time-parallel single runs (ISSUE 10).
//
// Measures what speculative window parallelism buys on ONE trajectory:
// ns/interaction and speedup of parallel/parallel_run.h against its own
// serial reference (threads = 1) across population sizes and thread
// counts, with the exact-mode hit rate alongside — the speedup column
// is meaningless without it, because a missed window replays serially
// and a run of misses degenerates to serial execution plus overhead.
//
// The measured regime is the one the engine is *for*: a transition-
// sparse trajectory (heavy colour weights pin the population near
// absorption, so windows of the step engine are real work — every
// interaction simulated — while the counts rarely change and mean-field
// speculation commits).  Exact mode everywhere: every parallel run is
// asserted bit-identical (counts, clock, 256-bit RNG state) to the
// serial reference before its timing is reported.  In transition-dense
// regimes the hit rate collapses and the engine honestly reports it —
// run with --w=1 to see the table degrade.
//
// Flags: --ns=10000000,100000000,1000000000  (comma list)
//        --threads=1,2,4      (comma list; 1 is the reference and is
//                              always measured)
//        --k=8 --w=4000000    (palette: k colours of weight w)
//        --window=262144      (interactions per speculation window)
//        --reps=2             (min-of-reps timing)
//        --seed=124
//        --pr10-json=FILE     (machine-readable summary; BENCH_pr10.json
//                              in the repo root records the committed
//                              trajectory)
//        --smoke              (CI guard: n = 1e8 only; always asserts
//                              bit-identity, and asserts speedup >= 1.5x
//                              at 4 threads only when the host has >= 4
//                              hardware threads — a 1-core runner can
//                              prove correctness but not concurrency)
//        --soak               (sanitizer drill: small n, threads = 4,
//                              exact + approximate + forced-miss rounds;
//                              no timing, exercises every engine path
//                              under TSan/ASan)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/count_simulation.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/json.h"
#include "io/table.h"
#include "parallel/parallel_run.h"
#include "rng/xoshiro.h"
#include "runtime/thread_pool.h"

namespace {

using divpp::core::CountSimulation;
using divpp::core::Engine;
using divpp::core::WeightMap;
using divpp::parallel::ParallelMode;
using divpp::parallel::ParallelRunConfig;
using divpp::parallel::ParallelRunStats;
using divpp::parallel::run_parallel_windows;
using divpp::rng::Xoshiro256;
using divpp::runtime::ThreadPool;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Measured {
  double ns_per_interaction = 0.0;
  ParallelRunStats stats;
  CountSimulation final_sim;
  Xoshiro256 final_gen;

  Measured() : final_sim(CountSimulation::equal_start(WeightMap({1.0, 1.0}), 2)),
               final_gen(0) {}
};

/// min-of-reps timing of one parallel configuration.  Every rep starts
/// from the same (sim, gen); the final state is identical across reps
/// by the exact-mode contract, so the last one is returned.
Measured measure(const CountSimulation& start, const Xoshiro256& gen0,
                 std::int64_t horizon, std::int64_t window, int threads,
                 int reps) {
  Measured out;
  out.ns_per_interaction = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    CountSimulation sim = start;
    Xoshiro256 gen = gen0;
    ParallelRunConfig config;
    config.engine = Engine::kStep;
    config.target_time = sim.time() + horizon;
    config.window = window;
    config.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const ParallelRunStats stats = run_parallel_windows(sim, gen, config);
    out.ns_per_interaction =
        std::min(out.ns_per_interaction,
                 seconds_since(t0) * 1e9 / static_cast<double>(horizon));
    out.stats = stats;
    out.final_sim = std::move(sim);
    out.final_gen = gen;
  }
  return out;
}

bool same_final_state(const Measured& a, const Measured& b) {
  if (a.final_sim.num_colors() != b.final_sim.num_colors()) return false;
  for (divpp::core::ColorId i = 0; i < a.final_sim.num_colors(); ++i)
    if (a.final_sim.dark(i) != b.final_sim.dark(i) ||
        a.final_sim.light(i) != b.final_sim.light(i))
      return false;
  return a.final_sim.time() == b.final_sim.time() &&
         a.final_sim.active_transitions() == b.final_sim.active_transitions() &&
         a.final_gen.state() == b.final_gen.state();
}

/// Sanitizer soak: no timing, every engine path under load — real
/// speculation (exact + approximate), forced misses, and an event that
/// grows the palette mid-run (worker re-seed under TSan).
int run_soak(const divpp::io::Args& args) {
  const std::int64_t n = args.get_int("n", 100'000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 124));
  const WeightMap weights(std::vector<double>(8, 60.0));
  const std::int64_t window = 64;
  const std::int64_t target = 512 * window;

  auto reference = CountSimulation::proportional_start(weights, n);
  Xoshiro256 ref_gen(seed);
  ParallelRunConfig config;
  config.engine = Engine::kJump;
  config.target_time = target;
  config.window = window;
  config.threads = 1;
  run_parallel_windows(reference, ref_gen, config);

  // Exact mode, with a mid-run palette event forcing worker re-seed.
  auto exact = CountSimulation::proportional_start(weights, n);
  auto with_event = [&](CountSimulation& sim) {
    sim.schedule_event(target / 2 + window / 3, [](CountSimulation& at) {
      at.add_color(60.0, 3);
    });
  };
  auto reference_event = CountSimulation::proportional_start(weights, n);
  with_event(reference_event);
  Xoshiro256 ref_event_gen(seed);
  run_parallel_windows(reference_event, ref_event_gen, config);

  with_event(exact);
  Xoshiro256 exact_gen(seed);
  config.threads = 4;
  const ParallelRunStats exact_stats =
      run_parallel_windows(exact, exact_gen, config);

  bool ok = exact.time() == reference_event.time() &&
            exact_gen.state() == ref_event_gen.state();
  for (divpp::core::ColorId i = 0; ok && i < exact.num_colors(); ++i)
    ok = exact.dark(i) == reference_event.dark(i) &&
         exact.light(i) == reference_event.light(i);
  if (!ok) {
    std::cerr << "e24 soak FAILED: threaded exact run diverged from the "
                 "serial reference\n";
    return 2;
  }

  // Approximate mode over the same trajectory shape.
  auto approx = CountSimulation::proportional_start(weights, n);
  Xoshiro256 approx_gen(seed ^ 0xa5a5ULL);
  config.mode = ParallelMode::kApproximate;
  config.tolerance = 4;
  const ParallelRunStats approx_stats =
      run_parallel_windows(approx, approx_gen, config);

  // Forced misses: a predictor that is always wrong exercises the
  // rollback/replay path on every round.
  auto missed = CountSimulation::proportional_start(weights, n);
  Xoshiro256 missed_gen(seed);
  ParallelRunConfig miss_config = config;
  miss_config.mode = ParallelMode::kExact;
  miss_config.predictor = [n](const CountSimulation& sim, std::int64_t) {
    divpp::parallel::CountPrediction wrong;
    wrong.dark.assign(static_cast<std::size_t>(sim.num_colors()), 0);
    wrong.light.assign(static_cast<std::size_t>(sim.num_colors()), 0);
    wrong.dark[0] = n;
    return wrong;
  };
  const ParallelRunStats miss_stats =
      run_parallel_windows(missed, missed_gen, miss_config);

  std::cout << "e24 soak OK: exact hits " << exact_stats.hits << "/"
            << exact_stats.speculated << ", approx hits "
            << approx_stats.hits << "/" << approx_stats.speculated
            << ", forced misses " << miss_stats.misses << " over "
            << miss_stats.replays << " replays\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  if (args.get_bool("soak", false)) return run_soak(args);

  const bool smoke = args.get_bool("smoke", false);
  const auto ns =
      smoke ? std::vector<std::int64_t>{100'000'000}
            : args.get_int_list(
                  "ns", {10'000'000, 100'000'000, 1'000'000'000});
  const auto thread_list = args.get_int_list("threads", {1, 2, 4});
  const std::int64_t k = args.get_int("k", 8);
  const double w = args.get_double("w", 4'000'000.0);
  const std::int64_t window = args.get_int("window", 262'144);
  const int reps = static_cast<int>(args.get_int("reps", 2));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 124));
  const std::string json_path = args.get_string("pr10-json", "");
  const WeightMap weights(std::vector<double>(static_cast<std::size_t>(k), w));

  std::cout << divpp::io::banner(
      "E24: time-parallel single runs (speculative windows, exact mode)");
  std::cout << "k = " << k << " colours of weight " << w << "; window = "
            << window << " interactions; step engine on a transition-"
            << "sparse trajectory.  Hardware threads: "
            << ThreadPool::hardware_threads() << ".\n\n";

  divpp::io::Table table({"n", "threads", "ns/int", "speedup", "hit rate",
                          "hits", "misses", "windows"});
  divpp::io::Json out;
  out.set("bench", "e24_parallel");
  out.set("k", k);
  out.set("w", w);
  out.set("window", window);
  out.set("reps", static_cast<std::int64_t>(reps));
  out.set("seed", static_cast<std::int64_t>(seed));
  out.set("hardware_threads",
          static_cast<std::int64_t>(ThreadPool::hardware_threads()));
  if (ThreadPool::hardware_threads() < 4) {
    out.set("note",
            "recorded on a host with fewer than 4 hardware threads: the "
            "speedup columns measure overhead, not concurrency; hit rate "
            "and bit-identity are hardware-independent");
  }

  bool smoke_ok = true;
  for (const std::int64_t n : ns) {
    if (n < 2) {
      std::cerr << "e24_parallel: --ns entries must be >= 2\n";
      return 1;
    }
    const std::int64_t horizon = std::max<std::int64_t>(16 * window, n / 8);
    auto start = CountSimulation::proportional_start(weights, n);
    Xoshiro256 gen(seed);
    // Warm past the initial transient so the measured trajectory sits in
    // the sparse regime the speculation targets.
    start.advance_with(Engine::kJump, 4 * window, gen);
    start.canonicalize();

    Measured reference;
    for (const std::int64_t threads : thread_list) {
      if (threads < 1) {
        std::cerr << "e24_parallel: --threads entries must be >= 1\n";
        return 1;
      }
      Measured m = measure(start, gen, horizon, window,
                           static_cast<int>(threads), reps);
      if (threads == 1) {
        reference = m;
      } else if (!same_final_state(reference, m)) {
        std::cerr << "e24_parallel FAILED: threads = " << threads
                  << " diverged from the serial reference at n = " << n
                  << "\n";
        return 2;
      }
      const double speedup =
          reference.ns_per_interaction / m.ns_per_interaction;
      const double hit_rate = m.stats.hit_rate();
      table.begin_row()
          .add_cell(n)
          .add_cell(threads)
          .add_cell(m.ns_per_interaction, 3)
          .add_cell(speedup, 2)
          .add_cell(hit_rate, 2)
          .add_cell(m.stats.hits)
          .add_cell(m.stats.misses)
          .add_cell(m.stats.windows);
      const std::string suffix =
          "_n" + std::to_string(n) + "_t" + std::to_string(threads);
      out.set("ns_per_int" + suffix, m.ns_per_interaction);
      out.set("speedup" + suffix, speedup);
      out.set("hit_rate" + suffix, hit_rate);
      out.set("hits" + suffix, m.stats.hits);
      out.set("misses" + suffix, m.stats.misses);
      out.set("windows" + suffix, m.stats.windows);
      if (smoke && threads == 4) {
        if (ThreadPool::hardware_threads() >= 4) {
          if (speedup < 1.5) {
            smoke_ok = false;
            std::cerr << "e24 smoke FAILED: speedup " << speedup
                      << " < 1.5x at 4 threads, n = " << n << " (hit rate "
                      << hit_rate << ")\n";
          }
        } else {
          std::cout << "e24 smoke: speedup gate skipped — host has "
                    << ThreadPool::hardware_threads()
                    << " hardware thread(s), < 4; bit-identity was still "
                       "asserted.\n";
        }
      }
    }
  }

  std::cout << table.to_text()
            << "Reading: speedup rides the hit rate — a committed window "
               "is a window never re-executed, a miss replays serially.  "
               "Exact mode: every row above was verified bit-identical "
               "to its threads = 1 reference before timing was "
               "reported.\n\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "e24_parallel: cannot write " << json_path << "\n";
      return 1;
    }
    file << out.to_string() << "\n";
  }
  std::cout << out.to_string() << "\n";
  return smoke_ok ? 0 : 2;
}
