// ant_colony — the paper's motivating scenario: task allocation in ants.
//
// A colony of n ants divides itself between four tasks with different
// importance (foraging is weighted highest).  The environment then
// interferes twice, exactly as the paper's introduction narrates:
//
//   1. "too many foragers fell victim to other ant colonies" — 80% of
//      the foragers are wiped out (their agents defect to brood care);
//   2. "an ant notices that the nest temperature is too hot and starts
//      fanning" — a brand-new task (fanning) appears with one dark ant.
//
// After each shock the Diversification protocol re-balances the colony
// towards the fair shares without any ant knowing the global state, and
// no task ever loses its last confident (dark) worker.
//
// Usage: ant_colony [--n=4000] [--seed=7]

#include <iostream>

#include "adversary/events.h"
#include "analysis/sustainability.h"
#include "core/count_simulation.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"

namespace {

const char* kTaskNames[] = {"foraging", "brood care", "nest repair",
                            "patrolling", "fanning"};

void print_snapshot(const divpp::core::CountSimulation& sim,
                    const std::string& label) {
  divpp::io::Table table({"task", "weight", "ants", "share", "fair share",
                          "dark (confident)"});
  for (divpp::core::ColorId i = 0; i < sim.num_colors(); ++i) {
    table.begin_row()
        .add_cell(kTaskNames[i])
        .add_cell(sim.weights().weight(i), 3)
        .add_cell(sim.support(i))
        .add_cell(static_cast<double>(sim.support(i)) /
                      static_cast<double>(sim.n()),
                  3)
        .add_cell(sim.weights().fair_share(i), 3)
        .add_cell(sim.dark(i));
  }
  std::cout << "--- " << label << " (t = " << sim.time()
            << ", colony size " << sim.n() << ") ---\n"
            << table.to_text() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 4000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // Foraging matters most, patrolling least.
  const divpp::core::WeightMap weights({4.0, 2.0, 2.0, 1.0});
  auto sim = divpp::core::CountSimulation::equal_start(weights, n);
  divpp::rng::Xoshiro256 gen(seed);
  divpp::analysis::SustainabilityMonitor monitor(4);

  std::cout << "Ant-colony task allocation with the Diversification "
               "protocol\n\n";
  print_snapshot(sim, "initial colony (equal split, all confident)");

  // Let the colony organise itself.
  const std::int64_t settle = 40 * n;
  sim.advance_to(settle, gen);
  monitor.observe(sim.dark_counts(), sim.time());
  print_snapshot(sim, "after self-organisation");

  // Shock 1: most foragers are lost to a rival colony.
  divpp::adversary::apply_event(
      sim, divpp::adversary::PartialRecolor{0, 1, 0.8});
  print_snapshot(sim, "raid! 80% of foragers defected to brood care");
  sim.advance_to(sim.time() + 40 * n, gen);
  monitor.observe(sim.dark_counts(), sim.time());
  print_snapshot(sim, "recovered after the raid");

  // Shock 2: the nest overheats — fanning becomes a task (weight 2).
  divpp::adversary::apply_event(sim, divpp::adversary::AddColor{2.0, 1});
  std::cout << "*** nest too hot: one ant starts fanning (new task, "
               "weight 2) ***\n\n";
  // A brand-new colour starts from a single dark agent, so give it the
  // full O(W² n log n) budget to reach its fair share.
  sim.advance_to(sim.time() + 400 * n, gen);
  divpp::analysis::SustainabilityMonitor monitor5(5);
  monitor5.observe(sim.dark_counts(), sim.time());
  print_snapshot(sim, "colony re-balanced around five tasks");

  std::cout << "No task ever lost its last confident worker: "
            << (monitor.sustained() && monitor5.sustained() ? "true"
                                                            : "FALSE")
            << "\n";
  return 0;
}
