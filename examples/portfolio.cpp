// portfolio — diversification in the financial sense, plus fairness.
//
// n independent fund managers each hold one asset class.  The colony-
// style Diversification protocol keeps the *aggregate* portfolio at the
// target allocation (weights = target percentages) although every
// manager only ever observes one uniformly random peer at a time.
//
// The example also demonstrates the fairness property (Definition
// 1.1(2)) on the agent-based engine: over a long horizon every single
// manager holds each asset class for a fraction of time proportional to
// its weight — useful when "holding an asset" carries per-manager costs
// that should be shared fairly.
//
// Usage: portfolio [--n=600] [--horizon-factor=300] [--seed=3]

#include <iostream>

#include "analysis/fairness.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 600);
  const std::int64_t horizon_factor = args.get_int("horizon-factor", 3000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const char* kAssets[] = {"bonds", "equities", "real estate", "gold"};
  // Target allocation 40/30/20/10 — weights 4/3/2/1.
  const divpp::core::WeightMap weights({4.0, 3.0, 2.0, 1.0});

  std::cout << "Portfolio diversification with per-manager fairness\n"
            << "n = " << n << " managers, target allocation "
            << "{40%, 30%, 20%, 10%}\n\n";

  const divpp::graph::CompleteGraph market(n);
  // Everyone starts in bonds except one seed manager per other class.
  std::vector<std::int64_t> supports(4, 1);
  supports[0] = n - 3;
  auto pop = divpp::core::make_population(
      market, supports, divpp::core::DiversificationRule(weights));
  divpp::rng::Xoshiro256 gen(seed);

  // Converge, then account fairness over a long window.
  pop.run(60 * n, gen);
  divpp::analysis::FairnessTracker fairness(pop.states(), 4, pop.time());
  const std::int64_t horizon = pop.time() + horizon_factor * n;
  pop.run_observed(horizon - pop.time(), gen,
                   [&](const divpp::core::StepEvent<divpp::core::AgentState>&
                           event) { fairness.observe(event); });
  fairness.finalize(pop.time());

  const auto counts = divpp::core::tally(pop.states(), 4);
  const auto final_supports = counts.supports();
  divpp::io::Table table({"asset", "target", "final share",
                          "mean time share", "manager#0 time share"});
  for (divpp::core::ColorId i = 0; i < 4; ++i) {
    table.begin_row()
        .add_cell(kAssets[i])
        .add_cell(weights.fair_share(i), 3)
        .add_cell(static_cast<double>(
                      final_supports[static_cast<std::size_t>(i)]) /
                      static_cast<double>(n),
                  3)
        .add_cell(fairness.mean_occupancy(i), 3)
        .add_cell(fairness.occupancy_fraction(0, i), 3);
  }
  std::cout << table.to_text() << "\n";
  std::cout << "Worst manager's relative deviation from the target time "
               "shares: "
            << divpp::io::format_double(
                   fairness.worst_relative_error(weights), 3)
            << " (shrinks as the horizon grows — fairness, Defn 1.1(2))\n";
  return 0;
}
