// quickstart — the smallest complete use of divpp.
//
// Runs the Diversification protocol (Kang, Mallmann-Trenn, Rivera;
// PODC 2021) with three weighted colours on a complete graph and prints
// how the colour distribution approaches the fair shares w_i/W.
//
// Usage: quickstart [--n=2000] [--seed=1] [--engine=jump]
//   --engine selects the stepping mode (step | jump | batch | auto);
//   all sample the same law — batch is the fast one at large n, and
//   auto picks jump or batch per window so you never have to choose.

#include <iostream>

#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/weights.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/potentials.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 2000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const divpp::core::Engine engine =
      divpp::core::parse_engine(args.get_string("engine", "jump"));

  // Three "tasks" with importance weights 1, 2 and 5.
  const divpp::core::WeightMap weights({1.0, 2.0, 5.0});
  std::cout << "Diversification protocol quickstart\n"
            << "n = " << n << ", weights = " << weights.to_string()
            << ", fair shares = {1/8, 2/8, 5/8}\n\n";

  // Worst-case start: colour 0 holds everyone except one agent per
  // minority colour; all agents start dark (confident).
  auto sim = divpp::core::CountSimulation::adversarial_start(weights, n);
  divpp::rng::Xoshiro256 gen(seed);

  divpp::io::Table table(
      {"time-steps", "share c0", "share c1", "share c2", "diversity error"});
  const auto snapshot = [&]() {
    table.begin_row().add_cell(sim.time());
    for (divpp::core::ColorId i = 0; i < 3; ++i) {
      table.add_cell(static_cast<double>(sim.support(i)) /
                         static_cast<double>(sim.n()),
                     3);
    }
    const auto supports = sim.supports();
    table.add_cell(
        divpp::stats::diversity_error(supports, weights.weights()), 3);
  };

  snapshot();
  for (int decade = 0; decade < 6; ++decade) {
    sim.advance_with(engine, sim.time() == 0 ? n : sim.time() * 4, gen);
    snapshot();
  }

  std::cout << table.to_text() << "\n";
  std::cout << "Target: shares converge to {0.125, 0.25, 0.625} and the\n"
               "diversity error drops to the O(sqrt(log n / n)) scale ("
            << divpp::io::format_double(
                   divpp::core::diversity_error_scale(n), 3)
            << " for this n).\n";
  return 0;
}
