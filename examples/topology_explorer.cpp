// topology_explorer — the paper's future-work question, §3: how does the
// Diversification protocol behave on graphs other than the complete one?
//
// Runs the same weighted-diversity instance on several interaction
// topologies and reports the diversity error and per-colour support after
// a fixed budget, plus whether sustainability held throughout.
//
// Usage: topology_explorer [--n=1024] [--steps-factor=400] [--seed=5]

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/sustainability.h"
#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "io/args.h"
#include "io/table.h"
#include "rng/xoshiro.h"
#include "stats/potentials.h"

int main(int argc, char** argv) {
  const divpp::io::Args args(argc, argv);
  const std::int64_t n = args.get_int("n", 1024);  // square for the torus
  const std::int64_t steps_factor = args.get_int("steps-factor", 400);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  const divpp::core::WeightMap weights({1.0, 2.0, 5.0});
  const std::vector<std::string> topologies = {
      "complete", "regular:8", "er:0.02", "torus", "cycle", "star"};

  std::cout << "Diversification on different interaction topologies "
               "(paper §3 future work)\n"
            << "n = " << n << ", weights = " << weights.to_string()
            << ", budget = " << steps_factor << "·n steps\n\n";

  divpp::io::Table table({"topology", "share c0", "share c1", "share c2",
                          "diversity error", "sustained"});
  for (const std::string& spec : topologies) {
    divpp::rng::Xoshiro256 gen(seed);
    const auto graph = divpp::graph::make_topology(spec, n, gen);
    std::vector<std::int64_t> supports(3, 1);
    supports[0] = n - 2;
    auto pop = divpp::core::make_population(
        *graph, supports, divpp::core::DiversificationRule(weights));
    divpp::analysis::SustainabilityMonitor monitor(3);
    for (std::int64_t burst = 0; burst < steps_factor; ++burst) {
      pop.run(n, gen);
      monitor.observe(divpp::core::tally(pop.states(), 3).dark, pop.time());
    }
    const auto counts = divpp::core::tally(pop.states(), 3);
    const auto final_supports = counts.supports();
    table.begin_row().add_cell(graph->name());
    for (divpp::core::ColorId i = 0; i < 3; ++i) {
      table.add_cell(static_cast<double>(
                         final_supports[static_cast<std::size_t>(i)]) /
                         static_cast<double>(n),
                     3);
    }
    table.add_cell(
        divpp::stats::diversity_error(final_supports, weights.weights()), 3);
    table.add_cell(monitor.sustained() ? "yes" : "NO");
  }
  std::cout << table.to_text() << "\n";
  std::cout << "Fair shares are {0.125, 0.25, 0.625}.  Expect the complete\n"
               "graph and good expanders (regular:8, er) to sit closest;\n"
               "the cycle mixes slowly and the star funnels everything\n"
               "through the hub — sustainability still holds everywhere.\n";
  return 0;
}
