#include "adversary/events.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace divpp::adversary {

namespace {

struct Applier {
  core::CountSimulation& sim;

  void operator()(const AddAgents& e) const {
    sim.add_agents(e.color, e.count, e.dark);
  }
  void operator()(const AddColor& e) const {
    sim.add_color(e.weight, e.dark_count);
  }
  void operator()(const RemoveColor& e) const {
    sim.recolor_all(e.victim, e.heir);
  }
  void operator()(const PartialRecolor& e) const {
    if (e.fraction < 0.0 || e.fraction > 1.0)
      throw std::invalid_argument("PartialRecolor: fraction must be in [0,1]");
    if (e.from == e.to)
      throw std::invalid_argument("PartialRecolor: from == to");
    const auto dark_moved = static_cast<std::int64_t>(
        std::floor(e.fraction * static_cast<double>(sim.dark(e.from))));
    const auto light_moved = static_cast<std::int64_t>(
        std::floor(e.fraction * static_cast<double>(sim.light(e.from))));
    sim.transfer(e.from, e.to, dark_moved, light_moved);
  }
};

struct Describer {
  std::string operator()(const AddAgents& e) const {
    std::ostringstream out;
    out << "add " << e.count << (e.dark ? " dark" : " light")
        << " agents of colour " << e.color;
    return out.str();
  }
  std::string operator()(const AddColor& e) const {
    std::ostringstream out;
    out << "add colour (w=" << e.weight << ") with " << e.dark_count
        << " dark agents";
    return out.str();
  }
  std::string operator()(const RemoveColor& e) const {
    std::ostringstream out;
    out << "recolour all of colour " << e.victim << " to colour " << e.heir;
    return out.str();
  }
  std::string operator()(const PartialRecolor& e) const {
    std::ostringstream out;
    out << "recolour " << e.fraction * 100.0 << "% of colour " << e.from
        << " to colour " << e.to;
    return out.str();
  }
};

}  // namespace

void apply_event(core::CountSimulation& sim, const Event& event) {
  std::visit(Applier{sim}, event);
}

std::string describe(const Event& event) {
  return std::visit(Describer{}, event);
}

Schedule& Schedule::at(std::int64_t time, Event event) {
  if (time < 0) throw std::invalid_argument("Schedule::at: negative time");
  events_.push_back({time, std::move(event)});
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ScheduledEvent& a, const ScheduledEvent& b) {
                     return a.time < b.time;
                   });
  return *this;
}

void Schedule::run(core::CountSimulation& sim, std::int64_t horizon,
                   rng::Xoshiro256& gen, core::Engine engine) const {
  std::vector<std::int64_t> handles;
  for (const ScheduledEvent& scheduled : events_) {
    if (scheduled.time < sim.time())
      throw std::invalid_argument(
          "Schedule::run: event scheduled before current simulation time");
    if (scheduled.time > horizon) break;
    handles.push_back(sim.schedule_event(
        scheduled.time, [event = scheduled.event](core::CountSimulation& s) {
          apply_event(s, event);
        }));
  }
  try {
    sim.advance_with(engine, horizon, gen);
  } catch (...) {
    // A throwing event action (e.g. a malformed event) must not leave
    // the rest of this script queued on the simulation — the PR-3
    // inline application left no hidden state behind, and neither does
    // this.  Only this run's own events are cancelled; anything the
    // caller scheduled directly stays pending.
    for (const std::int64_t handle : handles)
      (void)sim.cancel_scheduled_event(handle);
    throw;
  }
}

void Schedule::run(core::CountSimulation& sim, std::int64_t horizon,
                   rng::Xoshiro256& gen, bool use_jump_chain) const {
  run(sim, horizon, gen,
      use_jump_chain ? core::Engine::kJump : core::Engine::kStep);
}

}  // namespace divpp::adversary
