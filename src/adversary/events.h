#ifndef DIVPP_ADVERSARY_EVENTS_H
#define DIVPP_ADVERSARY_EVENTS_H

/// \file events.h
/// Structural-change (adversary) machinery.
///
/// The paper claims the Diversification protocol is robust: "even when an
/// adversary adds agents and colours, the protocol quickly returns into a
/// state of diversity and fairness", and sustainability survives any
/// change that keeps at least one dark agent per colour.  This module
/// scripts such interventions against a CountSimulation so experiment E8
/// can measure recovery times.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/count_simulation.h"
#include "core/weights.h"
#include "rng/xoshiro.h"

namespace divpp::adversary {

/// Injects `count` new agents of an existing colour (dark or light).
struct AddAgents {
  core::ColorId color = 0;
  std::int64_t count = 0;
  bool dark = true;
};

/// Introduces a brand-new colour with `dark_count` dark supporters.
struct AddColor {
  double weight = 1.0;
  std::int64_t dark_count = 1;
};

/// Recolours every supporter of `victim` to `heir` (colour retirement —
/// the paper's "task is fulfilled and no longer necessary" footnote).
struct RemoveColor {
  core::ColorId victim = 0;
  core::ColorId heir = 1;
};

/// Moves a fraction of `from`'s supporters (dark and light alike,
/// rounded down per shade) to colour `to` — a partial shock such as
/// "many foragers fell victim to other ant colonies".
struct PartialRecolor {
  core::ColorId from = 0;
  core::ColorId to = 1;
  double fraction = 0.5;
};

/// One adversary intervention.
using Event = std::variant<AddAgents, AddColor, RemoveColor, PartialRecolor>;

/// Applies one event to a count simulation.
/// \throws std::invalid_argument / std::out_of_range on malformed events.
void apply_event(core::CountSimulation& sim, const Event& event);

/// Human-readable event description for experiment logs.
[[nodiscard]] std::string describe(const Event& event);

/// An event scheduled at an absolute simulation time.
struct ScheduledEvent {
  std::int64_t time = 0;
  Event event;
};

/// A time-sorted adversary script replayed against a simulation.
class Schedule {
 public:
  Schedule() = default;

  /// Adds an event; times may be given in any order.
  Schedule& at(std::int64_t time, Event event);

  /// Runs `sim` to `horizon` with `engine`, firing each event at exactly
  /// its interaction index: the events are registered on the
  /// simulation's own event queue (CountSimulation::schedule_event), so
  /// every engine — including the collision-batch and auto engines —
  /// splits its windows at the event times automatically.  Safe for
  /// every engine: the chains re-parameterise after each event.
  void run(core::CountSimulation& sim, std::int64_t horizon,
           rng::Xoshiro256& gen, core::Engine engine) const;

  /// Back-compat spelling: jump chain when `use_jump_chain`, plain
  /// stepping otherwise.
  void run(core::CountSimulation& sim, std::int64_t horizon,
           rng::Xoshiro256& gen, bool use_jump_chain = true) const;

  [[nodiscard]] const std::vector<ScheduledEvent>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<ScheduledEvent> events_;
};

}  // namespace divpp::adversary

#endif  // DIVPP_ADVERSARY_EVENTS_H
