#include "analysis/convergence.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/equilibrium.h"
#include "stats/potentials.h"

namespace divpp::analysis {

bool in_equilibrium_region(const core::CountSimulation& sim, double delta) {
  if (!(delta > 0.0))
    throw std::invalid_argument("in_equilibrium_region: delta must be > 0");
  const double total_weight = sim.weights().total();
  const double target = static_cast<double>(sim.n()) / (1.0 + total_weight);
  const double lo = (1.0 - delta) * target;
  const double hi = (1.0 + delta) * target;
  for (core::ColorId i = 0; i < sim.num_colors(); ++i) {
    const double scaled =
        static_cast<double>(sim.dark(i)) / sim.weights().weight(i);
    if (scaled < lo || scaled > hi) return false;
  }
  const auto light = static_cast<double>(sim.total_light());
  return light >= lo && light <= hi;
}

bool in_fine_equilibrium(const core::CountSimulation& sim, double constant) {
  const double envelope = core::theorem213_envelope(sim.n(), constant);
  const core::Equilibrium eq = core::equilibrium_shares(sim.weights());
  const double dn = static_cast<double>(sim.n());
  for (core::ColorId i = 0; i < sim.num_colors(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double dark_err =
        std::abs(static_cast<double>(sim.dark(i)) - eq.dark_share[idx] * dn);
    const double light_err =
        std::abs(static_cast<double>(sim.light(i)) - eq.light_share[idx] * dn);
    if (dark_err > envelope || light_err > envelope) return false;
  }
  return true;
}

std::int64_t time_to_equilibrium_region(core::CountSimulation& sim,
                                        double delta, std::int64_t max_time,
                                        std::int64_t check_every,
                                        rng::Xoshiro256& gen,
                                        core::Engine engine) {
  if (check_every < 1)
    throw std::invalid_argument("time_to_equilibrium_region: check_every < 1");
  while (sim.time() < max_time) {
    if (in_equilibrium_region(sim, delta)) return sim.time();
    sim.advance_with(engine, std::min(max_time, sim.time() + check_every),
                     gen);
  }
  return in_equilibrium_region(sim, delta) ? sim.time() : -1;
}

Persistence probe_equilibrium_persistence(core::CountSimulation& sim,
                                          double delta, std::int64_t horizon,
                                          std::int64_t check_every,
                                          rng::Xoshiro256& gen,
                                          core::Engine engine) {
  Persistence report;
  report.entered = time_to_equilibrium_region(sim, delta, horizon,
                                              check_every, gen, engine);
  if (report.entered < 0) return report;
  report.held_until = report.entered;
  while (sim.time() < horizon) {
    sim.advance_with(engine, std::min(horizon, sim.time() + check_every),
                     gen);
    if (!in_equilibrium_region(sim, delta)) {
      report.exited = true;
      return report;
    }
    report.held_until = sim.time();
  }
  return report;
}

double evaluate_potential(const core::CountSimulation& sim,
                          PotentialKind kind) {
  switch (kind) {
    case PotentialKind::kPhi:
      return stats::phi_potential(sim.dark_counts(), sim.weights().weights());
    case PotentialKind::kPsi:
      return stats::psi_potential(sim.light_counts(),
                                  sim.weights().weights());
    case PotentialKind::kSupports: {
      const std::vector<std::int64_t> supports = sim.supports();
      return stats::pairwise_potential(supports, sim.weights().weights());
    }
  }
  throw std::logic_error("evaluate_potential: unknown kind");
}

std::int64_t time_to_potential_below(core::CountSimulation& sim,
                                     PotentialKind kind, double threshold,
                                     std::int64_t max_time,
                                     std::int64_t check_every,
                                     rng::Xoshiro256& gen,
                                     core::Engine engine) {
  if (check_every < 1)
    throw std::invalid_argument("time_to_potential_below: check_every < 1");
  while (sim.time() < max_time) {
    if (evaluate_potential(sim, kind) <= threshold) return sim.time();
    sim.advance_with(engine, std::min(max_time, sim.time() + check_every),
                     gen);
  }
  return evaluate_potential(sim, kind) <= threshold ? sim.time() : -1;
}

}  // namespace divpp::analysis
