#ifndef DIVPP_ANALYSIS_CONVERGENCE_H
#define DIVPP_ANALYSIS_CONVERGENCE_H

/// \file convergence.h
/// Convergence detectors for the paper's equilibrium regions.
///
/// The set E(δ) (paper Eq. (9)) contains the configurations where every
/// A_i/w_i and the light total a sit within (1±δ)·n/(1+W).  Theorem 2.5
/// says E(δ) is reached within τ₁ = O(W² n log n) steps and then holds
/// for n¹⁰ steps w.h.p.; these helpers measure both facts empirically.

#include <cstdint>

#include "core/count_simulation.h"
#include "rng/xoshiro.h"

namespace divpp::analysis {

/// True when the configuration lies in E(δ) (Eq. (9)).
[[nodiscard]] bool in_equilibrium_region(const core::CountSimulation& sim,
                                         double delta);

/// True when the configuration satisfies the Theorem 2.13 additive
/// envelope: |A_i − w_i n/(1+W)| and |a_i − (w_i/W) n/(1+W)| are both
/// <= constant · n^{3/4} (log n)^{1/4} for every colour.
[[nodiscard]] bool in_fine_equilibrium(const core::CountSimulation& sim,
                                       double constant);

/// Runs `sim` until it enters E(δ), checking membership every
/// `check_every` steps.  Returns the first check time inside the region,
/// or -1 when `max_time` elapsed first.  `engine` selects the stepping
/// mode between checks (all distributionally identical; jump is the
/// historical default, batch wins at large n, and Engine::kAuto picks
/// jump or batch per check_every window from the measured active
/// fraction — near-best throughput with no hand-tuning).
[[nodiscard]] std::int64_t time_to_equilibrium_region(
    core::CountSimulation& sim, double delta, std::int64_t max_time,
    std::int64_t check_every, rng::Xoshiro256& gen,
    core::Engine engine = core::Engine::kJump);

/// Result of a persistence probe (how long a property keeps holding).
struct Persistence {
  std::int64_t entered = -1;    ///< first time the property held
  std::int64_t held_until = -1; ///< last checked time it still held
  bool exited = false;          ///< true when a violation was observed
};

/// After entry, probes E(δ) membership every `check_every` steps until
/// `horizon`; reports when (if ever) the region was left.
[[nodiscard]] Persistence probe_equilibrium_persistence(
    core::CountSimulation& sim, double delta, std::int64_t horizon,
    std::int64_t check_every, rng::Xoshiro256& gen,
    core::Engine engine = core::Engine::kJump);

/// Which potential to watch (φ = dark counts, ψ = light counts,
/// Theorem 1.3's variant = total supports).
enum class PotentialKind { kPhi, kPsi, kSupports };

/// Evaluates the requested potential on the current configuration.
[[nodiscard]] double evaluate_potential(const core::CountSimulation& sim,
                                        PotentialKind kind);

/// Runs `sim` until the potential drops to `threshold` or `max_time`
/// elapses; returns the first check time at-or-below, or -1.
[[nodiscard]] std::int64_t time_to_potential_below(
    core::CountSimulation& sim, PotentialKind kind, double threshold,
    std::int64_t max_time, std::int64_t check_every, rng::Xoshiro256& gen,
    core::Engine engine = core::Engine::kJump);

}  // namespace divpp::analysis

#endif  // DIVPP_ANALYSIS_CONVERGENCE_H
