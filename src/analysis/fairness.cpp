#include "analysis/fairness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace divpp::analysis {

FairnessTracker::FairnessTracker(std::span<const core::AgentState> initial,
                                 std::int64_t num_colors,
                                 std::int64_t start_time)
    : num_colors_(num_colors), start_time_(start_time),
      current_(initial.begin(), initial.end()) {
  if (num_colors < 1)
    throw std::invalid_argument("FairnessTracker: need num_colors >= 1");
  if (current_.empty())
    throw std::invalid_argument("FairnessTracker: empty population");
  for (const core::AgentState& s : current_) {
    if (s.color < 0 || s.color >= num_colors)
      throw std::invalid_argument("FairnessTracker: colour out of range");
  }
  last_change_.assign(current_.size(), start_time);
  cell_time_.assign(current_.size() * static_cast<std::size_t>(2 * num_colors),
                    0);
}

std::size_t FairnessTracker::cell_index(std::int64_t agent,
                                        core::ColorId color, bool dark) const {
  return static_cast<std::size_t>(agent) *
             static_cast<std::size_t>(2 * num_colors_) +
         static_cast<std::size_t>(color) * 2 + (dark ? 1u : 0u);
}

void FairnessTracker::check_agent(std::int64_t u) const {
  if (u < 0 || u >= num_agents())
    throw std::out_of_range("FairnessTracker: agent out of range");
}

void FairnessTracker::flush(std::int64_t agent, std::int64_t now) {
  const auto idx = static_cast<std::size_t>(agent);
  const core::AgentState state = current_[idx];
  const std::int64_t elapsed = now - last_change_[idx];
  if (elapsed > 0) {
    cell_time_[cell_index(agent, state.color, state.is_dark())] += elapsed;
    last_change_[idx] = now;
  }
}

void FairnessTracker::observe(const core::StepEvent<core::AgentState>& event) {
  if (end_time_ >= 0)
    throw std::logic_error("FairnessTracker: already finalized");
  check_agent(event.initiator);
  if (event.transition == core::Transition::kNoOp) return;
  const auto idx = static_cast<std::size_t>(event.initiator);
  if (!(current_[idx] == event.before))
    throw std::logic_error(
        "FairnessTracker: event stream inconsistent with tracked state");
  // Time accrues to the *old* state up to and including this step's start.
  flush(event.initiator, event.time);
  current_[idx] = event.after;
}

void FairnessTracker::observe_change(std::int64_t agent,
                                     std::int64_t change_time,
                                     core::AgentState next_state) {
  if (end_time_ >= 0)
    throw std::logic_error("FairnessTracker: already finalized");
  check_agent(agent);
  if (next_state.color < 0 || next_state.color >= num_colors_)
    throw std::invalid_argument("FairnessTracker: colour out of range");
  if (change_time < last_change_[static_cast<std::size_t>(agent)])
    throw std::invalid_argument(
        "FairnessTracker: changes must arrive in time order");
  flush(agent, change_time);
  current_[static_cast<std::size_t>(agent)] = next_state;
}

void FairnessTracker::finalize(std::int64_t end_time) {
  if (end_time_ >= 0) throw std::logic_error("FairnessTracker: re-finalized");
  if (end_time < start_time_)
    throw std::invalid_argument("FairnessTracker: end before start");
  for (std::int64_t u = 0; u < num_agents(); ++u) flush(u, end_time);
  end_time_ = end_time;
}

std::int64_t FairnessTracker::horizon() const {
  if (end_time_ < 0) throw std::logic_error("FairnessTracker: not finalized");
  return end_time_ - start_time_;
}

std::int64_t FairnessTracker::cell_time(std::int64_t agent,
                                        core::ColorId color, bool dark) const {
  if (end_time_ < 0) throw std::logic_error("FairnessTracker: not finalized");
  check_agent(agent);
  if (color < 0 || color >= num_colors_)
    throw std::out_of_range("FairnessTracker: colour out of range");
  return cell_time_[cell_index(agent, color, dark)];
}

std::int64_t FairnessTracker::color_time(std::int64_t agent,
                                         core::ColorId color) const {
  return cell_time(agent, color, true) + cell_time(agent, color, false);
}

double FairnessTracker::occupancy_fraction(std::int64_t agent,
                                           core::ColorId color) const {
  const std::int64_t h = horizon();
  if (h == 0) return 0.0;
  return static_cast<double>(color_time(agent, color)) /
         static_cast<double>(h);
}

double FairnessTracker::worst_absolute_error(
    const core::WeightMap& weights) const {
  if (weights.num_colors() != num_colors_)
    throw std::invalid_argument("worst_absolute_error: palette mismatch");
  // A zero-length horizon has no occupancy to deviate: report no error
  // instead of the fair shares themselves (occupancy_fraction is 0 by
  // its own zero-horizon guard, which would otherwise score as maximal
  // deviation).
  if (horizon() == 0) return 0.0;
  double worst = 0.0;
  for (std::int64_t u = 0; u < num_agents(); ++u) {
    for (core::ColorId i = 0; i < num_colors_; ++i) {
      worst = std::max(worst, std::abs(occupancy_fraction(u, i) -
                                       weights.fair_share(i)));
    }
  }
  return worst;
}

double FairnessTracker::worst_relative_error(
    const core::WeightMap& weights) const {
  if (weights.num_colors() != num_colors_)
    throw std::invalid_argument("worst_relative_error: palette mismatch");
  if (horizon() == 0) return 0.0;  // see worst_absolute_error
  double worst = 0.0;
  for (std::int64_t u = 0; u < num_agents(); ++u) {
    for (core::ColorId i = 0; i < num_colors_; ++i) {
      const double fair = weights.fair_share(i);
      worst = std::max(worst,
                       std::abs(occupancy_fraction(u, i) / fair - 1.0));
    }
  }
  return worst;
}

double FairnessTracker::mean_occupancy(core::ColorId color) const {
  double sum = 0.0;
  for (std::int64_t u = 0; u < num_agents(); ++u)
    sum += occupancy_fraction(u, color);
  return sum / static_cast<double>(num_agents());
}

}  // namespace divpp::analysis
