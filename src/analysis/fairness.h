#ifndef DIVPP_ANALYSIS_FAIRNESS_H
#define DIVPP_ANALYSIS_FAIRNESS_H

/// \file fairness.h
/// Per-agent occupancy accounting for the fairness property
/// (Definition 1.1(2)): over a long horizon every agent should hold
/// colour i for a (w_i/W)·(1 ± o(1)) fraction of the time.
///
/// The tracker stores, for every agent, the time spent in each
/// (colour, shade) cell.  It consumes the engine's StepEvents — only the
/// initiator can change state under one-way rules, so per-event O(1)
/// bookkeeping (last-change timestamps) suffices.

#include <cstdint>
#include <span>
#include <vector>

#include "core/agent.h"
#include "core/population.h"
#include "core/weights.h"

namespace divpp::analysis {

/// Accumulates per-agent (colour, shade) occupancy times.
class FairnessTracker {
 public:
  /// Starts accounting at time `start_time` from the given states.
  FairnessTracker(std::span<const core::AgentState> initial,
                  std::int64_t num_colors, std::int64_t start_time = 0);

  /// Feeds one engine event (events must arrive in time order).
  void observe(const core::StepEvent<core::AgentState>& event);

  /// Aggregate counterpart of observe() for engines that report state
  /// *changes* instead of per-interaction events (the batched tagged
  /// engine, core::TaggedCountSimulation::run_changes): books agent u's
  /// current state over the whole stretch up to `change_time` in one
  /// flush, then switches it to `next_state` effective at `change_time`
  /// (the same convention as StepEvent::time — the pre-step clock of the
  /// changing interaction).  A collision-free stretch of any length costs
  /// O(1) here, which is what keeps fairness accounting off the hot path
  /// at batch speed.  Changes per agent must arrive in time order.
  void observe_change(std::int64_t agent, std::int64_t change_time,
                      core::AgentState next_state);

  /// Closes the books at `end_time`; further observe calls are rejected.
  void finalize(std::int64_t end_time);

  /// Time agent u spent on colour i (both shades).  \pre finalized.
  [[nodiscard]] std::int64_t color_time(std::int64_t agent,
                                        core::ColorId color) const;

  /// Time agent u spent on colour i in the given shade.  \pre finalized.
  [[nodiscard]] std::int64_t cell_time(std::int64_t agent,
                                       core::ColorId color, bool dark) const;

  /// Fraction of the horizon agent u held colour i.  \pre finalized.
  [[nodiscard]] double occupancy_fraction(std::int64_t agent,
                                          core::ColorId color) const;

  /// max over agents and colours of |occupancy − w_i/W| (absolute
  /// fairness error).  \pre finalized.
  [[nodiscard]] double worst_absolute_error(
      const core::WeightMap& weights) const;

  /// max over agents and colours of |occupancy/(w_i/W) − 1| (relative
  /// fairness error, the paper's (1 ± o(1)) factor).  \pre finalized.
  [[nodiscard]] double worst_relative_error(
      const core::WeightMap& weights) const;

  /// Average over agents of occupancy of colour i.  \pre finalized.
  [[nodiscard]] double mean_occupancy(core::ColorId color) const;

  /// Horizon length accounted for.  \pre finalized.
  [[nodiscard]] std::int64_t horizon() const;

  [[nodiscard]] std::int64_t num_agents() const noexcept {
    return static_cast<std::int64_t>(current_.size());
  }
  [[nodiscard]] std::int64_t num_colors() const noexcept {
    return num_colors_;
  }

 private:
  void check_agent(std::int64_t u) const;
  void flush(std::int64_t agent, std::int64_t now);
  [[nodiscard]] std::size_t cell_index(std::int64_t agent, core::ColorId color,
                                       bool dark) const;

  std::int64_t num_colors_;
  std::int64_t start_time_;
  std::int64_t end_time_ = -1;  // -1 while accounting is open
  std::vector<core::AgentState> current_;
  std::vector<std::int64_t> last_change_;
  std::vector<std::int64_t> cell_time_;  // agent-major, 2k cells per agent
};

}  // namespace divpp::analysis

#endif  // DIVPP_ANALYSIS_FAIRNESS_H
