#include "analysis/phase_tracker.h"

#include <stdexcept>

namespace divpp::analysis {

std::string region_name(Region region) {
  switch (region) {
    case Region::kR1: return "R1";
    case Region::kS1: return "S1";
    case Region::kR2: return "R2";
    case Region::kS2: return "S2";
    case Region::kS3: return "S3";
    case Region::kS4: return "S4";
  }
  throw std::logic_error("region_name: unknown region");
}

PhaseTracker::PhaseTracker(double epsilon) : epsilon_(epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 0.25))
    throw std::invalid_argument("PhaseTracker: need 0 < epsilon < 1/4");
  first_hit_.fill(-1);
}

namespace {

/// a/n >= (1 − c·ε)/(W+1)?
bool light_lower(const core::CountSimulation& sim, double eps_multiple) {
  const double total_weight = sim.weights().total();
  const double lhs = static_cast<double>(sim.total_light()) /
                     static_cast<double>(sim.n());
  return lhs >= (1.0 - eps_multiple) / (total_weight + 1.0);
}

/// ∀i: A_i/n >= (1 − c·ε)·w_i/(1+W)?
bool dark_lower(const core::CountSimulation& sim, double eps_multiple) {
  const double total_weight = sim.weights().total();
  const double dn = static_cast<double>(sim.n());
  for (core::ColorId i = 0; i < sim.num_colors(); ++i) {
    const double share = static_cast<double>(sim.dark(i)) / dn;
    if (share <
        (1.0 - eps_multiple) * sim.weights().weight(i) / (1.0 + total_weight))
      return false;
  }
  return true;
}

/// ∀i: A_i/n <= (1 + c)·w_i/(1+W)?
bool dark_upper(const core::CountSimulation& sim, double upper_multiple) {
  const double total_weight = sim.weights().total();
  const double dn = static_cast<double>(sim.n());
  for (core::ColorId i = 0; i < sim.num_colors(); ++i) {
    const double share = static_cast<double>(sim.dark(i)) / dn;
    if (share >
        (1.0 + upper_multiple) * sim.weights().weight(i) /
            (1.0 + total_weight))
      return false;
  }
  return true;
}

/// a/n <= (1 + c)/(1+W)?
bool light_upper(const core::CountSimulation& sim, double upper_multiple) {
  const double total_weight = sim.weights().total();
  const double lhs = static_cast<double>(sim.total_light()) /
                     static_cast<double>(sim.n());
  return lhs <= (1.0 + upper_multiple) / (total_weight + 1.0);
}

}  // namespace

bool PhaseTracker::contains(const core::CountSimulation& sim,
                            Region region) const {
  const double eps = epsilon_;
  const double four_eps_w = 4.0 * eps * sim.weights().total();
  switch (region) {
    case Region::kR1:
      return light_lower(sim, eps);
    case Region::kS1:
      return light_lower(sim, 2.0 * eps);
    case Region::kR2:
      return dark_lower(sim, 3.0 * eps) && contains(sim, Region::kS1);
    case Region::kS2:
      return dark_lower(sim, 4.0 * eps) && contains(sim, Region::kS1);
    case Region::kS3:
      return dark_upper(sim, four_eps_w) && contains(sim, Region::kS2);
    case Region::kS4:
      return light_upper(sim, four_eps_w) && contains(sim, Region::kS3);
  }
  throw std::logic_error("PhaseTracker::contains: unknown region");
}

void PhaseTracker::observe(const core::CountSimulation& sim) {
  static constexpr std::array<Region, 6> kAll = {
      Region::kR1, Region::kS1, Region::kR2,
      Region::kS2, Region::kS3, Region::kS4};
  for (const Region region : kAll) {
    auto& slot = first_hit_[static_cast<std::size_t>(region)];
    if (slot < 0 && contains(sim, region)) slot = sim.time();
  }
}

std::int64_t PhaseTracker::first_hit(Region region) const noexcept {
  return first_hit_[static_cast<std::size_t>(region)];
}

}  // namespace divpp::analysis
