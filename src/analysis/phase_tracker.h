#ifndef DIVPP_ANALYSIS_PHASE_TRACKER_H
#define DIVPP_ANALYSIS_PHASE_TRACKER_H

/// \file phase_tracker.h
/// The Section 2.1 region ladder R₁ ⊆ S₁, R₂ ⊆ S₂, S₃, S₄ and its
/// hitting times.
///
/// Phase 1 of the analysis ("the rise of the minorities") shows the
/// process climbs, in order, into regions parameterised by ε:
///
///   R₁: a/n ≥ (1−ε)/(W+1)                S₁: a/n ≥ (1−2ε)/(W+1)
///   R₂: ∀i A_i/n ≥ (1−3ε)·w_i/(1+W) ∩ S₁  S₂: ∀i A_i/n ≥ (1−4ε)·w_i/(1+W) ∩ S₁
///   S₃: ∀i A_i/n ≤ (1+4εW)·w_i/(1+W) ∩ S₂ (implied by S₂ — Lemma 2.3)
///   S₄: a/n ≤ (1+4εW)/(1+W) ∩ S₃          (implied by S₃ — Lemma 2.4)
///
/// PhaseTracker classifies configurations and records first-hit times,
/// which experiment E16 prints as the paper's Fig. 1 phase table.

#include <array>
#include <cstdint>
#include <string>

#include "core/count_simulation.h"

namespace divpp::analysis {

/// Region labels of §2.1.
enum class Region : std::uint8_t { kR1, kS1, kR2, kS2, kS3, kS4 };

/// Printable region name ("R1", "S1", ...).
[[nodiscard]] std::string region_name(Region region);

/// Classifies configurations against the §2.1 regions and records
/// first-hit times.
class PhaseTracker {
 public:
  /// \pre 0 < epsilon < 1/4 (the paper's constraint).
  explicit PhaseTracker(double epsilon);

  /// True when the configuration lies in the given region.
  [[nodiscard]] bool contains(const core::CountSimulation& sim,
                              Region region) const;

  /// Feeds the current configuration; records first-hit times.
  void observe(const core::CountSimulation& sim);

  /// First time observe() saw the region hold, or -1 if never.
  [[nodiscard]] std::int64_t first_hit(Region region) const noexcept;

  /// The ε this tracker was built with.
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

 private:
  double epsilon_;
  std::array<std::int64_t, 6> first_hit_;
};

}  // namespace divpp::analysis

#endif  // DIVPP_ANALYSIS_PHASE_TRACKER_H
