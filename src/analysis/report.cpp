#include "analysis/report.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/fairness.h"
#include "analysis/sustainability.h"
#include "core/equilibrium.h"
#include "graph/topologies.h"
#include "stats/online_stats.h"
#include "stats/potentials.h"

namespace divpp::analysis {

std::string GoodnessReport::to_string() const {
  std::ostringstream out;
  out << "diversity:      mean error " << mean_diversity_error << " ("
      << scaled_diversity_error << " x sqrt(log n / n)) -> "
      << (diverse ? "PASS" : "FAIL") << "\n";
  out << "fairness:       worst relative occupancy error "
      << worst_fairness_error << " -> " << (fair ? "PASS" : "FAIL") << "\n";
  out << "sustainability: min dark support " << min_dark_support << " -> "
      << (sustainable ? "PASS" : "FAIL") << "\n";
  out << "good (Defn 1.1): " << (good() ? "YES" : "NO") << "\n";
  return out.str();
}

GoodnessReport assess_goodness(const core::WeightMap& weights, std::int64_t n,
                               const GoodnessConfig& config,
                               rng::Xoshiro256& gen) {
  const std::int64_t k = weights.num_colors();
  if (n < std::max<std::int64_t>(2, k))
    throw std::invalid_argument("assess_goodness: need n >= max(2, k)");

  const graph::CompleteGraph graph(n);
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), n / k);
  supports[0] += n - k * (n / k);
  auto pop = core::make_population(graph, supports,
                                   core::DiversificationRule(weights));
  pop.run(config.warmup_multiplier * n, gen);

  FairnessTracker fairness(pop.states(), k, pop.time());
  SustainabilityMonitor monitor(k);
  stats::OnlineStats diversity;
  const std::int64_t snapshot =
      config.snapshot_every > 0 ? config.snapshot_every : n;
  const std::int64_t horizon =
      pop.time() + config.horizon_multiplier * n;
  while (pop.time() < horizon) {
    pop.run_observed(std::min(snapshot, horizon - pop.time()), gen,
                     [&](const core::StepEvent<core::AgentState>& event) {
                       fairness.observe(event);
                     });
    const core::ColorCounts counts = core::tally(pop.states(), k);
    monitor.observe(counts.dark, pop.time());
    const auto current = counts.supports();
    diversity.add(stats::diversity_error(current, weights.weights()));
  }
  fairness.finalize(pop.time());

  GoodnessReport report;
  report.mean_diversity_error = diversity.mean();
  report.scaled_diversity_error =
      diversity.mean() / core::diversity_error_scale(n);
  report.diverse =
      report.scaled_diversity_error <= config.diversity_tolerance;
  report.worst_fairness_error = fairness.worst_relative_error(weights);
  report.fair = report.worst_fairness_error <= config.fairness_tolerance;
  report.min_dark_support = monitor.min_count_ever();
  report.sustainable = monitor.sustained();
  return report;
}

}  // namespace divpp::analysis
