#ifndef DIVPP_ANALYSIS_REPORT_H
#define DIVPP_ANALYSIS_REPORT_H

/// \file report.h
/// One-call "is the protocol good?" measurement (Definition 1.1).
///
/// The paper calls a protocol *good* when it is diverse, fair, and
/// sustainable.  GoodnessReport packages the three measurements the way
/// a downstream user wants them: run the agent-based system for a
/// horizon, account everything, and return per-property numbers plus
/// booleans against caller-chosen tolerances.

#include <cstdint>
#include <string>

#include "core/diversification.h"
#include "core/population.h"
#include "core/weights.h"
#include "rng/xoshiro.h"

namespace divpp::analysis {

/// Tolerances and horizons for assess_goodness.
struct GoodnessConfig {
  std::int64_t warmup_multiplier = 60;   ///< warm-up steps per agent
  std::int64_t horizon_multiplier = 400; ///< accounted steps per agent
  double diversity_tolerance = 6.0;      ///< × √(log n / n)
  double fairness_tolerance = 0.5;       ///< worst relative occupancy error
  std::int64_t snapshot_every = 0;       ///< 0 = auto (every n steps)
};

/// The three Definition 1.1 properties, measured.
struct GoodnessReport {
  // Diversity (Defn 1.1(1)): time-averaged max share deviation.
  double mean_diversity_error = 0.0;
  double scaled_diversity_error = 0.0;  ///< ÷ √(log n / n)
  bool diverse = false;
  // Fairness (Defn 1.1(2)): worst per-agent relative occupancy error.
  double worst_fairness_error = 0.0;
  bool fair = false;
  // Sustainability (Defn 1.1(3)): dark-support minimum over the run.
  std::int64_t min_dark_support = 0;
  bool sustainable = false;

  /// Good = diverse ∧ fair ∧ sustainable (the paper's Definition 1.1).
  [[nodiscard]] bool good() const noexcept {
    return diverse && fair && sustainable;
  }

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string to_string() const;
};

/// Runs the Diversification protocol on the complete graph K_n from an
/// equal split and measures all three properties of Definition 1.1.
/// \pre n >= max(2, k).
[[nodiscard]] GoodnessReport assess_goodness(const core::WeightMap& weights,
                                             std::int64_t n,
                                             const GoodnessConfig& config,
                                             rng::Xoshiro256& gen);

}  // namespace divpp::analysis

#endif  // DIVPP_ANALYSIS_REPORT_H
