#include "analysis/robustness.h"

#include <algorithm>

#include "analysis/convergence.h"
#include "core/equilibrium.h"

namespace divpp::analysis {

RecoveryReport measure_recovery(core::CountSimulation sim,
                                const adversary::Event& event,
                                const RecoveryConfig& config,
                                rng::Xoshiro256& gen) {
  const auto settle = static_cast<std::int64_t>(
      config.settle_multiplier *
      core::convergence_time_scale(sim.n(), sim.weights().total()));
  sim.advance_to(sim.time() + settle, gen);

  adversary::apply_event(sim, event);
  RecoveryReport report;
  report.shock_time = sim.time();

  const double post_scale =
      core::convergence_time_scale(sim.n(), sim.weights().total());
  const auto horizon =
      report.shock_time +
      static_cast<std::int64_t>(config.cap_multiplier * post_scale);
  const std::int64_t check =
      config.check_every > 0
          ? config.check_every
          : std::max<std::int64_t>(sim.n() / 8, 64);
  report.recovered_time = time_to_equilibrium_region(
      sim, config.delta, horizon, check, gen);
  report.recovered = report.recovered_time >= 0;
  if (report.recovered) {
    report.normalised_recovery =
        static_cast<double>(report.recovered_time - report.shock_time) /
        post_scale;
  }
  report.sustainability_kept = sim.min_dark() >= 1;
  return report;
}

}  // namespace divpp::analysis
