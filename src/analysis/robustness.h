#ifndef DIVPP_ANALYSIS_ROBUSTNESS_H
#define DIVPP_ANALYSIS_ROBUSTNESS_H

/// \file robustness.h
/// Shock-and-recovery measurement (the paper's robustness claim).
///
/// The abstract promises that "when an adversary adds agents or colours,
/// the protocol quickly returns into a state of diversity and fairness".
/// This helper packages the settle → shock → re-detect pipeline used by
/// experiment E8 so tests and downstream users can measure recoveries
/// with one call.

#include <cstdint>
#include <optional>

#include "adversary/events.h"
#include "core/count_simulation.h"
#include "rng/xoshiro.h"

namespace divpp::analysis {

/// Configuration of one shock-recovery measurement.
struct RecoveryConfig {
  double delta = 0.25;            ///< E(δ) membership radius
  double settle_multiplier = 3.0; ///< settle for this × W²·n·log n
  double cap_multiplier = 50.0;   ///< give up after this × W'²·n'·log n'
  std::int64_t check_every = 0;   ///< 0 = auto (n/8, at least 64)
};

/// Outcome of one shock-recovery measurement.
struct RecoveryReport {
  std::int64_t shock_time = 0;      ///< when the event was applied
  std::int64_t recovered_time = -1; ///< first time back in E(δ), or -1
  double normalised_recovery = 0.0; ///< (recovered−shock)/(W'² n' log n')
  bool recovered = false;
  bool sustainability_kept = false; ///< min dark support >= 1 after shock
};

/// Settles `sim` into E(δ), applies `event`, and measures the time until
/// the system re-enters E(δ) under the *new* palette/population.
[[nodiscard]] RecoveryReport measure_recovery(core::CountSimulation sim,
                                              const adversary::Event& event,
                                              const RecoveryConfig& config,
                                              rng::Xoshiro256& gen);

}  // namespace divpp::analysis

#endif  // DIVPP_ANALYSIS_ROBUSTNESS_H
