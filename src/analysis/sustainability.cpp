#include "analysis/sustainability.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace divpp::analysis {

SustainabilityMonitor::SustainabilityMonitor(std::int64_t num_colors) {
  if (num_colors < 1)
    throw std::invalid_argument("SustainabilityMonitor: need num_colors >= 1");
  min_count_.assign(static_cast<std::size_t>(num_colors),
                    std::numeric_limits<std::int64_t>::max());
  death_time_.assign(static_cast<std::size_t>(num_colors), -1);
}

void SustainabilityMonitor::observe(std::span<const std::int64_t> counts,
                                    std::int64_t t) {
  if (counts.size() != min_count_.size())
    throw std::invalid_argument("SustainabilityMonitor: size mismatch");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    min_count_[i] = std::min(min_count_[i], counts[i]);
    if (counts[i] <= 0 && death_time_[i] < 0) death_time_[i] = t;
  }
}

std::int64_t SustainabilityMonitor::min_count(std::int64_t color) const {
  if (color < 0 || color >= num_colors())
    throw std::out_of_range("SustainabilityMonitor: colour out of range");
  return min_count_[static_cast<std::size_t>(color)];
}

std::int64_t SustainabilityMonitor::min_count_ever() const noexcept {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t m : min_count_) best = std::min(best, m);
  return best;
}

std::int64_t SustainabilityMonitor::death_time(std::int64_t color) const {
  if (color < 0 || color >= num_colors())
    throw std::out_of_range("SustainabilityMonitor: colour out of range");
  return death_time_[static_cast<std::size_t>(color)];
}

std::int64_t SustainabilityMonitor::colors_died() const noexcept {
  std::int64_t dead = 0;
  for (const std::int64_t t : death_time_) {
    if (t >= 0) ++dead;
  }
  return dead;
}

}  // namespace divpp::analysis
