#ifndef DIVPP_ANALYSIS_SUSTAINABILITY_H
#define DIVPP_ANALYSIS_SUSTAINABILITY_H

/// \file sustainability.h
/// Sustainability accounting (Definition 1.1(3)): no colour ever
/// vanishes.  For the Diversification protocol the invariant is stronger
/// and structural — a colour's *dark* support can never reach zero,
/// because a dark agent only fades after meeting *another* dark agent of
/// its own colour.  The monitor records per-colour minima and the first
/// death time of any colour, which also quantifies how quickly consensus
/// baselines (Voter & co.) extinguish colours.

#include <cstdint>
#include <span>
#include <vector>

namespace divpp::analysis {

/// Streaming monitor over per-colour support (or dark-support) vectors.
class SustainabilityMonitor {
 public:
  /// \pre num_colors >= 1.
  explicit SustainabilityMonitor(std::int64_t num_colors);

  /// Feeds the per-colour counts at time t (monotone t expected).
  void observe(std::span<const std::int64_t> counts, std::int64_t t);

  /// Smallest count ever seen for colour i.
  [[nodiscard]] std::int64_t min_count(std::int64_t color) const;

  /// Smallest count ever seen across all colours.
  [[nodiscard]] std::int64_t min_count_ever() const noexcept;

  /// First observed time colour i had zero support, or -1.
  [[nodiscard]] std::int64_t death_time(std::int64_t color) const;

  /// Number of colours observed dead at least once.
  [[nodiscard]] std::int64_t colors_died() const noexcept;

  /// True when no colour ever hit zero — the Definition 1.1(3) property
  /// over the observed trajectory.
  [[nodiscard]] bool sustained() const noexcept { return colors_died() == 0; }

  [[nodiscard]] std::int64_t num_colors() const noexcept {
    return static_cast<std::int64_t>(min_count_.size());
  }

 private:
  std::vector<std::int64_t> min_count_;
  std::vector<std::int64_t> death_time_;
};

}  // namespace divpp::analysis

#endif  // DIVPP_ANALYSIS_SUSTAINABILITY_H
