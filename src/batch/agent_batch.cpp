#include "batch/agent_batch.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "batch/collision_batch.h"
#include "rng/discrete.h"
#include "rng/distributions.h"

namespace divpp::batch {

namespace {

/// Swap-removes a uniformly random member of `members` and returns it.
std::int64_t take_random_member(std::vector<std::int64_t>& members,
                                rng::Xoshiro256& gen) {
  const auto idx = static_cast<std::size_t>(rng::uniform_below(
      gen, static_cast<std::int64_t>(members.size())));
  const std::int64_t agent = members[idx];
  members[idx] = members.back();
  members.pop_back();
  return agent;
}

}  // namespace

void run_batched(CompletePopulation& pop, std::int64_t steps,
                 rng::Xoshiro256& gen) {
  if (steps < 0)
    throw std::invalid_argument("run_batched: negative step count");
  if (steps == 0) return;
  const core::WeightMap& weights = pop.rule().weights();
  const auto k = static_cast<std::size_t>(weights.num_colors());
  const std::int64_t n = pop.size();
  // Small populations (or sub-batch step counts): batching cannot pay
  // for its O(n) class-index build; use the plain discard-path loop.
  if (n < 64 || steps < n) {
    pop.run(steps, gen);
    return;
  }

  pop.apply_batch(steps, [&](std::vector<core::AgentState>& states) {
    // Class index: member lists per (colour, shade), uniform sampling by
    // swap-remove.  Built once, maintained incrementally.
    std::vector<std::vector<std::int64_t>> dark_members(k);
    std::vector<std::vector<std::int64_t>> light_members(k);
    for (std::size_t a = 0; a < states.size(); ++a) {
      const auto c = static_cast<std::size_t>(states[a].color);
      (states[a].is_dark() ? dark_members : light_members)[c].push_back(
          static_cast<std::int64_t>(a));
    }
    std::vector<std::int64_t> dark(k), light(k);
    std::vector<std::int64_t> adopt_rem(k);
    CollisionBatcher batcher(weights);
    std::int64_t remaining = steps;
    while (remaining > 0) {
      std::int64_t total_dark = 0, total_light = 0, dark_ge2 = 0;
      for (std::size_t i = 0; i < k; ++i) {
        dark[i] = static_cast<std::int64_t>(dark_members[i].size());
        light[i] = static_cast<std::int64_t>(light_members[i].size());
        total_dark += dark[i];
        total_light += light[i];
        if (dark[i] >= 2) ++dark_ge2;
      }
      // Absorbed configurations never change again; burn the window.
      if (dark_ge2 == 0 && (total_light == 0 || total_dark == 0)) break;

      remaining -= batcher.advance(dark, light, remaining, gen);
      const CollisionBatcher::Outcome& out = batcher.last_outcome();

      // Batch-phase margins: the collision interaction (replayed last,
      // below) is broken back out, because its initiator may be an agent
      // that changed class earlier in this very advance().
      adopt_rem = out.adopt_in;
      std::int64_t pool = out.adopts;
      if (out.collision_adopt_from >= 0) {
        --adopt_rem[static_cast<std::size_t>(out.collision_adopt_to)];
        --pool;
      }

      // (1) Resolve which agents adopted, removing them from their light
      // classes but deferring the pushes: every batch participant was in
      // its class at batch start, so victims of both phases are drawn
      // from the entry lists.  The pairing of adopting light colours to
      // adopted colours is a uniform bijection between the margin
      // multisets; rows are conditional hypergeometric splits, and each
      // matched agent is a uniform draw from its class.
      std::vector<std::pair<std::int64_t, std::size_t>> adopters;
      for (std::size_t i = 0; i < k && pool > 0; ++i) {
        std::int64_t row = out.adopt_out[i] -
                           (out.collision_adopt_from ==
                                    static_cast<std::int64_t>(i)
                                ? 1
                                : 0);
        if (row == 0) continue;
        pool -= row;
        std::int64_t rest = pool + row;
        for (std::size_t j = 0; row > 0 && j < k; ++j) {
          if (adopt_rem[j] == 0) continue;
          const std::int64_t flow =
              rng::hypergeometric(gen, rest, adopt_rem[j], row);
          rest -= adopt_rem[j];
          adopt_rem[j] -= flow;
          row -= flow;
          for (std::int64_t c = 0; c < flow; ++c)
            adopters.emplace_back(take_random_member(light_members[i], gen),
                                  j);
        }
      }

      // (2) Resolve which agents faded, also against the entry lists.
      std::vector<std::pair<std::int64_t, std::size_t>> faders;
      for (std::size_t i = 0; i < k; ++i) {
        const std::int64_t fades =
            out.fade_by_color[i] -
            (out.collision_fade == static_cast<std::int64_t>(i) ? 1 : 0);
        for (std::int64_t c = 0; c < fades; ++c)
          faders.emplace_back(take_random_member(dark_members[i], gen), i);
      }

      // (3) Apply both phases.
      for (const auto& [agent, j] : adopters) {
        states[static_cast<std::size_t>(agent)] =
            core::AgentState{static_cast<core::ColorId>(j), core::kDark};
        dark_members[j].push_back(agent);
      }
      for (const auto& [agent, i] : faders) {
        states[static_cast<std::size_t>(agent)].shade = core::kLight;
        light_members[i].push_back(agent);
      }

      // (4) Replay the collision interaction against the updated
      // classes (identity resolved by exchangeability — see agent_batch.h).
      if (out.collision_adopt_from >= 0) {
        const auto i = static_cast<std::size_t>(out.collision_adopt_from);
        const auto j = static_cast<std::size_t>(out.collision_adopt_to);
        const std::int64_t agent = take_random_member(light_members[i], gen);
        states[static_cast<std::size_t>(agent)] =
            core::AgentState{static_cast<core::ColorId>(j), core::kDark};
        dark_members[j].push_back(agent);
      } else if (out.collision_fade >= 0) {
        const auto i = static_cast<std::size_t>(out.collision_fade);
        const std::int64_t agent = take_random_member(dark_members[i], gen);
        states[static_cast<std::size_t>(agent)].shade = core::kLight;
        light_members[i].push_back(agent);
      }
    }
  });
}

}  // namespace divpp::batch
