#ifndef DIVPP_BATCH_AGENT_BATCH_H
#define DIVPP_BATCH_AGENT_BATCH_H

/// \file agent_batch.h
/// Collision-batch stepping for the *agent-based* engine on the complete
/// graph — the paper's model run at count-chain speed.
///
/// run_batched() advances a Diversification Population by whole collision
/// batches (batch/collision_batch.h): the per-class counts evolve by the
/// exact aggregate law, and the specific agents that change are then
/// drawn uniformly from their (colour, shade) class.
///
/// Distributional contract: every observable that is a function of the
/// configuration *counts* (supports, diversity error, min-dark, entry
/// times into E(δ), ...) has exactly the law of step()-by-step
/// execution, because agents of equal state are exchangeable under the
/// protocol.  What is NOT preserved is the joint law of a *named*
/// agent's trajectory across batch boundaries (e.g. an agent that
/// adopted inside a batch is, in the true process, slightly more likely
/// to take part in the very next interaction — the collision — than a
/// uniformly relabelled one).  Use Population::step() or
/// TaggedCountSimulation when a distinguished agent's path matters.
///
/// Cost: O(n) once per call to build the class index, then amortised
/// sub-constant per interaction like the count-level engine, plus O(1)
/// per actually-changed agent.  Worth it when steps >> n; below that the
/// function falls back to the plain run() loop.

#include <cstdint>

#include "core/diversification.h"
#include "core/population.h"
#include "graph/topologies.h"
#include "rng/xoshiro.h"

namespace divpp::batch {

/// The agent-based Diversification engine on the paper's graph.
using CompletePopulation =
    core::Population<core::AgentState, core::DiversificationRule,
                     graph::CompleteGraph>;

/// Advances `pop` by exactly `steps` interactions using collision
/// batches.  See the file comment for the distributional contract.
/// \pre steps >= 0.
void run_batched(CompletePopulation& pop, std::int64_t steps,
                 rng::Xoshiro256& gen);

}  // namespace divpp::batch

#endif  // DIVPP_BATCH_AGENT_BATCH_H
