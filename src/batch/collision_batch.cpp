#include "batch/collision_batch.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "rng/discrete.h"
#include "rng/distributions.h"

namespace divpp::batch {

namespace {

/// Populations below this size sample the run length by the exact O(ℓ)
/// log1p walk; above it the closed Stirling form is accurate to ~1e-15
/// everywhere the survival is representable, and a binary search costs
/// O(log n).  Tune freely — both paths are exact.
constexpr std::int64_t kRunLengthWalkCutoff = 65536;

/// log P(no collision in the first j interactions) for n agents:
///   log S(j) = lgamma(n+1) - lgamma(n-2j+1) - j·log(n(n-1)),
/// evaluated in the cancellation-free Stirling form
///   -j·log1p(-1/n) - (m+1/2)·log1p(-2j/n) - 2j
///      + (1/12)(1/n - 1/m) - (1/360)(1/n³ - 1/m³),    m = n - 2j.
/// The naive lgamma difference loses ~9 digits at n = 1e8; this form
/// keeps absolute error ~1e-15 wherever S(j) >= DBL_MIN.  For m < 64 the
/// true value is far below log(DBL_MIN) ≈ -745 whenever n is large
/// enough to take this path, so a sentinel is exact for every
/// representable uniform.
double log_survival(std::int64_t n, std::int64_t j) {
  const std::int64_t m = n - 2 * j;
  if (m < 64) return -1e18;
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  const double dj = static_cast<double>(j);
  const double inv_n = 1.0 / dn;
  const double inv_m = 1.0 / dm;
  return -dj * std::log1p(-inv_n) -
         (dm + 0.5) * std::log1p(-2.0 * dj / dn) - 2.0 * dj +
         (1.0 / 12.0) * (inv_n - inv_m) -
         (1.0 / 360.0) * (inv_n * inv_n * inv_n - inv_m * inv_m * inv_m);
}

}  // namespace

std::int64_t collision_free_run_length(rng::Xoshiro256& gen,
                                       std::int64_t n) {
  if (n < 2)
    throw std::invalid_argument("collision_free_run_length: need n >= 2");
  const double u = 1.0 - rng::uniform01(gen);  // in (0, 1]
  const double log_u = std::log(u);            // <= 0
  const std::int64_t j_max = n / 2;
  // ℓ = max{ j : log S(j) >= log u }; S(1) = 1 guarantees ℓ >= 1.
  if (n < kRunLengthWalkCutoff) {
    // Exact incremental walk over the per-interaction survival factors
    //   S(j+1)/S(j) = (1 - 2j/n)(1 - 2j/(n-1)).
    const double dn = static_cast<double>(n);
    double acc = 0.0;
    std::int64_t j = 1;  // acc == log S(1) == 0
    while (j < j_max) {
      const double t = 2.0 * static_cast<double>(j);
      acc += std::log1p(-t / dn) + std::log1p(-t / (dn - 1.0));
      if (acc < log_u) break;
      ++j;
    }
    return j;
  }
  std::int64_t lo = 1;  // log S(lo) >= log_u invariant
  std::int64_t hi = j_max;
  if (log_survival(n, hi) >= log_u) return hi;
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (log_survival(n, mid) >= log_u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

RunLengthTable::RunLengthTable(std::int64_t n) : n_(n) {
  if (n < 2)
    throw std::invalid_argument("RunLengthTable: need n >= 2");
  // S(j) by the defining product, tabulated until it drops below the
  // smallest uniform the inversion can draw (2^-53), so the table always
  // brackets the drawn quantile: ~4.3·√n entries.
  constexpr double kFloor = 0x1.0p-54;
  const double dn = static_cast<double>(n);
  const std::int64_t j_max = n / 2;
  double s = 1.0;  // S(1)
  survival_.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(j_max, 8 + 5 * static_cast<std::int64_t>(
                                            std::sqrt(dn)))));
  survival_.push_back(s);
  for (std::int64_t j = 1; j < j_max && s >= kFloor; ++j) {
    const double t = 2.0 * static_cast<double>(j);
    s *= (1.0 - t / dn) * (1.0 - t / (dn - 1.0));
    survival_.push_back(s);  // S(j + 1)
  }
}

std::int64_t RunLengthTable::sample(rng::Xoshiro256& gen) const {
  const double u = 1.0 - rng::uniform01(gen);  // in (0, 1], >= 2^-53
  // ℓ = max{ j : S(j) >= u }.  survival_ is non-increasing, starts at
  // S(1) = 1 >= u, and ends below every drawable u unless it covers the
  // full support — either way the predicate boundary is inside.
  const auto it = std::partition_point(survival_.begin(), survival_.end(),
                                       [u](double s) { return s >= u; });
  return it - survival_.begin();  // = max j with S(j) >= u  (S(1) = 1)
}

CollisionBatcher::CollisionBatcher(const core::WeightMap& weights) {
  const auto k = static_cast<std::size_t>(weights.num_colors());
  inv_weight_.resize(k);
  for (std::size_t i = 0; i < k; ++i)
    inv_weight_[i] = 1.0 / weights.weights()[i];
  for (auto* v : {&lp_, &dp_, &adopt_in_, &adopt_out_, &diag_, &row_,
                  &used_dark_, &used_light_})
    v->assign(k, 0);
  outcome_.adopt_out.assign(k, 0);
  outcome_.adopt_in.assign(k, 0);
  outcome_.fade_by_color.assign(k, 0);
}

std::int64_t CollisionBatcher::advance(std::span<std::int64_t> dark,
                                       std::span<std::int64_t> light,
                                       std::int64_t budget,
                                       rng::Xoshiro256& gen) {
  const auto k = inv_weight_.size();
  if (dark.size() != k || light.size() != k)
    throw std::invalid_argument("CollisionBatcher: span size mismatch");
  if (budget < 1)
    throw std::invalid_argument("CollisionBatcher: budget must be >= 1");
  const std::int64_t n =
      std::accumulate(dark.begin(), dark.end(), std::int64_t{0}) +
      std::accumulate(light.begin(), light.end(), std::int64_t{0});
  if (n < 2)
    throw std::invalid_argument("CollisionBatcher: need n >= 2 agents");

  outcome_ = Outcome{};
  outcome_.adopt_out.assign(k, 0);
  outcome_.adopt_in.assign(k, 0);
  outcome_.fade_by_color.assign(k, 0);

  if (!run_table_.has_value() || run_table_->population() != n)
    run_table_.emplace(n);
  const std::int64_t len = run_table_->sample(gen);
  if (len >= budget) {
    // The window edge arrives before the collision: the first `budget`
    // interactions of a collision-free run are themselves a uniform
    // ordered sample without replacement, so truncation is exact.
    apply_batch(dark, light, n, budget, gen);
    outcome_.interactions = budget;
    return budget;
  }
  apply_batch(dark, light, n, len, gen);
  collision_step(dark, light, n, 2 * len, gen);
  outcome_.interactions = len + 1;
  return len + 1;
}

void CollisionBatcher::apply_batch(std::span<std::int64_t> dark,
                                   std::span<std::int64_t> light,
                                   std::int64_t n, std::int64_t len,
                                   rng::Xoshiro256& gen) {
  const auto k = inv_weight_.size();
  const std::int64_t total_light =
      std::accumulate(light.begin(), light.end(), std::int64_t{0});

  // (1) Participant shades and colours.  The 2·len participants are a
  // uniform ordered sample without replacement, so their shade total is
  // one hypergeometric and the per-shade colour compositions are
  // multivariate-hypergeometric splits of the colour counts.
  const std::int64_t participants = 2 * len;
  const std::int64_t lights =
      rng::hypergeometric(gen, n, total_light, participants);
  rng::multivariate_hypergeometric(gen, light, lights, lp_);
  rng::multivariate_hypergeometric(gen, dark, participants - lights, dp_);

  // (2) Slot split and adopts.  Light participants land in the len
  // initiator slots as a uniform subset; dark responders likewise on the
  // responder side; the slot pairing matches them independently, so the
  // light-initiator/dark-responder (adopt) pair count is one more
  // hypergeometric.  Adopting/adopted colours are uniform sub-splits of
  // the participant compositions (adopters are a uniform subset of the
  // light participants, adopted responders of the dark participants).
  const std::int64_t light_init =
      rng::hypergeometric(gen, participants, len, lights);
  const std::int64_t dark_resp = len - (lights - light_init);
  const std::int64_t adopts =
      rng::hypergeometric(gen, len, dark_resp, light_init);
  rng::multivariate_hypergeometric(gen, lp_, adopts, adopt_out_);
  rng::multivariate_hypergeometric(gen, dp_, adopts, adopt_in_);

  // (3) Dark–dark same-colour pairs.  Every non-adopted dark responder
  // is paired with a dark initiator; the members of those dd pairs are a
  // uniform 2·dd-subset of the remaining dark participants and their
  // pairing is a uniform perfect matching, so the same-colour pair
  // counts come from the O(k) slot-occupancy chain: colour i first
  // splits its members between double-open pairs and half-filled ones
  // (hypergeometric), then the fully-monochromatic pair count among the
  // double-open pairs is one rng::full_pairs draw.
  const std::int64_t dd = dark_resp - adopts;
  for (std::size_t i = 0; i < k; ++i) row_[i] = dp_[i] - adopt_in_[i];
  rng::multivariate_hypergeometric(gen, row_, 2 * dd, diag_);
  diag_.swap(row_);  // row_ now holds the pair-member colour counts
  std::int64_t open_pairs = dd;  // pairs with both slots still free
  std::int64_t singles = 0;      // pairs with one slot already taken
  for (std::size_t i = 0; i < k; ++i) {
    const std::int64_t members = row_[i];
    const std::int64_t in_pairs = rng::hypergeometric(
        gen, 2 * open_pairs + singles, 2 * open_pairs, members);
    const std::int64_t mono = rng::full_pairs(gen, open_pairs, in_pairs);
    diag_[i] = mono;
    const std::int64_t half = in_pairs - 2 * mono;
    open_pairs -= mono + half;
    singles += half - (members - in_pairs);
  }

  // (4) Fades, aggregate deltas, and the used-set composition (each
  // same-colour dark–dark pair fades with probability 1/w_i; responders
  // keep their classes, initiators carry their updates).
  for (std::size_t i = 0; i < k; ++i) {
    const std::int64_t fades_i =
        rng::binomial(gen, diag_[i], inv_weight_[i]);
    dark[i] += adopt_in_[i] - fades_i;
    light[i] += fades_i - adopt_out_[i];
    outcome_.adopt_in[i] += adopt_in_[i];
    outcome_.adopt_out[i] += adopt_out_[i];
    outcome_.fade_by_color[i] += fades_i;
    outcome_.adopts += adopt_in_[i];
    outcome_.fades += fades_i;
    used_dark_[i] = dp_[i] + adopt_in_[i] - fades_i;
    used_light_[i] = lp_[i] - adopt_out_[i] + fades_i;
  }
}

void CollisionBatcher::collision_step(std::span<std::int64_t> dark,
                                      std::span<std::int64_t> light,
                                      std::int64_t n, std::int64_t used,
                                      rng::Xoshiro256& gen) {
  const auto k = inv_weight_.size();
  const std::int64_t untouched = n - used;
  // The colliding interaction is a uniform ordered pair of distinct
  // agents conditioned on touching the used set U; the three cases
  // partition the conditioning event.
  const std::int64_t both = used * (used - 1);
  const std::int64_t cross = used * untouched;
  const std::int64_t r = rng::uniform_below(gen, both + 2 * cross);
  const bool init_used = r < both + cross;
  const bool resp_used = r < both || r >= both + cross;

  // Weighted class draw from a pool composition, dark block first (the
  // same flattening as CountSimulation::pick_class), with at most one
  // unit excluded (the already-drawn initiator).
  struct Pick {
    bool is_dark = false;
    std::size_t color = 0;
  };
  const auto pick = [&](bool from_used, std::int64_t pool_total,
                        const Pick* excluded) -> Pick {
    std::int64_t target = rng::uniform_below(gen, pool_total);
    for (std::size_t i = 0; i < k; ++i) {
      std::int64_t avail =
          from_used ? used_dark_[i] : dark[i] - used_dark_[i];
      if (excluded != nullptr && excluded->is_dark && excluded->color == i)
        --avail;
      if (target < avail) return {true, i};
      target -= avail;
    }
    for (std::size_t i = 0; i < k; ++i) {
      std::int64_t avail =
          from_used ? used_light_[i] : light[i] - used_light_[i];
      if (excluded != nullptr && !excluded->is_dark && excluded->color == i)
        --avail;
      if (target < avail) return {false, i};
      target -= avail;
    }
    throw std::logic_error(
        "CollisionBatcher::collision_step: inconsistent pool totals");
  };

  const Pick initiator = pick(init_used, init_used ? used : untouched,
                              nullptr);
  const Pick responder =
      pick(resp_used,
           (resp_used ? used : untouched) -
               ((init_used == resp_used) ? 1 : 0),
           (init_used == resp_used) ? &initiator : nullptr);

  if (!initiator.is_dark && responder.is_dark) {
    --light[initiator.color];
    ++dark[responder.color];
    ++outcome_.adopts;
    ++outcome_.adopt_out[initiator.color];
    ++outcome_.adopt_in[responder.color];
    outcome_.collision_adopt_from =
        static_cast<std::int64_t>(initiator.color);
    outcome_.collision_adopt_to =
        static_cast<std::int64_t>(responder.color);
  } else if (initiator.is_dark && responder.is_dark &&
             initiator.color == responder.color) {
    if (rng::bernoulli(gen, inv_weight_[initiator.color])) {
      --dark[initiator.color];
      ++light[initiator.color];
      ++outcome_.fades;
      ++outcome_.fade_by_color[initiator.color];
      outcome_.collision_fade = static_cast<std::int64_t>(initiator.color);
    }
  }
}

}  // namespace divpp::batch
