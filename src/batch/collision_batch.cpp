#include "batch/collision_batch.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "check/counting_generator.h"
#include "check/invariant.h"
#include "context/sampler_context.h"
#include "rng/discrete.h"
#include "rng/distributions.h"

namespace divpp::batch {

namespace {

/// Populations below this size sample the run length by the exact O(ℓ)
/// log1p walk; above it the closed Stirling form is accurate to ~1e-15
/// everywhere the survival is representable, and a binary search costs
/// O(log n).  Tune freely — both paths are exact.
constexpr std::int64_t kRunLengthWalkCutoff = 65536;

/// log P(no collision in the first j interactions) for n agents:
///   log S(j) = lgamma(n+1) - lgamma(n-2j+1) - j·log(n(n-1)),
/// evaluated in the cancellation-free Stirling form
///   -j·log1p(-1/n) - (m+1/2)·log1p(-2j/n) - 2j
///      + (1/12)(1/n - 1/m) - (1/360)(1/n³ - 1/m³),    m = n - 2j.
/// The naive lgamma difference loses ~9 digits at n = 1e8; this form
/// keeps absolute error ~1e-15 wherever S(j) >= DBL_MIN.  For m < 64 the
/// true value is far below log(DBL_MIN) ≈ -745 whenever n is large
/// enough to take this path, so a sentinel is exact for every
/// representable uniform.
double log_survival(std::int64_t n, std::int64_t j) {
  const std::int64_t m = n - 2 * j;
  if (m < 64) return -1e18;
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  const double dj = static_cast<double>(j);
  const double inv_n = 1.0 / dn;
  const double inv_m = 1.0 / dm;
  return -dj * std::log1p(-inv_n) -
         (dm + 0.5) * std::log1p(-2.0 * dj / dn) - 2.0 * dj +
         (1.0 / 12.0) * (inv_n - inv_m) -
         (1.0 / 360.0) * (inv_n * inv_n * inv_n - inv_m * inv_m * inv_m);
}

}  // namespace

std::int64_t collision_free_run_length(rng::Xoshiro256& gen,
                                       std::int64_t n) {
  if (n < 2)
    throw std::invalid_argument("collision_free_run_length: need n >= 2");
  const double u = 1.0 - rng::uniform01(gen);  // in (0, 1]
  const double log_u = std::log(u);            // <= 0
  const std::int64_t j_max = n / 2;
  // ℓ = max{ j : log S(j) >= log u }; S(1) = 1 guarantees ℓ >= 1.
  if (n < kRunLengthWalkCutoff) {
    // Exact incremental walk over the per-interaction survival factors
    //   S(j+1)/S(j) = (1 - 2j/n)(1 - 2j/(n-1)).
    const double dn = static_cast<double>(n);
    double acc = 0.0;
    std::int64_t j = 1;  // acc == log S(1) == 0
    while (j < j_max) {
      const double t = 2.0 * static_cast<double>(j);
      acc += std::log1p(-t / dn) + std::log1p(-t / (dn - 1.0));
      if (acc < log_u) break;
      ++j;
    }
    return j;
  }
  std::int64_t lo = 1;  // log S(lo) >= log_u invariant
  std::int64_t hi = j_max;
  if (log_survival(n, hi) >= log_u) return hi;
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (log_survival(n, mid) >= log_u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

RunLengthTable::RunLengthTable(std::int64_t n) : n_(n) {
  if (n < 2)
    throw std::invalid_argument("RunLengthTable: need n >= 2");
  // S(j) by the defining product, tabulated until it drops below the
  // smallest uniform an inversion could draw (2^-53), so the lumped
  // tail mass is unobservable at double precision: ~4.3·√n entries.
  constexpr double kFloor = 0x1.0p-54;
  const double dn = static_cast<double>(n);
  const std::int64_t j_max = n / 2;
  std::vector<double> survival;  // survival[j-1] = S(j), j >= 1
  survival.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(j_max, 8 + 5 * static_cast<std::int64_t>(
                                            std::sqrt(dn)))));
  double s = 1.0;  // S(1)
  survival.push_back(s);
  for (std::int64_t j = 1; j < j_max && s >= kFloor; ++j) {
    const double t = 2.0 * static_cast<double>(j);
    s *= (1.0 - t / dn) * (1.0 - t / (dn - 1.0));
    survival.push_back(s);  // S(j + 1)
  }
  // P(ℓ = j) = S(j) − S(j+1); the final entry keeps its full survival so
  // the masses sum to S(1) = 1 (when the table is truncated this lumps
  // the sub-2^-54 tail onto the last representable length, exactly as
  // the inversion's bounded uniform did).
  std::vector<double> mass(survival.size());
  for (std::size_t j = 0; j + 1 < survival.size(); ++j)
    mass[j] = survival[j] - survival[j + 1];
  mass.back() = survival.back();
  table_.emplace(mass);
}

std::int64_t RunLengthTable::sample(rng::Xoshiro256& gen) const {
  return table_->sample(gen) + 1;  // slot j-1 holds P(ℓ = j)
}

CollisionBatcher::CollisionBatcher(const core::WeightMap& weights)
    // A private layout-only context: the same layout arithmetic as every
    // shared context (context/sampler_context.cpp), with run-length
    // tables built per population on demand — bit-identical to the
    // pre-PR-8 private members.
    : CollisionBatcher(
          std::make_shared<const context::SamplerContext>(weights)) {}

CollisionBatcher::CollisionBatcher(
    std::shared_ptr<const context::SamplerContext> context)
    : context_(std::move(context)) {
  if (context_ == nullptr)
    throw std::invalid_argument("CollisionBatcher: null sampler context");
  k_ = context_->num_colors();
  const auto k = static_cast<std::size_t>(k_);
  for (auto* v : {&adopt_in_, &adopt_out_, &pair_members_, &diag_,
                  &known_dark_, &known_light_, &rest_dark_pool_,
                  &rest_light_pool_})
    v->assign(k, 0);
  outcome_.adopt_out.assign(k, 0);
  outcome_.adopt_in.assign(k, 0);
  outcome_.fade_by_color.assign(k, 0);
}

std::int64_t CollisionBatcher::advance(std::span<std::int64_t> dark,
                                       std::span<std::int64_t> light,
                                       std::int64_t budget,
                                       rng::Xoshiro256& gen) {
  const auto k = static_cast<std::size_t>(k_);
  if (dark.size() != k || light.size() != k)
    throw std::invalid_argument("CollisionBatcher: span size mismatch");
  if (budget < 1)
    throw std::invalid_argument("CollisionBatcher: budget must be >= 1");
  const std::int64_t n =
      std::accumulate(dark.begin(), dark.end(), std::int64_t{0}) +
      std::accumulate(light.begin(), light.end(), std::int64_t{0});
  if (n < 2)
    throw std::invalid_argument("CollisionBatcher: need n >= 2 agents");

  // Reset the outcome in place: the margin vectors were sized k in the
  // constructor and must keep their buffers — reallocating three vectors
  // per batch would rival the cost of the O(1) counting draws below.
  outcome_.interactions = 0;
  outcome_.adopts = 0;
  outcome_.fades = 0;
  outcome_.collision_adopt_from = -1;
  outcome_.collision_adopt_to = -1;
  outcome_.collision_fade = -1;
  outcome_.draws = -1;
#ifdef SIM_CHECKED
  // Draw audit (Outcome::draws): replay-count the stream this advance
  // consumes.  Checked builds only — draws_between re-runs the stream.
  const rng::Xoshiro256 entry_gen = gen;
#endif
  std::fill(outcome_.adopt_out.begin(), outcome_.adopt_out.end(), 0);
  std::fill(outcome_.adopt_in.begin(), outcome_.adopt_in.end(), 0);
  std::fill(outcome_.fade_by_color.begin(), outcome_.fade_by_color.end(), 0);

  // Eager shared table when the context has one for this population,
  // else the private on-demand table — identical contents either way
  // (RunLengthTable is a pure function of n), so the draw sequence does
  // not depend on which path served the lookup.
  const RunLengthTable* table = context_->run_length_table(n);
  if (table == nullptr) {
    if (!run_table_.has_value() || run_table_->population() != n)
      run_table_.emplace(n);
    table = &*run_table_;
  }
  const std::int64_t len = table->sample(gen);
  // Run-length support: 1 <= ℓ <= floor(n/2) (2ℓ distinct agents).
  SIM_ASSERT(len >= 1);
  SIM_DCHECK_LE(len, n / 2);
  std::int64_t consumed = 0;
  if (len >= budget) {
    // The window edge arrives before the collision: the first `budget`
    // interactions of a collision-free run are themselves a uniform
    // ordered sample without replacement, so truncation is exact.
    apply_batch(dark, light, n, budget, gen);
    outcome_.interactions = budget;
    consumed = budget;
  } else {
    apply_batch(dark, light, n, len, gen);
    collision_step(dark, light, n, 2 * len, gen);
    outcome_.interactions = len + 1;
    consumed = len + 1;
  }
  SIM_IF_CHECKED({
    // Post-batch conservation: aggregate adopts and fades move agents
    // between shades, never in or out of the population.
    std::int64_t after = 0;
    for (std::size_t i = 0; i < k; ++i) {
      SIM_DCHECK_GE(dark[i], 0);
      SIM_DCHECK_GE(light[i], 0);
      after += dark[i] + light[i];
    }
    SIM_DCHECK_EQ(after, n);
    // Lazy-materialisation pool consistency: collision_step must leave
    // the shared rest pools non-negative with matching totals.
    std::int64_t dark_pool = 0;
    std::int64_t light_pool = 0;
    for (std::size_t i = 0; i < k; ++i) {
      SIM_DCHECK_GE(rest_dark_pool_[i], 0);
      SIM_DCHECK_GE(rest_light_pool_[i], 0);
      dark_pool += rest_dark_pool_[i];
      light_pool += rest_light_pool_[i];
    }
    SIM_DCHECK_EQ(dark_pool, rest_dark_total_);
    SIM_DCHECK_EQ(light_pool, rest_light_total_);
  });
#ifdef SIM_CHECKED
  outcome_.draws = check::draws_between(
      entry_gen, gen, check::CountingBitGenerator::kDefaultReplayCap);
  // One batch draws O(k) variates; losing the stream inside a single
  // advance means the generator was touched behind the audit's back.
  SIM_DCHECK_GE(outcome_.draws, 0);
#endif
  return consumed;
}

std::int64_t CollisionBatcher::advance_excluding(
    std::span<std::int64_t> dark, std::span<std::int64_t> light,
    core::ColorId excluded_color, bool excluded_dark, std::int64_t budget,
    rng::Xoshiro256& gen) {
  const auto k = static_cast<std::size_t>(k_);
  if (dark.size() != k || light.size() != k)
    throw std::invalid_argument("CollisionBatcher: span size mismatch");
  if (excluded_color < 0 || static_cast<std::size_t>(excluded_color) >= k)
    throw std::out_of_range(
        "CollisionBatcher::advance_excluding: colour out of range");
  std::int64_t& cell = excluded_dark
                           ? dark[static_cast<std::size_t>(excluded_color)]
                           : light[static_cast<std::size_t>(excluded_color)];
  if (cell < 1)
    throw std::invalid_argument(
        "CollisionBatcher::advance_excluding: excluded cell is empty");
  // Conditioned on the excluded agent sitting a stretch out, the stretch
  // is a plain collision batch of the remaining n − 1 agents: remove the
  // agent, advance, put it back.
  --cell;
  const std::int64_t consumed = advance(dark, light, budget, gen);
  (excluded_dark ? dark[static_cast<std::size_t>(excluded_color)]
                 : light[static_cast<std::size_t>(excluded_color)]) += 1;
  return consumed;
}

void CollisionBatcher::draw_tagged_involvement(
    rng::Xoshiro256& gen, std::int64_t n, std::int64_t window,
    std::vector<std::int64_t>& positions) {
  if (n < 2)
    throw std::invalid_argument("draw_tagged_involvement: need n >= 2");
  if (window < 0)
    throw std::invalid_argument(
        "draw_tagged_involvement: negative window");
  positions.clear();
  if (window == 0) return;
  const std::int64_t m =
      rng::binomial(gen, window, 2.0 / static_cast<double>(n));
  if (m == 0) return;
  positions.reserve(static_cast<std::size_t>(m));
  // Floyd's algorithm: a uniform m-subset of {0, ..., window-1} in O(m)
  // expected draws regardless of the m/window ratio (rejection resampling
  // would thrash when the window is much longer than n).
  std::unordered_set<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(2 * m));
  for (std::int64_t j = window - m; j < window; ++j) {
    const std::int64_t t = rng::uniform_below(gen, j + 1);
    const std::int64_t pick = chosen.insert(t).second ? t : j;
    if (pick != t) chosen.insert(pick);
  }
  positions.assign(chosen.begin(), chosen.end());
  std::sort(positions.begin(), positions.end());
}

void CollisionBatcher::apply_batch(std::span<std::int64_t> dark,
                                   std::span<std::int64_t> light,
                                   std::int64_t n, std::int64_t len,
                                   rng::Xoshiro256& gen) {
  const auto k = static_cast<std::size_t>(k_);
  const double max_inv_weight = context_->max_inv_weight();
  const std::span<const double> fade_ratio = context_->fade_ratio();
  const std::int64_t total_light =
      std::accumulate(light.begin(), light.end(), std::int64_t{0});

  // (1) Shade and slot scalars.  The 2·len participants are a uniform
  // ordered sample without replacement, so their shade total is one
  // hypergeometric; light participants land in the len initiator slots
  // as a uniform subset, dark responders likewise on the responder side,
  // and the slot pairing matches them independently, so the
  // light-initiator/dark-responder (adopt) pair count is one more
  // hypergeometric.
  const std::int64_t participants = 2 * len;
  const std::int64_t lights =
      rng::hypergeometric(gen, n, total_light, participants);
  const std::int64_t light_init =
      rng::hypergeometric(gen, participants, len, lights);
  const std::int64_t dark_resp = len - (lights - light_init);
  const std::int64_t adopts =
      rng::hypergeometric(gen, len, dark_resp, light_init);

  // (2) Adopt colours, straight off the population counts.  The
  // adopters are a uniform subset of the light participants, themselves
  // a uniform subset of the light population — so the adopting colours
  // are one multivariate-hypergeometric split of the light counts, and
  // the adopted (responder) colours one split of the dark counts.  The
  // full participant compositions are integrated out; the collision
  // step re-materialises what it touches from the rest pools below.
  rng::multivariate_hypergeometric(gen, light, adopts, adopt_out_);
  rng::multivariate_hypergeometric(gen, dark, adopts, adopt_in_);

  // (3) Dark–dark same-colour pairs, pre-thinned.  Every non-adopted
  // dark responder is paired with a dark initiator.  A dd pair fades
  // only when it is monochromatic AND its fade uniform clears 1/w_i;
  // split that uniform into two independent stages, 1/w_i =
  // p_max · (1/w_i)/p_max with p_max = max_j 1/w_j.  The first stage is
  // colour-blind, so the *fade candidates* are one Binomial(dd, p_max)
  // draw, and only candidate pairs ever need their colours resolved —
  // non-candidate pair members keep shade and colour and stay in the
  // lazy rest pools with everyone else.  The candidate pairs are a
  // uniform subset of the dd pairs, so their 2·cand members are a
  // uniform sample of the dark population minus the adopted responders
  // (uniform subset of a uniform subset), and their pairing is a uniform
  // perfect matching: the same-colour candidate-pair counts come from
  // the O(k) slot-occupancy chain — colour i first splits its members
  // between double-open pairs and half-filled ones (hypergeometric),
  // then the fully-monochromatic pair count among the double-open pairs
  // is one rng::full_pairs draw.  With k equal weights the second-stage
  // thinning probability is exactly 1, so every monochromatic candidate
  // fades without a further draw.
  const std::int64_t dd = dark_resp - adopts;
  // Scalar-chain support: every derived count is a sub-sample of its
  // parent, so all of them are non-negative by construction — a negative
  // here means a hypergeometric draw escaped its support.
  SIM_ASSERT(lights >= 0 && lights <= participants);
  SIM_ASSERT(light_init >= 0 && light_init <= len);
  SIM_ASSERT(dark_resp >= 0 && dark_resp <= len);
  SIM_ASSERT(adopts >= 0 && dd >= 0);
  for (std::size_t i = 0; i < k; ++i)
    rest_dark_pool_[i] = dark[i] - adopt_in_[i];
  const std::int64_t cand = rng::binomial(gen, dd, max_inv_weight);
  rng::multivariate_hypergeometric(gen, rest_dark_pool_, 2 * cand,
                                   pair_members_);
  std::int64_t open_pairs = cand;  // pairs with both slots still free
  std::int64_t singles = 0;        // pairs with one slot already taken
  for (std::size_t i = 0; i < k; ++i) {
    const std::int64_t members = pair_members_[i];
    const std::int64_t in_pairs = rng::hypergeometric(
        gen, 2 * open_pairs + singles, 2 * open_pairs, members);
    const std::int64_t mono = rng::full_pairs(gen, open_pairs, in_pairs);
    diag_[i] = mono;
    const std::int64_t half = in_pairs - 2 * mono;
    open_pairs -= mono + half;
    singles += half - (members - in_pairs);
    SIM_ASSERT(open_pairs >= 0 && singles >= 0);
  }
  // All 2·cand candidate-pair slots must be exactly filled once every
  // colour's members are placed.
  SIM_DCHECK_EQ(open_pairs, 0);
  SIM_DCHECK_EQ(singles, 0);

  // (4) Fades (second-stage thinning of the monochromatic candidates),
  // aggregate deltas, and the collision bookkeeping.  Used agents whose
  // colours the chain determined: the adopt responders (still dark),
  // the adopters (now dark of their responder's colour — the
  // initiator/responder matching is a uniform bijection, so the new
  // dark colours are the adopt_in multiset again), the candidate pair
  // members (dark, minus the faded initiators) and the faded agents
  // (light).  Everyone else keeps both shade and colour, and their
  // colours were never drawn: the rest pools (population minus
  // known-colour agents) cover them, used and untouched alike.
  rest_dark_total_ = 0;
  rest_light_total_ = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::int64_t fades_i =
        rng::binomial(gen, diag_[i], fade_ratio[i]);
    rest_dark_pool_[i] -= pair_members_[i];
    rest_light_pool_[i] = light[i] - adopt_out_[i];
    rest_dark_total_ += rest_dark_pool_[i];
    rest_light_total_ += rest_light_pool_[i];
    known_dark_[i] = 2 * adopt_in_[i] + pair_members_[i] - fades_i;
    known_light_[i] = fades_i;
    dark[i] += adopt_in_[i] - fades_i;
    light[i] += fades_i - adopt_out_[i];
    outcome_.adopt_in[i] += adopt_in_[i];
    outcome_.adopt_out[i] += adopt_out_[i];
    outcome_.fade_by_color[i] += fades_i;
    outcome_.adopts += adopt_in_[i];
    outcome_.fades += fades_i;
  }
  // Scalar used/untouched split of the rest pools: dark participants not
  // adopted and not in candidate pairs, light participants that did not
  // adopt.
  rest_dark_used_ = (participants - lights) - adopts - 2 * cand;
  rest_light_used_ = lights - adopts;
  SIM_IF_CHECKED({
    SIM_DCHECK_GE(rest_dark_used_, 0);
    SIM_DCHECK_GE(rest_light_used_, 0);
    for (std::size_t i = 0; i < k; ++i) {
      SIM_DCHECK_GE(known_dark_[i], 0);
      SIM_DCHECK_GE(known_light_[i], 0);
      SIM_DCHECK_GE(rest_dark_pool_[i], 0);
      SIM_DCHECK_GE(rest_light_pool_[i], 0);
      SIM_DCHECK_GE(dark[i], 0);
      SIM_DCHECK_GE(light[i], 0);
    }
  });
}

void CollisionBatcher::collision_step(std::span<std::int64_t> dark,
                                      std::span<std::int64_t> light,
                                      std::int64_t n, std::int64_t used,
                                      rng::Xoshiro256& gen) {
  const auto k = static_cast<std::size_t>(k_);
  const std::span<const double> inv_weight = context_->inv_weight();
  const std::int64_t untouched = n - used;
  // The colliding interaction is a uniform ordered pair of distinct
  // agents conditioned on touching the used set U; the three cases
  // partition the conditioning event.
  const std::int64_t both = used * (used - 1);
  const std::int64_t cross = used * untouched;
  const std::int64_t r = rng::uniform_below(gen, both + 2 * cross);
  const bool init_used = r < both + cross;
  const bool resp_used = r < both || r >= both + cross;

  // Untouched split of the rest pools (the used split was recorded by
  // apply_batch); every count below is mutated as agents materialise, so
  // the second pick automatically excludes the first — the exact
  // sequential law of sampling without replacement.
  std::int64_t rest_dark_untouched = rest_dark_total_ - rest_dark_used_;
  std::int64_t rest_light_untouched = rest_light_total_ - rest_light_used_;

  // Uniform class draw from the used or untouched set, dark block first
  // (the same flattening as CountSimulation::pick_class).  A used pick
  // scans the known-colour groups (adopt pairs + dd-pair members on the
  // dark side, faded agents on the light side) and then the lazy rest
  // blocks; an untouched pick is entirely lazy.  A lazy hit draws the
  // agent's colour from the shared rest pool — the marginal of one
  // member of the integrated-out split — and removes it from the pool.
  struct Pick {
    bool is_dark = false;
    std::size_t color = 0;
  };
  const auto draw_from_pool = [&](std::vector<std::int64_t>& pool,
                                  std::int64_t& pool_total) -> std::size_t {
    std::int64_t target = rng::uniform_below(gen, pool_total);
    for (std::size_t i = 0; i < k; ++i) {
      if (target < pool[i]) {
        --pool[i];
        --pool_total;
        return i;
      }
      target -= pool[i];
    }
    throw std::logic_error(
        "CollisionBatcher::collision_step: inconsistent rest pool");
  };
  const auto pick = [&](bool from_used, std::int64_t pool_total) -> Pick {
    std::int64_t target = rng::uniform_below(gen, pool_total);
    if (from_used) {
      for (std::size_t i = 0; i < k; ++i) {
        if (target < known_dark_[i]) {
          --known_dark_[i];
          return {true, i};
        }
        target -= known_dark_[i];
      }
      if (target < rest_dark_used_) {
        --rest_dark_used_;
        return {true, draw_from_pool(rest_dark_pool_, rest_dark_total_)};
      }
      target -= rest_dark_used_;
      for (std::size_t i = 0; i < k; ++i) {
        if (target < known_light_[i]) {
          --known_light_[i];
          return {false, i};
        }
        target -= known_light_[i];
      }
      if (target < rest_light_used_) {
        --rest_light_used_;
        return {false, draw_from_pool(rest_light_pool_, rest_light_total_)};
      }
      throw std::logic_error(
          "CollisionBatcher::collision_step: inconsistent used totals");
    }
    if (target < rest_dark_untouched) {
      --rest_dark_untouched;
      return {true, draw_from_pool(rest_dark_pool_, rest_dark_total_)};
    }
    target -= rest_dark_untouched;
    if (target < rest_light_untouched) {
      --rest_light_untouched;
      return {false, draw_from_pool(rest_light_pool_, rest_light_total_)};
    }
    throw std::logic_error(
        "CollisionBatcher::collision_step: inconsistent untouched totals");
  };

  const Pick initiator = pick(init_used, init_used ? used : untouched);
  const Pick responder =
      pick(resp_used, (resp_used ? used : untouched) -
                          ((init_used == resp_used) ? 1 : 0));

  if (!initiator.is_dark && responder.is_dark) {
    --light[initiator.color];
    ++dark[responder.color];
    ++outcome_.adopts;
    ++outcome_.adopt_out[initiator.color];
    ++outcome_.adopt_in[responder.color];
    outcome_.collision_adopt_from =
        static_cast<std::int64_t>(initiator.color);
    outcome_.collision_adopt_to =
        static_cast<std::int64_t>(responder.color);
  } else if (initiator.is_dark && responder.is_dark &&
             initiator.color == responder.color) {
    if (rng::bernoulli(gen, inv_weight[initiator.color])) {
      --dark[initiator.color];
      ++light[initiator.color];
      ++outcome_.fades;
      ++outcome_.fade_by_color[initiator.color];
      outcome_.collision_fade = static_cast<std::int64_t>(initiator.color);
    }
  }
}

}  // namespace divpp::batch
