#ifndef DIVPP_BATCH_COLLISION_BATCH_H
#define DIVPP_BATCH_COLLISION_BATCH_H

/// \file collision_batch.h
/// The collision-batch engine: sub-constant amortised time per
/// interaction on the lumped Diversification chain.
///
/// Technique (Berenbrink et al., "Simulating Population Protocols in
/// Sub-Constant Time per Interaction"): run the scheduler until an agent
/// is picked that already took part since the last collision.  While no
/// agent repeats, the 2ℓ agents of ℓ consecutive interactions are
/// *distinct*, so no interaction observes the effect of another — the
/// whole stretch commutes and can be applied to the count state in
/// aggregate:
///
///   1. the collision-free run length ℓ is a birthday-problem variable
///      with survival  P(ℓ >= j) = n! / (n-2j)! / (n(n-1))^j,
///      drawn by exact inversion from a cached survival table
///      (RunLengthTable — amortised O(log n) per draw);
///   2. the 2ℓ distinct participants are a uniform ordered sample
///      without replacement, so their shade totals, per-colour
///      compositions (lp/dp), and the initiator/responder slot splits
///      are a chain of hypergeometric and multivariate-hypergeometric
///      draws; adopts are the light-initiator/dark-responder matches of
///      the uniform slot pairing (one more hypergeometric), and the
///      adopting/adopted colours are uniform sub-splits;
///   3. the dark–dark pairs form a uniform perfect matching on their
///      pooled members, so the same-colour pair counts come from an
///      O(k) chain of slot-occupancy draws (rng::full_pairs) instead of
///      an O(k²) contingency table; fades are then binomial thinnings
///      with the per-colour rate 1/w_i;
///   4. the interaction that *caused* the collision touches the used set
///      and is resolved as a single exact step against the used/untouched
///      pool compositions.
///
/// Per batch the engine spends O(k) counting draws, each O(1 + sd) with
/// sd = O(n^{1/4}); a batch covers ℓ = Θ(√n) interactions in
/// expectation, so the amortised cost per interaction is
/// O(k / n^{1/4}), vanishing as n grows with k fixed.  This is what
/// makes n = 10⁷–10⁸ sweeps tractable (bench e20_batch).
///
/// Distributional contract: a run assembled from these batches has
/// *exactly* the law of the single-step chain (tests/test_batch.cpp pins
/// per-window count distributions against step() with chi-square tests).
/// The RNG draw sequence necessarily differs from both step() and the
/// jump chain — the README's reproducibility note applies.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/weights.h"
#include "rng/xoshiro.h"

namespace divpp::batch {

/// Samples the collision-free run length ℓ >= 1 for a population of n
/// agents: the number of complete interactions before the first repeated
/// agent, i.e. the largest j with "all 2j agents distinct", drawn from
///   P(ℓ >= j) = n! / ((n-2j)! · (n(n-1))^j)
/// by inversion (O(ℓ) exact log1p walk for small n, O(log n) binary
/// search on the Stirling-form log-survival for large n).  The batcher
/// itself uses the cached RunLengthTable below; this free function is
/// the table-free reference.
/// \pre n >= 2.  The result never exceeds floor(n/2).
[[nodiscard]] std::int64_t collision_free_run_length(rng::Xoshiro256& gen,
                                                     std::int64_t n);

/// Cached exact inversion table for the collision-free run length at a
/// fixed n: survival values S(j) computed by the defining product
/// recurrence down to below the smallest uniform the generator can
/// produce, so table inversion is distributionally identical to the
/// reference sampler.  Build cost O(√n) once; sample cost O(log n).
class RunLengthTable {
 public:
  explicit RunLengthTable(std::int64_t n);

  /// One run-length draw (a single uniform + binary search).
  [[nodiscard]] std::int64_t sample(rng::Xoshiro256& gen) const;

  [[nodiscard]] std::int64_t population() const noexcept { return n_; }

 private:
  std::int64_t n_ = 0;
  std::vector<double> survival_;  ///< survival_[j-1] = S(j), j >= 1
};

/// Applies collision batches to a lumped Diversification configuration.
///
/// Value-semantic over a palette; owns only O(k) scratch plus the O(√n)
/// run-length table (rebuilt when the population size changes).  The
/// counts are borrowed per call, so one batcher can serve many
/// configurations with the same palette.
class CollisionBatcher {
 public:
  explicit CollisionBatcher(const core::WeightMap& weights);

  /// Advances the configuration by at most `budget` interactions: one
  /// collision batch, truncated to the budget, plus the collision
  /// interaction itself when it falls inside the budget.  Returns the
  /// number of interactions consumed (>= 1 when budget >= 1).
  ///
  /// `dark`/`light` are mutated in place; totals are *not* maintained for
  /// the caller (sum the spans or track the return value).
  /// \pre spans sized k = num_colors(); budget >= 1; n = Σ counts >= 2.
  std::int64_t advance(std::span<std::int64_t> dark,
                       std::span<std::int64_t> light, std::int64_t budget,
                       rng::Xoshiro256& gen);

  /// The aggregate outcome of the most recent advance() — per-colour
  /// adopt and fade margins, exposed so agent-level batching
  /// (batch/agent_batch.h) and tests can replay the same count deltas.
  struct Outcome {
    std::int64_t interactions = 0;  ///< consumed, == advance()'s return
    std::int64_t adopts = 0;        ///< adopt transitions applied
    std::int64_t fades = 0;         ///< fade transitions applied
    /// adopt_out[i] light-i agents adopted some colour (light_i -= ..).
    std::vector<std::int64_t> adopt_out;
    /// adopt_in[j] agents turned dark-j by adopting (dark_j += ..).
    std::vector<std::int64_t> adopt_in;
    /// fade_by_color[i] dark-i agents turned light-i.
    std::vector<std::int64_t> fade_by_color;
    /// The collision interaction's own effect, already *included* in the
    /// margins above, broken out because its initiator may be an agent
    /// that changed class earlier in the same advance() — agent-level
    /// resolution (batch/agent_batch.cpp) must replay it after the
    /// batch phase.  Exactly one of the pairs is set when the collision
    /// changed the state: an adopt (from = light colour, to = dark
    /// colour) or a fade (colour), else all three stay -1.
    std::int64_t collision_adopt_from = -1;
    std::int64_t collision_adopt_to = -1;
    std::int64_t collision_fade = -1;
  };
  [[nodiscard]] const Outcome& last_outcome() const noexcept {
    return outcome_;
  }

  [[nodiscard]] std::int64_t num_colors() const noexcept {
    return static_cast<std::int64_t>(inv_weight_.size());
  }

 private:
  /// Applies `len` collision-free interactions in aggregate and records
  /// the used-set compositions for the collision step.
  void apply_batch(std::span<std::int64_t> dark,
                   std::span<std::int64_t> light, std::int64_t n,
                   std::int64_t len, rng::Xoshiro256& gen);

  /// Resolves the single interaction that caused the collision (at least
  /// one participant from the used set of the preceding batch).
  void collision_step(std::span<std::int64_t> dark,
                      std::span<std::int64_t> light, std::int64_t n,
                      std::int64_t used, rng::Xoshiro256& gen);

  std::vector<double> inv_weight_;  // 1 / w_i
  Outcome outcome_;
  std::optional<RunLengthTable> run_table_;  // cached for the current n

  // Scratch, all of size k (resized once in the constructor):
  std::vector<std::int64_t> lp_, dp_;  // light/dark participant colours
  std::vector<std::int64_t> adopt_in_, adopt_out_;
  std::vector<std::int64_t> diag_, row_;
  // Post-batch class composition of the used (touched) agents, consumed
  // by collision_step:
  std::vector<std::int64_t> used_dark_, used_light_;
};

}  // namespace divpp::batch

#endif  // DIVPP_BATCH_COLLISION_BATCH_H
