#ifndef DIVPP_BATCH_COLLISION_BATCH_H
#define DIVPP_BATCH_COLLISION_BATCH_H

/// \file collision_batch.h
/// The collision-batch engine: sub-constant amortised time per
/// interaction on the lumped Diversification chain.
///
/// Technique (Berenbrink et al., "Simulating Population Protocols in
/// Sub-Constant Time per Interaction"): run the scheduler until an agent
/// is picked that already took part since the last collision.  While no
/// agent repeats, the 2ℓ agents of ℓ consecutive interactions are
/// *distinct*, so no interaction observes the effect of another — the
/// whole stretch commutes and can be applied to the count state in
/// aggregate:
///
///   1. the collision-free run length ℓ is a birthday-problem variable
///      with survival  P(ℓ >= j) = n! / (n-2j)! / (n(n-1))^j,
///      drawn from a cached alias table of the survival increments
///      (RunLengthTable — O(√n) build per population size, O(1) per
///      draw);
///   2. the 2ℓ distinct participants are a uniform ordered sample
///      without replacement, so the shade total, the initiator/responder
///      slot split, and the light-initiator/dark-responder (adopt) match
///      count of the uniform slot pairing are three hypergeometric
///      draws; the adopting light colours and adopted dark colours are
///      then multivariate-hypergeometric splits *directly off the
///      population counts* (a uniform subset of a uniform subset is a
///      uniform subset — the full participant compositions are never
///      materialised);
///   3. a dark–dark pair fades only when it is monochromatic AND clears
///      the rate 1/w_i, which factors into a colour-blind first stage at
///      p_max = max_j 1/w_j and a per-colour remainder — so the fade
///      *candidates* are one Binomial(dd, p_max) draw and only candidate
///      pairs get their colours resolved (one multivariate-
///      hypergeometric for the members of a uniform sub-matching);
///      their same-colour pair counts come from an O(k) chain of
///      slot-occupancy draws (rng::full_pairs) instead of an O(k²)
///      contingency table, and the surviving monochromatic candidates
///      fade after the second-stage thinning (free when weights are
///      equal);
///   4. the interaction that *caused* the collision touches the used set
///      and is resolved as a single exact step: participants whose
///      colours were integrated out in step 2 are materialised *lazily*
///      (at most two agents), by exchangeability of sampling without
///      replacement, so resolving the collision stays O(k) while the
///      batch chain stays 3k draws shorter per batch than the PR-3
///      formulation.
///
/// Per batch the engine spends O(k) counting draws, each O(1) expected
/// time (HRUA rejection above the variance cutoff, short chop-down walks
/// below — rng/discrete.h); a batch covers ℓ = Θ(√n) interactions in
/// expectation, so the amortised cost per interaction is O(k / √n),
/// vanishing as n grows with k fixed.  This is what makes n = 10⁷–10⁹
/// sweeps tractable (bench e20_batch, BENCH_pr4.json).
///
/// Distributional contract: a run assembled from these batches has
/// *exactly* the law of the single-step chain (tests/test_batch.cpp pins
/// per-window count distributions against step() with chi-square tests).
/// The RNG draw sequence necessarily differs from both step() and the
/// jump chain — the README's reproducibility note applies.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/weights.h"
#include "rng/xoshiro.h"
#include "sampling/alias.h"

namespace divpp::context {
class SamplerContext;
}  // namespace divpp::context

namespace divpp::batch {

/// Samples the collision-free run length ℓ >= 1 for a population of n
/// agents: the number of complete interactions before the first repeated
/// agent, i.e. the largest j with "all 2j agents distinct", drawn from
///   P(ℓ >= j) = n! / ((n-2j)! · (n(n-1))^j)
/// by inversion (O(ℓ) exact log1p walk for small n, O(log n) binary
/// search on the Stirling-form log-survival for large n).  The batcher
/// itself uses the cached RunLengthTable below; this free function is
/// the table-free reference.
/// \pre n >= 2.  The result never exceeds floor(n/2).
[[nodiscard]] std::int64_t collision_free_run_length(rng::Xoshiro256& gen,
                                                     std::int64_t n);

/// Cached exact sampler for the collision-free run length at a fixed n:
/// survival values S(j) computed by the defining product recurrence down
/// to below the smallest uniform the generator can produce, their
/// increments loaded into a Walker/Vose alias table — so a draw is O(1)
/// (PR 4; previously a binary search) and distributionally identical to
/// the reference sampler up to the same sub-2⁻⁵³ tail lumping the
/// inversion already performed.  Build cost O(√n) once.
class RunLengthTable {
 public:
  explicit RunLengthTable(std::int64_t n);

  /// One run-length draw in O(1) (one alias-table draw).
  [[nodiscard]] std::int64_t sample(rng::Xoshiro256& gen) const;

  [[nodiscard]] std::int64_t population() const noexcept { return n_; }

  /// Heap footprint of the backing alias table (shared-context cache
  /// accounting — context/sampler_context.h).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return table_.has_value() ? table_->memory_bytes() : 0;
  }

 private:
  std::int64_t n_ = 0;
  std::optional<sampling::AliasTable> table_;  ///< masses S(j) − S(j+1)
};

/// Applies collision batches to a lumped Diversification configuration.
///
/// Value-semantic over a palette; owns only O(k) scratch plus the O(√n)
/// run-length table (rebuilt when the population size changes).  The
/// counts are borrowed per call, so one batcher can serve many
/// configurations with the same palette.
///
/// Since PR 8 the immutable per-palette state (propensity layouts) and
/// the per-population run-length tables live in a
/// context::SamplerContext.  The solo constructor builds a private
/// layout-only context (bit-identical to the pre-PR-8 private members);
/// the shared constructor borrows a cached context, whose eager tables
/// replace the private run_table_ whenever the population matches —
/// table contents are pure deterministic functions of n, so shared and
/// private runs consume identical draw sequences.
class CollisionBatcher {
 public:
  explicit CollisionBatcher(const core::WeightMap& weights);

  /// Shares `context`'s layouts and eager run-length tables.  Copies of
  /// the batcher share the context (it is immutable).  \pre non-null.
  explicit CollisionBatcher(
      std::shared_ptr<const context::SamplerContext> context);

  /// Advances the configuration by at most `budget` interactions: one
  /// collision batch, truncated to the budget, plus the collision
  /// interaction itself when it falls inside the budget.  Returns the
  /// number of interactions consumed (>= 1 when budget >= 1).
  ///
  /// `dark`/`light` are mutated in place; totals are *not* maintained for
  /// the caller (sum the spans or track the return value).
  /// \pre spans sized k = num_colors(); budget >= 1; n = Σ counts >= 2.
  std::int64_t advance(std::span<std::int64_t> dark,
                       std::span<std::int64_t> light, std::int64_t budget,
                       rng::Xoshiro256& gen);

  /// Exclude-one-agent entry of the draw chain: advances the
  /// configuration as advance() does, but with one distinguished agent
  /// (shade `excluded_dark`, colour `excluded_color`) held out of every
  /// participant draw — the batch runs on the counts minus that agent, so
  /// no interaction of the stretch can relocate it.  This is the
  /// count-level conditional law behind the batched tagged engine
  /// (core::TaggedCountSimulation): conditioned on the tagged agent not
  /// taking part in a stretch, the stretch is a plain collision batch of
  /// the remaining n − 1 agents — mirroring the step-mode rule that draws
  /// the initiator from the counts minus the tagged agent.
  /// The excluded cell is restored before returning, so the spans keep
  /// the full population.  \pre the excluded cell's count >= 1; the
  /// population minus the excluded agent still has >= 2 agents.
  std::int64_t advance_excluding(std::span<std::int64_t> dark,
                                 std::span<std::int64_t> light,
                                 core::ColorId excluded_color,
                                 bool excluded_dark, std::int64_t budget,
                                 rng::Xoshiro256& gen);

  /// Tagged-involvement law (public test hook; PR 5).  Each interaction
  /// of the scheduler picks a fixed agent as initiator with probability
  /// 1/n and as responder with probability 1/n — disjoint events, i.i.d.
  /// across interactions and independent of everything else drawn.  Over
  /// a window of `window` interactions the number of interactions that
  /// touch the tagged agent is therefore *exactly* Binomial(window, 2/n),
  /// and given the count the touched interaction indices are a uniform
  /// random subset (uniform order statistics).  Fills `positions` with
  /// the touched indices, strictly increasing, each in [0, window).
  /// O(m log m) for m drawn positions (Floyd's subset sampling + sort).
  /// \pre n >= 2, window >= 0.
  static void draw_tagged_involvement(rng::Xoshiro256& gen, std::int64_t n,
                                      std::int64_t window,
                                      std::vector<std::int64_t>& positions);

  /// The aggregate outcome of the most recent advance() — per-colour
  /// adopt and fade margins, exposed so agent-level batching
  /// (batch/agent_batch.h) and tests can replay the same count deltas.
  struct Outcome {
    std::int64_t interactions = 0;  ///< consumed, == advance()'s return
    std::int64_t adopts = 0;        ///< adopt transitions applied
    std::int64_t fades = 0;         ///< fade transitions applied
    /// adopt_out[i] light-i agents adopted some colour (light_i -= ..).
    std::vector<std::int64_t> adopt_out;
    /// adopt_in[j] agents turned dark-j by adopting (dark_j += ..).
    std::vector<std::int64_t> adopt_in;
    /// fade_by_color[i] dark-i agents turned light-i.
    std::vector<std::int64_t> fade_by_color;
    /// The collision interaction's own effect, already *included* in the
    /// margins above, broken out because its initiator may be an agent
    /// that changed class earlier in the same advance() — agent-level
    /// resolution (batch/agent_batch.cpp) must replay it after the
    /// batch phase.  Exactly one of the pairs is set when the collision
    /// changed the state: an adopt (from = light colour, to = dark
    /// colour) or a fade (colour), else all three stay -1.
    std::int64_t collision_adopt_from = -1;
    std::int64_t collision_adopt_to = -1;
    std::int64_t collision_fade = -1;
    /// RNG draws the advance() consumed, audited by replay
    /// (check::draws_between) — the window-scoped accounting the
    /// time-parallel engine's checked builds use to certify that a
    /// speculative window consumed only its own jump-offset substream.
    /// Filled in SIM_CHECKED builds only; −1 otherwise (the audit replays
    /// the stream, so it is never free).
    std::int64_t draws = -1;
  };
  [[nodiscard]] const Outcome& last_outcome() const noexcept {
    return outcome_;
  }

  [[nodiscard]] std::int64_t num_colors() const noexcept { return k_; }

 private:
  /// Applies `len` collision-free interactions in aggregate and records
  /// the used-set bookkeeping (known-colour groups + lazy rest pools)
  /// for the collision step.
  void apply_batch(std::span<std::int64_t> dark,
                   std::span<std::int64_t> light, std::int64_t n,
                   std::int64_t len, rng::Xoshiro256& gen);

  /// Resolves the single interaction that caused the collision (at least
  /// one participant from the used set of the preceding batch),
  /// materialising the colour of any participant the batch chain
  /// integrated out — an exact sequential draw from the rest pools.
  void collision_step(std::span<std::int64_t> dark,
                      std::span<std::int64_t> light, std::int64_t n,
                      std::int64_t used, rng::Xoshiro256& gen);

  /// Immutable palette state: 1/w_i, p_max of the two-stage fade
  /// thinning, (1/w_i)/p_max (exactly 1 at the max), and any eager
  /// run-length tables.  Private layout-only for the solo constructor,
  /// a shared cache entry otherwise — never null.
  std::shared_ptr<const context::SamplerContext> context_;
  std::int64_t k_ = 0;  // context_->num_colors(), cached for the header
  Outcome outcome_;
  /// Private table for populations the context has no eager table for
  /// (layout-only context, or a population that drifted from the
  /// context's n).
  std::optional<RunLengthTable> run_table_;

  // Scratch, all of size k (resized once in the constructor):
  std::vector<std::int64_t> adopt_in_, adopt_out_;
  std::vector<std::int64_t> pair_members_;  // dd-pair member colours
  std::vector<std::int64_t> diag_;          // monochromatic dd pairs
  /// Used agents whose post-batch colour is already determined by the
  /// margins: 2·adopt_in_ + pair_members_ − fades on the dark side; the
  /// light side's knowns are exactly the faded agents.
  std::vector<std::int64_t> known_dark_, known_light_;
  /// Colour pools of the agents whose colours the batch chain never
  /// drew: rest_dark_pool_ = dark − adopt_in_ − pair_members_ holds both
  /// the used "rest" dark participants and every untouched dark agent
  /// (likewise light); collision_step draws colours from these pools
  /// sequentially — exact by exchangeability.
  std::vector<std::int64_t> rest_dark_pool_, rest_light_pool_;
  // Scalar split of the rest pools between used and untouched, set by
  // apply_batch and consumed (mutated) by collision_step:
  std::int64_t rest_dark_used_ = 0;   // used dark agents with lazy colour
  std::int64_t rest_light_used_ = 0;  // used light agents with lazy colour
  std::int64_t rest_dark_total_ = 0;  // Σ rest_dark_pool_
  std::int64_t rest_light_total_ = 0; // Σ rest_light_pool_
};

}  // namespace divpp::batch

#endif  // DIVPP_BATCH_COLLISION_BATCH_H
