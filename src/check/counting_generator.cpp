#include "check/counting_generator.h"

#include <stdexcept>

namespace divpp::check {

std::int64_t draws_between(const rng::Xoshiro256& from,
                           const rng::Xoshiro256& to, std::int64_t cap) {
  rng::Xoshiro256 cursor = from;
  for (std::int64_t steps = 0; steps <= cap; ++steps) {
    if (cursor == to) return steps;
    (void)cursor();
  }
  return -1;
}

std::int64_t CountingBitGenerator::consumed(std::int64_t cap) const {
  const std::int64_t draws = draws_between(baseline_, gen_, cap);
  if (draws < 0) {
    throw std::runtime_error(
        "CountingBitGenerator::consumed: state not reachable from the "
        "baseline within the replay cap (was the generator jumped or "
        "reseeded mid-audit?)");
  }
  return draws;
}

}  // namespace divpp::check
