#ifndef DIVPP_CHECK_COUNTING_GENERATOR_H
#define DIVPP_CHECK_COUNTING_GENERATOR_H

/// \file counting_generator.h
/// RNG-stream auditing: turn the documented draw-count contracts into
/// assertable facts.
///
/// The engines document stream contracts the README could only state as
/// prose — "the auto engine adds no draws beyond its delegate's", "the
/// tagged decomposed engines consume the involvement draw plus the
/// delegate's draws", "replica streams are jump()-offset and never
/// resynchronise".  CountingBitGenerator makes them testable:
///
///  * it wraps a concrete rng::Xoshiro256 and hands out `generator()` for
///    APIs that take `Xoshiro256&` — pass-through is bit-identical to
///    using the wrapped generator directly (pinned in test_check.cpp);
///  * `consumed()` reports exactly how many 64-bit draws have been taken
///    since construction (or the last `rebase()`), by replaying a
///    snapshot of the state forward until it matches the live state.
///    xoshiro256** is a bijective step map, so the replay count *is* the
///    draw count — no instrumentation sits on the hot path, which is why
///    auditing cannot perturb the stream it audits.
///
/// The replay is O(draws), so audits belong in tests (where draw counts
/// are thousands, not billions).  `consumed()` requires that the wrapped
/// generator advanced only through operator() — a jump() lands 2^128
/// steps away and fails the replay cap.

#include <cstdint>

#include "rng/xoshiro.h"

namespace divpp::check {

/// Number of operator() steps taking `from` to `to`, or -1 when `to` is
/// not reachable within `cap` steps (wrong stream, or a jump() happened).
[[nodiscard]] std::int64_t draws_between(const rng::Xoshiro256& from,
                                         const rng::Xoshiro256& to,
                                         std::int64_t cap);

/// A UniformRandomBitGenerator wrapping rng::Xoshiro256 whose consumed
/// draw count is exactly recoverable.  See the file comment.
class CountingBitGenerator {
 public:
  using result_type = rng::Xoshiro256::result_type;

  /// Replay budget for consumed(): generous for test-scale audits, small
  /// enough that a desynchronised stream fails fast (< 1 s).
  static constexpr std::int64_t kDefaultReplayCap = 1 << 26;

  explicit CountingBitGenerator(rng::Xoshiro256 gen) noexcept
      : gen_(gen), baseline_(gen) {}
  explicit CountingBitGenerator(std::uint64_t seed) noexcept
      : CountingBitGenerator(rng::Xoshiro256(seed)) {}

  /// Next 64 random bits — bit-identical to the wrapped generator.
  result_type operator()() noexcept { return gen_(); }

  [[nodiscard]] static constexpr result_type min() noexcept {
    return rng::Xoshiro256::min();
  }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return rng::Xoshiro256::max();
  }

  /// The wrapped generator, for APIs taking `Xoshiro256&`.  Draws taken
  /// through this reference are audited exactly like direct operator()
  /// calls.  Do not call jump()/fork() on it between rebase() and
  /// consumed().
  [[nodiscard]] rng::Xoshiro256& generator() noexcept { return gen_; }
  [[nodiscard]] const rng::Xoshiro256& generator() const noexcept {
    return gen_;
  }

  /// Draws consumed since construction or the last rebase().
  /// \throws std::runtime_error when the count exceeds `cap` (stream was
  /// jumped or replaced).  O(consumed) time.
  [[nodiscard]] std::int64_t consumed(
      std::int64_t cap = kDefaultReplayCap) const;

  /// Restarts the audit window at the current state.
  void rebase() noexcept { baseline_ = gen_; }

 private:
  rng::Xoshiro256 gen_;
  rng::Xoshiro256 baseline_;  ///< state at the start of the audit window
};

}  // namespace divpp::check

#endif  // DIVPP_CHECK_COUNTING_GENERATOR_H
