#include "check/invariant.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace divpp::check {

namespace {

/// The installed handler; nullptr means "print and abort".  Written only
/// from set_failure_handler (single-threaded test setup by contract).
FailureHandler g_handler = nullptr;

[[noreturn]] void abort_with(const char* file, int line,
                             const char* message) {
  std::fprintf(stderr, "SIM_CHECKED invariant violated at %s:%d: %s\n",
               file, line, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

FailureHandler set_failure_handler(FailureHandler handler) noexcept {
  const FailureHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

void invariant_failure(const char* file, int line, const char* message) {
  if (g_handler != nullptr) g_handler(file, line, message);
  // A returning handler (or none) still terminates: an invariant
  // violation means the simulation state can no longer be trusted.
  abort_with(file, line, message);
}

void invariant_failure_cmp(const char* file, int line, const char* message,
                           long double lhs, long double rhs) {
  char buffer[256];
  // Integer-valued operands (the common case: counts, times) print as
  // integers; anything else keeps enough digits to diagnose drift.
  if (lhs == std::floor(lhs) && rhs == std::floor(rhs) &&
      std::fabs(lhs) < 1e18L && std::fabs(rhs) < 1e18L) {
    std::snprintf(buffer, sizeof buffer, "%s (%" PRId64 " vs %" PRId64 ")",
                  message, static_cast<std::int64_t>(lhs),
                  static_cast<std::int64_t>(rhs));
  } else {
    std::snprintf(buffer, sizeof buffer, "%s (%.17Lg vs %.17Lg)", message,
                  lhs, rhs);
  }
  invariant_failure(file, line, buffer);
}

}  // namespace divpp::check
