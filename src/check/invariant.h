#ifndef DIVPP_CHECK_INVARIANT_H
#define DIVPP_CHECK_INVARIANT_H

/// \file invariant.h
/// Compiled-out invariant checks for the simulation hot paths.
///
/// The exact engines rest on hand-proved invariants — count conservation,
/// Fenwick/propensity consistency, per-engine RNG-stream contracts.  This
/// header turns those proofs into machine-checked assertions that cost
/// *nothing* unless the build opts in:
///
///  * `-DSIM_CHECKED=ON` (CMake option, or the `checked` preset) defines
///    the `SIM_CHECKED` macro for the whole library and every dependent
///    target, and the macros below expand to real checks;
///  * in a default build the macros expand to `((void)0)` — the condition
///    expression is *not evaluated* (and not compiled), so release
///    codegen is unchanged (tests/test_check.cpp pins the off-mode
///    non-evaluation; the golden-stream tests pin that instrumentation
///    never perturbs the RNG draw sequence).
///
/// Macro family:
///
///  * SIM_ASSERT(cond)          — cheap O(1) checks on per-step paths;
///  * SIM_DCHECK(cond)          — checks that may do real work (O(k)
///    scans, pool sums); same behaviour, the split is documentation of
///    intended cost;
///  * SIM_DCHECK_EQ/NE/GE/LE(a, b) — comparisons that print both values;
///  * SIM_IF_CHECKED(stmt)      — runs a statement (e.g. an O(k)
///    `check_invariants()` walk) only in checked builds.
///
/// A failed check calls the failure handler: by default it prints
/// `file:line: expression` to stderr and aborts.  Tests install a
/// throwing handler through ScopedFailureHandler so on-mode semantics are
/// testable without death tests.

#include <cstdint>

namespace divpp::check {

/// Called on every failed SIM_ASSERT / SIM_DCHECK.  `message` carries the
/// stringified condition (and formatted values for the _EQ family).  A
/// handler may throw; if it returns, the process aborts.
using FailureHandler = void (*)(const char* file, int line,
                                const char* message);

/// Installs `handler` (nullptr restores the abort default); returns the
/// previous handler.  Not thread-safe — install before spawning workers
/// (tests install around single-threaded calls).
FailureHandler set_failure_handler(FailureHandler handler) noexcept;

/// Routes to the installed failure handler, aborting if it returns.
void invariant_failure(const char* file, int line, const char* message);

/// Comparison failure: formats "lhs vs rhs" after `message` and fails.
void invariant_failure_cmp(const char* file, int line, const char* message,
                           long double lhs, long double rhs);

/// RAII failure-handler swap for tests.
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler handler) noexcept
      : previous_(set_failure_handler(handler)) {}
  ~ScopedFailureHandler() { set_failure_handler(previous_); }
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;

 private:
  FailureHandler previous_;
};

namespace detail {

template <typename L, typename R>
inline void check_cmp(bool ok, const L& lhs, const R& rhs, const char* file,
                      int line, const char* message) {
  if (!ok) {
    invariant_failure_cmp(file, line, message,
                          static_cast<long double>(lhs),
                          static_cast<long double>(rhs));
  }
}

}  // namespace detail

}  // namespace divpp::check

#ifdef SIM_CHECKED

#define SIM_ASSERT(cond)                                              \
  (static_cast<bool>(cond)                                            \
       ? static_cast<void>(0)                                         \
       : ::divpp::check::invariant_failure(__FILE__, __LINE__, #cond))
#define SIM_DCHECK(cond) SIM_ASSERT(cond)
#define SIM_DCHECK_CMP_(a, b, op)                                     \
  ::divpp::check::detail::check_cmp((a)op(b), (a), (b), __FILE__,     \
                                    __LINE__, #a " " #op " " #b)
#define SIM_DCHECK_EQ(a, b) SIM_DCHECK_CMP_(a, b, ==)
#define SIM_DCHECK_NE(a, b) SIM_DCHECK_CMP_(a, b, !=)
#define SIM_DCHECK_GE(a, b) SIM_DCHECK_CMP_(a, b, >=)
#define SIM_DCHECK_LE(a, b) SIM_DCHECK_CMP_(a, b, <=)
#define SIM_IF_CHECKED(stmt)   \
  do {                         \
    stmt;                      \
  } while (false)

#else  // !SIM_CHECKED — conditions are not evaluated, not even compiled.

#define SIM_ASSERT(cond) static_cast<void>(0)
#define SIM_DCHECK(cond) static_cast<void>(0)
#define SIM_DCHECK_EQ(a, b) static_cast<void>(0)
#define SIM_DCHECK_NE(a, b) static_cast<void>(0)
#define SIM_DCHECK_GE(a, b) static_cast<void>(0)
#define SIM_DCHECK_LE(a, b) static_cast<void>(0)
#define SIM_IF_CHECKED(stmt) \
  do {                       \
  } while (false)

#endif  // SIM_CHECKED

#endif  // DIVPP_CHECK_INVARIANT_H
