#include "context/sampler_context.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "rng/discrete.h"

namespace divpp::context {

namespace {

/// The shared layout computation — the same arithmetic
/// CollisionBatcher's solo constructor ran before PR 8, kept in one
/// place so shared and private paths cannot drift (bit-identity).
void build_layouts(const core::WeightMap& weights,
                   std::vector<double>& inv_weight, double& max_inv_weight,
                   std::vector<double>& fade_ratio) {
  const auto k = static_cast<std::size_t>(weights.num_colors());
  inv_weight.resize(k);
  for (std::size_t i = 0; i < k; ++i)
    inv_weight[i] = 1.0 / weights.weights()[i];
  max_inv_weight = *std::max_element(inv_weight.begin(), inv_weight.end());
  fade_ratio.resize(k);
  // x / x == 1.0 exactly in IEEE arithmetic, so the heaviest colours'
  // second-stage thinning hits binomial()'s p == 1 fast path and the
  // composed rate stays within one rounding of 1/w_i for the rest.
  for (std::size_t i = 0; i < k; ++i)
    fade_ratio[i] = inv_weight[i] / max_inv_weight;
}

}  // namespace

SamplerContext::SamplerContext(core::WeightMap weights)
    : weights_(std::move(weights)) {
  build_layouts(weights_, inv_weight_, max_inv_weight_, fade_ratio_);
}

SamplerContext::SamplerContext(std::int64_t n, core::WeightMap weights)
    : weights_(std::move(weights)), n_(n) {
  if (n < 2)
    throw std::invalid_argument("SamplerContext: need n >= 2 agents");
  build_layouts(weights_, inv_weight_, max_inv_weight_, fade_ratio_);
  // Eager tables for the two populations a scenario at fixed n ever
  // batches: n itself, and n − 1 for the tagged hold-out (the batcher
  // runs on the counts minus the tagged agent).  Populations that drift
  // (add_agents) fall back to the batcher's private table.
  tables_.reserve(2);
  tables_.emplace_back(n);
  if (n - 1 >= 2) tables_.emplace_back(n - 1);
  // Warm the process-global log-factorial table so no scenario pays the
  // one-time 64 Ki lgamma build mid-run.
  rng::warm_log_fact_table();
}

const batch::RunLengthTable* SamplerContext::run_length_table(
    std::int64_t m) const noexcept {
  for (const batch::RunLengthTable& table : tables_)
    if (table.population() == m) return &table;
  return nullptr;
}

std::size_t SamplerContext::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(SamplerContext);
  bytes += inv_weight_.capacity() * sizeof(double);
  bytes += fade_ratio_.capacity() * sizeof(double);
  bytes += static_cast<std::size_t>(weights_.num_colors()) * sizeof(double);
  for (const batch::RunLengthTable& table : tables_)
    bytes += sizeof(batch::RunLengthTable) + table.memory_bytes();
  return bytes;
}

std::size_t SamplerContext::estimate_bytes(std::int64_t n,
                                           std::int64_t k) noexcept {
  // RunLengthTable tabulates survival down to 2^-54: ~4.3·√n entries,
  // bounded by its own reserve guess 8 + 5·√n.  An alias slot costs
  // ~3 × 8 bytes (prob + alias + pmf); two tables (n and n − 1).
  const double entries =
      8.0 + 5.0 * std::sqrt(static_cast<double>(std::max<std::int64_t>(n, 2)));
  const auto per_table =
      static_cast<std::size_t>(entries * 3.0 * sizeof(double)) +
      sizeof(batch::RunLengthTable);
  return sizeof(SamplerContext) + 2 * per_table +
         static_cast<std::size_t>(k) * 3 * sizeof(double);
}

ContextAdmissionError::ContextAdmissionError(std::size_t requested_bytes,
                                             std::size_t budget_bytes,
                                             std::size_t referenced_bytes)
    : std::runtime_error(
          "SamplerContextCache: context of " +
          std::to_string(requested_bytes) + " bytes rejected (budget " +
          std::to_string(budget_bytes) + " bytes, " +
          std::to_string(referenced_bytes) +
          " bytes pinned by in-use contexts)"),
      requested_(requested_bytes),
      budget_(budget_bytes),
      referenced_(referenced_bytes) {}

SamplerContextCache::SamplerContextCache(std::size_t budget_bytes)
    : budget_(budget_bytes) {}

bool SamplerContextCache::make_room(std::size_t needed) {
  if (needed > budget_) return false;
  while (resident_bytes_ + needed > budget_) {
    // LRU-first scan for an unreferenced entry.  use_count() == 1 means
    // only the cache holds it *under this lock*: any other reference was
    // handed out by acquire() and is still alive on some scenario.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->context.use_count() == 1) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) return false;  // everything is in use
    resident_bytes_ -= victim->bytes;
    ++stats_.evictions;
    index_.erase(victim->key);
    lru_.erase(victim);
  }
  return true;
}

std::shared_ptr<const SamplerContext> SamplerContextCache::acquire(
    std::int64_t n, const core::WeightMap& weights) {
  if (n < 2)
    throw std::invalid_argument(
        "SamplerContextCache::acquire: need n >= 2 agents");
  Key key;
  key.n = n;
  key.weight_bits.reserve(
      static_cast<std::size_t>(weights.num_colors()));
  for (const double w : weights.weights())
    key.weight_bits.push_back(std::bit_cast<std::uint64_t>(w));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, found->second);  // mark most recent
      return found->second->context;
    }
    // Pre-build admission check on the cheap upper bound: refuse before
    // paying the O(√n) build when the context can never fit.
    const std::size_t estimate =
        SamplerContext::estimate_bytes(n, weights.num_colors());
    if (estimate > budget_) {
      ++stats_.rejections;
      std::size_t referenced = 0;
      for (const Entry& entry : lru_)
        if (entry.context.use_count() > 1) referenced += entry.bytes;
      throw ContextAdmissionError(estimate, budget_, referenced);
    }
  }

  // Build outside the lock: an O(√n) construction must not serialise
  // every other scenario's cache hit.
  auto context = std::make_shared<const SamplerContext>(n, weights);
  const std::size_t bytes = context->memory_bytes();

  std::lock_guard<std::mutex> lock(mutex_);
  const auto found = index_.find(key);
  if (found != index_.end()) {
    // A concurrent builder won the race; its copy is interned and
    // deterministically identical — use it and drop ours.
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, found->second);
    return found->second->context;
  }
  if (!make_room(bytes)) {
    ++stats_.rejections;
    std::size_t referenced = 0;
    for (const Entry& entry : lru_)
      if (entry.context.use_count() > 1) referenced += entry.bytes;
    throw ContextAdmissionError(bytes, budget_, referenced);
  }
  ++stats_.misses;
  lru_.push_front(Entry{std::move(key), context, bytes});
  index_.emplace(lru_.front().key, lru_.begin());
  resident_bytes_ += bytes;
  return context;
}

ContextCacheStats SamplerContextCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ContextCacheStats out = stats_;
  out.entries = static_cast<std::int64_t>(lru_.size());
  out.resident_bytes = resident_bytes_;
  return out;
}

void SamplerContextCache::clear_unreferenced() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->context.use_count() == 1) {
      resident_bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

SamplerContextCache& SamplerContextCache::global() {
  static SamplerContextCache cache;
  return cache;
}

}  // namespace divpp::context
