#ifndef DIVPP_CONTEXT_SAMPLER_CONTEXT_H
#define DIVPP_CONTEXT_SAMPLER_CONTEXT_H

/// \file sampler_context.h
/// Shared immutable sampler state for many-scenario workloads (PR 8).
///
/// A `CountSimulation` owns expensive derived structures that depend only
/// on its scenario parameters (n, k, w), not on its trajectory: the
/// collision-batch run-length alias tables (O(√n) build, ~4.3·√n entries
/// each — one for n, and one for n − 1 because the tagged hold-out runs
/// the batcher on the counts minus the tagged agent), the inverse-weight
/// and fade-ratio propensity layouts, and the process-global
/// log-factorial table the counting samplers consult.  Solo runs build
/// them privately and never notice; a sweep of 10⁴ scenarios over a
/// handful of distinct (n, k, w) keys rebuilds the same tables 10⁴
/// times.
///
/// `SamplerContext` freezes those immutables behind a `shared_ptr`:
/// construction does all the work, after which the object is never
/// mutated, so concurrent readers need no synchronisation and a context
/// can back any number of simultaneous scenarios.  `SamplerContextCache`
/// interns contexts by (n, k, w) under a memory budget: acquire() returns
/// the cached entry (refcounted — a context stays alive while any
/// scenario holds it), evicts least-recently-used *unreferenced* entries
/// when over budget, and rejects admission with a structured
/// `ContextAdmissionError` when even a full eviction pass cannot make
/// room — an OOM-scale scenario is refused, never allowed to take the
/// sweep down.
///
/// Bit-identity: every table and layout here is a pure deterministic
/// function of (n, w) computed by the same code the private
/// (per-batcher) path runs, so attaching a shared context changes no RNG
/// draw and no trajectory — pinned per engine in tests/test_context.cpp.

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "batch/collision_batch.h"
#include "core/weights.h"

namespace divpp::context {

/// Immutable per-(n, k, w) sampler state.  Thread-safe by construction:
/// after the constructor returns, nothing is ever written.
class SamplerContext {
 public:
  /// Layout-only context: the propensity layouts for `weights`, no
  /// run-length tables (the private fallback a solo CollisionBatcher
  /// builds when it has no population commitment — tables are then
  /// built per population on demand, exactly as before PR 8).
  explicit SamplerContext(core::WeightMap weights);

  /// Full context for a population of `n` agents: layouts plus eager
  /// run-length tables for n and n − 1 (the tagged hold-out population),
  /// and an eager warm of the process-global log-factorial table.
  /// \pre n >= 2.
  SamplerContext(std::int64_t n, core::WeightMap weights);

  [[nodiscard]] const core::WeightMap& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] std::int64_t population() const noexcept { return n_; }
  [[nodiscard]] std::int64_t num_colors() const noexcept {
    return weights_.num_colors();
  }

  /// The run-length table for a population of exactly `m` agents, or
  /// nullptr when this context holds none for `m` (layout-only context,
  /// or a simulation whose population drifted from n via add_agents) —
  /// the caller then falls back to a private table, so dynamic
  /// populations degrade gracefully instead of faulting.
  [[nodiscard]] const batch::RunLengthTable* run_length_table(
      std::int64_t m) const noexcept;

  /// Propensity layouts (1/w_i, max_j 1/w_j, (1/w_i)/max_j 1/w_j) — the
  /// fade pre-thinning constants every CollisionBatcher on this palette
  /// shares.
  [[nodiscard]] std::span<const double> inv_weight() const noexcept {
    return inv_weight_;
  }
  [[nodiscard]] double max_inv_weight() const noexcept {
    return max_inv_weight_;
  }
  [[nodiscard]] std::span<const double> fade_ratio() const noexcept {
    return fade_ratio_;
  }

  /// Heap footprint of the owned tables and layouts (the quantity the
  /// cache charges against its budget).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Cheap a-priori upper bound on memory_bytes() for a population of n
  /// with k colours — what admission control consults before paying the
  /// O(√n) build.  (Table entries are bounded by the RunLengthTable
  /// reserve estimate 8 + 5·√n, two tables, ~3 doubles-or-int64 per
  /// alias slot, plus the O(k) layouts.)
  [[nodiscard]] static std::size_t estimate_bytes(std::int64_t n,
                                                  std::int64_t k) noexcept;

 private:
  core::WeightMap weights_;
  std::int64_t n_ = 0;  ///< 0 for a layout-only context
  std::vector<double> inv_weight_;
  double max_inv_weight_ = 1.0;
  std::vector<double> fade_ratio_;
  /// Tables for populations n and n − 1 (empty when layout-only).
  std::vector<batch::RunLengthTable> tables_;
};

/// Thrown by SamplerContextCache::acquire when a context cannot be
/// admitted under the memory budget even after evicting every
/// unreferenced entry — the structured "this scenario is too big for
/// this server" signal a sweep runner maps to a per-scenario rejection.
class ContextAdmissionError : public std::runtime_error {
 public:
  ContextAdmissionError(std::size_t requested_bytes,
                        std::size_t budget_bytes,
                        std::size_t referenced_bytes);

  /// Bytes the rejected context needs.
  [[nodiscard]] std::size_t requested_bytes() const noexcept {
    return requested_;
  }
  /// The cache's configured budget.
  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_; }
  /// Bytes pinned by currently referenced (in-use) entries at rejection
  /// time — what eviction could not reclaim.
  [[nodiscard]] std::size_t referenced_bytes() const noexcept {
    return referenced_;
  }

 private:
  std::size_t requested_ = 0;
  std::size_t budget_ = 0;
  std::size_t referenced_ = 0;
};

/// Cache observability (sweep reports, tests).
struct ContextCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;       ///< acquisitions that built a context
  std::int64_t evictions = 0;    ///< unreferenced entries dropped for room
  std::int64_t rejections = 0;   ///< ContextAdmissionError throws
  std::int64_t entries = 0;      ///< resident contexts right now
  std::size_t resident_bytes = 0;  ///< Σ memory_bytes over residents
};

/// Bounded, thread-safe interning cache of SamplerContexts keyed by
/// (n, k, w).  See the file comment for the admission/eviction policy.
class SamplerContextCache {
 public:
  /// Default budget: 256 MiB — thousands of n = 10⁶ contexts, tens of
  /// n = 10⁹ ones.
  static constexpr std::size_t kDefaultBudgetBytes =
      std::size_t{256} << 20;

  explicit SamplerContextCache(
      std::size_t budget_bytes = kDefaultBudgetBytes);

  /// Returns the shared context for (n, weights), building and interning
  /// it on a miss.  The returned pointer keeps the entry referenced:
  /// eviction only ever drops entries no caller holds.  Thread-safe; a
  /// build runs outside the cache lock, so concurrent first acquisitions
  /// of the same key may build twice (one result is interned, both are
  /// valid — the tables are deterministic, so they are interchangeable).
  /// \throws ContextAdmissionError when the context cannot fit;
  /// std::invalid_argument on n < 2.
  [[nodiscard]] std::shared_ptr<const SamplerContext> acquire(
      std::int64_t n, const core::WeightMap& weights);

  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_; }

  [[nodiscard]] ContextCacheStats stats() const;

  /// Drops every unreferenced entry (tests; a sweep between phases).
  void clear_unreferenced();

  /// The process-wide cache solo helpers share (SweepRunner owns its
  /// own, budgeted per options).
  [[nodiscard]] static SamplerContextCache& global();

 private:
  struct Key {
    std::int64_t n = 0;
    /// Weights as raw bit patterns: exact (bit-level) palette identity,
    /// totally ordered for the map without float-compare warts.
    std::vector<std::uint64_t> weight_bits;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const SamplerContext> context;
    std::size_t bytes = 0;
  };

  /// Evicts LRU-first unreferenced entries until `needed` more bytes fit
  /// under the budget or nothing evictable remains.  Returns whether the
  /// bytes now fit.  Caller holds mutex_.
  bool make_room(std::size_t needed);

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  std::size_t budget_ = 0;
  std::size_t resident_bytes_ = 0;
  ContextCacheStats stats_;
};

}  // namespace divpp::context

#endif  // DIVPP_CONTEXT_SAMPLER_CONTEXT_H
