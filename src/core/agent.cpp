#include "core/agent.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace divpp::core {

std::vector<std::int64_t> ColorCounts::supports() const {
  std::vector<std::int64_t> out(dark.size());
  for (std::size_t i = 0; i < dark.size(); ++i) out[i] = dark[i] + light[i];
  return out;
}

std::int64_t ColorCounts::total_dark() const noexcept {
  return std::accumulate(dark.begin(), dark.end(), std::int64_t{0});
}

std::int64_t ColorCounts::total_light() const noexcept {
  return std::accumulate(light.begin(), light.end(), std::int64_t{0});
}

std::int64_t ColorCounts::min_dark() const noexcept {
  if (dark.empty()) return 0;
  return *std::min_element(dark.begin(), dark.end());
}

ColorCounts tally(std::span<const AgentState> agents, std::int64_t num_colors) {
  if (num_colors < 1) throw std::invalid_argument("tally: need num_colors >= 1");
  ColorCounts counts;
  counts.dark.assign(static_cast<std::size_t>(num_colors), 0);
  counts.light.assign(static_cast<std::size_t>(num_colors), 0);
  for (const AgentState& agent : agents) {
    if (agent.color < 0 || agent.color >= num_colors)
      throw std::invalid_argument("tally: agent colour out of range");
    auto& bucket = agent.is_dark() ? counts.dark : counts.light;
    ++bucket[static_cast<std::size_t>(agent.color)];
  }
  return counts;
}

std::vector<AgentState> make_initial_agents(
    std::span<const std::int64_t> supports) {
  std::int64_t n = 0;
  for (const std::int64_t s : supports) {
    if (s < 0) throw std::invalid_argument("make_initial_agents: negative count");
    n += s;
  }
  if (n == 0) throw std::invalid_argument("make_initial_agents: empty population");
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < supports.size(); ++i) {
    for (std::int64_t j = 0; j < supports[i]; ++j)
      agents.push_back(AgentState{static_cast<ColorId>(i), kDark});
  }
  return agents;
}

}  // namespace divpp::core
