#ifndef DIVPP_CORE_AGENT_H
#define DIVPP_CORE_AGENT_H

/// \file agent.h
/// Per-agent state for the Diversification protocol family.
///
/// The randomized protocol (paper Eq. (2)) uses one extra bit: the shade.
/// Light (shade 0) agents are open to change colour; dark (shade 1) agents
/// are confident and never change colour directly.  The derandomised
/// variant generalises the shade to an integer in [0, w_i] (0 = light).
/// One state type serves both; rules enforce their own shade domains.

#include <cstdint>
#include <span>
#include <vector>

#include "core/weights.h"

namespace divpp::core {

/// Shade constants for the randomized (1-bit) protocol.
inline constexpr std::int32_t kLight = 0;
inline constexpr std::int32_t kDark = 1;

/// State of one agent: its colour and its shade/confidence level.
struct AgentState {
  ColorId color = 0;
  std::int32_t shade = kDark;

  /// True when the agent is open to adopting another colour.
  [[nodiscard]] constexpr bool is_light() const noexcept { return shade == 0; }
  /// True when the agent defends its colour.
  [[nodiscard]] constexpr bool is_dark() const noexcept { return shade > 0; }

  friend constexpr bool operator==(AgentState, AgentState) = default;
};

/// Per-colour (dark, light, total) tallies of an agent vector.
struct ColorCounts {
  std::vector<std::int64_t> dark;
  std::vector<std::int64_t> light;

  /// dark[i] + light[i] = C_i, the total support of colour i.
  [[nodiscard]] std::vector<std::int64_t> supports() const;
  /// Σ_i dark[i] = A(t).
  [[nodiscard]] std::int64_t total_dark() const noexcept;
  /// Σ_i light[i] = a(t).
  [[nodiscard]] std::int64_t total_light() const noexcept;
  /// Smallest per-colour dark support (sustainability invariant: >= 1).
  [[nodiscard]] std::int64_t min_dark() const noexcept;
};

/// Tallies an agent vector into per-colour dark/light counts.
/// \pre every agent colour lies in [0, num_colors).
[[nodiscard]] ColorCounts tally(std::span<const AgentState> agents,
                                std::int64_t num_colors);

/// Builds an initial population of n all-dark agents whose colour multiset
/// matches `supports` (supports[i] agents of colour i; Σ supports = n).
[[nodiscard]] std::vector<AgentState> make_initial_agents(
    std::span<const std::int64_t> supports);

}  // namespace divpp::core

#endif  // DIVPP_CORE_AGENT_H
