#include "core/checkpoint.h"

#include <array>
#include <cerrno>
#include <charconv>
#include <limits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace divpp::core {

namespace {

constexpr const char* kCountHeader = "divpp-count-v1";
constexpr const char* kDerandomisedHeader = "divpp-derandomised-v1";
constexpr const char* kRunHeaderV2 = "divpp-run-v2";

// Size-field caps: a corrupted or hostile size must fail as
// invalid_argument, never as a multi-gigabyte allocation (the payload
// for a genuine palette of this size would be far larger than any blob
// the writers produce).
constexpr std::int64_t kMaxColors = 1 << 20;
constexpr std::int64_t kMaxShadeSlots = 1 << 20;
constexpr std::int64_t kMaxPendingEvents = 1 << 20;

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("checkpoint: " + what);
}

std::string next_token(std::istringstream& in, const char* what) {
  std::string token;
  if (!(in >> token))
    fail(std::string("truncated input (expected ") + what + ")");
  return token;
}

/// Sections are fixed-order and appear exactly once, so a duplicated,
/// missing, or reordered section always trips the next keyword check.
void expect_keyword(std::istringstream& in, const char* keyword) {
  const std::string token =
      next_token(in, (std::string("'") + keyword + "' section").c_str());
  if (token != keyword)
    fail("expected '" + std::string(keyword) + "' section, got '" + token +
         "' (sections are fixed-order, exactly once)");
}

void expect_end_of_input(std::istringstream& in) {
  std::string token;
  if (in >> token) fail("trailing garbage after checkpoint body: '" + token + "'");
}

/// Full-token double parse — decimal or C99 hexfloat (v2 writes
/// hexfloats for bit-exact round trips; v1 blobs stay decimal).
/// Rejects partially consumed tokens and non-finite values, including
/// the overflow-to-infinity strtod produces for out-of-range decimals.
double parse_double(const std::string& token, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size())
    fail(std::string("malformed ") + what + " '" + token + "'");
  if (!std::isfinite(value))
    fail(std::string(what) + " must be finite, got '" + token + "'");
  return value;
}

std::int64_t parse_int(const std::string& token, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range)
    fail(std::string(what) + " overflows int64: '" + token + "'");
  if (ec != std::errc{} || ptr != token.data() + token.size())
    fail(std::string("malformed ") + what + " '" + token + "'");
  return value;
}

std::uint64_t parse_hex_word(const std::string& token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 16);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      token.size() > 16)
    fail(std::string("malformed ") + what + " '" + token + "'");
  return value;
}

double read_double(std::istringstream& in, const char* what) {
  return parse_double(next_token(in, what), what);
}

std::int64_t read_int(std::istringstream& in, const char* what) {
  return parse_int(next_token(in, what), what);
}

std::vector<double> read_doubles(std::istringstream& in, std::size_t count,
                                 const char* what) {
  std::vector<double> values(count);
  for (double& v : values) v = read_double(in, what);
  return values;
}

std::vector<std::int64_t> read_counts(std::istringstream& in,
                                      std::size_t count, const char* what) {
  std::vector<std::int64_t> values(count);
  for (std::int64_t& v : values) {
    v = read_int(in, what);
    if (v < 0)
      fail(std::string("negative ") + what + " " + std::to_string(v));
  }
  return values;
}

std::int64_t read_sized(std::istringstream& in, const char* what,
                        std::int64_t min, std::int64_t max) {
  const std::int64_t value = read_int(in, what);
  if (value < min || value > max)
    fail(std::string(what) + " out of range [" + std::to_string(min) + ", " +
         std::to_string(max) + "]: " + std::to_string(value));
  return value;
}

/// C99 hexfloat rendering — the shortest representation that is
/// guaranteed bit-exact through any conforming strtod.
std::string hex_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

std::string hex_word(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// The parsed (not yet constructed) payload of a v2 blob.
struct ParsedV2 {
  std::vector<double> weights;
  std::int64_t time = 0;
  std::vector<std::int64_t> dark;
  std::vector<std::int64_t> light;
  std::int64_t active_transitions = 0;
  double ewma = -1.0;
  std::vector<std::pair<std::int64_t, std::int64_t>> events;  // (time, handle)
  std::int64_t next_handle = 0;
  std::array<std::uint64_t, 4> rng_state{};
  std::optional<AgentState> tagged;
};

ParsedV2 parse_v2(const std::string& text) {
  std::istringstream in(text);
  const std::string header = next_token(in, "header");
  if (header != kRunHeaderV2)
    fail("bad header (expected " + std::string(kRunHeaderV2) + ", got '" +
         header + "')");
  ParsedV2 out;
  expect_keyword(in, "k");
  const std::int64_t k = read_sized(in, "colour count", 1, kMaxColors);
  expect_keyword(in, "weights");
  out.weights = read_doubles(in, static_cast<std::size_t>(k), "weight");
  expect_keyword(in, "time");
  out.time = read_sized(in, "time", 0,
                        std::numeric_limits<std::int64_t>::max());
  expect_keyword(in, "dark");
  out.dark = read_counts(in, static_cast<std::size_t>(k), "dark count");
  expect_keyword(in, "light");
  out.light = read_counts(in, static_cast<std::size_t>(k), "light count");
  expect_keyword(in, "active_transitions");
  out.active_transitions =
      read_sized(in, "active_transitions", 0,
                 std::numeric_limits<std::int64_t>::max());
  expect_keyword(in, "ewma");
  out.ewma = read_double(in, "ewma");
  if (out.ewma != -1.0 && !(out.ewma >= 0.0 && out.ewma <= 1.0))
    fail("ewma must be -1 (unmeasured) or an active fraction in [0, 1]");
  expect_keyword(in, "events");
  const std::int64_t num_events =
      read_sized(in, "event count", 0, kMaxPendingEvents);
  out.events.reserve(static_cast<std::size_t>(num_events));
  for (std::int64_t e = 0; e < num_events; ++e) {
    expect_keyword(in, "event");
    const std::int64_t when = read_int(in, "event time");
    const std::int64_t handle = read_int(in, "event handle");
    if (when < out.time)
      fail("pending event time " + std::to_string(when) +
           " is before the checkpoint clock " + std::to_string(out.time));
    if (!out.events.empty() && when < out.events.back().first)
      fail("pending events out of firing order");
    if (handle < 0) fail("negative event handle");
    for (const auto& [t, h] : out.events)
      if (h == handle) fail("duplicate event handle " + std::to_string(handle));
    out.events.emplace_back(when, handle);
  }
  expect_keyword(in, "next_handle");
  out.next_handle = read_sized(in, "next_handle", 0,
                               std::numeric_limits<std::int64_t>::max());
  for (const auto& [t, h] : out.events)
    if (h >= out.next_handle)
      fail("event handle " + std::to_string(h) +
           " not below next_handle " + std::to_string(out.next_handle));
  expect_keyword(in, "rng");
  for (std::uint64_t& word : out.rng_state)
    word = parse_hex_word(next_token(in, "rng state word"), "rng state word");
  expect_keyword(in, "tagged");
  const std::string tag = next_token(in, "tagged state");
  if (tag != "none") {
    const std::int64_t color = parse_int(tag, "tagged colour");
    if (color < 0 || color >= k) fail("tagged colour out of range");
    const std::string shade = next_token(in, "tagged shade");
    if (shade != "dark" && shade != "light")
      fail("tagged shade must be 'dark' or 'light', got '" + shade + "'");
    out.tagged = AgentState{static_cast<ColorId>(color),
                            shade == "dark" ? kDark : kLight};
  }
  expect_keyword(in, "end");
  expect_end_of_input(in);
  return out;
}

}  // namespace

/// Private-state bridge for the v2 format (friend of CountSimulation):
/// v2 additionally round-trips the auto-engine EWMA, the transition
/// counter, and the pending-event schedule, which have no public
/// setters by design.
struct CheckpointAccess {
  static std::string write_v2(const CountSimulation& sim,
                              const rng::Xoshiro256& gen,
                              const AgentState* tagged) {
    std::ostringstream out;
    out << kRunHeaderV2 << "\n";
    out << "k " << sim.num_colors() << "\n";
    out << "weights";
    for (const double w : sim.weights().weights()) out << " " << hex_double(w);
    out << "\n";
    out << "time " << sim.time_ << "\n";
    out << "dark";
    for (const std::int64_t c : sim.dark_) out << " " << c;
    out << "\n";
    out << "light";
    for (const std::int64_t c : sim.light_) out << " " << c;
    out << "\n";
    out << "active_transitions " << sim.active_transitions_ << "\n";
    out << "ewma " << hex_double(sim.active_ewma_) << "\n";
    out << "events " << sim.pending_events_.size() << "\n";
    for (const auto& event : sim.pending_events_)
      out << "event " << event.time << " " << event.handle << "\n";
    out << "next_handle " << sim.next_event_handle_ << "\n";
    out << "rng";
    for (const std::uint64_t word : gen.state()) out << " " << hex_word(word);
    out << "\n";
    if (tagged != nullptr) {
      out << "tagged " << tagged->color << " "
          << (tagged->is_dark() ? "dark" : "light") << "\n";
    } else {
      out << "tagged none\n";
    }
    out << "end\n";
    return out.str();
  }

  static CountSimulation restore(ParsedV2&& parsed) {
    CountSimulation sim(WeightMap(std::move(parsed.weights)),
                        std::move(parsed.dark), std::move(parsed.light));
    sim.time_ = parsed.time;
    sim.active_transitions_ = parsed.active_transitions;
    sim.active_ewma_ = parsed.ewma;
    sim.next_event_handle_ = parsed.next_handle;
    sim.pending_events_.reserve(parsed.events.size());
    for (const auto& [when, handle] : parsed.events) {
      // Actions are code; a restored event carries a placeholder until
      // the caller re-attaches one (rebind_scheduled_event).
      sim.pending_events_.push_back(CountSimulation::PendingEvent{
          when, handle, [handle](CountSimulation&) {
            throw std::logic_error(
                "checkpoint resume: pending event " + std::to_string(handle) +
                " fired before rebind_scheduled_event re-attached its "
                "action");
          }});
    }
    return sim;
  }
};

std::string to_checkpoint(const CountSimulation& sim) {
  std::ostringstream out;
  out.precision(17);
  out << kCountHeader << "\n";
  out << "k " << sim.num_colors() << "\n";
  out << "weights";
  for (const double w : sim.weights().weights()) out << " " << w;
  out << "\n";
  out << "time " << sim.time() << "\n";
  out << "dark";
  for (const std::int64_t c : sim.dark_counts()) out << " " << c;
  out << "\n";
  out << "light";
  for (const std::int64_t c : sim.light_counts()) out << " " << c;
  out << "\n";
  return out.str();
}

CountSimulation count_simulation_from_checkpoint(const std::string& text) {
  std::istringstream in(text);
  const std::string header = next_token(in, "header");
  if (header != kCountHeader)
    fail("bad header (expected " + std::string(kCountHeader) + ")");
  expect_keyword(in, "k");
  const std::int64_t k = read_sized(in, "colour count", 1, kMaxColors);
  expect_keyword(in, "weights");
  auto weights = read_doubles(in, static_cast<std::size_t>(k), "weight");
  expect_keyword(in, "time");
  const std::int64_t time =
      read_sized(in, "time", 0, std::numeric_limits<std::int64_t>::max());
  expect_keyword(in, "dark");
  auto dark = read_counts(in, static_cast<std::size_t>(k), "dark count");
  expect_keyword(in, "light");
  auto light = read_counts(in, static_cast<std::size_t>(k), "light count");
  expect_end_of_input(in);
  CountSimulation sim(WeightMap(std::move(weights)), std::move(dark),
                      std::move(light));
  sim.time_ = time;
  return sim;
}

std::string to_checkpoint(const DerandomisedCountSimulation& sim) {
  std::ostringstream out;
  out.precision(17);
  out << kDerandomisedHeader << "\n";
  out << "k " << sim.num_colors() << "\n";
  out << "weights";
  for (const double w : sim.weights().weights()) out << " " << w;
  out << "\n";
  out << "time " << sim.time() << "\n";
  for (ColorId i = 0; i < sim.num_colors(); ++i) {
    out << "shades";
    for (std::int64_t s = 0; s <= sim.weights().integer_weight(i); ++s)
      out << " " << sim.shade_count(i, s);
    out << "\n";
  }
  return out.str();
}

DerandomisedCountSimulation derandomised_from_checkpoint(
    const std::string& text) {
  std::istringstream in(text);
  const std::string header = next_token(in, "header");
  if (header != kDerandomisedHeader)
    fail("bad header (expected " + std::string(kDerandomisedHeader) + ")");
  expect_keyword(in, "k");
  const std::int64_t k = read_sized(in, "colour count", 1, kMaxColors);
  expect_keyword(in, "weights");
  const auto weight_values =
      read_doubles(in, static_cast<std::size_t>(k), "weight");
  const WeightMap weights(weight_values);
  if (!weights.is_integral()) fail("non-integral weights");
  expect_keyword(in, "time");
  const std::int64_t time =
      read_sized(in, "time", 0, std::numeric_limits<std::int64_t>::max());
  std::vector<std::vector<std::int64_t>> shade_counts(
      static_cast<std::size_t>(k));
  for (ColorId i = 0; i < k; ++i) {
    const std::int64_t slots = weights.integer_weight(i) + 1;
    if (slots > kMaxShadeSlots)
      fail("shade block for colour " + std::to_string(i) +
           " exceeds the slot cap");
    expect_keyword(in, "shades");
    shade_counts[static_cast<std::size_t>(i)] =
        read_counts(in, static_cast<std::size_t>(slots), "shade count");
  }
  expect_end_of_input(in);
  DerandomisedCountSimulation sim(weights, std::move(shade_counts));
  sim.time_ = time;
  return sim;
}

std::string to_checkpoint_v2(const CountSimulation& sim,
                             const rng::Xoshiro256& gen) {
  return CheckpointAccess::write_v2(sim, gen, nullptr);
}

std::string to_checkpoint_v2(const TaggedCountSimulation& sim,
                             const rng::Xoshiro256& gen) {
  const AgentState tagged = sim.tagged_state();
  return CheckpointAccess::write_v2(sim.counts(), gen, &tagged);
}

bool checkpoint_v2_is_tagged(const std::string& text) {
  return parse_v2(text).tagged.has_value();
}

ResumedRun resume_run_from_checkpoint(const std::string& text) {
  ParsedV2 parsed = parse_v2(text);
  if (parsed.tagged.has_value())
    fail("blob is a tagged run (use resume_tagged_run_from_checkpoint)");
  rng::Xoshiro256 gen = rng::Xoshiro256::from_state(parsed.rng_state);
  return ResumedRun{CheckpointAccess::restore(std::move(parsed)), gen};
}

ResumedTaggedRun resume_tagged_run_from_checkpoint(const std::string& text) {
  ParsedV2 parsed = parse_v2(text);
  if (!parsed.tagged.has_value())
    fail("blob is an untagged run (use resume_run_from_checkpoint)");
  const AgentState tagged = *parsed.tagged;
  rng::Xoshiro256 gen = rng::Xoshiro256::from_state(parsed.rng_state);
  return ResumedTaggedRun{
      TaggedCountSimulation(CheckpointAccess::restore(std::move(parsed)),
                            tagged.color, tagged.is_dark()),
      gen};
}

}  // namespace divpp::core
