#include "core/checkpoint.h"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace divpp::core {

namespace {

constexpr const char* kCountHeader = "divpp-count-v1";
constexpr const char* kDerandomisedHeader = "divpp-derandomised-v1";

std::vector<double> read_doubles(std::istringstream& in, std::size_t count,
                                 const char* what) {
  std::vector<double> values(count);
  for (double& v : values) {
    if (!(in >> v))
      throw std::invalid_argument(std::string("checkpoint: truncated ") +
                                  what);
  }
  return values;
}

std::vector<std::int64_t> read_ints(std::istringstream& in, std::size_t count,
                                    const char* what) {
  std::vector<std::int64_t> values(count);
  for (std::int64_t& v : values) {
    if (!(in >> v))
      throw std::invalid_argument(std::string("checkpoint: truncated ") +
                                  what);
  }
  return values;
}

}  // namespace

std::string to_checkpoint(const CountSimulation& sim) {
  std::ostringstream out;
  out.precision(17);
  out << kCountHeader << "\n";
  out << "k " << sim.num_colors() << "\n";
  out << "weights";
  for (const double w : sim.weights().weights()) out << " " << w;
  out << "\n";
  out << "time " << sim.time() << "\n";
  out << "dark";
  for (const std::int64_t c : sim.dark_counts()) out << " " << c;
  out << "\n";
  out << "light";
  for (const std::int64_t c : sim.light_counts()) out << " " << c;
  out << "\n";
  return out.str();
}

CountSimulation count_simulation_from_checkpoint(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  if (!(in >> token) || token != kCountHeader)
    throw std::invalid_argument(
        "checkpoint: bad header (expected divpp-count-v1)");
  std::int64_t k = 0;
  if (!(in >> token >> k) || token != "k" || k < 1)
    throw std::invalid_argument("checkpoint: bad colour count");
  if (!(in >> token) || token != "weights")
    throw std::invalid_argument("checkpoint: missing weights");
  const auto weights =
      read_doubles(in, static_cast<std::size_t>(k), "weights");
  std::int64_t time = 0;
  if (!(in >> token >> time) || token != "time" || time < 0)
    throw std::invalid_argument("checkpoint: bad time");
  if (!(in >> token) || token != "dark")
    throw std::invalid_argument("checkpoint: missing dark counts");
  auto dark = read_ints(in, static_cast<std::size_t>(k), "dark counts");
  if (!(in >> token) || token != "light")
    throw std::invalid_argument("checkpoint: missing light counts");
  auto light = read_ints(in, static_cast<std::size_t>(k), "light counts");
  CountSimulation sim(WeightMap(weights), std::move(dark), std::move(light));
  sim.time_ = time;
  return sim;
}

std::string to_checkpoint(const DerandomisedCountSimulation& sim) {
  std::ostringstream out;
  out.precision(17);
  out << kDerandomisedHeader << "\n";
  out << "k " << sim.num_colors() << "\n";
  out << "weights";
  for (const double w : sim.weights().weights()) out << " " << w;
  out << "\n";
  out << "time " << sim.time() << "\n";
  for (ColorId i = 0; i < sim.num_colors(); ++i) {
    out << "shades";
    for (std::int64_t s = 0; s <= sim.weights().integer_weight(i); ++s)
      out << " " << sim.shade_count(i, s);
    out << "\n";
  }
  return out.str();
}

DerandomisedCountSimulation derandomised_from_checkpoint(
    const std::string& text) {
  std::istringstream in(text);
  std::string token;
  if (!(in >> token) || token != kDerandomisedHeader)
    throw std::invalid_argument(
        "checkpoint: bad header (expected divpp-derandomised-v1)");
  std::int64_t k = 0;
  if (!(in >> token >> k) || token != "k" || k < 1)
    throw std::invalid_argument("checkpoint: bad colour count");
  if (!(in >> token) || token != "weights")
    throw std::invalid_argument("checkpoint: missing weights");
  const auto weight_values =
      read_doubles(in, static_cast<std::size_t>(k), "weights");
  const WeightMap weights(weight_values);
  if (!weights.is_integral())
    throw std::invalid_argument("checkpoint: non-integral weights");
  std::int64_t time = 0;
  if (!(in >> token >> time) || token != "time" || time < 0)
    throw std::invalid_argument("checkpoint: bad time");
  std::vector<std::vector<std::int64_t>> shade_counts(
      static_cast<std::size_t>(k));
  for (ColorId i = 0; i < k; ++i) {
    if (!(in >> token) || token != "shades")
      throw std::invalid_argument("checkpoint: missing shade block");
    shade_counts[static_cast<std::size_t>(i)] = read_ints(
        in, static_cast<std::size_t>(weights.integer_weight(i) + 1),
        "shade counts");
  }
  DerandomisedCountSimulation sim(weights, std::move(shade_counts));
  sim.time_ = time;
  return sim;
}

}  // namespace divpp::core
