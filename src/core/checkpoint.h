#ifndef DIVPP_CORE_CHECKPOINT_H
#define DIVPP_CORE_CHECKPOINT_H

/// \file checkpoint.h
/// Human-readable checkpointing of the lumped simulators.
///
/// Two formats with two different promises:
///
///  * **v1** (`divpp-count-v1` / `divpp-derandomised-v1`) captures the
///    *configuration* only (palette, counts, clock).  The RNG is not
///    part of a v1 checkpoint — callers own their generators and seeds —
///    so a restored run continues the same *Markov chain* from the same
///    configuration under a fresh seed, which is all exchangeability
///    requires.  v1 cannot promise bit-identity with an uninterrupted
///    run, and does not capture the auto-engine estimate or pending
///    events.
///
///  * **v2** (`divpp-run-v2`, PR 7) captures the *complete resumable
///    run*: configuration, clock, the full 256-bit Xoshiro256 state, the
///    auto-engine EWMA and transition counter, the pending-event
///    schedule, and (optionally) the tagged-agent state.  A run killed
///    at a checkpoint boundary and resumed from the v2 blob replays the
///    remaining windows bit-identically to the uninterrupted run — the
///    durability contract runtime/durable_runner.h builds on (see the
///    README "Durable runs" section for the exact window-alignment
///    requirements).  v2 doubles are serialised as C99 hexfloats, so
///    every weight and estimate round-trips bit-exactly; readers accept
///    decimal too, for hand-written blobs.
///
/// Event actions are code and cannot cross a process boundary: v2
/// serialises each pending event's (time, handle) and restores it with a
/// placeholder action that throws std::logic_error if it fires unrebound
/// — callers re-attach their actions with
/// CountSimulation::rebind_scheduled_event.
///
/// Both formats are versioned, line-oriented text; every parser rejects
/// malformed, truncated, reordered, or trailing-garbage input with
/// std::invalid_argument, never a malformed simulation.  On-disk
/// atomicity and corruption *detection* are the next layer up
/// (fault/durable_file.h), so a torn file never reaches these parsers
/// looking valid.

#include <string>

#include "core/count_simulation.h"
#include "core/derandomised_count.h"
#include "rng/xoshiro.h"

namespace divpp::core {

// ---- v1: configuration-only (RNG caller-owned) -------------------------

/// Serialises a CountSimulation (palette, counts, clock) as text.
[[nodiscard]] std::string to_checkpoint(const CountSimulation& sim);

/// Restores a CountSimulation from to_checkpoint output.
/// \throws std::invalid_argument on malformed or version-mismatched input.
[[nodiscard]] CountSimulation count_simulation_from_checkpoint(
    const std::string& text);

/// Serialises a DerandomisedCountSimulation as text.
[[nodiscard]] std::string to_checkpoint(
    const DerandomisedCountSimulation& sim);

/// Restores a DerandomisedCountSimulation from to_checkpoint output.
[[nodiscard]] DerandomisedCountSimulation
derandomised_from_checkpoint(const std::string& text);

// ---- v2: complete resumable run (RNG included) -------------------------

/// Serialises the complete resumable run state: `sim` (counts, clock,
/// auto-engine EWMA, transition counter, pending-event schedule) plus
/// the generator driving it.  Hexfloat doubles — bit-exact round trip.
[[nodiscard]] std::string to_checkpoint_v2(const CountSimulation& sim,
                                           const rng::Xoshiro256& gen);

/// v2 of a tagged run: the wrapped counts plus the tagged agent's
/// (colour, shade), same generator contract.
[[nodiscard]] std::string to_checkpoint_v2(const TaggedCountSimulation& sim,
                                           const rng::Xoshiro256& gen);

/// A restored v2 run: continue by advancing `sim` with `gen` on the same
/// window schedule as the original run.
struct ResumedRun {
  CountSimulation sim;
  rng::Xoshiro256 gen;
};

/// A restored tagged v2 run.
struct ResumedTaggedRun {
  TaggedCountSimulation sim;
  rng::Xoshiro256 gen;
};

/// True when a v2 blob carries a tagged-agent state.  Fully validates
/// the blob; throws std::invalid_argument on anything malformed.
[[nodiscard]] bool checkpoint_v2_is_tagged(const std::string& text);

/// Restores an *untagged* v2 checkpoint.
/// \throws std::invalid_argument on malformed input or a tagged blob.
[[nodiscard]] ResumedRun resume_run_from_checkpoint(const std::string& text);

/// Restores a *tagged* v2 checkpoint.
/// \throws std::invalid_argument on malformed input or an untagged blob.
[[nodiscard]] ResumedTaggedRun resume_tagged_run_from_checkpoint(
    const std::string& text);

}  // namespace divpp::core

#endif  // DIVPP_CORE_CHECKPOINT_H
