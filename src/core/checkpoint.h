#ifndef DIVPP_CORE_CHECKPOINT_H
#define DIVPP_CORE_CHECKPOINT_H

/// \file checkpoint.h
/// Human-readable checkpointing of the lumped simulators.
///
/// Long experiments (the paper's persistence windows are measured in
/// multiples of n·log n) benefit from resumable state.  The format is a
/// small, versioned, line-oriented text block; the RNG is *not* part of
/// the checkpoint (callers own their generators and seeds), so resuming
/// with a fresh seed continues the same Markov chain from the same
/// configuration — which is all exchangeability requires.

#include <string>

#include "core/count_simulation.h"
#include "core/derandomised_count.h"

namespace divpp::core {

/// Serialises a CountSimulation (palette, counts, clock) as text.
[[nodiscard]] std::string to_checkpoint(const CountSimulation& sim);

/// Restores a CountSimulation from to_checkpoint output.
/// \throws std::invalid_argument on malformed or version-mismatched input.
[[nodiscard]] CountSimulation count_simulation_from_checkpoint(
    const std::string& text);

/// Serialises a DerandomisedCountSimulation as text.
[[nodiscard]] std::string to_checkpoint(
    const DerandomisedCountSimulation& sim);

/// Restores a DerandomisedCountSimulation from to_checkpoint output.
[[nodiscard]] DerandomisedCountSimulation
derandomised_from_checkpoint(const std::string& text);

}  // namespace divpp::core

#endif  // DIVPP_CORE_CHECKPOINT_H
