#include "core/count_simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "batch/collision_batch.h"
#include "check/invariant.h"
#include "context/sampler_context.h"
#include "rng/distributions.h"

namespace divpp::core {

Engine parse_engine(const std::string& name) {
  if (name == "step") return Engine::kStep;
  if (name == "jump") return Engine::kJump;
  if (name == "batch") return Engine::kBatch;
  if (name == "auto") return Engine::kAuto;
  throw std::invalid_argument("parse_engine: unknown engine '" + name +
                              "' (valid: step|jump|batch|auto)");
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kStep: return "step";
    case Engine::kJump: return "jump";
    case Engine::kBatch: return "batch";
    case Engine::kAuto: return "auto";
  }
  throw std::logic_error("engine_name: unknown engine");
}

CountSimulation::CountSimulation(WeightMap weights,
                                 std::vector<std::int64_t> dark,
                                 std::vector<std::int64_t> light)
    : weights_(std::move(weights)), dark_(std::move(dark)),
      light_(std::move(light)) {
  validate();
  n_ = std::accumulate(dark_.begin(), dark_.end(), std::int64_t{0}) +
       std::accumulate(light_.begin(), light_.end(), std::int64_t{0});
  if (n_ < 2)
    throw std::invalid_argument("CountSimulation: need at least two agents");
  rebuild_derived();
}

void CountSimulation::rebuild_derived() {
  const auto k = dark_.size();
  total_dark_ = std::accumulate(dark_.begin(), dark_.end(), std::int64_t{0});
  dark_tree_.assign(dark_);
  light_tree_.assign(light_);
  dark_min_.assign(dark_);
  inv_weight_.resize(k);
  dark_ge2_ = 0;
  std::vector<double> flips(k);
  for (std::size_t i = 0; i < k; ++i) {
    inv_weight_[i] = 1.0 / weights_.weights()[i];
    flips[i] = static_cast<double>(dark_[i]) *
               static_cast<double>(dark_[i] - 1) * inv_weight_[i];
    if (dark_[i] >= 2) ++dark_ge2_;
  }
  flip_tree_.assign(flips);
  SIM_IF_CHECKED(check_invariants());
}

void CountSimulation::check_invariants() const {
#ifdef SIM_CHECKED
  const auto k = static_cast<std::size_t>(weights_.num_colors());
  SIM_DCHECK_EQ(dark_.size(), k);
  SIM_DCHECK_EQ(light_.size(), k);
  std::int64_t sum_dark = 0;
  std::int64_t sum_light = 0;
  std::int64_t ge2 = 0;
  std::int64_t min_d = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < k; ++i) {
    SIM_DCHECK_GE(dark_[i], 0);
    SIM_DCHECK_GE(light_[i], 0);
    sum_dark += dark_[i];
    sum_light += light_[i];
    if (dark_[i] >= 2) ++ge2;
    min_d = std::min(min_d, dark_[i]);
    // Derived sampling state in lockstep with the raw counts.
    SIM_DCHECK_EQ(dark_tree_.get(static_cast<std::int64_t>(i)), dark_[i]);
    SIM_DCHECK_EQ(light_tree_.get(static_cast<std::int64_t>(i)), light_[i]);
    SIM_DCHECK_EQ(dark_min_.get(static_cast<std::int64_t>(i)), dark_[i]);
    // Flip propensity f_i = A_i (A_i − 1) / w_i is recomputed exactly on
    // every dark change, so the leaf must match to the last bit.
    const double expected_flip = static_cast<double>(dark_[i]) *
                                 static_cast<double>(dark_[i] - 1) *
                                 inv_weight_[i];
    SIM_DCHECK_EQ(flip_tree_.get(static_cast<std::int64_t>(i)),
                  expected_flip);
  }
  SIM_DCHECK_EQ(sum_dark + sum_light, n_);          // count conservation
  SIM_DCHECK_EQ(sum_dark, total_dark_);
  SIM_DCHECK_EQ(sum_dark, dark_tree_.total());
  SIM_DCHECK_EQ(sum_light, light_tree_.total());
  SIM_DCHECK_EQ(ge2, dark_ge2_);
  SIM_DCHECK_EQ(min_d, dark_min_.min());
  // The flip total drifts by at most one rounding per incremental update
  // between FenwickPropensities' periodic exact rebuilds; k·2⁻⁵² relative
  // is a generous envelope for any k the rebuild period allows.
  double exact_flip_total = 0.0;
  for (std::size_t i = 0; i < k; ++i)
    exact_flip_total += flip_tree_.get(static_cast<std::int64_t>(i));
  const double flip_tol =
      1e-9 * std::max(1.0, exact_flip_total) + 1e-300;
  SIM_DCHECK_LE(std::fabs(flip_tree_.total() - exact_flip_total), flip_tol);
  SIM_DCHECK_GE(time_, 0);
  // Event queue: sorted by firing time, nothing already in the past.
  for (std::size_t e = 0; e < pending_events_.size(); ++e) {
    SIM_DCHECK_GE(pending_events_[e].time, time_);
    if (e > 0)
      SIM_DCHECK_GE(pending_events_[e].time, pending_events_[e - 1].time);
  }
#endif  // SIM_CHECKED
}

void CountSimulation::validate() const {
  const auto k = static_cast<std::size_t>(weights_.num_colors());
  if (dark_.size() != k || light_.size() != k)
    throw std::invalid_argument(
        "CountSimulation: count vectors must match the palette size");
  for (std::size_t i = 0; i < k; ++i) {
    if (dark_[i] < 0 || light_[i] < 0)
      throw std::invalid_argument("CountSimulation: negative count");
  }
}

CountSimulation CountSimulation::proportional_start(WeightMap weights,
                                                    std::int64_t n) {
  const std::int64_t k = weights.num_colors();
  if (n < std::max<std::int64_t>(2, k))
    throw std::invalid_argument("proportional_start: need n >= max(2, k)");
  // Largest-remainder apportionment with a floor of one agent per colour.
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), 1);
  std::int64_t assigned = k;
  std::vector<std::pair<double, ColorId>> remainders;
  for (ColorId i = 0; i < k; ++i) {
    const double exact = weights.fair_share(i) * static_cast<double>(n);
    const auto extra = static_cast<std::int64_t>(std::floor(exact)) - 1;
    if (extra > 0) {
      supports[static_cast<std::size_t>(i)] += extra;
      assigned += extra;
    }
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t cursor = 0;
  while (assigned < n) {
    const ColorId i = remainders[cursor % remainders.size()].second;
    ++supports[static_cast<std::size_t>(i)];
    ++assigned;
    ++cursor;
  }
  // The one-agent floor can overshoot when n is barely above k; shave the
  // excess off the best-supported colours.
  while (assigned > n) {
    const auto it = std::max_element(supports.begin(), supports.end());
    if (*it <= 1)
      throw std::invalid_argument("proportional_start: n too small for k");
    --*it;
    --assigned;
  }
  return CountSimulation(std::move(weights), std::move(supports),
                         std::vector<std::int64_t>(static_cast<std::size_t>(k),
                                                   0));
}

CountSimulation CountSimulation::adversarial_start(WeightMap weights,
                                                   std::int64_t n) {
  const std::int64_t k = weights.num_colors();
  if (n < k + 1)
    throw std::invalid_argument("adversarial_start: need n >= k + 1");
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), 1);
  supports[0] = n - (k - 1);
  return CountSimulation(std::move(weights), std::move(supports),
                         std::vector<std::int64_t>(static_cast<std::size_t>(k),
                                                   0));
}

CountSimulation CountSimulation::equal_start(WeightMap weights,
                                             std::int64_t n) {
  const std::int64_t k = weights.num_colors();
  if (n < std::max<std::int64_t>(2, k))
    throw std::invalid_argument("equal_start: need n >= max(2, k)");
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), n / k);
  for (std::int64_t i = 0; i < n % k; ++i)
    ++supports[static_cast<std::size_t>(i)];
  return CountSimulation(std::move(weights), std::move(supports),
                         std::vector<std::int64_t>(static_cast<std::size_t>(k),
                                                   0));
}

std::int64_t CountSimulation::dark(ColorId i) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("CountSimulation::dark: colour out of range");
  return dark_[static_cast<std::size_t>(i)];
}

std::int64_t CountSimulation::light(ColorId i) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("CountSimulation::light: colour out of range");
  return light_[static_cast<std::size_t>(i)];
}

std::int64_t CountSimulation::support(ColorId i) const {
  return dark(i) + light(i);
}

std::vector<std::int64_t> CountSimulation::supports() const {
  std::vector<std::int64_t> out(dark_.size());
  for (std::size_t i = 0; i < dark_.size(); ++i) out[i] = dark_[i] + light_[i];
  return out;
}

std::int64_t CountSimulation::min_dark() const noexcept {
  return dark_min_.min();
}

double CountSimulation::active_probability() const noexcept {
  const double denom =
      static_cast<double>(n_) * static_cast<double>(n_ - 1);
  const double adopt = static_cast<double>(total_light()) *
                       static_cast<double>(total_dark_);
  return (adopt + flip_tree_.total()) / denom;
}

namespace {

/// Below this palette size a linear scan beats the Fenwick descent on
/// constant factors.  Both map the same draw to the same category, so the
/// choice is invisible to trajectories — tune freely.
constexpr std::int64_t kPickClassLinearCutoff = 16;

/// Below this size a collision batch covers only O(√n) interactions and
/// its fixed per-batch overhead dominates; plain stepping wins and keeps
/// step()'s draw sequence.  Distributionally the cutoff is invisible.
/// The tagged engines share the cutoff: below it every tagged engine
/// falls back to the step loop, bit-identically.
constexpr std::int64_t kBatchMinPopulation = 64;

/// The tagged decomposition draws involvement positions one window chunk
/// at a time so the position buffer stays bounded (expected 2·chunk/n
/// entries, worst case at the smallest batched n).  Chunking is exact:
/// involvement indicators are i.i.d. per interaction, so Binomial counts
/// over disjoint chunks compose.
constexpr std::int64_t kTaggedInvolvementChunk = 1 << 22;

// ---- auto-engine cost model ------------------------------------------
// The jump chain pays a roughly constant cost per *active transition*
// (geometric skip + propensity pick + two tree updates); the batch
// engine pays a roughly constant cost per *batch*, amortised over the
// expected collision-free stretch E[ℓ] = √(πn/8) (clamped by the window
// when the window is shorter).  The constants below are coarse
// calibrations from bench/e20_batch on the reference host — only the
// *ordering* of the two predictions matters, and near the crossover the
// engines are within ~10% of each other anyway, so the model tolerates
// large calibration error.
constexpr double kAutoJumpNsPerTransition = 70.0;
constexpr double kAutoBatchNsBase = 1400.0;
constexpr double kAutoBatchNsPerColor = 225.0;
/// Per-window EWMA decay of the measured active-transition fraction:
/// new_estimate = (1 − λ)·old + λ·measured with λ = 0.5, so a regime
/// change (an adversary event, a phase transition) is absorbed within a
/// couple of windows while single-window noise is halved.
constexpr double kAutoEwmaDecay = 0.5;
/// Windows shorter than this contribute nothing to the EWMA: a handful
/// of interactions (event splitting can produce 1-interaction windows)
/// measures a fraction of essentially 0 or 1 and would whipsaw the
/// estimate — and the engine choice for such a window is irrelevant
/// anyway.
constexpr std::int64_t kAutoEwmaMinWindow = 256;
constexpr double kPiOver8 = 0.39269908169872414;

}  // namespace

CountSimulation::ClassPick CountSimulation::pick_class(
    rng::Xoshiro256& gen, std::int64_t total, const ClassPick* excluded) const {
  // Single uniform draw over the eligible agents, mapped dark-block-first.
  std::int64_t target = rng::uniform_below(gen, total);
  const auto k = dark_.size();
  if (static_cast<std::int64_t>(k) <= kPickClassLinearCutoff) {
    for (std::size_t i = 0; i < k; ++i) {
      std::int64_t available = dark_[i];
      if (excluded != nullptr && excluded->dark &&
          excluded->color == static_cast<ColorId>(i))
        --available;
      if (target < available) return {true, static_cast<ColorId>(i)};
      target -= available;
    }
    for (std::size_t i = 0; i < k; ++i) {
      std::int64_t available = light_[i];
      if (excluded != nullptr && !excluded->dark &&
          excluded->color == static_cast<ColorId>(i))
        --available;
      if (target < available) return {false, static_cast<ColorId>(i)};
      target -= available;
    }
    throw std::logic_error("CountSimulation::pick_class: inconsistent totals");
  }
  // Large palette: the same mapping found in O(log k) by Fenwick descent.
  const std::int64_t ex_dark =
      (excluded != nullptr && excluded->dark) ? excluded->color : -1;
  const std::int64_t dark_avail = total_dark_ - (ex_dark >= 0 ? 1 : 0);
  if (target < dark_avail)
    return {true,
            static_cast<ColorId>(dark_tree_.find_excluding(target, ex_dark))};
  target -= dark_avail;
  const std::int64_t ex_light =
      (excluded != nullptr && !excluded->dark) ? excluded->color : -1;
  const std::int64_t light_avail = total_light() - (ex_light >= 0 ? 1 : 0);
  if (target >= light_avail)
    throw std::logic_error("CountSimulation::pick_class: inconsistent totals");
  return {false,
          static_cast<ColorId>(light_tree_.find_excluding(target, ex_light))};
}

void CountSimulation::on_dark_changed(std::size_t i) noexcept {
  const std::int64_t d = dark_[i];
  dark_min_.set(static_cast<std::int64_t>(i), d);
  flip_tree_.set(static_cast<std::int64_t>(i),
                 static_cast<double>(d) * static_cast<double>(d - 1) *
                     inv_weight_[i]);
}

void CountSimulation::apply_adopt(ColorId from, ColorId to) noexcept {
  const auto f = static_cast<std::size_t>(from);
  const auto t = static_cast<std::size_t>(to);
  // The adopting light initiator always lives in the counts, so a
  // violation means a sampler or tree descent returned an out-of-support
  // category.  (No check on dark_[to]: under the tagged hold-out the
  // responder may be the excluded tagged agent, whose cell reads 0.)
  SIM_ASSERT(light_[f] >= 1);
  ++active_transitions_;
  --light_[f];
  light_tree_.add(from, -1);
  ++dark_[t];
  dark_tree_.add(to, +1);
  if (dark_[t] == 2) ++dark_ge2_;
  on_dark_changed(t);
  ++total_dark_;
}

void CountSimulation::apply_fade(ColorId i) noexcept {
  const auto c = static_cast<std::size_t>(i);
  // The fading dark agent always lives in the counts (its pair partner
  // may be the held-out tagged agent, so >= 2 would over-assert).
  SIM_ASSERT(dark_[c] >= 1);
  ++active_transitions_;
  --dark_[c];
  dark_tree_.add(i, -1);
  if (dark_[c] == 1) --dark_ge2_;
  on_dark_changed(c);
  ++light_[c];
  light_tree_.add(i, +1);
  --total_dark_;
}

CountStepOutcome CountSimulation::step(rng::Xoshiro256& gen) {
  const ClassPick initiator = pick_class(gen, n_, nullptr);
  const ClassPick responder = pick_class(gen, n_ - 1, &initiator);
  CountStepOutcome outcome;
  if (!initiator.dark && responder.dark) {
    apply_adopt(initiator.color, responder.color);
    outcome = {Transition::kAdopt, initiator.color, responder.color};
  } else if (initiator.dark && responder.dark &&
             initiator.color == responder.color) {
    const double w = weights_.weight(initiator.color);
    if (rng::bernoulli(gen, 1.0 / w)) {
      apply_fade(initiator.color);
      outcome = {Transition::kFade, initiator.color, initiator.color};
    }
  }
  ++time_;
  return outcome;
}

void CountSimulation::run_to(std::int64_t target_time, rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("run_to: target time is in the past");
  drive(Engine::kStep, target_time, gen);
}

void CountSimulation::advance_to(std::int64_t target_time,
                                 rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("advance_to: target time is in the past");
  drive(Engine::kJump, target_time, gen);
}

void CountSimulation::run_batched(std::int64_t target_time,
                                  rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("run_batched: target time is in the past");
  drive(Engine::kBatch, target_time, gen);
}

void CountSimulation::run_auto(std::int64_t target_time,
                               rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("run_auto: target time is in the past");
  drive(Engine::kAuto, target_time, gen);
}

void CountSimulation::advance_with(Engine engine, std::int64_t target_time,
                                   rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("advance_with: target time is in the past");
  drive(engine, target_time, gen);
}

std::int64_t CountSimulation::schedule_event(std::int64_t when,
                                             EventAction action) {
  if (when < time_)
    throw std::invalid_argument(
        "schedule_event: event time is in the past");
  if (!action)
    throw std::invalid_argument("schedule_event: empty action");
  const std::int64_t handle = next_event_handle_++;
  // Insert keeping (time, registration order) — the vector stays small
  // (an adversary script), so linear insertion is fine.
  auto it = pending_events_.end();
  while (it != pending_events_.begin() && std::prev(it)->time > when) --it;
  pending_events_.insert(it, PendingEvent{when, handle, std::move(action)});
  return handle;
}

std::vector<std::pair<std::int64_t, std::int64_t>>
CountSimulation::pending_event_schedule() const {
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  out.reserve(pending_events_.size());
  for (const PendingEvent& event : pending_events_)
    out.emplace_back(event.time, event.handle);
  return out;
}

bool CountSimulation::rebind_scheduled_event(std::int64_t handle,
                                             EventAction action) {
  if (!action)
    throw std::invalid_argument("rebind_scheduled_event: empty action");
  for (PendingEvent& event : pending_events_) {
    if (event.handle == handle) {
      event.action = std::move(action);
      return true;
    }
  }
  return false;
}

void CountSimulation::canonicalize() { rebuild_derived(); }

CountsSnapshot CountSimulation::snapshot_counts() const {
  CountsSnapshot snapshot;
  snapshot.dark = dark_;
  snapshot.light = light_;
  snapshot.time = time_;
  snapshot.active_transitions = active_transitions_;
  snapshot.active_ewma = active_ewma_;
  return snapshot;
}

void CountSimulation::restore_counts(const CountsSnapshot& snapshot) {
  const auto k = static_cast<std::size_t>(weights_.num_colors());
  if (snapshot.dark.size() != k || snapshot.light.size() != k)
    throw std::invalid_argument(
        "restore_counts: snapshot palette size does not match the "
        "simulation's");
  std::int64_t n = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (snapshot.dark[i] < 0 || snapshot.light[i] < 0)
      throw std::invalid_argument("restore_counts: negative count");
    n += snapshot.dark[i] + snapshot.light[i];
  }
  if (n < 2)
    throw std::invalid_argument("restore_counts: need at least two agents");
  if (snapshot.time < 0)
    throw std::invalid_argument("restore_counts: negative clock");
  dark_ = snapshot.dark;
  light_ = snapshot.light;
  n_ = n;
  time_ = snapshot.time;
  active_transitions_ = snapshot.active_transitions;
  active_ewma_ = snapshot.active_ewma;
  // Fresh trees from the raw counts — identical to what a checkpoint-v2
  // resume builds, which is the bit-identity contract of the snapshot.
  rebuild_derived();
}

void CountSimulation::set_sampler_context(
    std::shared_ptr<const context::SamplerContext> context) {
  if (context != nullptr && !(context->weights() == weights_))
    throw std::invalid_argument(
        "set_sampler_context: context palette does not match the "
        "simulation's");
  sampler_context_ = std::move(context);
  // Rebuilt lazily on the next batched window, from the context when one
  // is attached.  The batcher holds no trajectory state (per-advance
  // scratch plus a deterministic table), so dropping it changes nothing
  // observable.
  batcher_.reset();
}

bool CountSimulation::cancel_scheduled_event(std::int64_t handle) noexcept {
  for (auto it = pending_events_.begin(); it != pending_events_.end(); ++it) {
    if (it->handle == handle) {
      pending_events_.erase(it);
      return true;
    }
  }
  return false;
}

void CountSimulation::drive(Engine engine, std::int64_t target_time,
                            rng::Xoshiro256& gen) {
  SIM_IF_CHECKED(check_invariants());
  while (!pending_events_.empty() &&
         pending_events_.front().time <= target_time) {
    PendingEvent event = std::move(pending_events_.front());
    pending_events_.erase(pending_events_.begin());
    if (event.time < time_)
      throw std::invalid_argument(
          "drive: a scheduled event's time has already passed (was the "
          "simulation advanced with bare step() calls?)");
    if (event.time > time_) advance_core(engine, event.time, gen);
    // Window/event alignment: every engine must stop exactly at the
    // event's interaction index — a batch that overshoots would apply
    // interactions the event was scheduled to precede.
    SIM_DCHECK_EQ(time_, event.time);
    event.action(*this);
  }
  if (time_ < target_time) advance_core(engine, target_time, gen);
  SIM_DCHECK_EQ(time_, target_time);
  SIM_IF_CHECKED(check_invariants());
}

void CountSimulation::advance_core(Engine engine, std::int64_t target_time,
                                   rng::Xoshiro256& gen) {
  switch (engine) {
    case Engine::kStep: run_to_impl(target_time, gen); return;
    case Engine::kJump: advance_to_impl(target_time, gen); return;
    case Engine::kBatch: run_batched_impl(target_time, gen); return;
    case Engine::kAuto: run_auto_impl(target_time, gen); return;
  }
  throw std::logic_error("advance_core: unknown engine");
}

void CountSimulation::run_to_impl(std::int64_t target_time,
                                  rng::Xoshiro256& gen) {
  while (time_ < target_time) (void)step(gen);
}

void CountSimulation::advance_to_impl(std::int64_t target_time,
                                      rng::Xoshiro256& gen) {
  const double denom = static_cast<double>(n_) * static_cast<double>(n_ - 1);
  while (time_ < target_time) {
    // Absorption is decided on exact integers (an adopt needs a light and
    // a dark agent; a fade needs two same-colour dark agents) so rounding
    // in the propensities can never mis-detect it at huge n.
    if (is_absorbed()) {
      time_ = target_time;
      return;
    }
    // Propensities are maintained incrementally: the adopt weight is a
    // product of running totals and the flip total is the tree's O(1)
    // running sum — no O(k) rebuild per active transition.
    const auto adopt_weight = static_cast<double>(total_light()) *
                              static_cast<double>(total_dark_);
    const double flip_total = flip_tree_.total();
    const double p_active =
        std::min((adopt_weight + flip_total) / denom, 1.0);
    if (!(p_active > 0.0)) {
      // Defensive: not absorbed, so the exact propensity is positive; a
      // vanishing float total means the drifting tree lost it — resync.
      rebuild_derived();
      continue;
    }
    // Steps before the next active one are geometric(p_active); by
    // memorylessness we may stop at the window edge without bias.
    const std::int64_t skip = rng::geometric_failures(gen, p_active);
    if (time_ + skip >= target_time) {
      time_ = target_time;
      return;
    }
    time_ += skip;
    // Pick which active transition fired.  A branch is only eligible when
    // its exact integer precondition holds; the propensity draw decides
    // between them when both are live.
    const double pick = rng::uniform01(gen) * (adopt_weight + flip_total);
    const bool do_adopt =
        total_light() > 0 && (dark_ge2_ == 0 || pick < adopt_weight);
    if (do_adopt) {
      const auto from =
          static_cast<ColorId>(light_tree_.find(
              rng::uniform_below(gen, total_light())));
      const auto to = static_cast<ColorId>(
          dark_tree_.find(rng::uniform_below(gen, total_dark_)));
      apply_adopt(from, to);
    } else {
      const auto faded = static_cast<ColorId>(
          flip_tree_.find(std::max(pick - adopt_weight, 0.0)));
      apply_fade(faded);
    }
    ++time_;
  }
}

void CountSimulation::run_batched_impl(std::int64_t target_time,
                                       rng::Xoshiro256& gen) {
  if (n_ < kBatchMinPopulation) {
    run_to_impl(target_time, gen);
    return;
  }
  if (!batcher_.has_value() || batcher_->num_colors() != num_colors()) {
    if (sampler_context_ != nullptr &&
        sampler_context_->weights() == weights_) {
      batcher_.emplace(sampler_context_);
    } else {
      batcher_.emplace(weights_);
    }
  }
  batch::CollisionBatcher& batcher = *batcher_;
  while (time_ < target_time) {
    // The batcher mutates raw counts; keep the exact-integer absorption
    // counters current so an absorbed configuration short-circuits the
    // remaining window (every further interaction is a no-op).
    total_dark_ = std::accumulate(dark_.begin(), dark_.end(),
                                  std::int64_t{0});
    dark_ge2_ = 0;
    for (const std::int64_t d : dark_)
      if (d >= 2) ++dark_ge2_;
    if (is_absorbed()) {
      time_ = target_time;
      break;
    }
    const std::int64_t budget = target_time - time_;
    const std::int64_t consumed = batcher.advance(dark_, light_, budget, gen);
    // A batch may never overrun its window: the run length is truncated
    // at the budget and the collision interaction only counts when it
    // fits (event alignment in drive() depends on this).
    SIM_ASSERT(consumed >= 1);
    SIM_DCHECK_LE(consumed, budget);
    time_ += consumed;
    const batch::CollisionBatcher::Outcome& out = batcher.last_outcome();
    active_transitions_ += out.adopts + out.fades;
  }
  rebuild_derived();
}

double CountSimulation::active_fraction_estimate() const noexcept {
  return active_ewma_ >= 0.0 ? active_ewma_ : active_probability();
}

Engine CountSimulation::pick_auto_engine(
    std::int64_t window) const noexcept {
  // Tiny populations: run_batched would fall back to plain stepping,
  // which the jump chain strictly dominates.
  if (n_ < kBatchMinPopulation) return Engine::kJump;
  const double jump_ns =
      kAutoJumpNsPerTransition * active_fraction_estimate();
  const double expected_stretch =
      std::sqrt(kPiOver8 * static_cast<double>(n_));
  const double effective_stretch =
      std::min(expected_stretch, static_cast<double>(window));
  const double batch_ns =
      (kAutoBatchNsBase +
       kAutoBatchNsPerColor * static_cast<double>(num_colors())) /
      effective_stretch;
  return batch_ns < jump_ns ? Engine::kBatch : Engine::kJump;
}

void CountSimulation::run_auto_impl(std::int64_t target_time,
                                    rng::Xoshiro256& gen) {
  const std::int64_t window = target_time - time_;
  if (window <= 0) return;
  const Engine engine = pick_auto_engine(window);
  const std::int64_t before = active_transitions_;
  if (engine == Engine::kJump) {
    advance_to_impl(target_time, gen);
  } else {
    run_batched_impl(target_time, gen);
  }
  if (window < kAutoEwmaMinWindow) return;  // too noisy to learn from
  const double measured =
      static_cast<double>(active_transitions_ - before) /
      static_cast<double>(window);
  active_ewma_ = active_ewma_ < 0.0
                     ? measured
                     : (1.0 - kAutoEwmaDecay) * active_ewma_ +
                           kAutoEwmaDecay * measured;
}

void CountSimulation::add_agents(ColorId i, std::int64_t count,
                                 bool dark_shade) {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("add_agents: colour out of range");
  if (count < 0) throw std::invalid_argument("add_agents: negative count");
  if (dark_shade) {
    dark_[static_cast<std::size_t>(i)] += count;
  } else {
    light_[static_cast<std::size_t>(i)] += count;
  }
  n_ += count;
  rebuild_derived();
}

void CountSimulation::add_color(double weight, std::int64_t dark_count) {
  if (dark_count < 1)
    throw std::invalid_argument(
        "add_color: new colours must join with at least one dark agent "
        "(paper sustainability requirement)");
  weights_ = weights_.with_color(weight);
  dark_.push_back(dark_count);
  light_.push_back(0);
  n_ += dark_count;
  // The palette outgrew any attached shared context; drop it so the
  // batch engine rebuilds private layouts for the new palette.
  sampler_context_.reset();
  rebuild_derived();
}

void CountSimulation::recolor_all(ColorId victim, ColorId heir) {
  if (victim < 0 || victim >= num_colors() || heir < 0 ||
      heir >= num_colors())
    throw std::out_of_range("recolor_all: colour out of range");
  if (victim == heir)
    throw std::invalid_argument("recolor_all: victim == heir");
  dark_[static_cast<std::size_t>(heir)] +=
      dark_[static_cast<std::size_t>(victim)];
  light_[static_cast<std::size_t>(heir)] +=
      light_[static_cast<std::size_t>(victim)];
  dark_[static_cast<std::size_t>(victim)] = 0;
  light_[static_cast<std::size_t>(victim)] = 0;
  rebuild_derived();
}

void CountSimulation::transfer(ColorId from, ColorId to,
                               std::int64_t dark_moved,
                               std::int64_t light_moved) {
  if (from < 0 || from >= num_colors() || to < 0 || to >= num_colors())
    throw std::out_of_range("transfer: colour out of range");
  if (from == to) throw std::invalid_argument("transfer: from == to");
  if (dark_moved < 0 || light_moved < 0)
    throw std::invalid_argument("transfer: negative move counts");
  if (dark_moved > dark_[static_cast<std::size_t>(from)] ||
      light_moved > light_[static_cast<std::size_t>(from)])
    throw std::invalid_argument("transfer: not enough agents to move");
  dark_[static_cast<std::size_t>(from)] -= dark_moved;
  dark_[static_cast<std::size_t>(to)] += dark_moved;
  light_[static_cast<std::size_t>(from)] -= light_moved;
  light_[static_cast<std::size_t>(to)] += light_moved;
  rebuild_derived();
}

TaggedCountSimulation::TaggedCountSimulation(CountSimulation sim,
                                             ColorId tagged_color,
                                             bool tagged_dark)
    : sim_(std::move(sim)),
      tagged_{tagged_color, tagged_dark ? kDark : kLight} {
  const std::int64_t pool = tagged_dark ? sim_.dark(tagged_color)
                                        : sim_.light(tagged_color);
  if (pool < 1)
    throw std::invalid_argument(
        "TaggedCountSimulation: no agent with the requested state to tag");
}

void TaggedCountSimulation::restore_counts(const Snapshot& snapshot) {
  const ColorId color = snapshot.tagged.color;
  if (color < 0 || color >= sim_.num_colors())
    throw std::invalid_argument(
        "restore_counts: tagged colour outside the palette");
  const std::size_t cell = static_cast<std::size_t>(color);
  const std::int64_t pool = snapshot.tagged.is_dark()
                                ? (cell < snapshot.counts.dark.size()
                                       ? snapshot.counts.dark[cell]
                                       : 0)
                                : (cell < snapshot.counts.light.size()
                                       ? snapshot.counts.light[cell]
                                       : 0);
  if (pool < 1)
    throw std::invalid_argument(
        "restore_counts: tagged agent's cell is empty in the snapshot");
  sim_.restore_counts(snapshot.counts);
  tagged_ = snapshot.tagged;
}

void TaggedCountSimulation::step(rng::Xoshiro256& gen) {
  const std::int64_t n = sim_.n_;
  const CountSimulation::ClassPick self{tagged_.is_dark(), tagged_.color};
  if (rng::uniform_below(gen, n) == 0) {
    // The tagged agent is the scheduled initiator.
    const CountSimulation::ClassPick responder =
        sim_.pick_class(gen, n - 1, &self);
    if (!self.dark && responder.dark) {
      sim_.apply_adopt(self.color, responder.color);
      tagged_ = AgentState{responder.color, kDark};
    } else if (self.dark && responder.dark && self.color == responder.color) {
      if (rng::bernoulli(gen, 1.0 / sim_.weights_.weight(self.color))) {
        sim_.apply_fade(self.color);
        tagged_.shade = kLight;
      }
    }
  } else {
    // Another agent is scheduled; it may observe the tagged agent, but a
    // one-way rule never mutates the responder, so only counts move.
    const CountSimulation::ClassPick initiator =
        sim_.pick_class(gen, n - 1, &self);
    const CountSimulation::ClassPick responder =
        sim_.pick_class(gen, n - 1, &initiator);
    if (!initiator.dark && responder.dark) {
      sim_.apply_adopt(initiator.color, responder.color);
    } else if (initiator.dark && responder.dark &&
               initiator.color == responder.color) {
      if (rng::bernoulli(gen, 1.0 / sim_.weights_.weight(initiator.color))) {
        sim_.apply_fade(initiator.color);
      }
    }
  }
  ++sim_.time_;
}

void TaggedCountSimulation::advance_with(Engine engine,
                                         std::int64_t target_time,
                                         rng::Xoshiro256& gen) {
  if (target_time < sim_.time_)
    throw std::invalid_argument(
        "TaggedCountSimulation::advance_with: target time is in the past");
  if (engine == Engine::kStep || sim_.n_ < kBatchMinPopulation) {
    run_steps(target_time, gen, nullptr);
  } else {
    run_decomposed(engine, target_time, gen, nullptr);
  }
}

void TaggedCountSimulation::run_changes(Engine engine,
                                        std::int64_t target_time,
                                        rng::Xoshiro256& gen,
                                        const ChangeObserver& on_change) {
  if (!on_change)
    throw std::invalid_argument(
        "TaggedCountSimulation::run_changes: empty observer");
  if (target_time < sim_.time_)
    throw std::invalid_argument(
        "TaggedCountSimulation::run_changes: target time is in the past");
  if (engine == Engine::kStep || sim_.n_ < kBatchMinPopulation) {
    run_steps(target_time, gen, &on_change);
  } else {
    run_decomposed(engine, target_time, gen, &on_change);
  }
}

void TaggedCountSimulation::run_steps(std::int64_t target_time,
                                      rng::Xoshiro256& gen,
                                      const ChangeObserver* on_change) {
  while (sim_.time_ < target_time) {
    const AgentState before = tagged_;
    const std::int64_t pre_step = sim_.time_;
    step(gen);
    if (on_change != nullptr && !(tagged_ == before))
      (*on_change)(pre_step, tagged_);
  }
}

void TaggedCountSimulation::run_decomposed(Engine engine,
                                           std::int64_t target_time,
                                           rng::Xoshiro256& gen,
                                           const ChangeObserver* on_change) {
  // Hold the tagged agent out of the lumped counts for the whole run:
  // conditioned on the involvement positions drawn below, every other
  // interaction is a uniform ordered pair of the remaining n − 1 agents —
  // a standard lumped chain `engine` advances at full speed, which by
  // construction can never relocate the tagged agent (the run-scope form
  // of batch::CollisionBatcher::advance_excluding's per-call conditioning
  // and of step()'s counts-minus-tagged initiator draw).
  const std::int64_t n = sim_.n_;
  {
    auto& cell = tagged_.is_dark()
                     ? sim_.dark_[static_cast<std::size_t>(tagged_.color)]
                     : sim_.light_[static_cast<std::size_t>(tagged_.color)];
    // The tagged agent's own cell must still hold it (used-set ⊆
    // support): anything else means the hold-out bookkeeping leaked.
    SIM_ASSERT(cell >= 1);
    --cell;
  }
  sim_.n_ = n - 1;
  sim_.rebuild_derived();
  while (sim_.time_ < target_time) {
    const std::int64_t chunk =
        std::min(target_time - sim_.time_, kTaggedInvolvementChunk);
    const std::int64_t chunk_start = sim_.time_;
    batch::CollisionBatcher::draw_tagged_involvement(gen, n, chunk,
                                                     involvement_);
    SIM_IF_CHECKED({
      // Involvement positions: strictly increasing, inside the chunk.
      for (std::size_t p = 0; p < involvement_.size(); ++p) {
        SIM_DCHECK_GE(involvement_[p], 0);
        SIM_DCHECK(involvement_[p] < chunk);
        if (p > 0) SIM_DCHECK(involvement_[p - 1] < involvement_[p]);
      }
    });
    for (const std::int64_t pos : involvement_) {
      const std::int64_t when = chunk_start + pos;
      if (sim_.time_ < when) sim_.advance_core(engine, when, gen);
      resolve_tagged_interaction(gen, on_change);
    }
    if (sim_.time_ < chunk_start + chunk)
      sim_.advance_core(engine, chunk_start + chunk, gen);
  }
  // Re-seat the tagged agent under its *current* state — it may have
  // changed colour or shade at an involvement position.
  {
    auto& cell = tagged_.is_dark()
                     ? sim_.dark_[static_cast<std::size_t>(tagged_.color)]
                     : sim_.light_[static_cast<std::size_t>(tagged_.color)];
    ++cell;
  }
  sim_.n_ = n;
  sim_.rebuild_derived();
}

void TaggedCountSimulation::resolve_tagged_interaction(
    rng::Xoshiro256& gen, const ChangeObserver* on_change) {
  // Conditioned on involvement the tagged agent is the initiator or the
  // responder with probability 1/2 each (the two 1/n events are disjoint
  // and equally likely), and the partner is uniform over the other n − 1
  // agents — one plain class pick from the held-out counts.
  const bool tagged_initiator = rng::bernoulli(gen, 0.5);
  const CountSimulation::ClassPick partner =
      sim_.pick_class(gen, sim_.n_, nullptr);
  const std::int64_t pre_step = sim_.time_;
  if (tagged_initiator) {
    if (!tagged_.is_dark() && partner.dark) {
      tagged_ = AgentState{partner.color, kDark};
      ++sim_.active_transitions_;
      if (on_change != nullptr) (*on_change)(pre_step, tagged_);
    } else if (tagged_.is_dark() && partner.dark &&
               tagged_.color == partner.color) {
      if (rng::bernoulli(gen, 1.0 / sim_.weights_.weight(tagged_.color))) {
        tagged_.shade = kLight;
        ++sim_.active_transitions_;
        if (on_change != nullptr) (*on_change)(pre_step, tagged_);
      }
    }
  } else {
    // One-way rules never mutate the responder: only the partner and the
    // held-out counts can move.
    if (!partner.dark && tagged_.is_dark()) {
      sim_.apply_adopt(partner.color, tagged_.color);
    } else if (partner.dark && tagged_.is_dark() &&
               partner.color == tagged_.color) {
      if (rng::bernoulli(gen, 1.0 / sim_.weights_.weight(partner.color))) {
        sim_.apply_fade(partner.color);
      }
    }
  }
  ++sim_.time_;
}

}  // namespace divpp::core
