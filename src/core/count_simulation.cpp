#include "core/count_simulation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "rng/distributions.h"

namespace divpp::core {

CountSimulation::CountSimulation(WeightMap weights,
                                 std::vector<std::int64_t> dark,
                                 std::vector<std::int64_t> light)
    : weights_(std::move(weights)), dark_(std::move(dark)),
      light_(std::move(light)) {
  validate();
  n_ = std::accumulate(dark_.begin(), dark_.end(), std::int64_t{0}) +
       std::accumulate(light_.begin(), light_.end(), std::int64_t{0});
  total_dark_ = std::accumulate(dark_.begin(), dark_.end(), std::int64_t{0});
  if (n_ < 2)
    throw std::invalid_argument("CountSimulation: need at least two agents");
}

void CountSimulation::validate() const {
  const auto k = static_cast<std::size_t>(weights_.num_colors());
  if (dark_.size() != k || light_.size() != k)
    throw std::invalid_argument(
        "CountSimulation: count vectors must match the palette size");
  for (std::size_t i = 0; i < k; ++i) {
    if (dark_[i] < 0 || light_[i] < 0)
      throw std::invalid_argument("CountSimulation: negative count");
  }
}

CountSimulation CountSimulation::proportional_start(WeightMap weights,
                                                    std::int64_t n) {
  const std::int64_t k = weights.num_colors();
  if (n < std::max<std::int64_t>(2, k))
    throw std::invalid_argument("proportional_start: need n >= max(2, k)");
  // Largest-remainder apportionment with a floor of one agent per colour.
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), 1);
  std::int64_t assigned = k;
  std::vector<std::pair<double, ColorId>> remainders;
  for (ColorId i = 0; i < k; ++i) {
    const double exact = weights.fair_share(i) * static_cast<double>(n);
    const auto extra = static_cast<std::int64_t>(std::floor(exact)) - 1;
    if (extra > 0) {
      supports[static_cast<std::size_t>(i)] += extra;
      assigned += extra;
    }
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t cursor = 0;
  while (assigned < n) {
    const ColorId i = remainders[cursor % remainders.size()].second;
    ++supports[static_cast<std::size_t>(i)];
    ++assigned;
    ++cursor;
  }
  // The one-agent floor can overshoot when n is barely above k; shave the
  // excess off the best-supported colours.
  while (assigned > n) {
    const auto it = std::max_element(supports.begin(), supports.end());
    if (*it <= 1)
      throw std::invalid_argument("proportional_start: n too small for k");
    --*it;
    --assigned;
  }
  return CountSimulation(std::move(weights), std::move(supports),
                         std::vector<std::int64_t>(static_cast<std::size_t>(k),
                                                   0));
}

CountSimulation CountSimulation::adversarial_start(WeightMap weights,
                                                   std::int64_t n) {
  const std::int64_t k = weights.num_colors();
  if (n < k + 1)
    throw std::invalid_argument("adversarial_start: need n >= k + 1");
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), 1);
  supports[0] = n - (k - 1);
  return CountSimulation(std::move(weights), std::move(supports),
                         std::vector<std::int64_t>(static_cast<std::size_t>(k),
                                                   0));
}

CountSimulation CountSimulation::equal_start(WeightMap weights,
                                             std::int64_t n) {
  const std::int64_t k = weights.num_colors();
  if (n < std::max<std::int64_t>(2, k))
    throw std::invalid_argument("equal_start: need n >= max(2, k)");
  std::vector<std::int64_t> supports(static_cast<std::size_t>(k), n / k);
  for (std::int64_t i = 0; i < n % k; ++i)
    ++supports[static_cast<std::size_t>(i)];
  return CountSimulation(std::move(weights), std::move(supports),
                         std::vector<std::int64_t>(static_cast<std::size_t>(k),
                                                   0));
}

std::int64_t CountSimulation::dark(ColorId i) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("CountSimulation::dark: colour out of range");
  return dark_[static_cast<std::size_t>(i)];
}

std::int64_t CountSimulation::light(ColorId i) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("CountSimulation::light: colour out of range");
  return light_[static_cast<std::size_t>(i)];
}

std::int64_t CountSimulation::support(ColorId i) const {
  return dark(i) + light(i);
}

std::vector<std::int64_t> CountSimulation::supports() const {
  std::vector<std::int64_t> out(dark_.size());
  for (std::size_t i = 0; i < dark_.size(); ++i) out[i] = dark_[i] + light_[i];
  return out;
}

std::int64_t CountSimulation::min_dark() const noexcept {
  return *std::min_element(dark_.begin(), dark_.end());
}

double CountSimulation::active_probability() const noexcept {
  const double denom =
      static_cast<double>(n_) * static_cast<double>(n_ - 1);
  const double adopt = static_cast<double>(total_light()) *
                       static_cast<double>(total_dark_);
  double flip = 0.0;
  for (std::size_t i = 0; i < dark_.size(); ++i) {
    flip += static_cast<double>(dark_[i]) *
            static_cast<double>(dark_[i] - 1) / weights_.weights()[i];
  }
  return (adopt + flip) / denom;
}

CountSimulation::ClassPick CountSimulation::pick_class(
    rng::Xoshiro256& gen, std::int64_t total, const ClassPick* excluded) const {
  std::int64_t target = rng::uniform_below(gen, total);
  const auto k = dark_.size();
  for (std::size_t i = 0; i < k; ++i) {
    std::int64_t available = dark_[i];
    if (excluded != nullptr && excluded->dark &&
        excluded->color == static_cast<ColorId>(i))
      --available;
    if (target < available) return {true, static_cast<ColorId>(i)};
    target -= available;
  }
  for (std::size_t i = 0; i < k; ++i) {
    std::int64_t available = light_[i];
    if (excluded != nullptr && !excluded->dark &&
        excluded->color == static_cast<ColorId>(i))
      --available;
    if (target < available) return {false, static_cast<ColorId>(i)};
    target -= available;
  }
  // Unreachable when `total` matches the eligible-agent count.
  throw std::logic_error("CountSimulation::pick_class: inconsistent totals");
}

void CountSimulation::apply_adopt(ColorId from, ColorId to) noexcept {
  --light_[static_cast<std::size_t>(from)];
  ++dark_[static_cast<std::size_t>(to)];
  ++total_dark_;
}

void CountSimulation::apply_fade(ColorId i) noexcept {
  --dark_[static_cast<std::size_t>(i)];
  ++light_[static_cast<std::size_t>(i)];
  --total_dark_;
}

CountStepOutcome CountSimulation::step(rng::Xoshiro256& gen) {
  const ClassPick initiator = pick_class(gen, n_, nullptr);
  const ClassPick responder = pick_class(gen, n_ - 1, &initiator);
  CountStepOutcome outcome;
  if (!initiator.dark && responder.dark) {
    apply_adopt(initiator.color, responder.color);
    outcome = {Transition::kAdopt, initiator.color, responder.color};
  } else if (initiator.dark && responder.dark &&
             initiator.color == responder.color) {
    const double w = weights_.weight(initiator.color);
    if (rng::bernoulli(gen, 1.0 / w)) {
      apply_fade(initiator.color);
      outcome = {Transition::kFade, initiator.color, initiator.color};
    }
  }
  ++time_;
  return outcome;
}

void CountSimulation::run_to(std::int64_t target_time, rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("run_to: target time is in the past");
  while (time_ < target_time) (void)step(gen);
}

void CountSimulation::advance_to(std::int64_t target_time,
                                 rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("advance_to: target time is in the past");
  const auto k = dark_.size();
  std::vector<double> flip_weights(k);
  while (time_ < target_time) {
    const auto adopt_weight = static_cast<double>(total_light()) *
                              static_cast<double>(total_dark_);
    double flip_total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      flip_weights[i] = static_cast<double>(dark_[i]) *
                        static_cast<double>(dark_[i] - 1) /
                        weights_.weights()[i];
      flip_total += flip_weights[i];
    }
    const double denom =
        static_cast<double>(n_) * static_cast<double>(n_ - 1);
    const double p_active = (adopt_weight + flip_total) / denom;
    if (!(p_active > 0.0)) {
      // Absorbed: no transition can ever fire again (e.g. no light agents
      // and at most one dark agent per colour).
      time_ = target_time;
      return;
    }
    // Steps before the next active one are geometric(p_active); by
    // memorylessness we may stop at the window edge without bias.
    const std::int64_t skip =
        rng::geometric_failures(gen, std::min(p_active, 1.0));
    if (time_ + skip >= target_time) {
      time_ = target_time;
      return;
    }
    time_ += skip;
    // Pick which active transition fired.
    const double pick =
        rng::uniform01(gen) * (adopt_weight + flip_total);
    if (pick < adopt_weight) {
      const ColorId from = static_cast<ColorId>(
          rng::sample_counts(gen, light_, total_light()));
      const ColorId to = static_cast<ColorId>(
          rng::sample_counts(gen, dark_, total_dark_));
      apply_adopt(from, to);
    } else {
      const ColorId faded =
          static_cast<ColorId>(rng::sample_discrete(gen, flip_weights));
      apply_fade(faded);
    }
    ++time_;
  }
}

void CountSimulation::add_agents(ColorId i, std::int64_t count,
                                 bool dark_shade) {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("add_agents: colour out of range");
  if (count < 0) throw std::invalid_argument("add_agents: negative count");
  if (dark_shade) {
    dark_[static_cast<std::size_t>(i)] += count;
    total_dark_ += count;
  } else {
    light_[static_cast<std::size_t>(i)] += count;
  }
  n_ += count;
}

void CountSimulation::add_color(double weight, std::int64_t dark_count) {
  if (dark_count < 1)
    throw std::invalid_argument(
        "add_color: new colours must join with at least one dark agent "
        "(paper sustainability requirement)");
  weights_ = weights_.with_color(weight);
  dark_.push_back(dark_count);
  light_.push_back(0);
  total_dark_ += dark_count;
  n_ += dark_count;
}

void CountSimulation::recolor_all(ColorId victim, ColorId heir) {
  if (victim < 0 || victim >= num_colors() || heir < 0 ||
      heir >= num_colors())
    throw std::out_of_range("recolor_all: colour out of range");
  if (victim == heir)
    throw std::invalid_argument("recolor_all: victim == heir");
  dark_[static_cast<std::size_t>(heir)] +=
      dark_[static_cast<std::size_t>(victim)];
  light_[static_cast<std::size_t>(heir)] +=
      light_[static_cast<std::size_t>(victim)];
  dark_[static_cast<std::size_t>(victim)] = 0;
  light_[static_cast<std::size_t>(victim)] = 0;
}

void CountSimulation::transfer(ColorId from, ColorId to,
                               std::int64_t dark_moved,
                               std::int64_t light_moved) {
  if (from < 0 || from >= num_colors() || to < 0 || to >= num_colors())
    throw std::out_of_range("transfer: colour out of range");
  if (from == to) throw std::invalid_argument("transfer: from == to");
  if (dark_moved < 0 || light_moved < 0)
    throw std::invalid_argument("transfer: negative move counts");
  if (dark_moved > dark_[static_cast<std::size_t>(from)] ||
      light_moved > light_[static_cast<std::size_t>(from)])
    throw std::invalid_argument("transfer: not enough agents to move");
  dark_[static_cast<std::size_t>(from)] -= dark_moved;
  dark_[static_cast<std::size_t>(to)] += dark_moved;
  light_[static_cast<std::size_t>(from)] -= light_moved;
  light_[static_cast<std::size_t>(to)] += light_moved;
}

TaggedCountSimulation::TaggedCountSimulation(CountSimulation sim,
                                             ColorId tagged_color,
                                             bool tagged_dark)
    : sim_(std::move(sim)),
      tagged_{tagged_color, tagged_dark ? kDark : kLight} {
  const std::int64_t pool = tagged_dark ? sim_.dark(tagged_color)
                                        : sim_.light(tagged_color);
  if (pool < 1)
    throw std::invalid_argument(
        "TaggedCountSimulation: no agent with the requested state to tag");
}

void TaggedCountSimulation::step(rng::Xoshiro256& gen) {
  const std::int64_t n = sim_.n_;
  const CountSimulation::ClassPick self{tagged_.is_dark(), tagged_.color};
  if (rng::uniform_below(gen, n) == 0) {
    // The tagged agent is the scheduled initiator.
    const CountSimulation::ClassPick responder =
        sim_.pick_class(gen, n - 1, &self);
    if (!self.dark && responder.dark) {
      sim_.apply_adopt(self.color, responder.color);
      tagged_ = AgentState{responder.color, kDark};
    } else if (self.dark && responder.dark && self.color == responder.color) {
      if (rng::bernoulli(gen, 1.0 / sim_.weights_.weight(self.color))) {
        sim_.apply_fade(self.color);
        tagged_.shade = kLight;
      }
    }
  } else {
    // Another agent is scheduled; it may observe the tagged agent, but a
    // one-way rule never mutates the responder, so only counts move.
    const CountSimulation::ClassPick initiator =
        sim_.pick_class(gen, n - 1, &self);
    const CountSimulation::ClassPick responder =
        sim_.pick_class(gen, n - 1, &initiator);
    if (!initiator.dark && responder.dark) {
      sim_.apply_adopt(initiator.color, responder.color);
    } else if (initiator.dark && responder.dark &&
               initiator.color == responder.color) {
      if (rng::bernoulli(gen, 1.0 / sim_.weights_.weight(initiator.color))) {
        sim_.apply_fade(initiator.color);
      }
    }
  }
  ++sim_.time_;
}

}  // namespace divpp::core
