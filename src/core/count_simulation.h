#ifndef DIVPP_CORE_COUNT_SIMULATION_H
#define DIVPP_CORE_COUNT_SIMULATION_H

/// \file count_simulation.h
/// Exact lumped simulation of the Diversification protocol on the
/// complete graph.
///
/// On K_n the agents are exchangeable, so the process
/// ξ(t) = (A_1..A_k, a_1..a_k) of per-colour dark/light counts (paper §2)
/// is itself a Markov chain.  Simulating ξ directly costs O(k) per step
/// and O(k) memory — independent of n — which is what makes the paper's
/// n-scaling experiments tractable.
///
/// Two stepping modes are provided and are distributionally identical:
///  * step()          — one time-step, including no-ops;
///  * advance_to()    — "jump chain": samples the geometric number of
///    no-op steps between state changes, then applies one active
///    transition.  Near equilibrium only a Θ(1/W) fraction of steps are
///    active, so this is several times faster for long windows.
///
/// Both modes run on the Fenwick samplers of sampling/fenwick.h: class
/// draws, flip-propensity draws and min-dark tracking cost O(log k) per
/// transition, and the adopt/flip propensities are maintained by O(1)
/// deltas instead of an O(k) rebuild per active transition — the standard
/// kinetic-Monte-Carlo organisation, which is what makes large-k sweeps
/// (E17) tractable.
///
/// TaggedCountSimulation additionally carries one distinguished agent
/// through the lumped dynamics (exactly — see the class comment), which
/// gives fairness trajectories at count-simulation cost.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "batch/collision_batch.h"
#include "core/agent.h"
#include "core/diversification.h"
#include "core/weights.h"
#include "rng/xoshiro.h"
#include "sampling/fenwick.h"

namespace divpp::context {
class SamplerContext;
}  // namespace divpp::context

namespace divpp::core {

/// Outcome of one lumped step (for trackers and tests).
struct CountStepOutcome {
  Transition transition = Transition::kNoOp;
  ColorId from = -1;  ///< adopt: colour losing a light agent; fade: colour fading
  ColorId to = -1;    ///< adopt: colour gaining a dark agent; fade: == from
};

/// The distributionally identical stepping engines of the lumped chain:
/// plain per-interaction stepping (run_to), the jump chain that skips
/// no-op stretches (advance_to), the collision-batch engine that applies
/// whole stretches of distinct-agent interactions in aggregate
/// (run_batched), and the auto engine that picks jump or batch per
/// window from a cost model (run_auto) — kAuto consumes the same RNG
/// stream as whichever engine it delegates to, so it is as exact as
/// they are.
enum class Engine { kStep, kJump, kBatch, kAuto };

/// Parses "step" / "jump" / "batch" / "auto" (bench --engine flags).
/// \throws std::invalid_argument naming the valid set on anything else.
[[nodiscard]] Engine parse_engine(const std::string& name);

/// The flag spelling of an engine (tables, JSON summaries).
[[nodiscard]] const char* engine_name(Engine engine);

/// The complete *dynamical* state of a CountSimulation at a window
/// boundary: everything the engines read that can change inside a
/// window.  Derived sampling structures are deliberately absent — a
/// restore rebuilds them from the counts (the canonicalize machinery),
/// so a restored state and a checkpoint-v2 resume start from the same
/// freshly built trees.  Scheduled events, the sampler context, and the
/// cached batcher are also absent: they are *run configuration*, owned
/// by the simulation the snapshot is restored into, not trajectory
/// state (the time-parallel engine relies on exactly this split —
/// speculation workers restore predicted counts into long-lived
/// simulation copies without disturbing the leader's event queue).
struct CountsSnapshot {
  std::vector<std::int64_t> dark;
  std::vector<std::int64_t> light;
  std::int64_t time = 0;
  std::int64_t active_transitions = 0;
  /// Bit-exact EWMA of the auto engine (< 0 until its first window):
  /// kAuto's per-window engine choice reads it, so exact-mode
  /// speculation must match it bitwise to be committable.
  double active_ewma = -1.0;
};

/// Lumped (count-level) simulation of the Diversification protocol on the
/// complete graph K_n.
class CountSimulation {
 public:
  /// Starts from explicit per-colour dark/light counts.
  /// \throws std::invalid_argument on negative counts, size mismatch with
  /// the palette, or a population of fewer than two agents.
  CountSimulation(WeightMap weights, std::vector<std::int64_t> dark,
                  std::vector<std::int64_t> light);

  /// All-dark start with supports proportional to the fair shares
  /// (rounding remainders assigned greedily) — a "nice" start.
  [[nodiscard]] static CountSimulation proportional_start(WeightMap weights,
                                                          std::int64_t n);

  /// All-dark start with one agent on each colour except colour 0, which
  /// holds everyone else — the adversarial start that exercises Phase 1
  /// ("the rise of the minorities").  \pre n >= num_colors + 1.
  [[nodiscard]] static CountSimulation adversarial_start(WeightMap weights,
                                                         std::int64_t n);

  /// All-dark start with equal supports (n/k each, remainder to colour 0).
  [[nodiscard]] static CountSimulation equal_start(WeightMap weights,
                                                   std::int64_t n);

  // ---- observers -------------------------------------------------------

  [[nodiscard]] std::int64_t n() const noexcept { return n_; }
  [[nodiscard]] std::int64_t num_colors() const noexcept {
    return weights_.num_colors();
  }
  [[nodiscard]] std::int64_t time() const noexcept { return time_; }
  [[nodiscard]] const WeightMap& weights() const noexcept { return weights_; }

  /// Dark count A_i(t).
  [[nodiscard]] std::int64_t dark(ColorId i) const;
  /// Light count a_i(t).
  [[nodiscard]] std::int64_t light(ColorId i) const;
  /// Support C_i(t) = A_i + a_i.
  [[nodiscard]] std::int64_t support(ColorId i) const;
  [[nodiscard]] std::span<const std::int64_t> dark_counts() const noexcept {
    return dark_;
  }
  [[nodiscard]] std::span<const std::int64_t> light_counts() const noexcept {
    return light_;
  }
  /// All supports C_i.
  [[nodiscard]] std::vector<std::int64_t> supports() const;
  /// A(t) = Σ A_i.
  [[nodiscard]] std::int64_t total_dark() const noexcept { return total_dark_; }
  /// a(t) = Σ a_i.
  [[nodiscard]] std::int64_t total_light() const noexcept {
    return n_ - total_dark_;
  }
  /// Sustainability observable: the smallest per-colour dark count.
  [[nodiscard]] std::int64_t min_dark() const noexcept;

  /// Probability that the *next* step changes the state (used by the jump
  /// chain and the auto engine's cold-start estimate; exposed for tests).
  [[nodiscard]] double active_probability() const noexcept;

  /// Total adopt + fade transitions applied since construction, by any
  /// engine.  The auto engine differences this across a window to
  /// measure the realised active-transition fraction.
  [[nodiscard]] std::int64_t active_transitions() const noexcept {
    return active_transitions_;
  }

  /// The auto engine's current active-fraction estimate: an EWMA (decay
  /// kAutoEwmaDecay per window) of measured window fractions, or the
  /// exact single-step active_probability() before any window has been
  /// measured.  Exposed for tests and diagnostics.
  [[nodiscard]] double active_fraction_estimate() const noexcept;

  // ---- dynamics --------------------------------------------------------

  /// Executes exactly one time-step (possibly a no-op).
  CountStepOutcome step(rng::Xoshiro256& gen);

  /// Runs plain steps until time() == target_time.  \pre target >= time().
  void run_to(std::int64_t target_time, rng::Xoshiro256& gen);

  /// Jump-chain run: advances until time() == target_time, skipping no-op
  /// stretches in O(k) each.  Distributionally identical to run_to.
  void advance_to(std::int64_t target_time, rng::Xoshiro256& gen);

  /// Collision-batch run (batch/collision_batch.h): advances until
  /// time() == target_time applying whole collision-free stretches of
  /// interactions in aggregate — amortised sub-constant work per
  /// interaction at large n.  Distributionally identical to run_to /
  /// advance_to; the RNG draw *sequence* differs from both (see the
  /// README reproducibility note).  Falls back to plain stepping for
  /// populations too small for batching to pay.
  void run_batched(std::int64_t target_time, rng::Xoshiro256& gen);

  /// Auto-adaptive run: treats the call as one window, predicts the
  /// per-interaction cost of the jump chain (∝ its per-transition
  /// constant × the EWMA active fraction) and of the batch engine
  /// (∝ its per-batch constant over the expected collision-free stretch
  /// clamped by the window), runs the cheaper engine, then folds the
  /// measured active fraction into the EWMA.  Consumes exactly the RNG
  /// stream of the engine it delegates to.
  void run_auto(std::int64_t target_time, rng::Xoshiro256& gen);

  /// Dispatches to run_to / advance_to / run_batched / run_auto.
  void advance_with(Engine engine, std::int64_t target_time,
                    rng::Xoshiro256& gen);

  // ---- scheduled events (adversary API) --------------------------------

  /// Callback fired when the simulation clock reaches its scheduled
  /// interaction index.
  using EventAction = std::function<void(CountSimulation&)>;

  /// Schedules `action` to run when time() == `when`, from inside any of
  /// the run functions (run_to / advance_to / run_batched / run_auto /
  /// advance_with): the driving engine splits its window at the event
  /// time automatically, so callers no longer hand-split batched windows
  /// around adversary events.  Events fire in time order (ties in
  /// registration order), exactly once, after `when` interactions have
  /// been applied and before interaction `when` + 1.  The action may
  /// mutate the simulation structurally (add_agents / add_color / ...)
  /// but must not re-enter a run function.  Returns a handle for
  /// cancel_scheduled_event.
  /// \pre when >= time().
  std::int64_t schedule_event(std::int64_t when, EventAction action);

  /// Number of scheduled events that have not fired yet.
  [[nodiscard]] std::int64_t pending_event_count() const noexcept {
    return static_cast<std::int64_t>(pending_events_.size());
  }

  /// Removes one not-yet-fired event by the handle schedule_event
  /// returned; returns whether it was still pending.  Drivers that
  /// registered a script (adversary::Schedule::run) cancel *their own*
  /// remaining events when an event action throws, leaving events other
  /// callers scheduled untouched.
  bool cancel_scheduled_event(std::int64_t handle) noexcept;

  /// (time, handle) of every pending event in firing order.  A v2
  /// checkpoint (core/checkpoint.h) serialises exactly this: actions are
  /// code and cannot cross a process boundary, so a resumed run must
  /// re-attach them by handle (rebind_scheduled_event).
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>>
  pending_event_schedule() const;

  /// Re-attaches the action of a pending event — the second half of a v2
  /// resume, whose restored events hold placeholder actions that throw
  /// std::logic_error if they fire unrebound.  Also replaces the action
  /// of an ordinary pending event.  Returns false when no pending event
  /// has this handle.  \throws std::invalid_argument on an empty action.
  bool rebind_scheduled_event(std::int64_t handle, EventAction action);

  /// Attaches a shared sampler context (context/sampler_context.h): the
  /// batch engine then borrows the context's eager run-length tables and
  /// propensity layouts instead of building private ones — bit-identical
  /// (the tables are pure deterministic functions of (n, w)), so a
  /// sweep can hand one context to thousands of scenarios.  Passing a
  /// context whose palette differs from the simulation's throws
  /// std::invalid_argument; nullptr detaches.  A later add_color drops
  /// the context automatically (the palette outgrew it) and the batch
  /// engine falls back to private tables.
  void set_sampler_context(
      std::shared_ptr<const context::SamplerContext> context);

  /// The attached shared context, or nullptr when running solo.
  [[nodiscard]] const std::shared_ptr<const context::SamplerContext>&
  sampler_context() const noexcept {
    return sampler_context_;
  }

  /// Rebuilds every derived sampling structure (Fenwick trees, flip
  /// propensities, cached totals) from the raw counts, discarding any
  /// accumulated float drift.  Checkpoint canonicalisation point: a v2
  /// restore starts from freshly rebuilt trees, so a resumable driver
  /// (runtime/durable_runner.h) canonicalises at every checkpoint
  /// boundary — an uninterrupted run and a killed-and-resumed run then
  /// follow the same float trajectory, which is what makes resume
  /// bit-identical rather than merely distributionally identical.
  /// Consumes no RNG draws and changes no counts, clock, or estimates.
  void canonicalize();

  // ---- window snapshot / restore (parallel/parallel_run.h) -------------

  /// Captures the dynamical state at the current clock (see
  /// CountsSnapshot for what is and is not included).  O(k); no RNG.
  [[nodiscard]] CountsSnapshot snapshot_counts() const;

  /// Replaces the dynamical state with `snapshot` and rebuilds every
  /// derived structure from scratch — the same canonicalisation a v2
  /// restore performs, so restoring a snapshot taken at a canonicalized
  /// boundary reproduces that boundary state bit-identically.  The
  /// palette, event queue, sampler context, and cached batcher are kept
  /// (they are configuration, not trajectory).  The population size may
  /// differ from the current one (the batcher re-derives its run-length
  /// table per advance).  O(k); no RNG.
  /// \throws std::invalid_argument on a palette-size mismatch, negative
  /// counts, a population of fewer than two agents, or a negative clock.
  void restore_counts(const CountsSnapshot& snapshot);

  // ---- structural changes (adversary API) ------------------------------

  /// Adds `count` agents of colour i (dark when `dark_shade`).
  void add_agents(ColorId i, std::int64_t count, bool dark_shade);

  /// Adds a brand-new colour with `weight`, supported by `dark_count`
  /// fresh dark agents (the paper's robustness scenario: new colours join
  /// dark).  \pre weight >= 1, dark_count >= 1.
  void add_color(double weight, std::int64_t dark_count);

  /// Recolours every agent of colour `victim` to colour `heir` keeping
  /// shades (the paper's "external agent recolours all red agents blue").
  /// The palette keeps the victim colour; its support drops to zero,
  /// deliberately breaking sustainability *from outside* the protocol.
  void recolor_all(ColorId victim, ColorId heir);

  /// Moves `dark_moved` dark and `light_moved` light agents from colour
  /// `from` to colour `to`, preserving shades and the population size.
  /// \pre enough agents of each shade on `from`.
  void transfer(ColorId from, ColorId to, std::int64_t dark_moved,
                std::int64_t light_moved);

 private:
  friend class TaggedCountSimulation;
  /// Checkpoint restore (core/checkpoint.h) re-seats the clock.
  friend CountSimulation count_simulation_from_checkpoint(
      const std::string& text);
  /// The v2 checkpoint layer's accessor (defined in checkpoint.cpp): it
  /// additionally round-trips the auto-engine EWMA, the transition
  /// counter, and the pending-event schedule.
  friend struct CheckpointAccess;

  void validate() const;
  /// Full O(k) invariant walk (SIM_CHECKED builds only; compiled to an
  /// empty body otherwise and never called from release paths): count
  /// conservation Σ(dark + light) == n, non-negativity, total_dark_ /
  /// dark_ge2_ / Fenwick-tree / min-tree consistency, flip propensities
  /// within the rebuild drift bound, event queue sorted and not in the
  /// past.  Called from window boundaries (drive) and every structural
  /// rebuild — not per step, so checked runs stay within ~2× wall-clock.
  void check_invariants() const;
  /// Rebuilds every derived structure (trees, propensities, counters)
  /// from dark_/light_ in O(k) — constructor and structural mutators.
  void rebuild_derived();
  /// Engine cores without event awareness; the public run functions wrap
  /// them in drive(), which splits at pending event times.
  void run_to_impl(std::int64_t target_time, rng::Xoshiro256& gen);
  void advance_to_impl(std::int64_t target_time, rng::Xoshiro256& gen);
  void run_batched_impl(std::int64_t target_time, rng::Xoshiro256& gen);
  void run_auto_impl(std::int64_t target_time, rng::Xoshiro256& gen);
  /// Advances to target_time with `engine`, firing every scheduled event
  /// at exactly its interaction index (each split segment is its own
  /// window for the auto engine).
  void drive(Engine engine, std::int64_t target_time, rng::Xoshiro256& gen);
  void advance_core(Engine engine, std::int64_t target_time,
                    rng::Xoshiro256& gen);
  /// The auto engine's cost-model decision for a window of `window`
  /// interactions (exposed to tests through run_auto's behaviour).
  [[nodiscard]] Engine pick_auto_engine(std::int64_t window) const noexcept;
  void apply_adopt(ColorId from, ColorId to) noexcept;
  void apply_fade(ColorId i) noexcept;
  /// Updates the dark-count derived state after dark_[i] changed by ±1.
  void on_dark_changed(std::size_t i) noexcept;
  /// Exact absorption test on integers, immune to rounding: an adopt
  /// needs a light initiator AND a dark responder; a fade needs a colour
  /// with two dark agents.
  [[nodiscard]] bool is_absorbed() const noexcept {
    return dark_ge2_ == 0 && (total_light() == 0 || total_dark_ == 0);
  }
  /// Samples (class is dark?, colour) of the initiator/responder.
  struct ClassPick {
    bool dark = false;
    ColorId color = 0;
  };
  [[nodiscard]] ClassPick pick_class(rng::Xoshiro256& gen,
                                     std::int64_t total,
                                     const ClassPick* excluded) const;

  WeightMap weights_;
  std::vector<std::int64_t> dark_;
  std::vector<std::int64_t> light_;
  std::int64_t n_ = 0;
  std::int64_t total_dark_ = 0;
  std::int64_t time_ = 0;
  // Derived sampling state, kept in lockstep with dark_/light_:
  sampling::FenwickCounts dark_tree_;       // class draws over dark counts
  sampling::FenwickCounts light_tree_;      // class draws over light counts
  sampling::FenwickPropensities flip_tree_; // f_i = A_i (A_i - 1) / w_i
  sampling::MinTree dark_min_;              // O(1) min_dark()
  std::vector<double> inv_weight_;          // 1 / w_i
  std::int64_t dark_ge2_ = 0;               // #colours with dark_[i] >= 2
  std::int64_t active_transitions_ = 0;  // adopt + fade count, any engine
  /// EWMA of measured per-window active fractions (< 0 until the first
  /// auto window completes).
  double active_ewma_ = -1.0;
  /// Scheduled events sorted by time (ties keep registration order).
  struct PendingEvent {
    std::int64_t time = 0;
    std::int64_t handle = 0;
    EventAction action;
  };
  std::vector<PendingEvent> pending_events_;
  std::int64_t next_event_handle_ = 0;
  /// Lazily built by run_batched and kept across calls so windowed
  /// drivers (advance_with per check_every chunk) reuse the batcher's
  /// O(√n) run-length table instead of rebuilding it per window.
  /// Invalidated when the palette grows (add_color).
  std::optional<batch::CollisionBatcher> batcher_;
  /// Shared immutable sampler state (set_sampler_context); nullptr when
  /// running solo.  Copies of the simulation share it (it is immutable).
  std::shared_ptr<const context::SamplerContext> sampler_context_;
};

/// CountSimulation plus one distinguished ("tagged") agent carried through
/// the lumped dynamics *exactly*:
///
///  * with probability 1/n the tagged agent is the scheduled initiator —
///    its responder class is drawn from the counts minus itself and the
///    rule is applied to its own state;
///  * otherwise the initiator is drawn from the counts minus the tagged
///    agent, so a lumped transition never relocates the tagged agent.
///
/// This yields the tagged agent's exact (colour, shade) trajectory — the
/// object Section 2.4 approximates with the Markov chain M — while the
/// population is simulated at O(k) per step.
///
/// Since PR 5 the joint chain also runs under the jump, batch and auto
/// engines, at the same amortised speed as the untagged engines.  The
/// decomposition is exact: each interaction picks the tagged agent as
/// initiator with probability 1/n and as responder with probability 1/n,
/// i.i.d. across interactions and independently of every other draw, so
/// over a window of ℓ interactions the tagged agent's interactions are a
/// Binomial(ℓ, 2/n) count at uniformly random positions
/// (batch::CollisionBatcher::draw_tagged_involvement).  Conditioned on
/// those positions, every other interaction is a uniform ordered pair of
/// the *remaining* n − 1 agents — a standard lumped chain on the counts
/// minus the tagged agent, which the untagged engines advance at full
/// speed — and at each tagged position the partner is one plain class
/// pick from those counts, with the rule applied exactly (the tagged
/// agent adopts from the current lumped counts and fades at its 1/w_i
/// rate).  Populations below the batching cutoff fall back to step(),
/// bit-identically.
class TaggedCountSimulation {
 public:
  /// Tags one agent of colour `tagged_color` with shade `tagged_dark`.
  /// \pre the corresponding count in `sim` is >= 1.
  TaggedCountSimulation(CountSimulation sim, ColorId tagged_color,
                        bool tagged_dark);

  /// One time-step of the joint (counts, tagged) chain.
  void step(rng::Xoshiro256& gen);

  /// Runs until time() == target_time, invoking
  /// observer(time_before_step, tagged_state) before every step.
  template <typename Observer>
  void run_observed(std::int64_t target_time, rng::Xoshiro256& gen,
                    Observer&& observer) {
    while (sim_.time() < target_time) {
      observer(sim_.time(), tagged_);
      step(gen);
    }
  }

  // ---- engine-generalised runs (PR 5) ---------------------------------

  /// Advances the joint chain to target_time with the chosen engine.
  /// All four engines are distributionally identical on the joint
  /// (tagged colour, tagged shade, counts) law
  /// (tests/test_tagged_batch.cpp); the RNG draw *sequence* differs
  /// between kStep and the decomposed engines (README reproducibility
  /// note).  kAuto delegates each collision-free segment to jump or
  /// batch through the underlying cost model.  Scheduled events on the
  /// wrapped simulation are not fired (same contract as step()).
  void advance_with(Engine engine, std::int64_t target_time,
                    rng::Xoshiro256& gen);

  /// Engine shorthands mirroring CountSimulation's run functions.
  void run_to(std::int64_t target_time, rng::Xoshiro256& gen) {
    advance_with(Engine::kStep, target_time, gen);
  }
  void advance_to(std::int64_t target_time, rng::Xoshiro256& gen) {
    advance_with(Engine::kJump, target_time, gen);
  }
  void run_batched(std::int64_t target_time, rng::Xoshiro256& gen) {
    advance_with(Engine::kBatch, target_time, gen);
  }
  void run_auto(std::int64_t target_time, rng::Xoshiro256& gen) {
    advance_with(Engine::kAuto, target_time, gen);
  }

  /// Called at every tagged-agent state change with the time-step index
  /// at which `new_state` takes effect (the pre-step clock of the
  /// changing interaction — the same convention as StepEvent::time, so
  /// analysis::FairnessTracker::observe_change consumes it directly).
  using ChangeObserver = std::function<void(std::int64_t, AgentState)>;

  /// Advances to target_time with `engine`, invoking `on_change` exactly
  /// once per tagged state change — the aggregate-observer counterpart of
  /// run_observed: a whole stretch between changes books as one segment,
  /// so fairness accounting costs O(changes), not O(interactions).
  void run_changes(Engine engine, std::int64_t target_time,
                   rng::Xoshiro256& gen, const ChangeObserver& on_change);

  [[nodiscard]] const CountSimulation& counts() const noexcept { return sim_; }
  [[nodiscard]] AgentState tagged_state() const noexcept { return tagged_; }
  [[nodiscard]] std::int64_t time() const noexcept { return sim_.time(); }

  /// CountSimulation::canonicalize on the wrapped counts — the same
  /// checkpoint-boundary alignment contract, for the tagged chain.
  void canonicalize() { sim_.canonicalize(); }

  /// Boundary state of the joint chain: the lumped snapshot plus the
  /// tagged agent's (colour, shade).  Same contract as
  /// CountSimulation::snapshot_counts / restore_counts.
  struct Snapshot {
    CountsSnapshot counts;
    AgentState tagged{};
  };

  [[nodiscard]] Snapshot snapshot_counts() const {
    return Snapshot{sim_.snapshot_counts(), tagged_};
  }

  /// \throws std::invalid_argument as restore_counts, plus when the
  /// tagged agent's cell is empty in the restored counts.
  void restore_counts(const Snapshot& snapshot);

 private:
  /// Step-mode run shared by the kStep engine and the small-population
  /// fallback; bit-identical to a plain step() loop.
  void run_steps(std::int64_t target_time, rng::Xoshiro256& gen,
                 const ChangeObserver* on_change);
  /// The Binomial-involvement decomposition driving kJump/kBatch/kAuto.
  void run_decomposed(Engine engine, std::int64_t target_time,
                      rng::Xoshiro256& gen, const ChangeObserver* on_change);
  /// Resolves one interaction known to involve the tagged agent
  /// (counts currently exclude it); advances the clock by one.
  void resolve_tagged_interaction(rng::Xoshiro256& gen,
                                  const ChangeObserver* on_change);

  CountSimulation sim_;
  AgentState tagged_{};
  /// Scratch for draw_tagged_involvement (kept across windows).
  std::vector<std::int64_t> involvement_;
};

}  // namespace divpp::core

#endif  // DIVPP_CORE_COUNT_SIMULATION_H
