#include "core/derandomised_count.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "rng/distributions.h"

namespace divpp::core {

DerandomisedCountSimulation::DerandomisedCountSimulation(
    WeightMap weights, std::vector<std::vector<std::int64_t>> shade_counts)
    : weights_(std::move(weights)) {
  if (!weights_.is_integral())
    throw std::invalid_argument(
        "DerandomisedCountSimulation: integral weights required");
  const auto k = static_cast<std::size_t>(weights_.num_colors());
  if (shade_counts.size() != k)
    throw std::invalid_argument(
        "DerandomisedCountSimulation: colour count mismatch");
  offsets_.resize(k + 1);
  offsets_[0] = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto top = static_cast<std::size_t>(
        weights_.integer_weight(static_cast<ColorId>(i)));
    if (shade_counts[i].size() != top + 1)
      throw std::invalid_argument(
          "DerandomisedCountSimulation: colour " + std::to_string(i) +
          " must have w_i + 1 shade buckets");
    offsets_[i + 1] = offsets_[i] + top + 1;
  }
  counts_.assign(offsets_[k], 0);
  positive_.assign(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t s = 0; s < shade_counts[i].size(); ++s) {
      const std::int64_t c = shade_counts[i][s];
      if (c < 0)
        throw std::invalid_argument(
            "DerandomisedCountSimulation: negative count");
      counts_[offsets_[i] + s] = c;
      n_ += c;
      if (s > 0) {
        positive_[i] += c;
        total_positive_ += c;
      }
    }
  }
  if (n_ < 2)
    throw std::invalid_argument(
        "DerandomisedCountSimulation: need at least two agents");
}

DerandomisedCountSimulation DerandomisedCountSimulation::top_start(
    WeightMap weights, std::span<const std::int64_t> supports) {
  const auto k = static_cast<std::size_t>(weights.num_colors());
  if (supports.size() != k)
    throw std::invalid_argument("top_start: support vector size mismatch");
  std::vector<std::vector<std::int64_t>> shade_counts(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto top = static_cast<std::size_t>(
        weights.integer_weight(static_cast<ColorId>(i)));
    shade_counts[i].assign(top + 1, 0);
    shade_counts[i][top] = supports[i];
  }
  return DerandomisedCountSimulation(std::move(weights),
                                     std::move(shade_counts));
}

std::size_t DerandomisedCountSimulation::index(ColorId i,
                                               std::int64_t s) const {
  return offsets_[static_cast<std::size_t>(i)] + static_cast<std::size_t>(s);
}

std::int64_t DerandomisedCountSimulation::shade_count(ColorId i,
                                                      std::int64_t s) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("shade_count: colour out of range");
  if (s < 0 || s > weights_.integer_weight(i))
    throw std::out_of_range("shade_count: shade out of range");
  return counts_[index(i, s)];
}

std::int64_t DerandomisedCountSimulation::support(ColorId i) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("support: colour out of range");
  std::int64_t total = 0;
  for (std::int64_t s = 0; s <= weights_.integer_weight(i); ++s)
    total += counts_[index(i, s)];
  return total;
}

std::int64_t DerandomisedCountSimulation::positive(ColorId i) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("positive: colour out of range");
  return positive_[static_cast<std::size_t>(i)];
}

std::int64_t DerandomisedCountSimulation::light(ColorId i) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("light: colour out of range");
  return counts_[index(i, 0)];
}

std::vector<std::int64_t> DerandomisedCountSimulation::supports() const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(num_colors()));
  for (ColorId i = 0; i < num_colors(); ++i)
    out[static_cast<std::size_t>(i)] = support(i);
  return out;
}

std::int64_t DerandomisedCountSimulation::min_positive() const {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t p : positive_) best = std::min(best, p);
  return best;
}

double DerandomisedCountSimulation::active_probability() const noexcept {
  const double denom = static_cast<double>(n_) * static_cast<double>(n_ - 1);
  const auto light_total = static_cast<double>(n_ - total_positive_);
  double active = light_total * static_cast<double>(total_positive_);
  for (const std::int64_t p : positive_)
    active += static_cast<double>(p) * static_cast<double>(p - 1);
  return active / denom;
}

DerandomisedCountSimulation::ClassRef
DerandomisedCountSimulation::pick_class(rng::Xoshiro256& gen,
                                        std::int64_t total,
                                        const ClassRef* excluded) const {
  std::int64_t target = rng::uniform_below(gen, total);
  for (ColorId i = 0; i < num_colors(); ++i) {
    const std::int64_t top = weights_.integer_weight(i);
    for (std::int64_t s = 0; s <= top; ++s) {
      std::int64_t available = counts_[index(i, s)];
      if (excluded != nullptr && excluded->color == i &&
          excluded->shade == s)
        --available;
      if (target < available) return {i, s};
      target -= available;
    }
  }
  throw std::logic_error(
      "DerandomisedCountSimulation::pick_class: inconsistent totals");
}

void DerandomisedCountSimulation::apply_adopt(ColorId from,
                                              ColorId to) noexcept {
  --counts_[index(from, 0)];
  const std::int64_t top = weights_.integer_weight(to);
  ++counts_[index(to, top)];
  ++positive_[static_cast<std::size_t>(to)];
  ++total_positive_;
}

void DerandomisedCountSimulation::apply_fade(ColorId i,
                                             std::int64_t shade) noexcept {
  --counts_[index(i, shade)];
  ++counts_[index(i, shade - 1)];
  if (shade == 1) {
    --positive_[static_cast<std::size_t>(i)];
    --total_positive_;
  }
}

Transition DerandomisedCountSimulation::step(rng::Xoshiro256& gen) {
  const ClassRef initiator = pick_class(gen, n_, nullptr);
  const ClassRef responder = pick_class(gen, n_ - 1, &initiator);
  Transition result = Transition::kNoOp;
  if (initiator.shade == 0 && responder.shade > 0) {
    apply_adopt(initiator.color, responder.color);
    result = Transition::kAdopt;
  } else if (initiator.shade > 0 && responder.shade > 0 &&
             initiator.color == responder.color) {
    apply_fade(initiator.color, initiator.shade);
    result = Transition::kFade;
  }
  ++time_;
  return result;
}

void DerandomisedCountSimulation::run_to(std::int64_t target_time,
                                         rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("run_to: target time is in the past");
  while (time_ < target_time) (void)step(gen);
}

void DerandomisedCountSimulation::advance_to(std::int64_t target_time,
                                             rng::Xoshiro256& gen) {
  if (target_time < time_)
    throw std::invalid_argument("advance_to: target time is in the past");
  const auto k = static_cast<std::size_t>(num_colors());
  std::vector<double> fade_weights(k);
  while (time_ < target_time) {
    const auto light_total = static_cast<double>(n_ - total_positive_);
    const double adopt_weight =
        light_total * static_cast<double>(total_positive_);
    double fade_total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      fade_weights[i] = static_cast<double>(positive_[i]) *
                        static_cast<double>(positive_[i] - 1);
      fade_total += fade_weights[i];
    }
    const double denom =
        static_cast<double>(n_) * static_cast<double>(n_ - 1);
    const double p_active = (adopt_weight + fade_total) / denom;
    if (!(p_active > 0.0)) {
      time_ = target_time;
      return;
    }
    const std::int64_t skip =
        rng::geometric_failures(gen, std::min(p_active, 1.0));
    if (time_ + skip >= target_time) {
      time_ = target_time;
      return;
    }
    time_ += skip;
    const double pick = rng::uniform01(gen) * (adopt_weight + fade_total);
    if (pick < adopt_weight) {
      // Initiator: shade-0 agent of colour i ∝ light counts; responder's
      // colour j ∝ positive counts.
      std::vector<std::int64_t> lights(k);
      for (std::size_t i = 0; i < k; ++i)
        lights[i] = counts_[offsets_[i]];
      const auto from = static_cast<ColorId>(rng::sample_counts(
          gen, lights, n_ - total_positive_));
      const auto to = static_cast<ColorId>(
          rng::sample_counts(gen, positive_, total_positive_));
      apply_adopt(from, to);
    } else {
      const auto color = static_cast<ColorId>(
          rng::sample_discrete(gen, fade_weights));
      // Which shade fades: initiator ∝ counts over positive shades.
      const std::int64_t top = weights_.integer_weight(color);
      std::int64_t target = rng::uniform_below(
          gen, positive_[static_cast<std::size_t>(color)]);
      std::int64_t shade = 1;
      for (; shade <= top; ++shade) {
        if (target < counts_[index(color, shade)]) break;
        target -= counts_[index(color, shade)];
      }
      apply_fade(color, shade);
    }
    ++time_;
  }
}

}  // namespace divpp::core
