#ifndef DIVPP_CORE_DERANDOMISED_COUNT_H
#define DIVPP_CORE_DERANDOMISED_COUNT_H

/// \file derandomised_count.h
/// Exact lumped simulation of the *derandomised* Diversification
/// protocol (paper §1.2) on the complete graph.
///
/// The derandomised variant stores an integer shade s ∈ {0, ..., w_i}
/// per agent; on K_n the process is exchangeable, so the vector of
/// per-(colour, shade) counts is a Markov chain of dimension Σ(w_i + 1)
/// — independent of n.  Analysing this variant is explicitly left open
/// by the paper (§3); this simulator makes the empirical side of that
/// open problem cheap at any population size (experiment E9/E17).
///
/// Transitions (one scheduled initiator per step, as in §1.2):
///  * initiator shade 0 meets responder shade > 0 of colour j:
///    initiator becomes (j, w_j);
///  * initiator shade s > 0 meets responder shade > 0 of the *same*
///    colour: initiator's shade drops to s − 1;
///  * anything else: no-op.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/diversification.h"
#include "core/weights.h"
#include "rng/xoshiro.h"

namespace divpp::core {

/// Lumped (count-level) simulation of the derandomised protocol on K_n.
class DerandomisedCountSimulation {
 public:
  /// Starts from explicit per-(colour, shade) counts.
  /// \param shade_counts shade_counts[i][s] = number of agents with
  /// colour i and shade s; shade_counts[i].size() must equal w_i + 1.
  /// \throws std::invalid_argument on non-integral weights, shape
  /// mismatch, negative counts, or fewer than two agents.
  DerandomisedCountSimulation(
      WeightMap weights,
      std::vector<std::vector<std::int64_t>> shade_counts);

  /// All agents at their colour's top shade, supports as given — the
  /// protocol's canonical all-confident start.
  [[nodiscard]] static DerandomisedCountSimulation top_start(
      WeightMap weights, std::span<const std::int64_t> supports);

  // ---- observers -------------------------------------------------------

  [[nodiscard]] std::int64_t n() const noexcept { return n_; }
  [[nodiscard]] std::int64_t num_colors() const noexcept {
    return weights_.num_colors();
  }
  [[nodiscard]] std::int64_t time() const noexcept { return time_; }
  [[nodiscard]] const WeightMap& weights() const noexcept { return weights_; }

  /// Number of agents with colour i and shade s.
  [[nodiscard]] std::int64_t shade_count(ColorId i, std::int64_t s) const;
  /// Total support of colour i (all shades).
  [[nodiscard]] std::int64_t support(ColorId i) const;
  /// Positive-shade ("confident") support of colour i.
  [[nodiscard]] std::int64_t positive(ColorId i) const;
  /// Shade-0 count of colour i.
  [[nodiscard]] std::int64_t light(ColorId i) const;
  /// All supports.
  [[nodiscard]] std::vector<std::int64_t> supports() const;
  /// Smallest positive-shade support over colours — the derandomised
  /// sustainability observable (cannot reach 0 under the protocol).
  [[nodiscard]] std::int64_t min_positive() const;
  /// Probability the next step changes the state.
  [[nodiscard]] double active_probability() const noexcept;

  // ---- dynamics --------------------------------------------------------

  /// Executes exactly one time-step (possibly a no-op).
  Transition step(rng::Xoshiro256& gen);

  /// Plain run to an absolute target time.  \pre target >= time().
  void run_to(std::int64_t target_time, rng::Xoshiro256& gen);

  /// Jump-chain run (geometric no-op skipping); same law as run_to.
  void advance_to(std::int64_t target_time, rng::Xoshiro256& gen);

 private:
  /// Checkpoint restore (core/checkpoint.h) re-seats the clock.
  friend DerandomisedCountSimulation derandomised_from_checkpoint(
      const std::string& text);

  struct ClassRef {
    ColorId color = 0;
    std::int64_t shade = 0;
  };
  [[nodiscard]] std::size_t index(ColorId i, std::int64_t s) const;
  [[nodiscard]] ClassRef pick_class(rng::Xoshiro256& gen, std::int64_t total,
                                    const ClassRef* excluded) const;
  void apply_adopt(ColorId from, ColorId to) noexcept;
  void apply_fade(ColorId i, std::int64_t shade) noexcept;

  WeightMap weights_;
  std::vector<std::int64_t> counts_;   // flattened [colour][shade]
  std::vector<std::size_t> offsets_;   // start of each colour's block
  std::vector<std::int64_t> positive_; // cache: Σ_{s>0} counts[i][s]
  std::int64_t total_positive_ = 0;
  std::int64_t n_ = 0;
  std::int64_t time_ = 0;
};

}  // namespace divpp::core

#endif  // DIVPP_CORE_DERANDOMISED_COUNT_H
