#include "core/diversification.h"

#include <stdexcept>

namespace divpp::core {

DerandomisedRule::DerandomisedRule(WeightMap weights)
    : weights_(std::move(weights)) {
  if (!weights_.is_integral())
    throw std::invalid_argument(
        "DerandomisedRule: the derandomised protocol requires integer "
        "weights (paper §1.2)");
}

bool valid_randomized_state(const AgentState& state, const WeightMap& weights) {
  return state.color >= 0 && state.color < weights.num_colors() &&
         (state.shade == kLight || state.shade == kDark);
}

bool valid_derandomised_state(const AgentState& state,
                              const WeightMap& weights) {
  if (state.color < 0 || state.color >= weights.num_colors()) return false;
  if (!weights.is_integral()) return false;
  const std::int64_t top = weights.integer_weight(state.color);
  return state.shade >= 0 && state.shade <= top;
}

}  // namespace divpp::core
