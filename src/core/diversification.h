#ifndef DIVPP_CORE_DIVERSIFICATION_H
#define DIVPP_CORE_DIVERSIFICATION_H

/// \file diversification.h
/// The Diversification protocol — the paper's primary contribution.
///
/// Randomized rule (paper Eq. (2)); u is the scheduled agent, v the
/// sampled one; only u's state may change:
///
///   (c_u(t+1), b_u(t+1)) =
///     (c_v(t), 1)  if b_u(t) = 0 and b_v(t) = 1            [adopt]
///     (c_u(t), 0)  w.p. 1/w_{c_u}  if b_u = b_v = 1
///                  and c_u(t) = c_v(t)                      [fade]
///     (c_u(t), b_u(t))  otherwise                           [no-op]
///
/// Derandomised rule (paper §1.2 "Derandomisation", integer weights):
/// shades range over {0, ..., w_i}; a positive-shade agent meeting a
/// positive-shade agent of the *same* colour decrements its shade; a
/// shade-0 agent meeting a positive-shade agent of colour j adopts
/// (colour j, shade w_j); everything else is a no-op.

#include <cstdint>

#include "core/agent.h"
#include "core/weights.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::core {

/// What a single application of a rule did (used by trackers/tests).
enum class Transition : std::uint8_t {
  kNoOp,   ///< state unchanged
  kAdopt,  ///< initiator adopted responder's colour (turned dark)
  kFade,   ///< initiator lost confidence (shade decreased / turned light)
};

/// The randomized Diversification rule of Eq. (2).
///
/// Value-semantic: holds its own copy of the palette.  Satisfies the
/// engine's one-responder, read-only-responder rule concept.
class DiversificationRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = false;

  explicit DiversificationRule(WeightMap weights)
      : weights_(std::move(weights)) {}

  /// Applies Eq. (2) to the initiator given the observed responder.
  Transition apply(AgentState& initiator, const AgentState& responder,
                   rng::Xoshiro256& gen) const {
    if (initiator.is_light() && responder.is_dark()) {
      initiator = AgentState{responder.color, kDark};
      return Transition::kAdopt;
    }
    if (initiator.is_dark() && responder.is_dark() &&
        initiator.color == responder.color) {
      const double w = weights_.weight(initiator.color);
      if (rng::bernoulli(gen, 1.0 / w)) {
        initiator.shade = kLight;
        return Transition::kFade;
      }
    }
    return Transition::kNoOp;
  }

  /// The palette this rule was built with.
  [[nodiscard]] const WeightMap& weights() const noexcept { return weights_; }

 private:
  WeightMap weights_;
};

/// The derandomised Diversification rule (integer shades, no coins).
class DerandomisedRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = false;

  /// \throws std::invalid_argument unless all weights are integers.
  explicit DerandomisedRule(WeightMap weights);

  /// Applies the derandomised transition to the initiator.
  Transition apply(AgentState& initiator, const AgentState& responder,
                   rng::Xoshiro256& gen) const {
    (void)gen;  // deterministic given the sampled pair
    if (initiator.is_light() && responder.is_dark()) {
      const auto shade = static_cast<std::int32_t>(
          weights_.integer_weight(responder.color));
      initiator = AgentState{responder.color, shade};
      return Transition::kAdopt;
    }
    if (initiator.is_dark() && responder.is_dark() &&
        initiator.color == responder.color) {
      --initiator.shade;
      return Transition::kFade;
    }
    return Transition::kNoOp;
  }

  /// Top shade for colour i (= w_i).
  [[nodiscard]] std::int32_t max_shade(ColorId i) const {
    return static_cast<std::int32_t>(weights_.integer_weight(i));
  }

  [[nodiscard]] const WeightMap& weights() const noexcept { return weights_; }

 private:
  WeightMap weights_;
};

/// True when `state` is valid under the randomized rule's domain
/// (shade in {0, 1}, colour within palette).
[[nodiscard]] bool valid_randomized_state(const AgentState& state,
                                          const WeightMap& weights);

/// True when `state` is valid under the derandomised rule's domain
/// (0 <= shade <= w_colour, colour within palette).
[[nodiscard]] bool valid_derandomised_state(const AgentState& state,
                                            const WeightMap& weights);

}  // namespace divpp::core

#endif  // DIVPP_CORE_DIVERSIFICATION_H
