#include "core/equilibrium.h"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace divpp::core {

std::vector<double> Equilibrium::support_share() const {
  std::vector<double> out(dark_share.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = dark_share[i] + light_share[i];
  return out;
}

double Equilibrium::total_dark_share() const noexcept {
  return std::accumulate(dark_share.begin(), dark_share.end(), 0.0);
}

double Equilibrium::total_light_share() const noexcept {
  return std::accumulate(light_share.begin(), light_share.end(), 0.0);
}

Equilibrium equilibrium_shares(const WeightMap& weights) {
  const double total = weights.total();
  Equilibrium eq;
  eq.dark_share.reserve(static_cast<std::size_t>(weights.num_colors()));
  eq.light_share.reserve(static_cast<std::size_t>(weights.num_colors()));
  for (const double w : weights.weights()) {
    eq.dark_share.push_back(w / (1.0 + total));
    eq.light_share.push_back((w / total) / (1.0 + total));
  }
  return eq;
}

namespace {

void check_n(std::int64_t n, const char* who) {
  if (n < 2) throw std::invalid_argument(std::string(who) + ": need n >= 2");
}

}  // namespace

double theorem213_envelope(std::int64_t n, double constant) {
  check_n(n, "theorem213_envelope");
  const double dn = static_cast<double>(n);
  return constant * std::pow(dn, 0.75) * std::pow(std::log(dn), 0.25);
}

double theorem28_envelope(std::int64_t n, double total_weight,
                          double constant) {
  check_n(n, "theorem28_envelope");
  const double dn = static_cast<double>(n);
  return constant * total_weight * dn * std::log(dn);
}

double convergence_time_scale(std::int64_t n, double total_weight) {
  check_n(n, "convergence_time_scale");
  const double dn = static_cast<double>(n);
  return total_weight * total_weight * dn * std::log(dn);
}

double diversity_error_scale(std::int64_t n) {
  check_n(n, "diversity_error_scale");
  const double dn = static_cast<double>(n);
  return std::sqrt(std::log(dn) / dn);
}

}  // namespace divpp::core
