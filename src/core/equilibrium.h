#ifndef DIVPP_CORE_EQUILIBRIUM_H
#define DIVPP_CORE_EQUILIBRIUM_H

/// \file equilibrium.h
/// Closed-form equilibrium targets and the paper's error envelopes.
///
/// Paper Eq. (7): in perfect equilibrium
///   A_i(t)/n = w_i / (1+W)          (dark share of colour i)
///   a_i(t)/n = (w_i/W) / (1+W)      (light share of colour i)
/// so the total support share is  C_i(t)/n = w_i/W  — the fair share.

#include <cstdint>
#include <vector>

#include "core/weights.h"

namespace divpp::core {

/// Equilibrium shares per Eq. (7) for one palette.
struct Equilibrium {
  std::vector<double> dark_share;   ///< A_i*/n = w_i/(1+W)
  std::vector<double> light_share;  ///< a_i*/n = (w_i/W)/(1+W)

  /// C_i*/n = w_i/W (dark + light shares).
  [[nodiscard]] std::vector<double> support_share() const;
  /// A*/n = W/(1+W).
  [[nodiscard]] double total_dark_share() const noexcept;
  /// a*/n = 1/(1+W).
  [[nodiscard]] double total_light_share() const noexcept;
};

/// Computes the Eq. (7) equilibrium for a palette.
[[nodiscard]] Equilibrium equilibrium_shares(const WeightMap& weights);

/// The Theorem 2.13 additive envelope  C · n^{3/4} (log n)^{1/4}.
/// \pre n >= 2.
[[nodiscard]] double theorem213_envelope(std::int64_t n, double constant);

/// The Theorem 2.8 potential ceiling  C · W · n · log n.  \pre n >= 2.
[[nodiscard]] double theorem28_envelope(std::int64_t n, double total_weight,
                                        double constant);

/// The convergence-time scale  W² · n · log n  of Theorems 1.3/2.5.
/// \pre n >= 2.
[[nodiscard]] double convergence_time_scale(std::int64_t n,
                                            double total_weight);

/// The diversity deviation scale of Definition 1.1(1):
/// sqrt(log n / n) (the Õ(1/√n) envelope, with its log made explicit).
[[nodiscard]] double diversity_error_scale(std::int64_t n);

}  // namespace divpp::core

#endif  // DIVPP_CORE_EQUILIBRIUM_H
