#include "core/mean_field.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace divpp::core {

double MeanFieldState::total_dark() const noexcept {
  return std::accumulate(dark.begin(), dark.end(), 0.0);
}

double MeanFieldState::total_light() const noexcept {
  return std::accumulate(light.begin(), light.end(), 0.0);
}

MeanFieldOde::MeanFieldOde(WeightMap weights) : weights_(std::move(weights)) {}

MeanFieldState MeanFieldOde::derivative(const MeanFieldState& state) const {
  const auto k = static_cast<std::size_t>(weights_.num_colors());
  if (state.dark.size() != k || state.light.size() != k)
    throw std::invalid_argument("MeanFieldOde: state size mismatch");
  const double alpha = state.total_dark();
  const double beta = state.total_light();
  MeanFieldState d;
  d.dark.resize(k);
  d.light.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double fade = state.dark[i] * state.dark[i] / weights_.weights()[i];
    d.dark[i] = beta * state.dark[i] - fade;
    d.light[i] = fade - state.light[i] * alpha;
  }
  return d;
}

namespace {

void axpy(MeanFieldState& y, double a, const MeanFieldState& x) {
  for (std::size_t i = 0; i < y.dark.size(); ++i) {
    y.dark[i] += a * x.dark[i];
    y.light[i] += a * x.light[i];
  }
}

MeanFieldState shifted(const MeanFieldState& base, double a,
                       const MeanFieldState& dir) {
  MeanFieldState out = base;
  axpy(out, a, dir);
  return out;
}

double sup_norm(const MeanFieldState& s) {
  double best = 0.0;
  for (const double v : s.dark) best = std::max(best, std::abs(v));
  for (const double v : s.light) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace

void MeanFieldOde::integrate(MeanFieldState& state, double tau,
                             double dt) const {
  if (tau < 0.0) throw std::invalid_argument("integrate: tau must be >= 0");
  if (!(dt > 0.0)) throw std::invalid_argument("integrate: dt must be > 0");
  double remaining = tau;
  while (remaining > 0.0) {
    const double h = std::min(dt, remaining);
    const MeanFieldState k1 = derivative(state);
    const MeanFieldState k2 = derivative(shifted(state, h / 2.0, k1));
    const MeanFieldState k3 = derivative(shifted(state, h / 2.0, k2));
    const MeanFieldState k4 = derivative(shifted(state, h, k3));
    for (std::size_t i = 0; i < state.dark.size(); ++i) {
      state.dark[i] +=
          h / 6.0 * (k1.dark[i] + 2.0 * k2.dark[i] + 2.0 * k3.dark[i] +
                     k4.dark[i]);
      state.light[i] +=
          h / 6.0 * (k1.light[i] + 2.0 * k2.light[i] + 2.0 * k3.light[i] +
                     k4.light[i]);
    }
    remaining -= h;
  }
}

double MeanFieldOde::integrate_to_fixed_point(MeanFieldState& state,
                                              double tolerance, double max_tau,
                                              double dt) const {
  if (!(tolerance > 0.0))
    throw std::invalid_argument("integrate_to_fixed_point: tolerance <= 0");
  double elapsed = 0.0;
  while (elapsed < max_tau) {
    if (sup_norm(derivative(state)) < tolerance) return elapsed;
    integrate(state, dt, dt);
    elapsed += dt;
  }
  return elapsed;
}

MeanFieldState MeanFieldOde::from_counts(
    const std::vector<std::int64_t>& dark,
    const std::vector<std::int64_t>& light) {
  if (dark.size() != light.size() || dark.empty())
    throw std::invalid_argument("from_counts: size mismatch or empty");
  std::int64_t n = 0;
  for (std::size_t i = 0; i < dark.size(); ++i) n += dark[i] + light[i];
  if (n <= 0) throw std::invalid_argument("from_counts: empty population");
  MeanFieldState state;
  state.dark.resize(dark.size());
  state.light.resize(dark.size());
  for (std::size_t i = 0; i < dark.size(); ++i) {
    state.dark[i] = static_cast<double>(dark[i]) / static_cast<double>(n);
    state.light[i] = static_cast<double>(light[i]) / static_cast<double>(n);
  }
  return state;
}

}  // namespace divpp::core
