#include "core/mean_field.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace divpp::core {

double MeanFieldState::total_dark() const noexcept {
  return std::accumulate(dark.begin(), dark.end(), 0.0);
}

double MeanFieldState::total_light() const noexcept {
  return std::accumulate(light.begin(), light.end(), 0.0);
}

MeanFieldOde::MeanFieldOde(WeightMap weights) : weights_(std::move(weights)) {}

MeanFieldState MeanFieldOde::derivative(const MeanFieldState& state) const {
  const auto k = static_cast<std::size_t>(weights_.num_colors());
  if (state.dark.size() != k || state.light.size() != k)
    throw std::invalid_argument("MeanFieldOde: state size mismatch");
  const double alpha = state.total_dark();
  const double beta = state.total_light();
  MeanFieldState d;
  d.dark.resize(k);
  d.light.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double fade = state.dark[i] * state.dark[i] / weights_.weights()[i];
    d.dark[i] = beta * state.dark[i] - fade;
    d.light[i] = fade - state.light[i] * alpha;
  }
  return d;
}

namespace {

void axpy(MeanFieldState& y, double a, const MeanFieldState& x) {
  for (std::size_t i = 0; i < y.dark.size(); ++i) {
    y.dark[i] += a * x.dark[i];
    y.light[i] += a * x.light[i];
  }
}

MeanFieldState shifted(const MeanFieldState& base, double a,
                       const MeanFieldState& dir) {
  MeanFieldState out = base;
  axpy(out, a, dir);
  return out;
}

double sup_norm(const MeanFieldState& s) {
  double best = 0.0;
  for (const double v : s.dark) best = std::max(best, std::abs(v));
  for (const double v : s.light) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace

void MeanFieldOde::integrate(MeanFieldState& state, double tau,
                             double dt) const {
  if (tau < 0.0) throw std::invalid_argument("integrate: tau must be >= 0");
  if (!(dt > 0.0)) throw std::invalid_argument("integrate: dt must be > 0");
  double remaining = tau;
  while (remaining > 0.0) {
    const double h = std::min(dt, remaining);
    const MeanFieldState k1 = derivative(state);
    const MeanFieldState k2 = derivative(shifted(state, h / 2.0, k1));
    const MeanFieldState k3 = derivative(shifted(state, h / 2.0, k2));
    const MeanFieldState k4 = derivative(shifted(state, h, k3));
    for (std::size_t i = 0; i < state.dark.size(); ++i) {
      state.dark[i] +=
          h / 6.0 * (k1.dark[i] + 2.0 * k2.dark[i] + 2.0 * k3.dark[i] +
                     k4.dark[i]);
      state.light[i] +=
          h / 6.0 * (k1.light[i] + 2.0 * k2.light[i] + 2.0 * k3.light[i] +
                     k4.light[i]);
    }
    remaining -= h;
  }
}

double MeanFieldOde::integrate_to_fixed_point(MeanFieldState& state,
                                              double tolerance, double max_tau,
                                              double dt) const {
  if (!(tolerance > 0.0))
    throw std::invalid_argument("integrate_to_fixed_point: tolerance <= 0");
  double elapsed = 0.0;
  while (elapsed < max_tau) {
    if (sup_norm(derivative(state)) < tolerance) return elapsed;
    integrate(state, dt, dt);
    elapsed += dt;
  }
  return elapsed;
}

MeanFieldOde::PredictedCounts MeanFieldOde::predict_counts_after(
    const std::vector<std::int64_t>& dark,
    const std::vector<std::int64_t>& light,
    std::int64_t interactions) const {
  if (interactions < 0)
    throw std::invalid_argument("predict_counts_after: negative window");
  const auto k = static_cast<std::size_t>(weights_.num_colors());
  if (dark.size() != k || light.size() != k)
    throw std::invalid_argument("predict_counts_after: size mismatch");
  std::int64_t n = 0;
  for (std::size_t i = 0; i < k; ++i) n += dark[i] + light[i];
  MeanFieldState state = from_counts(dark, light);
  if (interactions > 0) {
    const double tau =
        static_cast<double>(interactions) / static_cast<double>(n);
    // Fixed step so the prediction is a pure function of (counts, τ):
    // uniform sub-steps of at most 1/64 rescaled time — far below the
    // fluid dynamics' timescale, so the RK4 error is negligible against
    // the O(√window) stochastic fluctuation the validator absorbs.
    const double steps = std::max(1.0, std::ceil(tau * 64.0));
    integrate(state, tau, tau / steps);
  }
  // Largest-remainder rounding on the concatenated (dark, light) vector:
  // clamp the integrated fractions to [0, 1], take floors, then hand the
  // leftover agents to the largest fractional parts (ties to the lowest
  // index, dark cells before light) — deterministic, sums to n exactly.
  const std::size_t cells = 2 * k;
  std::vector<double> scaled(cells);
  for (std::size_t i = 0; i < k; ++i) {
    scaled[i] = std::clamp(state.dark[i], 0.0, 1.0) * static_cast<double>(n);
    scaled[k + i] =
        std::clamp(state.light[i], 0.0, 1.0) * static_cast<double>(n);
  }
  std::vector<std::int64_t> floors(cells);
  std::int64_t assigned = 0;
  for (std::size_t c = 0; c < cells; ++c) {
    floors[c] = static_cast<std::int64_t>(std::floor(scaled[c]));
    assigned += floors[c];
  }
  std::vector<std::size_t> order(cells);
  for (std::size_t c = 0; c < cells; ++c) order[c] = c;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ra = scaled[a] - std::floor(scaled[a]);
                     const double rb = scaled[b] - std::floor(scaled[b]);
                     return ra > rb;
                   });
  std::int64_t leftover = n - assigned;
  for (std::size_t idx = 0; leftover > 0; idx = (idx + 1) % cells) {
    ++floors[order[idx]];
    --leftover;
  }
  // Clamping can overshoot when the float fractions summed above 1:
  // take the excess back from the smallest remainders that still have
  // agents (reverse order), never driving a cell negative.
  for (std::size_t idx = cells; leftover < 0;) {
    idx = idx == 0 ? cells - 1 : idx - 1;
    if (floors[order[idx]] > 0) {
      --floors[order[idx]];
      ++leftover;
    }
    if (idx == 0 && leftover < 0) idx = cells;  // second pass if needed
  }
  PredictedCounts out;
  out.dark.assign(floors.begin(),
                  floors.begin() + static_cast<std::ptrdiff_t>(k));
  out.light.assign(floors.begin() + static_cast<std::ptrdiff_t>(k),
                   floors.end());
  return out;
}

MeanFieldState MeanFieldOde::from_counts(
    const std::vector<std::int64_t>& dark,
    const std::vector<std::int64_t>& light) {
  if (dark.size() != light.size() || dark.empty())
    throw std::invalid_argument("from_counts: size mismatch or empty");
  std::int64_t n = 0;
  for (std::size_t i = 0; i < dark.size(); ++i) n += dark[i] + light[i];
  if (n <= 0) throw std::invalid_argument("from_counts: empty population");
  MeanFieldState state;
  state.dark.resize(dark.size());
  state.light.resize(dark.size());
  for (std::size_t i = 0; i < dark.size(); ++i) {
    state.dark[i] = static_cast<double>(dark[i]) / static_cast<double>(n);
    state.light[i] = static_cast<double>(light[i]) / static_cast<double>(n);
  }
  return state;
}

}  // namespace divpp::core
