#ifndef DIVPP_CORE_MEAN_FIELD_H
#define DIVPP_CORE_MEAN_FIELD_H

/// \file mean_field.h
/// Deterministic mean-field (fluid) limit of the Diversification protocol.
///
/// Section 1.2 sketches the drift argument: colour i's dark support
/// decreases at rate A_i(A_i-1)/(w_i n²) and grows at rate a·A_i/n².
/// In rescaled time τ = t/n (one unit ≈ n interactions) with fractions
/// α_i = A_i/n, β_i = a_i/n the fluid limit is the ODE system
///
///     dα_i/dτ = β·α_i − α_i²/w_i
///     dβ_i/dτ = α_i²/w_i − β_i·α          (α = Σα_j, β = Σβ_j)
///
/// whose unique interior fixed point is Eq. (7):
/// α_i* = w_i/(1+W), β_i* = (w_i/W)/(1+W).  The integrator lets tests and
/// benches compare stochastic trajectories against the fluid limit.

#include <cstdint>
#include <vector>

#include "core/weights.h"

namespace divpp::core {

/// State of the fluid system: dark fractions then light fractions.
struct MeanFieldState {
  std::vector<double> dark;   ///< α_i
  std::vector<double> light;  ///< β_i

  [[nodiscard]] double total_dark() const noexcept;
  [[nodiscard]] double total_light() const noexcept;
};

/// RK4 integrator for the fluid limit of the Diversification protocol.
class MeanFieldOde {
 public:
  explicit MeanFieldOde(WeightMap weights);

  /// The vector field at `state` (exposed for tests).
  [[nodiscard]] MeanFieldState derivative(const MeanFieldState& state) const;

  /// Advances `state` by `tau` units of rescaled time using RK4 with the
  /// fixed step `dt`.  \pre tau >= 0, dt > 0.
  void integrate(MeanFieldState& state, double tau, double dt) const;

  /// Integrates from `state` until the field's sup-norm drops below
  /// `tolerance` or `max_tau` rescaled time has elapsed; returns elapsed τ.
  double integrate_to_fixed_point(MeanFieldState& state, double tolerance,
                                  double max_tau, double dt) const;

  /// Fluid state matching a count configuration (fractions of n).
  [[nodiscard]] static MeanFieldState from_counts(
      const std::vector<std::int64_t>& dark,
      const std::vector<std::int64_t>& light);

  [[nodiscard]] const WeightMap& weights() const noexcept { return weights_; }

  /// Deterministic integer prediction of the counts after `interactions`
  /// further interactions, for the time-parallel engine
  /// (parallel/parallel_run.h): integrates the fluid limit from the
  /// fractions of (`dark`, `light`) over τ = interactions / n (rescaled
  /// time) with a fixed RK4 step, scales back to counts, and rounds by
  /// the largest-remainder method so the prediction preserves the
  /// population size exactly (Σ dark + Σ light == n) with every entry
  /// non-negative.  A pure function of its arguments — every speculation
  /// thread and every replay computes the identical prediction.  The
  /// stochastic counts concentrate within O(√interactions) of this
  /// prediction (Section 1.2's drift argument), which is what makes
  /// speculation profitable; near the fixed point and for short windows
  /// the rounded prediction is simply the start counts.
  /// \pre sizes match the palette; counts non-negative; n >= 1;
  /// interactions >= 0.
  struct PredictedCounts {
    std::vector<std::int64_t> dark;
    std::vector<std::int64_t> light;
  };
  [[nodiscard]] PredictedCounts predict_counts_after(
      const std::vector<std::int64_t>& dark,
      const std::vector<std::int64_t>& light,
      std::int64_t interactions) const;

 private:
  WeightMap weights_;
};

}  // namespace divpp::core

#endif  // DIVPP_CORE_MEAN_FIELD_H
