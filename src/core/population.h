#ifndef DIVPP_CORE_POPULATION_H
#define DIVPP_CORE_POPULATION_H

/// \file population.h
/// The agent-based population-protocol engine.
///
/// Implements the paper's scheduling model (§1.2): at each time-step a
/// uniformly random agent u is scheduled; u samples a uniformly random
/// neighbour v on the interaction graph (the other n-1 agents on the
/// complete graph) and applies the protocol rule.  The engine is
/// templated on the rule so the hot loop is fully devirtualised, and on
/// the state type so colour protocols (AgentState), opinion protocols
/// (ColorId) and averaging protocols (double) share one engine.
///
/// Rule concept:
///   static constexpr int  kResponders        — 1 or 2 sampled responders;
///   static constexpr bool kMutatesResponder  — two-way rules mutate v;
///   Transition apply(State& u, <responders>, rng::Xoshiro256&) — with
///     responders `const State&` (one-way) or `State&` (two-way).
///
/// Two-responder rules receive two independent neighbour samples (with
/// replacement), matching the gossip-model conventions of the 2-Choices /
/// 3-Majority literature cited in §1.1.
///
/// The engine is additionally templated on the graph type.  With the
/// default `GraphT = graph::Graph` neighbour sampling goes through the
/// virtual interface; instantiating on a concrete graph that exposes a
/// non-virtual `sample_neighbor_fast` (graph::CompleteGraph — the paper's
/// model) inlines the draw into the hot loop with no virtual call.
/// make_population deduces the concrete type automatically.

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/diversification.h"
#include "graph/graph.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::core {

/// What happened in one engine step (consumed by trackers and tests).
template <typename State>
struct StepEvent {
  std::int64_t time = 0;       ///< time-step index (0-based) of this event
  std::int64_t initiator = -1; ///< scheduled agent
  State before{};              ///< initiator state before the interaction
  State after{};               ///< initiator state after the interaction
  Transition transition = Transition::kNoOp;
};

/// Agent-based simulation of one protocol on one interaction graph.
///
/// The graph is borrowed (not owned) and must outlive the population.
template <typename State, typename Rule, typename GraphT = graph::Graph>
class Population {
 public:
  /// \pre initial.size() == graph.num_nodes() >= 2.
  Population(const GraphT& graph, std::vector<State> initial, Rule rule)
      : graph_(&graph), states_(std::move(initial)), rule_(std::move(rule)) {
    if (static_cast<std::int64_t>(states_.size()) != graph.num_nodes())
      throw std::invalid_argument(
          "Population: initial state count must equal graph size");
    if (graph.num_nodes() < 2)
      throw std::invalid_argument("Population: need at least two agents");
  }

  /// Number of agents n.
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(states_.size());
  }

  /// Time-steps executed so far.
  [[nodiscard]] std::int64_t time() const noexcept { return time_; }

  /// All agent states (indexed by node id).
  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return states_;
  }

  /// One agent's state.  \pre 0 <= u < size().
  [[nodiscard]] const State& state(std::int64_t u) const {
    check_agent(u);
    return states_[static_cast<std::size_t>(u)];
  }

  /// Overwrites one agent's state (adversary events, tests).
  void set_state(std::int64_t u, State s) {
    check_agent(u);
    states_[static_cast<std::size_t>(u)] = std::move(s);
  }

  /// The rule instance (e.g. to query its palette).
  [[nodiscard]] const Rule& rule() const noexcept { return rule_; }

  /// The interaction graph.
  [[nodiscard]] const GraphT& graph() const noexcept { return *graph_; }

  /// Executes one time-step with a uniformly random initiator
  /// (the paper's scheduler) and returns what happened.
  StepEvent<State> step(rng::Xoshiro256& gen) {
    const std::int64_t u = rng::uniform_below(gen, size());
    return step_with_initiator(u, gen);
  }

  /// Executes one time-step with the given initiator (used by the
  /// alternative schedulers in sched/).
  StepEvent<State> step_with_initiator(std::int64_t u, rng::Xoshiro256& gen) {
    check_agent(u);
    StepEvent<State> event;
    event.time = time_;
    event.initiator = u;
    State& me = states_[static_cast<std::size_t>(u)];
    event.before = me;
    event.transition = interact(u, me, gen);
    event.after = me;
    ++time_;
    return event;
  }

  /// Applies one interaction between a *forced* (initiator, responder)
  /// pair, bypassing the graph — the primitive behind matching/adversarial
  /// schedules (sched/schedulers.h).  Advances the clock by one step.
  /// Defined for one-responder rules only.  \pre distinct valid agents.
  StepEvent<State> force_interaction(std::int64_t initiator,
                                     std::int64_t responder,
                                     rng::Xoshiro256& gen) {
    static_assert(Rule::kResponders == 1,
                  "forced pairs are defined for one-responder rules");
    check_agent(initiator);
    check_agent(responder);
    if (initiator == responder)
      throw std::invalid_argument(
          "force_interaction: initiator and responder must differ");
    StepEvent<State> event;
    event.time = time_;
    event.initiator = initiator;
    State& me = states_[static_cast<std::size_t>(initiator)];
    event.before = me;
    event.transition =
        rule_.apply(me, states_[static_cast<std::size_t>(responder)], gen);
    event.after = me;
    ++time_;
    return event;
  }

  /// Runs `steps` time-steps, discarding events.  The StepEvent copies of
  /// step() (two State copies per step) are hoisted out of this path: the
  /// interaction is applied directly to the stored states.
  void run(std::int64_t steps, rng::Xoshiro256& gen) {
    for (std::int64_t i = 0; i < steps; ++i) {
      const std::int64_t u = rng::uniform_below(gen, size());
      (void)interact(u, states_[static_cast<std::size_t>(u)], gen);
      ++time_;
    }
  }

  /// Runs `steps` time-steps, forwarding each event to `observer`.
  template <typename Observer>
  void run_observed(std::int64_t steps, rng::Xoshiro256& gen,
                    Observer&& observer) {
    for (std::int64_t i = 0; i < steps; ++i) observer(step(gen));
  }

  /// Bulk-mutation entry for whole-batch engines (batch/agent_batch.h):
  /// applies `f(states)` to the mutable state vector, then advances the
  /// clock by `steps`.  The callable must keep states().size() == n and
  /// every state valid for the rule — it is trusted the way set_state
  /// is, not revalidated per agent.
  template <typename F>
  void apply_batch(std::int64_t steps, F&& f) {
    if (steps < 0)
      throw std::invalid_argument("apply_batch: negative step count");
    f(states_);
    time_ += steps;
  }

 private:
  /// One neighbour draw; resolved at compile time to the non-virtual
  /// inline fast path when the graph type provides one.
  [[nodiscard]] std::int64_t sample_neighbor_of(std::int64_t u,
                                                rng::Xoshiro256& gen) const {
    if constexpr (requires(const GraphT& g) {
                    { g.sample_neighbor_fast(u, gen) };
                  }) {
      return graph_->sample_neighbor_fast(u, gen);
    } else {
      return graph_->sample_neighbor(u, gen);
    }
  }

  /// Applies one interaction with initiator u (state reference `me`),
  /// mutating states in place; shared by step paths and run().
  Transition interact(std::int64_t u, State& me, rng::Xoshiro256& gen) {
    if constexpr (Rule::kResponders == 1) {
      const std::int64_t v = sample_neighbor_of(u, gen);
      if constexpr (Rule::kMutatesResponder) {
        return rule_.apply(me, states_[static_cast<std::size_t>(v)], gen);
      } else {
        const State& other = states_[static_cast<std::size_t>(v)];
        return rule_.apply(me, other, gen);
      }
    } else {
      static_assert(Rule::kResponders == 2,
                    "Population supports rules with 1 or 2 responders");
      const std::int64_t v1 = sample_neighbor_of(u, gen);
      const std::int64_t v2 = sample_neighbor_of(u, gen);
      const State& o1 = states_[static_cast<std::size_t>(v1)];
      const State& o2 = states_[static_cast<std::size_t>(v2)];
      return rule_.apply(me, o1, o2, gen);
    }
  }

  void check_agent(std::int64_t u) const {
    if (u < 0 || u >= size())
      throw std::out_of_range("Population: agent index out of range");
  }

  const GraphT* graph_;
  std::vector<State> states_;
  Rule rule_;
  std::int64_t time_ = 0;
};

/// Convenience alias: the paper's protocol on an arbitrary graph.
using DiversificationPopulation = Population<AgentState, DiversificationRule>;
/// Convenience alias: the derandomised variant.
using DerandomisedPopulation = Population<AgentState, DerandomisedRule>;

/// Builds a Population for the paper's model: all-dark initial
/// configuration with the given per-colour supports.  The graph must be
/// supplied by the caller (it is borrowed), and its *static* type is
/// deduced: passing a concrete graph (e.g. graph::CompleteGraph) selects
/// the devirtualised sampling fast path, while passing `const
/// graph::Graph&` keeps the dynamic-dispatch engine.
template <typename Rule, typename GraphT>
[[nodiscard]] Population<AgentState, Rule, GraphT> make_population(
    const GraphT& graph, std::span<const std::int64_t> supports, Rule rule) {
  return Population<AgentState, Rule, GraphT>(
      graph, make_initial_agents(supports), std::move(rule));
}

}  // namespace divpp::core

#endif  // DIVPP_CORE_POPULATION_H
