#ifndef DIVPP_CORE_POPULATION_H
#define DIVPP_CORE_POPULATION_H

/// \file population.h
/// The agent-based population-protocol engine.
///
/// Implements the paper's scheduling model (§1.2): at each time-step a
/// uniformly random agent u is scheduled; u samples a uniformly random
/// neighbour v on the interaction graph (the other n-1 agents on the
/// complete graph) and applies the protocol rule.  The engine is
/// templated on the rule so the hot loop is fully devirtualised, and on
/// the state type so colour protocols (AgentState), opinion protocols
/// (ColorId) and averaging protocols (double) share one engine.
///
/// Rule concept:
///   static constexpr int  kResponders        — 1 or 2 sampled responders;
///   static constexpr bool kMutatesResponder  — two-way rules mutate v;
///   Transition apply(State& u, <responders>, rng::Xoshiro256&) — with
///     responders `const State&` (one-way) or `State&` (two-way).
///
/// Two-responder rules receive two independent neighbour samples (with
/// replacement), matching the gossip-model conventions of the 2-Choices /
/// 3-Majority literature cited in §1.1.

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/diversification.h"
#include "graph/graph.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::core {

/// What happened in one engine step (consumed by trackers and tests).
template <typename State>
struct StepEvent {
  std::int64_t time = 0;       ///< time-step index (0-based) of this event
  std::int64_t initiator = -1; ///< scheduled agent
  State before{};              ///< initiator state before the interaction
  State after{};               ///< initiator state after the interaction
  Transition transition = Transition::kNoOp;
};

/// Agent-based simulation of one protocol on one interaction graph.
///
/// The graph is borrowed (not owned) and must outlive the population.
template <typename State, typename Rule>
class Population {
 public:
  /// \pre initial.size() == graph.num_nodes() >= 2.
  Population(const graph::Graph& graph, std::vector<State> initial, Rule rule)
      : graph_(&graph), states_(std::move(initial)), rule_(std::move(rule)) {
    if (static_cast<std::int64_t>(states_.size()) != graph.num_nodes())
      throw std::invalid_argument(
          "Population: initial state count must equal graph size");
    if (graph.num_nodes() < 2)
      throw std::invalid_argument("Population: need at least two agents");
  }

  /// Number of agents n.
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(states_.size());
  }

  /// Time-steps executed so far.
  [[nodiscard]] std::int64_t time() const noexcept { return time_; }

  /// All agent states (indexed by node id).
  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return states_;
  }

  /// One agent's state.  \pre 0 <= u < size().
  [[nodiscard]] const State& state(std::int64_t u) const {
    check_agent(u);
    return states_[static_cast<std::size_t>(u)];
  }

  /// Overwrites one agent's state (adversary events, tests).
  void set_state(std::int64_t u, State s) {
    check_agent(u);
    states_[static_cast<std::size_t>(u)] = std::move(s);
  }

  /// The rule instance (e.g. to query its palette).
  [[nodiscard]] const Rule& rule() const noexcept { return rule_; }

  /// The interaction graph.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// Executes one time-step with a uniformly random initiator
  /// (the paper's scheduler) and returns what happened.
  StepEvent<State> step(rng::Xoshiro256& gen) {
    const std::int64_t u = rng::uniform_below(gen, size());
    return step_with_initiator(u, gen);
  }

  /// Executes one time-step with the given initiator (used by the
  /// alternative schedulers in sched/).
  StepEvent<State> step_with_initiator(std::int64_t u, rng::Xoshiro256& gen) {
    check_agent(u);
    StepEvent<State> event;
    event.time = time_;
    event.initiator = u;
    State& me = states_[static_cast<std::size_t>(u)];
    event.before = me;
    if constexpr (Rule::kResponders == 1) {
      const std::int64_t v = graph_->sample_neighbor(u, gen);
      if constexpr (Rule::kMutatesResponder) {
        event.transition =
            rule_.apply(me, states_[static_cast<std::size_t>(v)], gen);
      } else {
        const State& other = states_[static_cast<std::size_t>(v)];
        event.transition = rule_.apply(me, other, gen);
      }
    } else {
      static_assert(Rule::kResponders == 2,
                    "Population supports rules with 1 or 2 responders");
      const std::int64_t v1 = graph_->sample_neighbor(u, gen);
      const std::int64_t v2 = graph_->sample_neighbor(u, gen);
      const State& o1 = states_[static_cast<std::size_t>(v1)];
      const State& o2 = states_[static_cast<std::size_t>(v2)];
      event.transition = rule_.apply(me, o1, o2, gen);
    }
    event.after = me;
    ++time_;
    return event;
  }

  /// Applies one interaction between a *forced* (initiator, responder)
  /// pair, bypassing the graph — the primitive behind matching/adversarial
  /// schedules (sched/schedulers.h).  Advances the clock by one step.
  /// Defined for one-responder rules only.  \pre distinct valid agents.
  StepEvent<State> force_interaction(std::int64_t initiator,
                                     std::int64_t responder,
                                     rng::Xoshiro256& gen) {
    static_assert(Rule::kResponders == 1,
                  "forced pairs are defined for one-responder rules");
    check_agent(initiator);
    check_agent(responder);
    if (initiator == responder)
      throw std::invalid_argument(
          "force_interaction: initiator and responder must differ");
    StepEvent<State> event;
    event.time = time_;
    event.initiator = initiator;
    State& me = states_[static_cast<std::size_t>(initiator)];
    event.before = me;
    event.transition =
        rule_.apply(me, states_[static_cast<std::size_t>(responder)], gen);
    event.after = me;
    ++time_;
    return event;
  }

  /// Runs `steps` time-steps, discarding events.
  void run(std::int64_t steps, rng::Xoshiro256& gen) {
    for (std::int64_t i = 0; i < steps; ++i) (void)step(gen);
  }

  /// Runs `steps` time-steps, forwarding each event to `observer`.
  template <typename Observer>
  void run_observed(std::int64_t steps, rng::Xoshiro256& gen,
                    Observer&& observer) {
    for (std::int64_t i = 0; i < steps; ++i) observer(step(gen));
  }

 private:
  void check_agent(std::int64_t u) const {
    if (u < 0 || u >= size())
      throw std::out_of_range("Population: agent index out of range");
  }

  const graph::Graph* graph_;
  std::vector<State> states_;
  Rule rule_;
  std::int64_t time_ = 0;
};

/// Convenience alias: the paper's protocol on an arbitrary graph.
using DiversificationPopulation = Population<AgentState, DiversificationRule>;
/// Convenience alias: the derandomised variant.
using DerandomisedPopulation = Population<AgentState, DerandomisedRule>;

/// Builds a Population for the paper's model: complete graph, all-dark
/// initial configuration with the given per-colour supports.
/// The graph must be supplied by the caller (it is borrowed).
template <typename Rule>
[[nodiscard]] Population<AgentState, Rule> make_population(
    const graph::Graph& graph, std::span<const std::int64_t> supports,
    Rule rule) {
  return Population<AgentState, Rule>(graph, make_initial_agents(supports),
                                      std::move(rule));
}

}  // namespace divpp::core

#endif  // DIVPP_CORE_POPULATION_H
