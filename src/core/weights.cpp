#include "core/weights.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace divpp::core {

WeightMap::WeightMap(std::vector<double> weights)
    : weights_(std::move(weights)) {
  if (weights_.empty())
    throw std::invalid_argument("WeightMap: need at least one colour");
  for (const double w : weights_) {
    if (!(w >= 1.0) || !std::isfinite(w))
      throw std::invalid_argument(
          "WeightMap: every weight must be finite and >= 1 (paper model)");
    total_ += w;
  }
}

WeightMap WeightMap::uniform(std::int64_t k) {
  if (k < 1) throw std::invalid_argument("WeightMap::uniform: need k >= 1");
  return WeightMap(std::vector<double>(static_cast<std::size_t>(k), 1.0));
}

double WeightMap::weight(ColorId i) const {
  if (i < 0 || i >= num_colors())
    throw std::out_of_range("WeightMap::weight: colour out of range");
  return weights_[static_cast<std::size_t>(i)];
}

double WeightMap::fair_share(ColorId i) const { return weight(i) / total_; }

std::vector<double> WeightMap::fair_shares() const {
  std::vector<double> shares;
  shares.reserve(weights_.size());
  for (const double w : weights_) shares.push_back(w / total_);
  return shares;
}

bool WeightMap::is_integral() const noexcept {
  for (const double w : weights_) {
    if (std::rint(w) != w) return false;
  }
  return true;
}

std::int64_t WeightMap::integer_weight(ColorId i) const {
  const double w = weight(i);
  if (std::rint(w) != w)
    throw std::logic_error(
        "WeightMap::integer_weight: weight is not an integer; the "
        "derandomised protocol requires integral weights");
  return static_cast<std::int64_t>(w);
}

WeightMap WeightMap::with_color(double extra_weight) const {
  std::vector<double> extended = weights_;
  extended.push_back(extra_weight);
  return WeightMap(std::move(extended));
}

std::string WeightMap::to_string() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (i > 0) out << ", ";
    out << weights_[i];
  }
  out << "}";
  return out.str();
}

}  // namespace divpp::core
