#ifndef DIVPP_CORE_WEIGHTS_H
#define DIVPP_CORE_WEIGHTS_H

/// \file weights.h
/// Colour identifiers and the weighted colour palette.
///
/// The model (paper §1.2): k colours, colour i carries a weight w_i >= 1,
/// W = Σ w_i.  The protocol drives colour i's support towards the fair
/// share w_i·n/W.  Weights are real-valued; the derandomised variant
/// additionally requires them to be integers.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace divpp::core {

/// Colour index in [0, k).  Plain integer type; -1 means "no colour".
using ColorId = std::int32_t;

/// Immutable weighted palette with validated invariants (k >= 1, each
/// w_i >= 1).  Value type: cheap to copy for small k, compared by value.
class WeightMap {
 public:
  /// \throws std::invalid_argument unless weights non-empty and all >= 1.
  explicit WeightMap(std::vector<double> weights);

  /// Uniform palette (all weights 1) of k colours — the uniform
  /// k-partition special case noted in §1.2.
  [[nodiscard]] static WeightMap uniform(std::int64_t k);

  /// Number of colours k.
  [[nodiscard]] std::int64_t num_colors() const noexcept {
    return static_cast<std::int64_t>(weights_.size());
  }

  /// Weight w_i.  \pre 0 <= i < num_colors().
  [[nodiscard]] double weight(ColorId i) const;

  /// Total weight W = Σ w_i.
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Fair share w_i / W (the target support fraction of colour i).
  [[nodiscard]] double fair_share(ColorId i) const;

  /// All fair shares, indexed by colour.
  [[nodiscard]] std::vector<double> fair_shares() const;

  /// The raw weight vector.
  [[nodiscard]] std::span<const double> weights() const noexcept {
    return weights_;
  }

  /// True when every weight is an exact non-negative integer (required by
  /// the derandomised protocol).
  [[nodiscard]] bool is_integral() const noexcept;

  /// Weight w_i rounded to integer.  \throws std::logic_error unless
  /// is_integral().
  [[nodiscard]] std::int64_t integer_weight(ColorId i) const;

  /// A new palette with one colour appended (adversary "new colour"
  /// events).  \pre extra_weight >= 1.
  [[nodiscard]] WeightMap with_color(double extra_weight) const;

  /// Human-readable rendering like "{1, 2, 4.5}".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const WeightMap&, const WeightMap&) = default;

 private:
  std::vector<double> weights_;
  double total_ = 0.0;
};

}  // namespace divpp::core

#endif  // DIVPP_CORE_WEIGHTS_H
