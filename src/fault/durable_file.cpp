#include "fault/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace divpp::fault {

namespace {

constexpr std::string_view kHeader = "divpp-durable-v1";

thread_local bool g_torn_write_armed = false;
thread_local bool g_write_failure_armed = false;

[[noreturn]] void fail(const std::string& what) {
  throw DurableFileError("durable_file: " + what);
}

[[noreturn]] void fail_errno(const std::string& what) {
  fail(what + ": " + std::strerror(errno));
}

/// The CRC-32 table, built once (IEEE 802.3 reflected polynomial).
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1U) != 0 ? 0xedb88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// ---- EINTR-hardened syscall wrappers (PR 9) --------------------------
//
// A supervisor that SIGKILLs sibling processes and a test harness that
// storms threads with signals make interrupted syscalls routine, so
// every syscall below retries on EINTR.  The one deliberate exception
// is close(): on Linux the descriptor is released even when close()
// returns EINTR, so retrying risks closing an unrelated descriptor a
// concurrent thread just received — EINTR from close() is treated as
// success (the POSIX.1-2008 / LKML guidance).

int open_retry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int fsync_retry(int fd) {
  for (;;) {
    const int rc = ::fsync(fd);
    if (rc == 0 || errno != EINTR) return rc;
  }
}

int close_noretry(int fd) {
  const int rc = ::close(fd);
  if (rc != 0 && errno == EINTR) return 0;  // fd is gone on Linux
  return rc;
}

int rename_retry(const char* from, const char* to) {
  for (;;) {
    const int rc = ::rename(from, to);
    if (rc == 0 || errno != EINTR) return rc;
  }
}

void write_fully(int fd, std::string_view data, const std::string& path) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write to '" + path + "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
}

void fsync_path(const std::string& path, int flags, const char* what) {
  const int fd = open_retry(path.c_str(), flags);
  if (fd < 0) fail_errno(std::string("open ") + what + " '" + path + "'");
  if (fsync_retry(fd) != 0) {
    const int saved = errno;
    (void)close_noretry(fd);
    errno = saved;
    fail_errno(std::string("fsync ") + what + " '" + path + "'");
  }
  (void)close_noretry(fd);
}

std::string parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xffffffffU;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffU] ^ (crc >> 8);
  return crc ^ 0xffffffffU;
}

void write_durable(const std::string& path, const std::string& payload) {
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x", crc32(payload));
  std::string blob;
  blob.reserve(payload.size() + 64);
  blob.append(kHeader);
  blob.append(" ");
  blob.append(std::to_string(payload.size()));
  blob.append("\n");
  blob.append(payload);
  blob.append("\ncrc32 ");
  blob.append(crc_hex);
  blob.append("\n");

  if (g_torn_write_armed) {
    // Injected torn write: ship only a prefix ending mid-payload, but
    // still rename it into place — the reader must catch this.
    g_torn_write_armed = false;
    blob.resize(blob.size() / 2);
  }

  const std::string temp = path + ".tmp";
  const int fd = open_retry(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno("open temp '" + temp + "'");
  try {
    if (g_write_failure_armed) {
      // Injected I/O failure at the worst moment: the temp file exists
      // and holds partial data, the destination is still the old blob.
      g_write_failure_armed = false;
      write_fully(fd, std::string_view(blob).substr(0, blob.size() / 2),
                  temp);
      fail("injected write failure on '" + temp + "'");
    }
    write_fully(fd, blob, temp);
  } catch (...) {
    (void)close_noretry(fd);
    ::unlink(temp.c_str());
    throw;
  }
  if (fsync_retry(fd) != 0) {
    const int saved = errno;
    (void)close_noretry(fd);
    ::unlink(temp.c_str());
    errno = saved;
    fail_errno("fsync temp '" + temp + "'");
  }
  if (close_noretry(fd) != 0) {
    ::unlink(temp.c_str());
    fail_errno("close temp '" + temp + "'");
  }
  if (rename_retry(temp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(temp.c_str());
    errno = saved;
    fail_errno("rename '" + temp + "' -> '" + path + "'");
  }
  // Make the rename itself durable.
  fsync_path(parent_directory(path), O_RDONLY | O_DIRECTORY, "directory");
}

std::string read_durable(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY);
  if (fd < 0) fail_errno("open '" + path + "'");
  std::string blob;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      (void)close_noretry(fd);
      errno = saved;
      fail_errno("read '" + path + "'");
    }
    if (n == 0) break;
    blob.append(buffer, static_cast<std::size_t>(n));
  }
  (void)close_noretry(fd);

  // Header line: "divpp-durable-v1 <payload_bytes>\n".
  const std::size_t newline = blob.find('\n');
  if (newline == std::string::npos)
    fail("'" + path + "': truncated before the header line");
  const std::string header = blob.substr(0, newline);
  if (header.size() <= kHeader.size() + 1 ||
      header.compare(0, kHeader.size(), kHeader) != 0 ||
      header[kHeader.size()] != ' ')
    fail("'" + path + "': bad header '" + header + "'");
  const std::string size_text = header.substr(kHeader.size() + 1);
  std::size_t size_end = 0;
  unsigned long long declared = 0;
  try {
    declared = std::stoull(size_text, &size_end);
  } catch (const std::exception&) {
    fail("'" + path + "': bad payload size in header");
  }
  // stoull accepts a sign; a durable header never carries one, and a
  // hostile size must not drive the offset arithmetic below.
  if (size_end != size_text.size() || size_text[0] == '-' ||
      size_text[0] == '+' || declared > blob.size())
    fail("'" + path + "': bad payload size in header");

  const std::size_t payload_begin = newline + 1;
  // Trailer: "\ncrc32 <8 hex>\n" directly after the payload.
  const std::size_t expected =
      payload_begin + static_cast<std::size_t>(declared) + 16;
  if (blob.size() != expected)
    fail("'" + path + "': torn or truncated (" + std::to_string(blob.size()) +
         " bytes, expected " + std::to_string(expected) + ")");
  const std::string_view payload(blob.data() + payload_begin,
                                 static_cast<std::size_t>(declared));
  const std::string_view trailer(blob.data() + payload_begin + declared, 16);
  if (trailer.substr(0, 7) != "\ncrc32 " || trailer.back() != '\n')
    fail("'" + path + "': bad trailer");
  char expected_hex[16];
  std::snprintf(expected_hex, sizeof expected_hex, "%08x", crc32(payload));
  if (trailer.substr(7, 8) != expected_hex)
    fail("'" + path + "': CRC mismatch (stored " +
         std::string(trailer.substr(7, 8)) + ", computed " + expected_hex +
         ")");
  return std::string(payload);
}

void arm_torn_write() noexcept { g_torn_write_armed = true; }

void arm_write_failure() noexcept { g_write_failure_armed = true; }

}  // namespace divpp::fault
