#ifndef DIVPP_FAULT_DURABLE_FILE_H
#define DIVPP_FAULT_DURABLE_FILE_H

/// \file durable_file.h
/// Atomic, self-validating on-disk blobs — the durability layer under
/// checkpoint v2 (core/checkpoint.h).
///
/// write_durable follows the classic crash-safe recipe: write the full
/// blob to a temp file in the same directory, fsync it, rename() it over
/// the destination (atomic on POSIX), then fsync the directory so the
/// rename itself is durable.  A crash at any point leaves either the old
/// file, the new file, or a stray temp — never a half-new destination.
///
/// Defence in depth: renames are atomic but disks and copies are not
/// always honest, so the blob is also self-validating —
///
///     divpp-durable-v1 <payload_bytes>\n
///     <payload bytes>
///     \ncrc32 <8 lowercase hex digits>\n
///
/// read_durable checks the header, the exact byte count, and the CRC-32
/// (IEEE 802.3) of the payload, and throws DurableFileError on any
/// mismatch — a torn, truncated, or bit-flipped checkpoint is *detected*,
/// never silently loaded.  The self-healing runner catches exactly this
/// error and falls back to the previous checkpoint or a from-scratch
/// restart.
///
/// arm_torn_write() makes the *next* write_durable on this thread
/// deliberately truncate the blob mid-payload (still renaming it into
/// place) — the fault layer's hook for proving readers reject torn
/// files.  It exists in all builds (it is test machinery, not a hot
/// path); the deterministic scheduling of torn writes lives in
/// fault/fault.h.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace divpp::fault {

/// Thrown when a durable file is missing, torn, corrupt, or unwritable.
/// Deliberately distinct from std::invalid_argument (malformed
/// *checkpoint text*, the layer above) so callers can tell "the disk
/// failed us" from "the payload is nonsense".
class DurableFileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff) of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// Atomically replaces `path` with a self-validating blob holding
/// `payload`.  \throws DurableFileError on any I/O failure.
void write_durable(const std::string& path, const std::string& payload);

/// Reads and validates a durable blob, returning the payload.
/// \throws DurableFileError when the file is missing, torn, truncated,
/// or fails the CRC.
[[nodiscard]] std::string read_durable(const std::string& path);

/// Arms a torn write: the next write_durable on *this thread* truncates
/// the blob mid-payload (and still renames it into place).  One-shot.
void arm_torn_write() noexcept;

/// Arms a write failure: the next write_durable on *this thread* fails
/// mid-write with DurableFileError — after the temp file exists but
/// before the rename.  One-shot.  Exercises the no-litter contract: a
/// failed write must unlink its temp file and leave any previous
/// destination untouched.
void arm_write_failure() noexcept;

}  // namespace divpp::fault

#endif  // DIVPP_FAULT_DURABLE_FILE_H
