#include "fault/fault.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <utility>

#include "fault/durable_file.h"
#include "rng/xoshiro.h"

namespace divpp::fault {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("fault: " + what);
}

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kException:
      return "exception";
    case FaultKind::kTornWrite:
      return "torn";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kKill:
      return "kill";
    case FaultKind::kSegv:
      return "segv";
    case FaultKind::kAbort:
      return "abort";
    case FaultKind::kOom:
      return "oom";
    case FaultKind::kHang:
      return "hang";
  }
  return "?";
}

/// kSegv: a genuine SIGSEGV.  The null address is laundered through a
/// volatile integer so neither the optimiser nor a static analyser can
/// prove (and "fix" or flag) the null store.
[[noreturn]] void die_segv() {
  volatile std::uintptr_t address = 0;
  auto* target = reinterpret_cast<volatile int*>(address);  // NOLINT
  *target = 42;
  // Unreachable in practice; keeps [[noreturn]] honest if the store is
  // somehow survived (it cannot be on any supported target).
  std::abort();
}

/// kOom: allocate and touch up to kOomStormBytes in 1 MiB chunks, then
/// release everything and throw std::bad_alloc.  Touching the pages
/// makes the pressure real (no lazy-commit freebie); the hard ceiling
/// and the release keep the kernel OOM killer out of the drill.
[[noreturn]] void die_oom() {
  constexpr std::size_t kChunk = std::size_t{1} << 20;
  {
    std::vector<std::unique_ptr<char[]>> storm;
    storm.reserve(kOomStormBytes / kChunk);
    try {
      for (std::size_t held = 0; held < kOomStormBytes; held += kChunk) {
        storm.push_back(std::make_unique<char[]>(kChunk));
        for (std::size_t page = 0; page < kChunk; page += 4096)
          storm.back()[page] = static_cast<char>(page);
      }
    } catch (const std::bad_alloc&) {
      // The storm hit a genuine limit early — even better.
    }
  }
  throw std::bad_alloc();
}

/// kHang: a wedged worker — never returns, never reaches a boundary.
/// Only external supervision (runtime/supervisor.h) can end this.
[[noreturn]] void die_hang() {
  for (;;) std::this_thread::yield();
}

std::string describe(const FaultSpec& spec, const Boundary& boundary) {
  std::string out = std::string("injected ") + kind_name(spec.kind) +
                    " at replica " + std::to_string(boundary.replica) +
                    ", window " + std::to_string(boundary.window_index) +
                    ", time " + std::to_string(boundary.time);
  if (boundary.draws >= 0)
    out += ", draws " + std::to_string(boundary.draws);
  return out;
}

bool fires_before_checkpoint(FaultKind kind) {
  return kind == FaultKind::kTornWrite || kind == FaultKind::kLatency;
}

std::int64_t parse_value(const std::string& token, const std::string& key) {
  std::size_t used = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(token, &used);
  } catch (const std::exception&) {
    fail("bad value for '" + key + "': '" + token + "'");
  }
  if (used != token.size())
    fail("bad value for '" + key + "': '" + token + "'");
  return value;
}

}  // namespace

FaultSchedule::FaultSchedule(std::vector<FaultSpec> specs)
    : specs_(std::move(specs)) {
  validate();
  reset_latches();
}

FaultSchedule::FaultSchedule(const FaultSchedule& other)
    : specs_(other.specs_) {
  reset_latches();
}

FaultSchedule& FaultSchedule::operator=(const FaultSchedule& other) {
  if (this != &other) {
    specs_ = other.specs_;
    reset_latches();
  }
  return *this;
}

void FaultSchedule::validate() const {
  for (const FaultSpec& spec : specs_) {
    const int triggers = (spec.at_time >= 0 ? 1 : 0) +
                         (spec.at_window >= 0 ? 1 : 0) +
                         (spec.at_draws >= 0 ? 1 : 0);
    if (triggers != 1)
      fail(std::string(kind_name(spec.kind)) +
           " spec must set exactly one of time/window/draws");
    if (spec.latency_us < 0) fail("negative latency");
    if (spec.kind != FaultKind::kLatency && spec.latency_us != 0)
      fail("'us' is only valid on a latency fault");
  }
}

void FaultSchedule::reset_latches() {
  fired_ = specs_.empty()
               ? nullptr
               : std::make_unique<std::atomic<bool>[]>(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i)
    fired_[i].store(false, std::memory_order_relaxed);
}

bool FaultSchedule::due(std::size_t index, const Boundary& boundary) const {
  const FaultSpec& spec = specs_[index];
  if (spec.replica >= 0 && spec.replica != boundary.replica) return false;
  bool hit = false;
  if (spec.at_time >= 0)
    hit = boundary.prev_time < spec.at_time && spec.at_time <= boundary.time;
  else if (spec.at_window >= 0)
    hit = boundary.window_index == spec.at_window;
  else
    hit = boundary.draws >= 0 && boundary.draws >= spec.at_draws;
  if (!hit) return false;
  // Fired-once latch: the first boundary to get here consumes the spec.
  return !fired_[index].exchange(true, std::memory_order_acq_rel);
}

void FaultSchedule::fire_before_checkpoint(const Boundary& boundary) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!fires_before_checkpoint(specs_[i].kind) || !due(i, boundary))
      continue;
    if (specs_[i].kind == FaultKind::kTornWrite) {
      arm_torn_write();
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(specs_[i].latency_us));
    }
  }
}

void FaultSchedule::fire_after_checkpoint(const Boundary& boundary) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (fires_before_checkpoint(specs_[i].kind) || !due(i, boundary))
      continue;
    switch (specs_[i].kind) {
      case FaultKind::kException:
        throw InjectedFault(describe(specs_[i], boundary));
      case FaultKind::kCrash:
        throw SimulatedCrash(describe(specs_[i], boundary));
      case FaultKind::kKill:
        (void)std::raise(SIGKILL);
        break;
      case FaultKind::kSegv:
        die_segv();
      case FaultKind::kAbort:
        std::abort();
      case FaultKind::kOom:
        die_oom();
      case FaultKind::kHang:
        die_hang();
      default:
        break;
    }
  }
}

bool FaultSchedule::needs_draw_audit() const noexcept {
  for (const FaultSpec& spec : specs_)
    if (spec.at_draws >= 0) return true;
  return false;
}

FaultSchedule FaultSchedule::random_crashes(std::uint64_t seed, int count,
                                            std::int64_t max_window,
                                            std::int64_t num_replicas) {
  if (count < 0 || max_window < 1 || num_replicas < 1)
    fail("random_crashes: count >= 0, max_window >= 1, num_replicas >= 1");
  std::vector<FaultSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  std::uint64_t state = seed;
  for (int c = 0; c < count; ++c) {
    FaultSpec spec;
    spec.kind = FaultKind::kCrash;
    spec.at_window = 1 + static_cast<std::int64_t>(
                             rng::splitmix64_next(state) %
                             static_cast<std::uint64_t>(max_window));
    spec.replica = static_cast<std::int64_t>(
        rng::splitmix64_next(state) % static_cast<std::uint64_t>(num_replicas));
    specs.push_back(spec);
  }
  return FaultSchedule(std::move(specs));
}

FaultSchedule FaultSchedule::from_spec(const std::string& spec) {
  std::vector<FaultSpec> specs;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t end = spec.find(';', pos);
    const std::string fault_text =
        spec.substr(pos, end == std::string::npos ? std::string::npos
                                                  : end - pos);
    pos = end == std::string::npos ? spec.size() : end + 1;
    if (fault_text.empty()) continue;

    const std::size_t at = fault_text.find('@');
    if (at == std::string::npos)
      fail("missing '@' in fault '" + fault_text + "'");
    const std::string kind_text = fault_text.substr(0, at);
    FaultSpec out;
    if (kind_text == "crash")
      out.kind = FaultKind::kCrash;
    else if (kind_text == "exception")
      out.kind = FaultKind::kException;
    else if (kind_text == "torn")
      out.kind = FaultKind::kTornWrite;
    else if (kind_text == "latency")
      out.kind = FaultKind::kLatency;
    else if (kind_text == "kill")
      out.kind = FaultKind::kKill;
    else if (kind_text == "segv")
      out.kind = FaultKind::kSegv;
    else if (kind_text == "abort")
      out.kind = FaultKind::kAbort;
    else if (kind_text == "oom")
      out.kind = FaultKind::kOom;
    else if (kind_text == "hang")
      out.kind = FaultKind::kHang;
    else
      fail("unknown fault kind '" + kind_text +
           "' (want crash/exception/torn/latency/kill/segv/abort/oom/hang)");

    std::size_t kv_pos = at + 1;
    while (kv_pos <= fault_text.size()) {
      const std::size_t kv_end = fault_text.find(',', kv_pos);
      const std::string kv = fault_text.substr(
          kv_pos,
          kv_end == std::string::npos ? std::string::npos : kv_end - kv_pos);
      kv_pos = kv_end == std::string::npos ? fault_text.size() + 1
                                           : kv_end + 1;
      if (kv.empty()) {
        if (kv_end == std::string::npos) break;
        fail("empty key=value in fault '" + fault_text + "'");
      }
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos)
        fail("missing '=' in '" + kv + "'");
      const std::string key = kv.substr(0, eq);
      const std::int64_t value = parse_value(kv.substr(eq + 1), key);
      if (key == "time")
        out.at_time = value;
      else if (key == "window")
        out.at_window = value;
      else if (key == "draws")
        out.at_draws = value;
      else if (key == "replica")
        out.replica = value;
      else if (key == "us")
        out.latency_us = value;
      else
        fail("unknown key '" + key + "' (want time/window/draws/replica/us)");
    }
    specs.push_back(out);
  }
  return FaultSchedule(std::move(specs));
}

const FaultSchedule& global() {
  static const FaultSchedule schedule = [] {
    const char* spec = std::getenv("DIVPP_FAULT_SPEC");
    return spec == nullptr ? FaultSchedule()
                           : FaultSchedule::from_spec(spec);
  }();
  return schedule;
}

}  // namespace divpp::fault
