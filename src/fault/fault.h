#ifndef DIVPP_FAULT_FAULT_H
#define DIVPP_FAULT_FAULT_H

/// \file fault.h
/// Deterministic fault injection for the durable runtime (PR 7).
///
/// A FaultSchedule is a seeded, reproducible list of faults that fire at
/// exact, deterministic points of a windowed run: a wall-clock-free
/// trigger is either an interaction-count boundary (`at_time`), a window
/// index (`at_window`), or an RNG draw count (`at_draws`, audited with
/// check/counting_generator.h).  Because triggers are functions of the
/// run's own deterministic coordinates — never of wall clock or thread
/// timing — a crash schedule replays identically across runs, thread
/// counts, and machines, which is what makes the self-healing runtime
/// (runtime/durable_runner.h) testable for bit-identity.
///
/// Faults fire only at checkpoint boundaries, split around the
/// checkpoint write:
///
///  * before the write — kTornWrite (arms fault/durable_file.h to
///    truncate that checkpoint on disk) and kLatency (injected sleep,
///    for deadline/watchdog testing);
///  * after the write — kException (ordinary worker failure), kCrash
///    (simulated process death: unwinds the replica via SimulatedCrash),
///    kKill (a *real* SIGKILL, for the CI kill-and-resume smoke), and
///    the *real-fault* kinds (PR 9) that only process-level supervision
///    (runtime/supervisor.h) can contain:
///      - kSegv   — a write through a laundered null pointer: a real
///                  SIGSEGV (or the sanitizer's report-and-die), never
///                  a C++ exception;
///      - kAbort  — std::abort(): a real SIGABRT;
///      - kOom    — a *bounded* allocation storm (touches up to
///                  kOomStormBytes in 1 MiB chunks, then releases) that
///                  ends in std::bad_alloc — models allocation failure
///                  under memory pressure without inviting the kernel
///                  OOM killer, so the drill is CI-safe.  In-process
///                  runners recover it like any exception; under
///                  supervision with max_retries=0 it quarantines;
///      - kHang   — spins forever without ever reaching another
///                  boundary: a wedged worker.  The in-process runtimes
///                  can NOT preempt this (their deadline is checked at
///                  boundaries only — see runtime/durable_runner.h);
///                  only the supervisor's heartbeat watchdog kills it.
///
/// Firing after the write means a killed run's latest checkpoint is the
/// boundary it died at, so a cross-process resume (which re-parses the
/// same DIVPP_FAULT_SPEC) starts past the trigger and does not die
/// again.  In-process, each spec additionally fires at most once per
/// schedule object.
///
/// The layer is compiled behind the DIVPP_FAULTS option (default ON;
/// the hook sites in the runner vanish when OFF, the SIM_CHECKED
/// discipline).  Hooks run only at window boundaries, so the hot
/// interaction loop is untouched either way.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace divpp::fault {

/// Thrown by a fired kException fault: an "ordinary" worker failure the
/// self-healing runner retries.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by a fired kCrash fault: models the process dying at this
/// exact point.  The durable runner treats it like a kill — the replica
/// restarts from its latest valid checkpoint.
class SimulatedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind {
  kCrash,      ///< throw SimulatedCrash (after the checkpoint write)
  kException,  ///< throw InjectedFault (after the checkpoint write)
  kTornWrite,  ///< arm durable_file to tear this boundary's checkpoint
  kLatency,    ///< sleep latency_us at the boundary (deadline testing)
  kKill,       ///< raise(SIGKILL) — the CI kill-and-resume smoke
  kSegv,       ///< real SIGSEGV: write through a (laundered) null pointer
  kAbort,      ///< real SIGABRT: std::abort()
  kOom,        ///< bounded allocation storm ending in std::bad_alloc
  kHang,       ///< spin forever without reaching another boundary
};

/// kOom's allocation-storm ceiling: it touches at most this many bytes
/// (in 1 MiB chunks) before releasing them and throwing std::bad_alloc,
/// keeping the drill well clear of the kernel OOM killer in CI.
inline constexpr std::size_t kOomStormBytes = std::size_t{64} << 20;

/// One fault with its deterministic trigger.  Exactly one of at_time /
/// at_window / at_draws must be set (>= 0).
struct FaultSpec {
  FaultKind kind = FaultKind::kException;
  /// Fires at the unique boundary with prev_time < at_time <= time.
  std::int64_t at_time = -1;
  /// Fires at the boundary completing window index at_window (0-based).
  std::int64_t at_window = -1;
  /// Fires at the first boundary whose cumulative draw count reaches
  /// at_draws.  Draws are counted from the replica run start and
  /// include replayed windows after a crash.
  std::int64_t at_draws = -1;
  /// Restricts to one replica (-1 = any replica).
  std::int64_t replica = -1;
  /// kLatency only: microseconds to sleep.
  std::int64_t latency_us = 0;
};

/// The deterministic coordinates of one checkpoint boundary, supplied by
/// the runner.  `draws` is -1 unless the schedule needs draw auditing
/// (needs_draw_audit()), in which case the runner wraps its generator in
/// a check::CountingBitGenerator.
struct Boundary {
  std::int64_t replica = 0;
  std::int64_t window_index = 0;  ///< 0-based index of the window just run
  std::int64_t prev_time = 0;     ///< clock at the window's start
  std::int64_t time = 0;          ///< clock now
  std::int64_t draws = -1;        ///< cumulative RNG draws, or -1 unaudited
};

/// A reproducible set of faults.  Trigger evaluation is pure; the only
/// state is the fired-once latch per spec (atomic, so concurrent
/// replicas may share one schedule).  Copying yields the same specs with
/// fresh latches.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  /// \throws std::invalid_argument on a spec with no trigger, more than
  /// one trigger, or a negative latency.
  explicit FaultSchedule(std::vector<FaultSpec> specs);

  FaultSchedule(const FaultSchedule& other);
  FaultSchedule& operator=(const FaultSchedule& other);
  FaultSchedule(FaultSchedule&&) noexcept = default;
  FaultSchedule& operator=(FaultSchedule&&) noexcept = default;

  /// Pre-write faults: arms torn writes, injects latency.  Call
  /// immediately before writing this boundary's checkpoint.
  void fire_before_checkpoint(const Boundary& boundary) const;

  /// Post-write faults: throws InjectedFault / SimulatedCrash, raises
  /// SIGKILL.  Call after the checkpoint write succeeded.
  void fire_after_checkpoint(const Boundary& boundary) const;

  /// True when any spec triggers on a draw count — the runner then wraps
  /// its generator in check::CountingBitGenerator and reports
  /// Boundary::draws; otherwise draw auditing stays compiled out of the
  /// window loop.
  [[nodiscard]] bool needs_draw_audit() const noexcept;

  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept {
    return specs_;
  }

  /// Seeded pseudo-random crash schedule: `count` kCrash faults at
  /// windows in [1, max_window] on replicas in [0, num_replicas),
  /// derived from `seed` via splitmix64 — the standard way tests sample
  /// "kill it somewhere arbitrary" reproducibly.
  [[nodiscard]] static FaultSchedule random_crashes(std::uint64_t seed,
                                                    int count,
                                                    std::int64_t max_window,
                                                    std::int64_t num_replicas);

  /// Parses the DIVPP_FAULT_SPEC grammar:
  ///   spec     := fault (';' fault)*  |  ''        (empty = no faults)
  ///   fault    := kind '@' key '=' value (',' key '=' value)*
  ///   kind     := 'crash' | 'exception' | 'torn' | 'latency' | 'kill'
  ///             | 'segv' | 'abort' | 'oom' | 'hang'
  ///   key      := 'time' | 'window' | 'draws' | 'replica' | 'us'
  /// e.g. "crash@window=3,replica=1;torn@time=500000" or, for the
  /// containment drill, "segv@window=1,replica=5;hang@window=1,replica=9".
  /// \throws std::invalid_argument with the offending token on errors.
  [[nodiscard]] static FaultSchedule from_spec(const std::string& spec);

 private:
  [[nodiscard]] bool due(std::size_t index, const Boundary& boundary) const;
  void validate() const;
  void reset_latches();

  std::vector<FaultSpec> specs_;
  /// fired-once latches, one per spec (heap so the schedule stays
  /// movable; atomic so replicas may share a schedule).
  std::unique_ptr<std::atomic<bool>[]> fired_;
};

/// The process-wide schedule parsed from the DIVPP_FAULT_SPEC
/// environment variable at first use (empty when unset) — how the CI
/// fault-injection job reaches runs it does not construct.  Explicitly
/// passed schedules always win; only runtime/durable_runner.h's
/// DurableBatchRunner falls back to this.
[[nodiscard]] const FaultSchedule& global();

}  // namespace divpp::fault

#endif  // DIVPP_FAULT_FAULT_H
