#include "graph/graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "rng/distributions.h"

namespace divpp::graph {

void Graph::check_node(std::int64_t u) const {
  if (u < 0 || u >= num_nodes())
    throw std::out_of_range("Graph: node index out of range");
}

AdjacencyGraph::AdjacencyGraph(
    std::vector<std::vector<std::int64_t>> adjacency, std::string name)
    : adj_(std::move(adjacency)), name_(std::move(name)) {
  const auto n = static_cast<std::int64_t>(adj_.size());
  for (const auto& nbrs : adj_) {
    for (const std::int64_t v : nbrs) {
      if (v < 0 || v >= n)
        throw std::invalid_argument(
            "AdjacencyGraph: neighbour index out of range");
    }
  }
}

std::int64_t AdjacencyGraph::num_nodes() const noexcept {
  return static_cast<std::int64_t>(adj_.size());
}

std::int64_t AdjacencyGraph::degree(std::int64_t u) const {
  check_node(u);
  return static_cast<std::int64_t>(adj_[static_cast<std::size_t>(u)].size());
}

std::int64_t AdjacencyGraph::sample_neighbor(std::int64_t u,
                                             rng::Xoshiro256& gen) const {
  check_node(u);
  const auto& nbrs = adj_[static_cast<std::size_t>(u)];
  if (nbrs.empty())
    throw std::logic_error("AdjacencyGraph: sampling neighbour of isolated node");
  const std::int64_t pick =
      rng::uniform_below(gen, static_cast<std::int64_t>(nbrs.size()));
  return nbrs[static_cast<std::size_t>(pick)];
}

bool AdjacencyGraph::has_edge(std::int64_t u, std::int64_t v) const {
  check_node(u);
  check_node(v);
  const auto& nbrs = adj_[static_cast<std::size_t>(u)];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

const std::vector<std::int64_t>& AdjacencyGraph::neighbors(
    std::int64_t u) const {
  check_node(u);
  return adj_[static_cast<std::size_t>(u)];
}

bool AdjacencyGraph::is_connected() const {
  const std::int64_t n = num_nodes();
  if (n == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<std::int64_t> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::int64_t reached = 1;
  while (!frontier.empty()) {
    const std::int64_t u = frontier.front();
    frontier.pop();
    for (const std::int64_t v : adj_[static_cast<std::size_t>(u)]) {
      if (seen[static_cast<std::size_t>(v)] == 0) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == n;
}

GraphBuilder::GraphBuilder(std::int64_t num_nodes) {
  if (num_nodes < 1)
    throw std::invalid_argument("GraphBuilder: need num_nodes >= 1");
  adj_.resize(static_cast<std::size_t>(num_nodes));
}

GraphBuilder& GraphBuilder::add_edge(std::int64_t u, std::int64_t v) {
  const auto n = static_cast<std::int64_t>(adj_.size());
  if (u < 0 || u >= n || v < 0 || v >= n)
    throw std::invalid_argument("GraphBuilder: node index out of range");
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop rejected");
  auto& nu = adj_[static_cast<std::size_t>(u)];
  if (std::find(nu.begin(), nu.end(), v) != nu.end())
    throw std::invalid_argument("GraphBuilder: duplicate edge rejected");
  nu.push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  return *this;
}

AdjacencyGraph GraphBuilder::build(std::string name) && {
  return AdjacencyGraph(std::move(adj_), std::move(name));
}

}  // namespace divpp::graph
