#ifndef DIVPP_GRAPH_GRAPH_H
#define DIVPP_GRAPH_GRAPH_H

/// \file graph.h
/// Interaction topologies.
///
/// The paper's model runs on the complete graph; Section 3 names "different
/// graph topologies" as future work, which experiment E10 explores.  A
/// Graph only needs to answer "who can agent u sample?", so the interface
/// is exactly neighbour sampling plus introspection helpers.

#include <cstdint>
#include <string>
#include <vector>

#include "rng/xoshiro.h"

namespace divpp::graph {

/// Abstract interaction topology over nodes {0, ..., num_nodes()-1}.
///
/// Implementations must be safe to share across simulations as long as
/// each simulation uses its own RNG (sampling is const).
class Graph {
 public:
  virtual ~Graph() = default;

  /// Number of agents/nodes.
  [[nodiscard]] virtual std::int64_t num_nodes() const noexcept = 0;

  /// Degree of node u.  \pre 0 <= u < num_nodes().
  [[nodiscard]] virtual std::int64_t degree(std::int64_t u) const = 0;

  /// A uniformly random neighbour of u.  \pre degree(u) >= 1.
  [[nodiscard]] virtual std::int64_t sample_neighbor(
      std::int64_t u, rng::Xoshiro256& gen) const = 0;

  /// True when v is adjacent to u (used by tests; may be O(degree)).
  [[nodiscard]] virtual bool has_edge(std::int64_t u, std::int64_t v) const = 0;

  /// Human-readable topology name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Throws std::out_of_range unless 0 <= u < num_nodes().
  void check_node(std::int64_t u) const;
};

/// Explicit adjacency-list graph (also the base for generated topologies).
class AdjacencyGraph : public Graph {
 public:
  /// Takes ownership of an adjacency list.  Validates symmetry is NOT
  /// enforced here (directed interaction graphs are legal); use
  /// GraphBuilder for validated undirected construction.
  explicit AdjacencyGraph(std::vector<std::vector<std::int64_t>> adjacency,
                          std::string name = "adjacency");

  [[nodiscard]] std::int64_t num_nodes() const noexcept override;
  [[nodiscard]] std::int64_t degree(std::int64_t u) const override;
  [[nodiscard]] std::int64_t sample_neighbor(
      std::int64_t u, rng::Xoshiro256& gen) const override;
  [[nodiscard]] bool has_edge(std::int64_t u, std::int64_t v) const override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// Direct access to a node's neighbour list (tests/analysis).
  [[nodiscard]] const std::vector<std::int64_t>& neighbors(
      std::int64_t u) const;

  /// True when every node can reach every other (BFS).
  [[nodiscard]] bool is_connected() const;

 private:
  std::vector<std::vector<std::int64_t>> adj_;
  std::string name_;
};

/// Incremental, validated builder for undirected simple graphs.
class GraphBuilder {
 public:
  /// \pre num_nodes >= 1.
  explicit GraphBuilder(std::int64_t num_nodes);

  /// Adds the undirected edge {u, v}.  Rejects self-loops and duplicate
  /// edges (throws std::invalid_argument).
  GraphBuilder& add_edge(std::int64_t u, std::int64_t v);

  /// Finalises into an AdjacencyGraph.
  [[nodiscard]] AdjacencyGraph build(std::string name = "custom") &&;

 private:
  std::vector<std::vector<std::int64_t>> adj_;
};

}  // namespace divpp::graph

#endif  // DIVPP_GRAPH_GRAPH_H
