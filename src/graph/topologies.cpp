#include "graph/topologies.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rng/distributions.h"

namespace divpp::graph {

CompleteGraph::CompleteGraph(std::int64_t num_nodes) : n_(num_nodes) {
  if (num_nodes < 2)
    throw std::invalid_argument("CompleteGraph: need num_nodes >= 2");
}

std::int64_t CompleteGraph::degree(std::int64_t u) const {
  check_node(u);
  return n_ - 1;
}

std::int64_t CompleteGraph::sample_neighbor(std::int64_t u,
                                            rng::Xoshiro256& gen) const {
  check_node(u);
  return sample_neighbor_fast(u, gen);
}

bool CompleteGraph::has_edge(std::int64_t u, std::int64_t v) const {
  check_node(u);
  check_node(v);
  return u != v;
}

std::string CompleteGraph::name() const {
  return "complete(n=" + std::to_string(n_) + ")";
}

AdjacencyGraph make_cycle(std::int64_t num_nodes) {
  if (num_nodes < 3) throw std::invalid_argument("make_cycle: need n >= 3");
  GraphBuilder builder(num_nodes);
  for (std::int64_t u = 0; u < num_nodes; ++u)
    builder.add_edge(u, (u + 1) % num_nodes);
  return std::move(builder).build("cycle(n=" + std::to_string(num_nodes) + ")");
}

AdjacencyGraph make_torus(std::int64_t rows, std::int64_t cols) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("make_torus: need rows, cols >= 3");
  GraphBuilder builder(rows * cols);
  const auto id = [cols](std::int64_t r, std::int64_t c) {
    return r * cols + c;
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      builder.add_edge(id(r, c), id(r, (c + 1) % cols));
      builder.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(builder).build("torus(" + std::to_string(rows) + "x" +
                                  std::to_string(cols) + ")");
}

AdjacencyGraph make_star(std::int64_t num_nodes) {
  if (num_nodes < 2) throw std::invalid_argument("make_star: need n >= 2");
  GraphBuilder builder(num_nodes);
  for (std::int64_t u = 1; u < num_nodes; ++u) builder.add_edge(0, u);
  return std::move(builder).build("star(n=" + std::to_string(num_nodes) + ")");
}

AdjacencyGraph make_random_regular(std::int64_t num_nodes, std::int64_t degree,
                                   rng::Xoshiro256& gen) {
  if (num_nodes < 2)
    throw std::invalid_argument("make_random_regular: need n >= 2");
  if (degree < 1 || degree >= num_nodes)
    throw std::invalid_argument("make_random_regular: need 1 <= d < n");
  if ((num_nodes * degree) % 2 != 0)
    throw std::invalid_argument("make_random_regular: n*d must be even");

  // Configuration model with edge-switch repair: pair up n*d half-edges
  // uniformly, then remove the (few) self-loops and multi-edges by
  // swapping each defective pairing with a uniformly random edge when
  // the swap reduces defects.  Pure rejection is hopeless beyond d ≈ 4
  // (P(simple) ≈ exp(−(d−1)/2 − (d−1)²/4)); the switch repair keeps the
  // distribution asymptotically close to uniform and always terminates
  // in practice for d << n.
  const std::int64_t stubs_count = num_nodes * degree;
  std::vector<std::int64_t> stubs(static_cast<std::size_t>(stubs_count));
  for (std::int64_t i = 0; i < stubs_count; ++i)
    stubs[static_cast<std::size_t>(i)] = i / degree;

  constexpr int kMaxAttempts = 200;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    rng::shuffle(gen, stubs);
    const std::int64_t pair_count = stubs_count / 2;
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs(
        static_cast<std::size_t>(pair_count));
    for (std::int64_t i = 0; i < pair_count; ++i) {
      pairs[static_cast<std::size_t>(i)] = {
          stubs[static_cast<std::size_t>(2 * i)],
          stubs[static_cast<std::size_t>(2 * i + 1)]};
    }
    const auto canonical = [](std::pair<std::int64_t, std::int64_t> e) {
      if (e.first > e.second) std::swap(e.first, e.second);
      return e;
    };
    const auto defective =
        [&](const std::set<std::pair<std::int64_t, std::int64_t>>& used,
            std::pair<std::int64_t, std::int64_t> e) {
          return e.first == e.second || used.count(canonical(e)) > 0;
        };
    // Iteratively repair: rebuild the edge multiset, pick a defective
    // pairing and switch its endpoints with a random other pairing.
    bool done = false;
    for (int round = 0; round < 200 && !done; ++round) {
      std::set<std::pair<std::int64_t, std::int64_t>> used;
      std::vector<std::int64_t> bad;
      for (std::int64_t i = 0; i < pair_count; ++i) {
        const auto edge = canonical(pairs[static_cast<std::size_t>(i)]);
        if (edge.first == edge.second || !used.insert(edge).second)
          bad.push_back(i);
      }
      if (bad.empty()) {
        done = true;
        break;
      }
      for (const std::int64_t b : bad) {
        // Swap with random partners until this pairing stops being
        // defective w.r.t. the current edge set (bounded tries).
        for (int tries = 0; tries < 64; ++tries) {
          const std::int64_t other = rng::uniform_below(gen, pair_count);
          if (other == b) continue;
          auto& eb = pairs[static_cast<std::size_t>(b)];
          auto& eo = pairs[static_cast<std::size_t>(other)];
          std::swap(eb.second, eo.second);
          const bool ok = !defective(used, eb) && !defective(used, eo);
          if (ok) break;
          std::swap(eb.second, eo.second);  // undo
        }
      }
    }
    if (!done) continue;  // fresh shuffle and try again
    GraphBuilder builder(num_nodes);
    for (const auto& pair : pairs) builder.add_edge(pair.first, pair.second);
    return std::move(builder).build("regular(n=" + std::to_string(num_nodes) +
                                    ",d=" + std::to_string(degree) + ")");
  }
  throw std::runtime_error(
      "make_random_regular: failed to generate a simple graph (degree too "
      "large for this n?)");
}

AdjacencyGraph make_erdos_renyi(std::int64_t num_nodes, double p,
                                rng::Xoshiro256& gen) {
  if (num_nodes < 2)
    throw std::invalid_argument("make_erdos_renyi: need n >= 2");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("make_erdos_renyi: p must be in [0, 1]");

  std::vector<std::vector<std::int64_t>> adj(
      static_cast<std::size_t>(num_nodes));
  if (p > 0.0) {
    // Skip-sampling over the n(n-1)/2 candidate edges: geometric gaps
    // between successes give O(edges) expected work instead of O(n^2).
    const std::int64_t total_pairs = num_nodes * (num_nodes - 1) / 2;
    std::int64_t index = (p < 1.0) ? rng::geometric_failures(gen, p) : 0;
    while (index < total_pairs) {
      // Decode the linear index into (u, v) with u < v.
      const double ui =
          std::floor((2.0 * static_cast<double>(num_nodes) - 1.0 -
                      std::sqrt((2.0 * static_cast<double>(num_nodes) - 1.0) *
                                    (2.0 * static_cast<double>(num_nodes) -
                                     1.0) -
                                8.0 * static_cast<double>(index))) /
                     2.0);
      auto u = static_cast<std::int64_t>(ui);
      u = std::clamp<std::int64_t>(u, 0, num_nodes - 2);
      // Row u (pairs with first coordinate u) starts at linear index
      // u(n-1) - u(u-1)/2; fix any floating point rounding by local search.
      auto row_start = [num_nodes](std::int64_t r) {
        return r * (num_nodes - 1) - r * (r - 1) / 2;
      };
      while (u > 0 && row_start(u) > index) --u;
      while (u < num_nodes - 2 && row_start(u + 1) <= index) ++u;
      const std::int64_t v = u + 1 + (index - row_start(u));
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
      if (p >= 1.0) {
        ++index;
      } else {
        index += 1 + rng::geometric_failures(gen, p);
      }
    }
  }

  // Re-wire isolated vertices so neighbour sampling is always defined.
  bool fixed = false;
  for (std::int64_t u = 0; u < num_nodes; ++u) {
    if (adj[static_cast<std::size_t>(u)].empty()) {
      std::int64_t v = rng::uniform_below(gen, num_nodes - 1);
      if (v >= u) ++v;
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
      fixed = true;
    }
  }
  const std::string label = std::string("er") + (fixed ? "+fix" : "") + "(n=" +
                            std::to_string(num_nodes) +
                            ",p=" + std::to_string(p) + ")";
  return AdjacencyGraph(std::move(adj), label);
}

AdjacencyGraph make_hypercube(std::int64_t dimension) {
  if (dimension < 1 || dimension > 30)
    throw std::invalid_argument("make_hypercube: need 1 <= dimension <= 30");
  const std::int64_t n = std::int64_t{1} << dimension;
  GraphBuilder builder(n);
  for (std::int64_t u = 0; u < n; ++u) {
    for (std::int64_t bit = 0; bit < dimension; ++bit) {
      const std::int64_t v = u ^ (std::int64_t{1} << bit);
      if (u < v) builder.add_edge(u, v);
    }
  }
  return std::move(builder).build("hypercube(d=" + std::to_string(dimension) +
                                  ")");
}

AdjacencyGraph make_grid(std::int64_t rows, std::int64_t cols) {
  if (rows < 2 || cols < 2)
    throw std::invalid_argument("make_grid: need rows, cols >= 2");
  GraphBuilder builder(rows * cols);
  const auto id = [cols](std::int64_t r, std::int64_t c) {
    return r * cols + c;
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).build("grid(" + std::to_string(rows) + "x" +
                                  std::to_string(cols) + ")");
}

AdjacencyGraph make_complete_bipartite(std::int64_t left, std::int64_t right) {
  if (left < 1 || right < 1)
    throw std::invalid_argument("make_complete_bipartite: need a, b >= 1");
  // Built directly (structurally duplicate-free): GraphBuilder's O(degree)
  // duplicate check would make dense families quadratic in degree.
  std::vector<std::vector<std::int64_t>> adj(
      static_cast<std::size_t>(left + right));
  for (std::int64_t u = 0; u < left; ++u) {
    auto& nu = adj[static_cast<std::size_t>(u)];
    nu.reserve(static_cast<std::size_t>(right));
    for (std::int64_t v = left; v < left + right; ++v) {
      nu.push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
    }
  }
  return AdjacencyGraph(std::move(adj), "bipartite(" + std::to_string(left) +
                                            "," + std::to_string(right) +
                                            ")");
}

AdjacencyGraph make_barbell(std::int64_t clique) {
  if (clique < 2) throw std::invalid_argument("make_barbell: need clique >= 2");
  std::vector<std::vector<std::int64_t>> adj(
      static_cast<std::size_t>(2 * clique));
  for (std::int64_t side = 0; side < 2; ++side) {
    const std::int64_t base = side * clique;
    for (std::int64_t u = 0; u < clique; ++u) {
      auto& nu = adj[static_cast<std::size_t>(base + u)];
      nu.reserve(static_cast<std::size_t>(clique));  // clique-1 (+1 bridge)
      for (std::int64_t v = 0; v < clique; ++v) {
        if (v != u) nu.push_back(base + v);
      }
    }
  }
  adj[static_cast<std::size_t>(clique - 1)].push_back(clique);  // the bridge
  adj[static_cast<std::size_t>(clique)].push_back(clique - 1);
  return AdjacencyGraph(std::move(adj),
                        "barbell(2x" + std::to_string(clique) + ")");
}

std::unique_ptr<Graph> make_topology(const std::string& spec,
                                     std::int64_t num_nodes,
                                     rng::Xoshiro256& gen) {
  if (spec == "complete")
    return std::make_unique<CompleteGraph>(num_nodes);
  if (spec == "cycle")
    return std::make_unique<AdjacencyGraph>(make_cycle(num_nodes));
  if (spec == "star")
    return std::make_unique<AdjacencyGraph>(make_star(num_nodes));
  if (spec == "hypercube") {
    std::int64_t dimension = 0;
    while ((std::int64_t{1} << dimension) < num_nodes) ++dimension;
    if ((std::int64_t{1} << dimension) != num_nodes)
      throw std::invalid_argument(
          "make_topology: hypercube needs n a power of two");
    return std::make_unique<AdjacencyGraph>(make_hypercube(dimension));
  }
  if (spec == "bipartite") {
    if (num_nodes % 2 != 0)
      throw std::invalid_argument("make_topology: bipartite needs even n");
    return std::make_unique<AdjacencyGraph>(
        make_complete_bipartite(num_nodes / 2, num_nodes / 2));
  }
  if (spec == "barbell") {
    if (num_nodes % 2 != 0)
      throw std::invalid_argument("make_topology: barbell needs even n");
    return std::make_unique<AdjacencyGraph>(make_barbell(num_nodes / 2));
  }
  if (spec == "grid") {
    const auto side = static_cast<std::int64_t>(
        std::llround(std::sqrt(static_cast<double>(num_nodes))));
    if (side * side != num_nodes)
      throw std::invalid_argument("make_topology: grid needs square n");
    return std::make_unique<AdjacencyGraph>(make_grid(side, side));
  }
  if (spec == "torus") {
    const auto side =
        static_cast<std::int64_t>(std::llround(std::sqrt(
            static_cast<double>(num_nodes))));
    if (side * side != num_nodes)
      throw std::invalid_argument("make_topology: torus needs square n");
    return std::make_unique<AdjacencyGraph>(make_torus(side, side));
  }
  if (spec.rfind("regular:", 0) == 0) {
    const std::int64_t d = std::stoll(spec.substr(8));
    return std::make_unique<AdjacencyGraph>(
        make_random_regular(num_nodes, d, gen));
  }
  if (spec.rfind("er:", 0) == 0) {
    const double p = std::stod(spec.substr(3));
    return std::make_unique<AdjacencyGraph>(
        make_erdos_renyi(num_nodes, p, gen));
  }
  throw std::invalid_argument("make_topology: unknown topology spec '" + spec +
                              "'");
}

}  // namespace divpp::graph
