#ifndef DIVPP_GRAPH_TOPOLOGIES_H
#define DIVPP_GRAPH_TOPOLOGIES_H

/// \file topologies.h
/// Concrete interaction topologies.
///
/// CompleteGraph is the paper's model and is implemented implicitly
/// (O(1) memory, O(1) sampling).  The generated families (cycle, torus,
/// random-regular, Erdős–Rényi, star) back experiment E10 (the paper's
/// future-work question about other topologies).

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::graph {

/// K_n without self-loops; the paper's interaction model.  Sampling a
/// neighbour of u draws uniformly from the other n-1 nodes in O(1).
///
/// `final`, and with an inline non-virtual `sample_neighbor_fast`, so
/// engines templated on the concrete graph type (core::Population) keep
/// no virtual call in their hot loop.
class CompleteGraph final : public Graph {
 public:
  /// \pre num_nodes >= 2.
  explicit CompleteGraph(std::int64_t num_nodes);

  [[nodiscard]] std::int64_t num_nodes() const noexcept override { return n_; }
  [[nodiscard]] std::int64_t degree(std::int64_t u) const override;
  [[nodiscard]] std::int64_t sample_neighbor(
      std::int64_t u, rng::Xoshiro256& gen) const override;
  [[nodiscard]] bool has_edge(std::int64_t u, std::int64_t v) const override;
  [[nodiscard]] std::string name() const override;

  /// The hot-loop sampling primitive: identical distribution and draw
  /// sequence to sample_neighbor, but non-virtual, inline, and without
  /// the bounds check.  \pre 0 <= u < num_nodes().
  [[nodiscard]] std::int64_t sample_neighbor_fast(
      std::int64_t u, rng::Xoshiro256& gen) const {
    const std::int64_t v = rng::uniform_below(gen, n_ - 1);
    return v + (v >= u ? 1 : 0);
  }

 private:
  std::int64_t n_;
};

/// The n-cycle C_n (each node linked to its two ring neighbours).
/// \pre num_nodes >= 3.
[[nodiscard]] AdjacencyGraph make_cycle(std::int64_t num_nodes);

/// rows × cols torus (4-regular wrap-around grid).  \pre rows, cols >= 3.
[[nodiscard]] AdjacencyGraph make_torus(std::int64_t rows, std::int64_t cols);

/// Star K_{1,n-1}: node 0 is the hub.  \pre num_nodes >= 2.
[[nodiscard]] AdjacencyGraph make_star(std::int64_t num_nodes);

/// Random d-regular simple graph via the configuration model with
/// restarts (retries until simple; practical for d << n).
/// \pre num_nodes*degree even, 1 <= degree < num_nodes.
[[nodiscard]] AdjacencyGraph make_random_regular(std::int64_t num_nodes,
                                                 std::int64_t degree,
                                                 rng::Xoshiro256& gen);

/// Erdős–Rényi G(n, p).  Isolated vertices are re-wired to one uniformly
/// random partner so that neighbour sampling is always defined (flagged in
/// the name as "er+fix" when any rewiring happened).
/// \pre num_nodes >= 2, p in [0, 1].
[[nodiscard]] AdjacencyGraph make_erdos_renyi(std::int64_t num_nodes, double p,
                                              rng::Xoshiro256& gen);

/// The d-dimensional hypercube Q_d on 2^d nodes (node ids are bit
/// strings; neighbours differ in one bit).  \pre 1 <= dimension <= 30.
[[nodiscard]] AdjacencyGraph make_hypercube(std::int64_t dimension);

/// rows × cols grid *without* wrap-around (boundary nodes have degree
/// 2 or 3).  \pre rows, cols >= 2.
[[nodiscard]] AdjacencyGraph make_grid(std::int64_t rows, std::int64_t cols);

/// Complete bipartite graph K_{a,b}: nodes [0, a) on the left side,
/// [a, a+b) on the right.  \pre a, b >= 1.
[[nodiscard]] AdjacencyGraph make_complete_bipartite(std::int64_t left,
                                                     std::int64_t right);

/// Barbell: two cliques of `clique` nodes joined by a single bridge edge
/// — the canonical bottleneck topology (worst case for mixing).
/// \pre clique >= 2.
[[nodiscard]] AdjacencyGraph make_barbell(std::int64_t clique);

/// Factory used by benches/examples: builds a topology by name.
/// Known names: "complete", "cycle", "torus" (square n), "grid" (square
/// n), "star", "hypercube" (n a power of two), "bipartite" (even n),
/// "barbell" (even n), "regular:<d>", "er:<p>".
[[nodiscard]] std::unique_ptr<Graph> make_topology(const std::string& spec,
                                                   std::int64_t num_nodes,
                                                   rng::Xoshiro256& gen);

}  // namespace divpp::graph

#endif  // DIVPP_GRAPH_TOPOLOGIES_H
