#include "io/args.h"

#include <sstream>
#include <stdexcept>

namespace divpp::io {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0)
      throw std::invalid_argument("Args: expected --flag, got '" + token + "'");
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";  // bare flag == boolean true
    }
  }
}

bool Args::has(const std::string& name) const {
  return values_.count(name) > 0;
}

namespace {

// Wraps std::stoll/std::stod so a bad value reports the flag it came
// from ("--replicas expects an integer, got 'true'") instead of leaking
// a bare std::invalid_argument("stoll").  Trailing garbage ("12abc") is
// rejected too: the whole value must parse.
std::int64_t parse_int(const std::string& name, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(value, &consumed);
    if (consumed == value.size()) return parsed;
  } catch (const std::exception&) {
    // fall through to the uniform error below
  }
  throw std::invalid_argument("Args: --" + name +
                              " expects an integer, got '" + value + "'");
}

double parse_double(const std::string& name, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed == value.size()) return parsed;
  } catch (const std::exception&) {
    // fall through to the uniform error below
  }
  throw std::invalid_argument("Args: --" + name +
                              " expects a number, got '" + value + "'");
}

}  // namespace

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_int(name, it->second);
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_double(name, it->second);
}

std::string Args::get_string(const std::string& name,
                             std::string fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second;
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

namespace {

std::vector<std::string> split_commas(const std::string& value) {
  std::vector<std::string> parts;
  std::stringstream stream(value);
  std::string part;
  while (std::getline(stream, part, ',')) parts.push_back(part);
  return parts;
}

}  // namespace

std::vector<std::int64_t> Args::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  for (const std::string& part : split_commas(it->second))
    out.push_back(parse_int(name, part));
  if (out.empty())
    throw std::invalid_argument("Args: empty list for --" + name);
  return out;
}

std::vector<double> Args::get_double_list(const std::string& name,
                                          std::vector<double> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  for (const std::string& part : split_commas(it->second))
    out.push_back(parse_double(name, part));
  if (out.empty())
    throw std::invalid_argument("Args: empty list for --" + name);
  return out;
}

}  // namespace divpp::io
