#ifndef DIVPP_IO_ARGS_H
#define DIVPP_IO_ARGS_H

/// \file args.h
/// Minimal command-line parsing for bench/example binaries.
///
/// Flags take the form `--name=value` or `--name value`.  Unknown flags
/// throw, so typos in experiment sweeps fail fast instead of silently
/// running the default configuration.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace divpp::io {

/// Parsed command line with typed, defaulted accessors.
class Args {
 public:
  /// Parses argv.  \throws std::invalid_argument on malformed flags.
  Args(int argc, const char* const* argv);

  /// True when --name was supplied.
  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed accessors returning fallback when the flag is absent.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated int list, e.g. --ns=1024,4096,16384.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Comma-separated double list, e.g. --weights=1,2,4.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name, std::vector<double> fallback) const;

  /// Name of the program (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace divpp::io

#endif  // DIVPP_IO_ARGS_H
