#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace divpp::io {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_quote(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string json_unquote(std::string_view quoted) {
  if (quoted.size() < 2 || quoted.front() != '"' || quoted.back() != '"')
    throw std::invalid_argument("json_unquote: not a quoted string");
  std::string out;
  out.reserve(quoted.size() - 2);
  std::size_t i = 1;
  const std::size_t end = quoted.size() - 1;
  while (i < end) {
    const char c = quoted[i];
    if (c != '\\') {
      if (c == '"')
        throw std::invalid_argument("json_unquote: unescaped quote");
      if (static_cast<unsigned char>(c) < 0x20)
        throw std::invalid_argument("json_unquote: raw control character");
      out.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= end)
      throw std::invalid_argument("json_unquote: dangling escape");
    const char escape = quoted[i + 1];
    i += 2;
    switch (escape) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        if (i + 4 > end)
          throw std::invalid_argument("json_unquote: truncated \\u escape");
        unsigned code = 0;
        for (int d = 0; d < 4; ++d) {
          const int v = hex_digit(quoted[i + static_cast<std::size_t>(d)]);
          if (v < 0)
            throw std::invalid_argument("json_unquote: bad \\u hex digit");
          code = code * 16 + static_cast<unsigned>(v);
        }
        if (code > 0xFF)
          throw std::invalid_argument(
              "json_unquote: \\u escape above 0x00FF is unsupported (the "
              "writer round-trips bytes, not code points)");
        out.push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default:
        throw std::invalid_argument("json_unquote: unknown escape");
    }
  }
  return out;
}

Json& Json::set_raw(const std::string& key, std::string rendered) {
  members_.emplace_back(key, std::move(rendered));
  return *this;
}

Json& Json::set(const std::string& key, double value) {
  return set_raw(key, json_number(value));
}

Json& Json::set(const std::string& key, std::int64_t value) {
  return set_raw(key, std::to_string(value));
}

Json& Json::set(const std::string& key, int value) {
  return set(key, static_cast<std::int64_t>(value));
}

Json& Json::set(const std::string& key, bool value) {
  return set_raw(key, value ? "true" : "false");
}

Json& Json::set(const std::string& key, const char* value) {
  return set_raw(key, json_quote(value));
}

Json& Json::set(const std::string& key, const std::string& value) {
  return set_raw(key, json_quote(value));
}

Json& Json::set(const std::string& key, const Json& child) {
  return set_raw(key, child.to_string());
}

Json& Json::set(const std::string& key, std::span<const double> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json_number(values[i]);
  }
  out.push_back(']');
  return set_raw(key, std::move(out));
}

Json& Json::set(const std::string& key,
                std::span<const std::int64_t> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  out.push_back(']');
  return set_raw(key, std::move(out));
}

std::string Json::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json_quote(members_[i].first);
    out.push_back(':');
    out += members_[i].second;
  }
  out.push_back('}');
  return out;
}

}  // namespace divpp::io
