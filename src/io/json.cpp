#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace divpp::io {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_quote(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

Json& Json::set_raw(const std::string& key, std::string rendered) {
  members_.emplace_back(key, std::move(rendered));
  return *this;
}

Json& Json::set(const std::string& key, double value) {
  return set_raw(key, json_number(value));
}

Json& Json::set(const std::string& key, std::int64_t value) {
  return set_raw(key, std::to_string(value));
}

Json& Json::set(const std::string& key, int value) {
  return set(key, static_cast<std::int64_t>(value));
}

Json& Json::set(const std::string& key, bool value) {
  return set_raw(key, value ? "true" : "false");
}

Json& Json::set(const std::string& key, const char* value) {
  return set_raw(key, json_quote(value));
}

Json& Json::set(const std::string& key, const std::string& value) {
  return set_raw(key, json_quote(value));
}

Json& Json::set(const std::string& key, const Json& child) {
  return set_raw(key, child.to_string());
}

Json& Json::set(const std::string& key, std::span<const double> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json_number(values[i]);
  }
  out.push_back(']');
  return set_raw(key, std::move(out));
}

Json& Json::set(const std::string& key,
                std::span<const std::int64_t> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  out.push_back(']');
  return set_raw(key, std::move(out));
}

std::string Json::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json_quote(members_[i].first);
    out.push_back(':');
    out += members_[i].second;
  }
  out.push_back('}');
  return out;
}

}  // namespace divpp::io
