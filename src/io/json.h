#ifndef DIVPP_IO_JSON_H
#define DIVPP_IO_JSON_H

/// \file json.h
/// A minimal, insertion-ordered JSON object writer.
///
/// Benches print one JSON summary line (timings, thread counts, headline
/// statistics) alongside their human-readable tables so sweeps can be
/// harvested by scripts without scraping table text.  This is a writer
/// only — divpp never parses JSON.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace divpp::io {

/// A JSON object built key by key; keys render in insertion order.
/// Non-finite doubles render as null (JSON has no NaN/Inf).
class Json {
 public:
  Json& set(const std::string& key, double value);
  Json& set(const std::string& key, std::int64_t value);
  Json& set(const std::string& key, int value);
  Json& set(const std::string& key, bool value);
  Json& set(const std::string& key, const char* value);
  Json& set(const std::string& key, const std::string& value);
  Json& set(const std::string& key, const Json& child);
  Json& set(const std::string& key, std::span<const double> values);
  Json& set(const std::string& key, std::span<const std::int64_t> values);

  /// Single-line rendering, e.g. {"bench":"e14","threads":4}.
  [[nodiscard]] std::string to_string() const;

 private:
  Json& set_raw(const std::string& key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> members_;
};

/// Renders a double as a JSON number (null when non-finite), with enough
/// digits to round-trip.
[[nodiscard]] std::string json_number(double value);

/// Escapes and quotes a string for JSON.
[[nodiscard]] std::string json_quote(const std::string& value);

}  // namespace divpp::io

#endif  // DIVPP_IO_JSON_H
