#ifndef DIVPP_IO_JSON_H
#define DIVPP_IO_JSON_H

/// \file json.h
/// A minimal, insertion-ordered JSON object writer.
///
/// Benches print one JSON summary line (timings, thread counts, headline
/// statistics) alongside their human-readable tables so sweeps can be
/// harvested by scripts without scraping table text.  This is a writer
/// plus one inverse — json_unquote, the single piece of parsing divpp
/// does, used by the sweep manifest (runtime/sweep_runner.cpp) to read
/// back the scenario names and error strings it quoted itself.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace divpp::io {

/// A JSON object built key by key; keys render in insertion order.
/// Non-finite doubles render as null (JSON has no NaN/Inf).
class Json {
 public:
  Json& set(const std::string& key, double value);
  Json& set(const std::string& key, std::int64_t value);
  Json& set(const std::string& key, int value);
  Json& set(const std::string& key, bool value);
  Json& set(const std::string& key, const char* value);
  Json& set(const std::string& key, const std::string& value);
  Json& set(const std::string& key, const Json& child);
  Json& set(const std::string& key, std::span<const double> values);
  Json& set(const std::string& key, std::span<const std::int64_t> values);

  /// Single-line rendering, e.g. {"bench":"e14","threads":4}.
  [[nodiscard]] std::string to_string() const;

 private:
  Json& set_raw(const std::string& key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> members_;
};

/// Renders a double as a JSON number (null when non-finite), with enough
/// digits to round-trip.
[[nodiscard]] std::string json_number(double value);

/// Escapes and quotes a string for JSON: quotes, backslashes, and the
/// short escapes \n \r \t \b \f; every other byte below 0x20 renders as
/// \u00XX.  Bytes >= 0x20 pass through unchanged (the writer is
/// encoding-agnostic: UTF-8 in, UTF-8 out).
[[nodiscard]] std::string json_quote(const std::string& value);

/// Inverse of json_quote: parses one quoted JSON string (including the
/// surrounding quotes) back to raw bytes.  Accepts the escapes
/// json_quote emits plus \/ and \uXXXX up to 0x00FF (one byte out);
/// \uXXXX above 0xFF is rejected — json_quote never emits it and the
/// manifest round-trips bytes, not code points.
/// \throws std::invalid_argument on anything malformed (missing quotes,
/// dangling escape, unknown escape, raw control character).
[[nodiscard]] std::string json_unquote(std::string_view quoted);

}  // namespace divpp::io

#endif  // DIVPP_IO_JSON_H
