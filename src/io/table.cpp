#include "io/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace divpp::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::begin_row() {
  if (!rows_.empty() && rows_.back().size() != headers_.size())
    throw std::logic_error("Table: previous row is incomplete");
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add_cell(std::string cell) {
  if (rows_.empty()) throw std::logic_error("Table: begin_row first");
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("Table: row already full");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add_cell(std::int64_t value) {
  return add_cell(std::to_string(value));
}

Table& Table::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}

const std::string& Table::cell(std::int64_t row, std::int64_t col) const {
  if (row < 0 || row >= rows() || col < 0 ||
      col >= static_cast<std::int64_t>(headers_.size()))
    throw std::out_of_range("Table::cell: index out of range");
  return rows_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  return widths;
}

}  // namespace

std::string Table::to_text() const {
  const auto widths = column_widths(headers_, rows_);
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell_text = c < row.size() ? row[c] : std::string();
      out << cell_text << std::string(widths[c] - cell_text.size() + 2, ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w + 2;
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  out << "|";
  for (const auto& h : headers_) out << " " << h << " |";
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << "\n";
  for (const auto& row : rows_) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
      out << " " << (c < row.size() ? row[c] : "") << " |";
    out << "\n";
  }
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out << ",";
      const std::string& cell_text = c < row.size() ? row[c] : std::string();
      if (cell_text.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (const char ch : cell_text) {
          if (ch == '"') out << "\"\"";
          else out << ch;
        }
        out << '"';
      } else {
        out << cell_text;
      }
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_text();
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << value;
  return out.str();
}

std::string banner(const std::string& title) {
  const std::string rule(title.size() + 8, '=');
  return rule + "\n==  " + title + "  ==\n" + rule + "\n";
}

}  // namespace divpp::io
