#ifndef DIVPP_IO_TABLE_H
#define DIVPP_IO_TABLE_H

/// \file table.h
/// Paper-style result tables.
///
/// Every experiment binary prints its rows through Table so that the
/// bench output reads like the tables in a systems paper and can also be
/// exported as CSV or Markdown for plotting.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace divpp::io {

/// A simple column-aligned table with string cells.
class Table {
 public:
  /// Creates a table with the given column headers (non-empty).
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  Table& begin_row();
  /// Appends a preformatted cell to the current row.
  Table& add_cell(std::string cell);
  /// Appends an integer cell.
  Table& add_cell(std::int64_t value);
  /// Appends a floating cell rendered with `precision` significant digits.
  Table& add_cell(double value, int precision = 4);

  /// Number of completed + in-progress rows.
  [[nodiscard]] std::int64_t rows() const noexcept {
    return static_cast<std::int64_t>(rows_.size());
  }
  /// Cell accessor (for tests).  \pre indices in range.
  [[nodiscard]] const std::string& cell(std::int64_t row,
                                        std::int64_t col) const;

  /// Renders as an aligned plain-text table.
  [[nodiscard]] std::string to_text() const;
  /// Renders as GitHub-flavoured Markdown.
  [[nodiscard]] std::string to_markdown() const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing commas).
  [[nodiscard]] std::string to_csv() const;

  /// Convenience: stream the plain-text rendering.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed significant digits (shared cell formatting).
[[nodiscard]] std::string format_double(double value, int precision = 4);

/// Prints a section banner used between experiment stages.
[[nodiscard]] std::string banner(const std::string& title);

}  // namespace divpp::io

#endif  // DIVPP_IO_TABLE_H
