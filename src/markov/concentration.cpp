#include "markov/concentration.h"

#include <cmath>
#include <stdexcept>

#include "rng/distributions.h"

namespace divpp::markov {

void ContractionHypotheses::validate() const {
  if (!(alpha > 0.0) || !(alpha < 1.0))
    throw std::invalid_argument("ContractionHypotheses: need 0 < alpha < 1");
  if (!(beta > 0.0))
    throw std::invalid_argument("ContractionHypotheses: need beta > 0");
  if (gamma < 0.0)
    throw std::invalid_argument("ContractionHypotheses: need gamma >= 0");
  if (delta2 < 0.0)
    throw std::invalid_argument("ContractionHypotheses: need delta2 >= 0");
}

double chung_lu_tail(const ContractionHypotheses& h, double lambda) {
  h.validate();
  if (!(lambda > 0.0))
    throw std::invalid_argument("chung_lu_tail: lambda must be > 0");
  const double denom =
      h.delta2 / (2.0 * h.alpha - h.alpha * h.alpha) + lambda * h.gamma / 3.0;
  if (!(denom > 0.0)) return 0.0;  // zero variance and zero increments
  return std::exp(-(lambda * lambda / 2.0) / denom);
}

double contraction_steady_mean(const ContractionHypotheses& h) {
  h.validate();
  return h.beta / h.alpha;
}

double markov_chernoff_tail(double pi_i, std::int64_t t, double delta,
                            std::int64_t t_mix) {
  if (!(pi_i > 0.0) || pi_i > 1.0)
    throw std::invalid_argument("markov_chernoff_tail: pi_i must be in (0,1]");
  if (t < 1) throw std::invalid_argument("markov_chernoff_tail: t must be >= 1");
  if (!(delta > 0.0) || delta >= 1.0)
    throw std::invalid_argument(
        "markov_chernoff_tail: delta must be in (0, 1)");
  if (t_mix < 1)
    throw std::invalid_argument("markov_chernoff_tail: t_mix must be >= 1");
  return std::exp(-delta * delta * pi_i * static_cast<double>(t) /
                  (72.0 * static_cast<double>(t_mix)));
}

SyntheticContraction::SyntheticContraction(double alpha, double beta,
                                           double gamma, double initial)
    : alpha_(alpha), beta_(beta), gamma_(gamma), initial_(initial),
      value_(initial) {
  ContractionHypotheses h{alpha, beta, gamma, gamma * gamma / 3.0};
  h.validate();
  if (beta < gamma)
    throw std::invalid_argument(
        "SyntheticContraction: need beta >= gamma to stay non-negative");
  if (initial < 0.0)
    throw std::invalid_argument("SyntheticContraction: initial must be >= 0");
}

double SyntheticContraction::step(rng::Xoshiro256& gen) {
  const double noise = gamma_ * (2.0 * rng::uniform01(gen) - 1.0);
  value_ = (1.0 - alpha_) * value_ + beta_ + noise;
  return value_;
}

double SyntheticContraction::expected_value(std::int64_t t) const {
  if (t < 0) throw std::invalid_argument("expected_value: negative t");
  // E M(t) = (1−α)^t M(0) + β (1 − (1−α)^t)/α.
  const double decay = std::pow(1.0 - alpha_, static_cast<double>(t));
  return decay * initial_ + beta_ * (1.0 - decay) / alpha_;
}

ContractionHypotheses SyntheticContraction::hypotheses() const noexcept {
  return {alpha_, beta_, gamma_, gamma_ * gamma_ / 3.0};
}

}  // namespace divpp::markov
