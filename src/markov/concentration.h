#ifndef DIVPP_MARKOV_CONCENTRATION_H
#define DIVPP_MARKOV_CONCENTRATION_H

/// \file concentration.h
/// The paper's concentration machinery:
///
///  * Lemma 2.11 — a Chung–Lu-type tail bound for non-negative processes
///    with contraction drift, bounded increments, and bounded conditional
///    variance;
///  * Theorem A.2 — the Chernoff bound for ergodic Markov chains (hit
///    counts concentrate around π(i)·t);
///  * SyntheticContraction — a process engineered to satisfy Lemma 2.11's
///    hypotheses exactly, used by tests and experiment E12 to check the
///    bound empirically.

#include <cstdint>

#include "rng/xoshiro.h"

namespace divpp::markov {

/// Hypothesis parameters of Lemma 2.11:
///   (i)   E(M(t) | F_{t-1}) <= (1 − alpha) M(t−1) + beta, 0 < alpha < 1;
///   (ii)  |M(t) − E(M(t) | F_{t-1})| <= gamma;
///   (iii) Var(M(t) | F_{t-1}) <= delta².
struct ContractionHypotheses {
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
  double delta2 = 0.0;  ///< δ² (the variance bound itself)

  /// \throws std::invalid_argument unless 0 < alpha < 1, beta > 0,
  /// gamma >= 0, delta2 >= 0.
  void validate() const;
};

/// The Lemma 2.11 tail:  P(M(t) >= E M(t) + lambda) <=
///   exp( −(λ²/2) / ( δ²/(2α−α²) + λγ/3 ) ).
/// \pre lambda > 0.
[[nodiscard]] double chung_lu_tail(const ContractionHypotheses& h,
                                   double lambda);

/// The steady-state mean bound implied by iterating (i): β/α.
[[nodiscard]] double contraction_steady_mean(const ContractionHypotheses& h);

/// Theorem A.2 (Chung, Lam, Liu, Mitzenmacher): with N_i the number of
/// hits to state i in t steps of an ergodic chain with stationary π and
/// 1/8-mixing time T_mix,
///   P(|N_i − π(i)t| >= δ π(i) t) <= c · exp(−δ² π(i) t / (72 T_mix)).
/// Returns the exponential factor (c treated as 1 for reporting).
[[nodiscard]] double markov_chernoff_tail(double pi_i, std::int64_t t,
                                          double delta, std::int64_t t_mix);

/// A stochastic process meeting Lemma 2.11's hypotheses *exactly*:
///   M(t) = (1 − alpha) M(t−1) + beta + U_t,  U_t ~ Uniform[−gamma, gamma]
/// (independent).  Drift (i) holds with equality, |M − E| <= gamma gives
/// (ii), and Var = γ²/3 gives (iii) with δ² = γ²/3.  Parameters must keep
/// the process non-negative (checked at construction: beta >= gamma).
class SyntheticContraction {
 public:
  /// \pre 0 < alpha < 1, beta >= gamma >= 0.
  SyntheticContraction(double alpha, double beta, double gamma,
                       double initial);

  /// Advances one step and returns the new value.
  double step(rng::Xoshiro256& gen);

  [[nodiscard]] double value() const noexcept { return value_; }
  /// The exact E[M(t)] from iterating the drift equality.
  [[nodiscard]] double expected_value(std::int64_t t) const;
  /// Hypothesis parameters for use with chung_lu_tail.
  [[nodiscard]] ContractionHypotheses hypotheses() const noexcept;

 private:
  double alpha_;
  double beta_;
  double gamma_;
  double initial_;
  double value_;
};

}  // namespace divpp::markov

#endif  // DIVPP_MARKOV_CONCENTRATION_H
