#include "markov/equilibrium_chain.h"

#include <stdexcept>
#include <vector>

namespace divpp::markov {

std::int64_t dark_state(core::ColorId i) noexcept { return i; }

std::int64_t light_state(core::ColorId i, std::int64_t num_colors) noexcept {
  return num_colors + i;
}

bool is_dark_state(std::int64_t s, std::int64_t num_colors) noexcept {
  return s < num_colors;
}

core::ColorId state_color(std::int64_t s, std::int64_t num_colors) noexcept {
  return static_cast<core::ColorId>(s < num_colors ? s : s - num_colors);
}

namespace {

std::vector<double> equilibrium_matrix(const core::WeightMap& weights,
                                       std::int64_t n) {
  if (n < 2)
    throw std::invalid_argument("build_equilibrium_chain: need n >= 2");
  const std::int64_t k = weights.num_colors();
  const double total = weights.total();
  const double dn = static_cast<double>(n);
  const auto size = static_cast<std::size_t>(2 * k);
  std::vector<double> m(size * size, 0.0);
  const auto at = [&](std::int64_t r, std::int64_t c) -> double& {
    return m[static_cast<std::size_t>(r) * size + static_cast<std::size_t>(c)];
  };
  for (core::ColorId i = 0; i < k; ++i) {
    const std::int64_t di = dark_state(i);
    const std::int64_t li = light_state(i, k);
    at(di, li) = 1.0 / ((1.0 + total) * dn);
    at(di, di) = 1.0 - 1.0 / ((1.0 + total) * dn);
    for (core::ColorId j = 0; j < k; ++j) {
      at(li, dark_state(j)) = weights.weight(j) / ((1.0 + total) * dn);
    }
    at(li, li) = 1.0 - total / ((1.0 + total) * dn);
  }
  return m;
}

}  // namespace

DenseChain build_equilibrium_chain(const core::WeightMap& weights,
                                   std::int64_t n) {
  const std::int64_t k = weights.num_colors();
  return DenseChain(2 * k, equilibrium_matrix(weights, n));
}

std::vector<double> equilibrium_stationary(const core::WeightMap& weights) {
  const std::int64_t k = weights.num_colors();
  const double total = weights.total();
  std::vector<double> pi(static_cast<std::size_t>(2 * k), 0.0);
  for (core::ColorId i = 0; i < k; ++i) {
    pi[static_cast<std::size_t>(dark_state(i))] =
        weights.weight(i) / (1.0 + total);
    pi[static_cast<std::size_t>(light_state(i, k))] =
        (weights.weight(i) / total) / (1.0 + total);
  }
  return pi;
}

DenseChain build_perturbed_chain(const core::WeightMap& weights,
                                 std::int64_t n, core::ColorId target_color,
                                 double err, Perturbation direction) {
  const std::int64_t k = weights.num_colors();
  if (target_color < 0 || target_color >= k)
    throw std::invalid_argument("build_perturbed_chain: bad target colour");
  if (err < 0.0)
    throw std::invalid_argument("build_perturbed_chain: err must be >= 0");
  std::vector<double> m = equilibrium_matrix(weights, n);
  const auto size = static_cast<std::size_t>(2 * k);
  const auto at = [&](std::int64_t r, std::int64_t c) -> double& {
    return m[static_cast<std::size_t>(r) * size + static_cast<std::size_t>(c)];
  };
  const double sign = direction == Perturbation::kTowards ? 1.0 : -1.0;
  const core::ColorId ell = target_color;
  const double e = sign * err;
  const double dk = static_cast<double>(k);

  // Dark rows: the target's row resists fading by e; other dark rows fade
  // towards the light pool (whence the target is reachable) by e.
  at(dark_state(ell), light_state(ell, k)) -= e;
  at(dark_state(ell), dark_state(ell)) += e;
  for (core::ColorId i = 0; i < k; ++i) {
    if (i == ell) continue;
    at(dark_state(i), light_state(i, k)) += e;
    at(dark_state(i), dark_state(i)) -= e;
  }
  // Light rows: mass k·e is moved onto the L_i → D_ell transition, taken
  // evenly from the other dark destinations and the self-loop.
  for (core::ColorId i = 0; i < k; ++i) {
    const std::int64_t li = light_state(i, k);
    at(li, dark_state(ell)) += dk * e;
    for (core::ColorId j = 0; j < k; ++j) {
      if (j == ell) continue;
      at(li, dark_state(j)) -= e;
    }
    at(li, li) -= e;
  }
  // DenseChain validates entries and row sums; a too-large err fails here.
  return DenseChain(2 * k, std::move(m));
}

}  // namespace divpp::markov
