#ifndef DIVPP_MARKOV_EQUILIBRIUM_CHAIN_H
#define DIVPP_MARKOV_EQUILIBRIUM_CHAIN_H

/// \file equilibrium_chain.h
/// The Section 2.4 "perfect equilibrium" chain M and its perturbations.
///
/// M lives on the 2k states {D_1..D_k, L_1..L_k} and describes one
/// agent's trajectory when the population sits exactly at the Eq. (7)
/// equilibrium:
///
///   P(L_j, D_i) = w_i / ((1+W) n)       for all i, j
///   P(L_i, L_i) = 1 − W / ((1+W) n)
///   P(D_i, L_i) = 1 / ((1+W) n)
///   P(D_i, D_i) = 1 − 1 / ((1+W) n)
///
/// with stationary distribution π(D_i) = w_i/(1+W),
/// π(L_i) = (w_i/W)/(1+W).  The perturbed chains P±_s shift every
/// transition by ±err towards/away from a target state s; the paper uses
/// them to sandwich the true (non-Markovian) agent trajectory.

#include <cstdint>

#include "core/weights.h"
#include "markov/markov_chain.h"

namespace divpp::markov {

/// State indexing for the equilibrium chain: D_i ↦ i, L_i ↦ k + i.
[[nodiscard]] std::int64_t dark_state(core::ColorId i) noexcept;
[[nodiscard]] std::int64_t light_state(core::ColorId i,
                                       std::int64_t num_colors) noexcept;
/// True when chain-state s encodes a dark colour.
[[nodiscard]] bool is_dark_state(std::int64_t s,
                                 std::int64_t num_colors) noexcept;
/// The colour encoded by chain-state s.
[[nodiscard]] core::ColorId state_color(std::int64_t s,
                                        std::int64_t num_colors) noexcept;

/// Builds the chain M for a palette and population size n.  \pre n >= 2.
[[nodiscard]] DenseChain build_equilibrium_chain(
    const core::WeightMap& weights, std::int64_t n);

/// The closed-form stationary distribution of M (Eq. 18/19):
/// π(D_i) = w_i/(1+W), π(L_i) = (w_i/W)/(1+W), ordered as the chain's
/// states.  Independent of n.
[[nodiscard]] std::vector<double> equilibrium_stationary(
    const core::WeightMap& weights);

/// Direction of a perturbed chain.
enum class Perturbation { kTowards, kAway };

/// Builds P±_target from M per §2.4: transitions entering `target` gain
/// (towards) or lose (away) probability err (k·err on the L_i → D_target
/// rows), with the complementary transitions adjusted so rows still sum
/// to one.  \pre err small enough that all entries stay in [0, 1]
/// (throws otherwise), target must be a dark state (as in the paper).
[[nodiscard]] DenseChain build_perturbed_chain(const core::WeightMap& weights,
                                               std::int64_t n,
                                               core::ColorId target_color,
                                               double err,
                                               Perturbation direction);

}  // namespace divpp::markov

#endif  // DIVPP_MARKOV_EQUILIBRIUM_CHAIN_H
