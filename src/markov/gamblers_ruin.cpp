#include "markov/gamblers_ruin.h"

#include <cmath>
#include <stdexcept>

#include "rng/distributions.h"

namespace divpp::markov {

void GamblersRuin::validate() const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("GamblersRuin: p must be in (0, 1)");
  if (b < 1) throw std::invalid_argument("GamblersRuin: b must be >= 1");
  if (s < 0 || s > b)
    throw std::invalid_argument("GamblersRuin: s must be in [0, b]");
}

double GamblersRuin::probability_top() const {
  validate();
  if (p == 0.5) return static_cast<double>(s) / static_cast<double>(b);
  const double r = (1.0 - p) / p;
  // ((q/p)^s − 1) / ((q/p)^b − 1), computed via expm1 for stability when
  // r is close to 1.
  const double log_r = std::log(r);
  const double num = std::expm1(static_cast<double>(s) * log_r);
  const double den = std::expm1(static_cast<double>(b) * log_r);
  return num / den;
}

double GamblersRuin::probability_bottom() const {
  return 1.0 - probability_top();
}

double GamblersRuin::expected_time() const {
  validate();
  const double ds = static_cast<double>(s);
  const double db = static_cast<double>(b);
  if (p == 0.5) return ds * (db - ds);
  const double r = (1.0 - p) / p;
  const double log_r = std::log(r);
  const double drift = 1.0 - 2.0 * p;
  // E[T] = s/(1−2p) − (b/(1−2p)) · (1 − r^s)/(1 − r^b)   (Theorem A.1)
  const double frac = std::expm1(ds * log_r) / std::expm1(db * log_r);
  return ds / drift - db / drift * frac;
}

RuinOutcome simulate_ruin(const GamblersRuin& walk, rng::Xoshiro256& gen) {
  walk.validate();
  std::int64_t position = walk.s;
  RuinOutcome outcome;
  while (position != 0 && position != walk.b) {
    position += rng::bernoulli(gen, walk.p) ? 1 : -1;
    ++outcome.steps;
  }
  outcome.absorbed_top = (position == walk.b);
  return outcome;
}

}  // namespace divpp::markov
