#ifndef DIVPP_MARKOV_GAMBLERS_RUIN_H
#define DIVPP_MARKOV_GAMBLERS_RUIN_H

/// \file gamblers_ruin.h
/// Theorem A.1 (Feller): absorption law of the biased random walk on
/// {0, ..., b} with up-probability p, absorbing at both ends.
///
/// Phase 1 of the paper's analysis couples count trajectories with these
/// walks; experiment E13 validates the closed forms against Monte Carlo.

#include <cstdint>

#include "rng/xoshiro.h"

namespace divpp::markov {

/// Parameters of the walk: start s in [0, b], up-probability p in (0, 1).
struct GamblersRuin {
  double p = 0.5;
  std::int64_t b = 1;
  std::int64_t s = 0;

  /// \throws std::invalid_argument on invalid parameters.
  void validate() const;

  /// P(absorbed at b) — Theorem A.1's P(Z_T = b); for p = 1/2 the
  /// classical symmetric limit s/b.
  [[nodiscard]] double probability_top() const;

  /// P(absorbed at 0) = 1 − probability_top().
  [[nodiscard]] double probability_bottom() const;

  /// E[T], the expected absorption time — Theorem A.1's formula; for
  /// p = 1/2 the classical limit s(b − s).
  [[nodiscard]] double expected_time() const;
};

/// Outcome of one simulated walk.
struct RuinOutcome {
  bool absorbed_top = false;
  std::int64_t steps = 0;
};

/// Simulates the walk to absorption.
[[nodiscard]] RuinOutcome simulate_ruin(const GamblersRuin& walk,
                                        rng::Xoshiro256& gen);

}  // namespace divpp::markov

#endif  // DIVPP_MARKOV_GAMBLERS_RUIN_H
