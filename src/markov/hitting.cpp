#include "markov/hitting.h"

#include <cmath>
#include <stdexcept>

namespace divpp::markov {

std::vector<double> expected_hitting_times(const DenseChain& chain,
                                           std::int64_t target) {
  const std::int64_t size = chain.size();
  if (target < 0 || target >= size)
    throw std::out_of_range("expected_hitting_times: target out of range");
  // Unknowns: h(x) for x != target.  Build (I − P_minor) h = 1 where
  // P_minor drops the target row/column.
  const auto m = static_cast<std::size_t>(size - 1);
  if (m == 0) return {0.0};
  // Map full-state index -> reduced index.
  const auto reduced = [target](std::int64_t x) {
    return static_cast<std::size_t>(x < target ? x : x - 1);
  };
  std::vector<double> a(m * (m + 1), 0.0);
  const auto at = [&](std::size_t r, std::size_t c) -> double& {
    return a[r * (m + 1) + c];
  };
  for (std::int64_t x = 0; x < size; ++x) {
    if (x == target) continue;
    const std::size_t r = reduced(x);
    for (std::int64_t y = 0; y < size; ++y) {
      if (y == target) continue;
      at(r, reduced(y)) =
          (x == y ? 1.0 : 0.0) - chain.probability(x, y);
    }
    at(r, m) = 1.0;
  }
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < m; ++r) {
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    }
    if (std::abs(at(pivot, col)) < 1e-14)
      throw std::runtime_error(
          "expected_hitting_times: target unreachable from some state");
    if (pivot != col) {
      for (std::size_t c = 0; c <= m; ++c) std::swap(at(pivot, c), at(col, c));
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (r == col) continue;
      const double factor = at(r, col) / at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c <= m; ++c) at(r, c) -= factor * at(col, c);
    }
  }
  std::vector<double> h(static_cast<std::size_t>(size), 0.0);
  for (std::int64_t x = 0; x < size; ++x) {
    if (x == target) continue;
    const std::size_t r = reduced(x);
    h[static_cast<std::size_t>(x)] = at(r, m) / at(r, r);
  }
  return h;
}

double expected_return_time(const DenseChain& chain, std::int64_t state) {
  const std::vector<double> h = expected_hitting_times(chain, state);
  double expected = 1.0;
  for (std::int64_t y = 0; y < chain.size(); ++y) {
    expected += chain.probability(state, y) *
                h[static_cast<std::size_t>(y)];
  }
  return expected;
}

double simulate_hitting_time(const DenseChain& chain, std::int64_t start,
                             std::int64_t target, std::int64_t replicas,
                             rng::Xoshiro256& gen) {
  if (replicas < 1)
    throw std::invalid_argument("simulate_hitting_time: replicas >= 1");
  double total = 0.0;
  for (std::int64_t r = 0; r < replicas; ++r) {
    std::int64_t state = start;
    std::int64_t steps = 0;
    while (state != target) {
      state = chain.step(state, gen);
      ++steps;
    }
    total += static_cast<double>(steps);
  }
  return total / static_cast<double>(replicas);
}

}  // namespace divpp::markov
