#ifndef DIVPP_MARKOV_HITTING_H
#define DIVPP_MARKOV_HITTING_H

/// \file hitting.h
/// Expected hitting and return times of finite Markov chains.
///
/// Section 2.4 counts the visits of one agent's trajectory to each state
/// of the equilibrium chain M; the classical identities connect those
/// counts to hitting/return times:
///   * h(x → a): expected steps to first reach a from x, the solution of
///     (I − P_{-a}) h = 1 restricted to the non-target states;
///   * expected return time of a = 1/π(a) (Kac's formula), which the
///     tests verify against the solver, and experiment E11 verifies
///     against the simulated tagged agent.

#include <cstdint>
#include <vector>

#include "markov/markov_chain.h"

namespace divpp::markov {

/// Expected hitting times h(x → target) for every start x, via the
/// linear system h(x) = 1 + Σ_y P(x, y)·h(y), h(target) = 0, solved by
/// Gaussian elimination with partial pivoting.
/// \throws std::runtime_error when the system is singular (the target is
/// unreachable from some state).
[[nodiscard]] std::vector<double> expected_hitting_times(
    const DenseChain& chain, std::int64_t target);

/// Expected return time of `state` = 1 + Σ_y P(state, y)·h(y → state).
/// By Kac's formula this equals 1/π(state) for an ergodic chain.
[[nodiscard]] double expected_return_time(const DenseChain& chain,
                                          std::int64_t state);

/// Monte-Carlo estimate of the hitting time from `start` to `target`
/// (used by tests and E11 as an independent cross-check).
[[nodiscard]] double simulate_hitting_time(const DenseChain& chain,
                                           std::int64_t start,
                                           std::int64_t target,
                                           std::int64_t replicas,
                                           rng::Xoshiro256& gen);

}  // namespace divpp::markov

#endif  // DIVPP_MARKOV_HITTING_H
