#include "markov/markov_chain.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.h"

namespace divpp::markov {

DenseChain::DenseChain(std::int64_t size, std::vector<double> matrix)
    : size_(size), matrix_(std::move(matrix)) {
  if (size < 1) throw std::invalid_argument("DenseChain: need size >= 1");
  if (matrix_.size() != static_cast<std::size_t>(size * size))
    throw std::invalid_argument("DenseChain: matrix shape mismatch");
  for (std::int64_t r = 0; r < size_; ++r) {
    double row_sum = 0.0;
    for (std::int64_t c = 0; c < size_; ++c) {
      const double p = matrix_[static_cast<std::size_t>(r * size_ + c)];
      if (p < 0.0 || p > 1.0 + 1e-12)
        throw std::invalid_argument(
            "DenseChain: entries must be probabilities");
      row_sum += p;
    }
    if (std::abs(row_sum - 1.0) > 1e-9)
      throw std::invalid_argument("DenseChain: rows must sum to one");
  }
}

void DenseChain::check_state(std::int64_t s) const {
  if (s < 0 || s >= size_)
    throw std::out_of_range("DenseChain: state out of range");
}

double DenseChain::probability(std::int64_t from, std::int64_t to) const {
  check_state(from);
  check_state(to);
  return matrix_[static_cast<std::size_t>(from * size_ + to)];
}

std::vector<double> DenseChain::evolve(std::span<const double> dist) const {
  if (dist.size() != static_cast<std::size_t>(size_))
    throw std::invalid_argument("DenseChain::evolve: size mismatch");
  std::vector<double> next(static_cast<std::size_t>(size_), 0.0);
  for (std::int64_t s = 0; s < size_; ++s) {
    const double mass = dist[static_cast<std::size_t>(s)];
    if (mass == 0.0) continue;
    for (std::int64_t t = 0; t < size_; ++t) {
      next[static_cast<std::size_t>(t)] +=
          mass * matrix_[static_cast<std::size_t>(s * size_ + t)];
    }
  }
  return next;
}

std::vector<double> DenseChain::stationary_power(double tolerance,
                                                 std::int64_t max_iters) const {
  std::vector<double> dist(static_cast<std::size_t>(size_),
                           1.0 / static_cast<double>(size_));
  for (std::int64_t iter = 0; iter < max_iters; ++iter) {
    std::vector<double> next = evolve(dist);
    if (total_variation(dist, next) < tolerance) return next;
    dist = std::move(next);
  }
  throw std::runtime_error("stationary_power: did not converge");
}

std::vector<double> DenseChain::stationary_direct() const {
  // Solve πᵀ (P − I) = 0 with Σπ = 1: build (Pᵀ − I), replace the last
  // equation by the normalisation row, Gaussian-eliminate with partial
  // pivoting.
  const auto n = static_cast<std::size_t>(size_);
  std::vector<double> a(n * (n + 1), 0.0);  // augmented [A | b]
  const auto at = [&](std::size_t r, std::size_t c) -> double& {
    return a[r * (n + 1) + c];
  };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      at(r, c) = matrix_[c * n + r] - (r == c ? 1.0 : 0.0);  // Pᵀ − I
    }
    at(r, n) = 0.0;
  }
  for (std::size_t c = 0; c < n; ++c) at(n - 1, c) = 1.0;  // Σπ = 1
  at(n - 1, n) = 1.0;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    }
    if (std::abs(at(pivot, col)) < 1e-14)
      throw std::runtime_error(
          "stationary_direct: singular system (chain not ergodic?)");
    if (pivot != col) {
      for (std::size_t c = 0; c <= n; ++c)
        std::swap(at(pivot, c), at(col, c));
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = at(r, col) / at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c <= n; ++c) at(r, c) -= factor * at(col, c);
    }
  }
  std::vector<double> pi(n);
  for (std::size_t r = 0; r < n; ++r) pi[r] = at(r, n) / at(r, r);
  // Clean tiny negative round-off and renormalise.
  double total = 0.0;
  for (double& p : pi) {
    if (p < 0.0 && p > -1e-12) p = 0.0;
    total += p;
  }
  if (!(total > 0.0))
    throw std::runtime_error("stationary_direct: degenerate solution");
  for (double& p : pi) p /= total;
  return pi;
}

std::int64_t DenseChain::mixing_time(double eps, std::int64_t max_t) const {
  const std::vector<double> pi = stationary_direct();
  // Evolve all deterministic starts simultaneously.
  std::vector<std::vector<double>> dists;
  dists.reserve(static_cast<std::size_t>(size_));
  for (std::int64_t s = 0; s < size_; ++s) {
    std::vector<double> d(static_cast<std::size_t>(size_), 0.0);
    d[static_cast<std::size_t>(s)] = 1.0;
    dists.push_back(std::move(d));
  }
  for (std::int64_t t = 0; t <= max_t; ++t) {
    double worst = 0.0;
    for (const auto& d : dists) worst = std::max(worst, total_variation(d, pi));
    if (worst <= eps) return t;
    for (auto& d : dists) d = evolve(d);
  }
  throw std::runtime_error("mixing_time: exceeded max_t");
}

std::int64_t DenseChain::step(std::int64_t from, rng::Xoshiro256& gen) const {
  check_state(from);
  const double u = rng::uniform01(gen);
  double acc = 0.0;
  for (std::int64_t t = 0; t < size_; ++t) {
    acc += matrix_[static_cast<std::size_t>(from * size_ + t)];
    if (u < acc) return t;
  }
  return size_ - 1;  // guard against rounding at the top end
}

std::vector<std::int64_t> DenseChain::simulate_hits(
    std::int64_t start, std::int64_t steps, rng::Xoshiro256& gen) const {
  check_state(start);
  if (steps < 0) throw std::invalid_argument("simulate_hits: negative steps");
  std::vector<std::int64_t> hits(static_cast<std::size_t>(size_), 0);
  std::int64_t state = start;
  for (std::int64_t i = 0; i < steps; ++i) {
    state = step(state, gen);
    ++hits[static_cast<std::size_t>(state)];
  }
  return hits;
}

double total_variation(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size())
    throw std::invalid_argument("total_variation: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) sum += std::abs(p[i] - q[i]);
  return 0.5 * sum;
}

}  // namespace divpp::markov
