#ifndef DIVPP_MARKOV_MARKOV_CHAIN_H
#define DIVPP_MARKOV_MARKOV_CHAIN_H

/// \file markov_chain.h
/// Finite Markov-chain toolkit backing the Section 2.4 fairness analysis:
/// dense transition matrices, stationary distributions (power iteration
/// and direct elimination), total-variation distance, an empirical
/// 1/8-mixing-time estimator, and trajectory simulation with hit counts.

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro.h"

namespace divpp::markov {

/// A row-stochastic matrix over states {0, ..., size-1}.
class DenseChain {
 public:
  /// \param matrix row-major, size*size entries.
  /// \throws std::invalid_argument unless every row is a probability
  /// distribution (entries >= 0, rows summing to 1 within 1e-9).
  DenseChain(std::int64_t size, std::vector<double> matrix);

  [[nodiscard]] std::int64_t size() const noexcept { return size_; }

  /// Transition probability P(from, to).
  [[nodiscard]] double probability(std::int64_t from, std::int64_t to) const;

  /// One step of distribution evolution: returns dist · P.
  [[nodiscard]] std::vector<double> evolve(
      std::span<const double> dist) const;

  /// Stationary distribution via power iteration from uniform.
  /// \throws std::runtime_error when not converged within max_iters.
  [[nodiscard]] std::vector<double> stationary_power(
      double tolerance = 1e-12, std::int64_t max_iters = 1'000'000) const;

  /// Stationary distribution via direct Gaussian elimination on
  /// (Pᵀ − I) with the normalisation Σπ = 1 — exact up to rounding,
  /// assumes a unique stationary distribution.
  [[nodiscard]] std::vector<double> stationary_direct() const;

  /// Smallest t such that max over deterministic starts of
  /// TV(δ_s Pᵗ, π) <= eps (eps = 1/8 gives the classical mixing time).
  /// \throws std::runtime_error when t exceeds max_t.
  [[nodiscard]] std::int64_t mixing_time(double eps = 0.125,
                                         std::int64_t max_t = 1'000'000) const;

  /// Samples the next state from `from`.
  [[nodiscard]] std::int64_t step(std::int64_t from,
                                  rng::Xoshiro256& gen) const;

  /// Simulates `steps` transitions from `start`; returns per-state visit
  /// counts over the path (excluding the start, counting each arrival).
  [[nodiscard]] std::vector<std::int64_t> simulate_hits(
      std::int64_t start, std::int64_t steps, rng::Xoshiro256& gen) const;

 private:
  void check_state(std::int64_t s) const;
  std::int64_t size_;
  std::vector<double> matrix_;  // row-major
};

/// Total-variation distance (1/2)·Σ|p_i − q_i|.  \pre equal sizes.
[[nodiscard]] double total_variation(std::span<const double> p,
                                     std::span<const double> q);

}  // namespace divpp::markov

#endif  // DIVPP_MARKOV_MARKOV_CHAIN_H
