#include "parallel/parallel_run.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "check/counting_generator.h"
#include "check/invariant.h"
#include "core/checkpoint.h"
#include "core/mean_field.h"
#include "fault/durable_file.h"
#include "runtime/thread_pool.h"
#include "runtime/window_math.h"

namespace divpp::parallel {

CountPrediction mean_field_prediction(const core::CountSimulation& sim,
                                      std::int64_t interactions_ahead) {
  const core::MeanFieldOde ode(sim.weights());
  std::vector<std::int64_t> dark(sim.dark_counts().begin(),
                                 sim.dark_counts().end());
  std::vector<std::int64_t> light(sim.light_counts().begin(),
                                  sim.light_counts().end());
  core::MeanFieldOde::PredictedCounts predicted =
      ode.predict_counts_after(dark, light, interactions_ahead);
  return CountPrediction{std::move(predicted.dark),
                         std::move(predicted.light)};
}

namespace {

// ---- Sim adapters: the driver is shared by the untagged and tagged
// chains; these map both onto (lumped snapshot, tagged part) uniformly.

const core::CountSimulation& counts_of(const core::CountSimulation& sim) {
  return sim;
}
const core::CountSimulation& counts_of(
    const core::TaggedCountSimulation& sim) {
  return sim.counts();
}

core::CountsSnapshot& counts_part(core::CountsSnapshot& snapshot) {
  return snapshot;
}
const core::CountsSnapshot& counts_part(
    const core::CountsSnapshot& snapshot) {
  return snapshot;
}
core::CountsSnapshot& counts_part(
    core::TaggedCountSimulation::Snapshot& snapshot) {
  return snapshot.counts;
}
const core::CountsSnapshot& counts_part(
    const core::TaggedCountSimulation::Snapshot& snapshot) {
  return snapshot.counts;
}

bool tagged_part_matches(const core::CountsSnapshot&,
                         const core::CountsSnapshot&) {
  return true;
}
bool tagged_part_matches(const core::TaggedCountSimulation::Snapshot& a,
                         const core::TaggedCountSimulation::Snapshot& b) {
  return a.tagged == b.tagged;
}

// Scheduled events fire only on the untagged chain (the tagged engines
// never fire events — advance_with contract), so only the untagged
// driver needs to steer windows around them.
std::int64_t earliest_pending_event(const core::CountSimulation& sim) {
  const auto schedule = sim.pending_event_schedule();
  return schedule.empty() ? std::numeric_limits<std::int64_t>::max()
                          : schedule.front().first;
}
std::int64_t earliest_pending_event(const core::TaggedCountSimulation&) {
  return std::numeric_limits<std::int64_t>::max();
}

/// Exact-mode commit test: every count equal, EWMA bitwise equal (the
/// auto engine's per-window choice reads it), tagged part equal.
template <class Snapshot>
bool exact_match(const Snapshot& realised, const Snapshot& assumed) {
  const core::CountsSnapshot& r = counts_part(realised);
  const core::CountsSnapshot& a = counts_part(assumed);
  return r.dark == a.dark && r.light == a.light &&
         r.active_ewma == a.active_ewma &&
         tagged_part_matches(realised, assumed);
}

/// Approximate-mode commit test: counts within the L∞ tolerance cell by
/// cell (population size already matches — both sum to n), tagged part
/// still exact (a discrete state has no useful tolerance).
template <class Snapshot>
bool within_tolerance(const Snapshot& realised, const Snapshot& assumed,
                      std::int64_t tolerance) {
  const core::CountsSnapshot& r = counts_part(realised);
  const core::CountsSnapshot& a = counts_part(assumed);
  if (r.dark.size() != a.dark.size() || r.light.size() != a.light.size())
    return false;
  for (std::size_t i = 0; i < r.dark.size(); ++i) {
    if (std::abs(r.dark[i] - a.dark[i]) > tolerance) return false;
    if (std::abs(r.light[i] - a.light[i]) > tolerance) return false;
  }
  return tagged_part_matches(realised, assumed);
}

template <class Sim>
ParallelRunStats drive_parallel(Sim& sim, rng::Xoshiro256& gen,
                                const ParallelRunConfig& config) {
  using Snapshot = decltype(sim.snapshot_counts());

  if (config.window <= 0)
    throw std::invalid_argument("run_parallel_windows: window must be > 0");
  if (config.threads < 1)
    throw std::invalid_argument("run_parallel_windows: threads must be >= 1");
  if (config.tolerance < 0)
    throw std::invalid_argument("run_parallel_windows: negative tolerance");
  if (config.target_time < sim.time())
    throw std::invalid_argument(
        "run_parallel_windows: target_time is before the simulation clock");

  ParallelRunStats stats;
  const Predictor& predict =
      config.predictor ? config.predictor : Predictor(mean_field_prediction);
  const int W = config.threads;

  // Private pool only when speculation can actually happen; workers
  // spawn lazily on the first submit either way.
  runtime::ThreadPool* pool = config.pool;
  std::optional<runtime::ThreadPool> owned_pool;
  if (W > 1 && pool == nullptr) {
    owned_pool.emplace(W - 1);
    pool = &*owned_pool;
  }
  std::optional<runtime::TaskGroup> group;
  if (W > 1) group.emplace(*pool);

  /// One speculation worker's long-lived state.  The simulation copy
  /// persists across rounds (it carries the O(√n) run-length table);
  /// each task restores the predicted snapshot into it, so per-round
  /// cost is O(k), not a fresh deep copy.  The leader only reads/writes
  /// a slot while its task is not in flight (dispatch before, validate
  /// after group->wait()), so slots need no locks.
  struct SpecSlot {
    std::optional<Sim> sim;
    Snapshot assumed{};  ///< predicted start (active_transitions = 0)
    Snapshot result{};   ///< end state of the speculated window
    bool valid = false;  ///< the task produced a result
  };
  std::vector<SpecSlot> slots(W > 1 ? static_cast<std::size_t>(W - 1) : 0);

  const bool emit_checkpoints =
      !config.checkpoint_path.empty() || config.on_checkpoint != nullptr;

  // Bookkeeping after a boundary commits: checkpoint sink, observer,
  // drain hook.  Returns true when the run should park here.
  const auto after_commit = [&](std::int64_t now) -> bool {
    if (emit_checkpoints) {
      const std::string blob = core::to_checkpoint_v2(sim, gen);
      if (!config.checkpoint_path.empty())
        fault::write_durable(config.checkpoint_path, blob);
      if (config.on_checkpoint) config.on_checkpoint(blob);
    }
    if (config.on_commit) config.on_commit(now);
    return config.should_stop && config.should_stop();
  };

  std::int64_t now = sim.time();
  while (now < config.target_time) {
    // This round's boundary ladder b[0..K]: up to W consecutive windows.
    std::vector<std::int64_t> b{now};
    while (static_cast<int>(b.size()) <= W && b.back() < config.target_time)
      b.push_back(runtime::next_window_boundary(b.back(), config.window,
                                                config.target_time));
    int K = static_cast<int>(b.size()) - 1;

    // A scheduled event inside the speculation horizon forces the
    // affected windows onto the leader: event actions mutate structure
    // (palette, population, future events), which no count predictor
    // can see.  Speculate only up to the event; the leader carries the
    // event window itself next round.
    const std::int64_t next_event = earliest_pending_event(sim);
    while (K > 1 && next_event <= b[static_cast<std::size_t>(K)]) {
      b.pop_back();
      --K;
    }
    const bool event_in_leader_window = next_event <= b[1];

    if (K == 1) {
      // Serial window on the leader (threads == 1, the last partial
      // round, or an event too close to speculate past).
      rng::Xoshiro256 wgen = gen;
      sim.advance_with(config.engine, b[1], wgen);
      sim.canonicalize();
      gen.jump();
      ++stats.windows;
      ++stats.serial_windows;
      if (event_in_leader_window) ++stats.event_windows;
      now = b[1];
      if (after_commit(now)) break;
      continue;
    }

    // Window substreams for the round: window j draws from m[j], where
    // m[0] is the master and m[j+1] = m[j] jumped once.  Derived before
    // anything runs, so a speculation thread's stream never depends on
    // the leader's progress.
    std::vector<rng::Xoshiro256> m;
    m.reserve(static_cast<std::size_t>(K) + 1);
    m.push_back(gen);
    for (int j = 0; j < K; ++j) {
      m.push_back(m.back());
      m.back().jump();
    }

    // Dispatch speculation for windows 1..K−1.  Everything a task needs
    // is copied out of the leader's state *before* the leader window
    // starts — tasks never touch `sim` or `gen`.
    for (int j = 1; j < K; ++j) {
      SpecSlot& slot = slots[static_cast<std::size_t>(j - 1)];
      slot.valid = false;
      if (!slot.sim.has_value() ||
          counts_of(*slot.sim).num_colors() !=
              counts_of(sim).num_colors() ||
          !(counts_of(*slot.sim).weights() == counts_of(sim).weights())) {
        // First use, or an event grew the palette: re-seed the worker
        // from the leader (deep copy; amortised away across rounds).
        slot.sim.emplace(sim);
      }
      CountPrediction predicted =
          predict(counts_of(sim), b[j] - b[0]);
      slot.assumed = sim.snapshot_counts();  // EWMA + tagged part
      counts_part(slot.assumed).dark = std::move(predicted.dark);
      counts_part(slot.assumed).light = std::move(predicted.light);
      counts_part(slot.assumed).time = b[j];
      counts_part(slot.assumed).active_transitions = 0;
      ++stats.speculated;
      group->submit([&slot, wgen = m[static_cast<std::size_t>(j)],
                     next = b[static_cast<std::size_t>(j) + 1],
                     engine = config.engine]() mutable {
        try {
          slot.sim->restore_counts(slot.assumed);
          slot.sim->advance_with(engine, next, wgen);
          slot.sim->canonicalize();
          slot.result = slot.sim->snapshot_counts();
          slot.valid = true;
        } catch (...) {
          // An unrestorable prediction (injected mispredictors return
          // arbitrary vectors) is simply a guaranteed miss.
          slot.valid = false;
        }
      });
    }

    // Leader window on the calling thread, concurrently with the
    // speculation tasks.
    {
      rng::Xoshiro256 wgen = m[0];
      sim.advance_with(config.engine, b[1], wgen);
      sim.canonicalize();
#ifdef SIM_CHECKED
      // Window-scoped draw audit: the leader window consumed only its
      // own substream (the master only jumps).  Replay-counted, so only
      // windows safely inside the replay cap are audited.
      if (b[1] - b[0] <= (std::int64_t{1} << 20)) {
        SIM_DCHECK_GE(
            check::draws_between(
                m[0], wgen, check::CountingBitGenerator::kDefaultReplayCap),
            0);
      }
#endif
    }
    group->wait();

    ++stats.windows;
    ++stats.serial_windows;
    gen = m[1];
    now = b[1];
    bool stop = after_commit(now);

    // Validation cascade: commit consecutive hits, stop at the first
    // miss (its window replays as the next round's leader window, and
    // later predictions were chained off state now known to be wrong).
    if (!stop) {
      for (int j = 1; j < K; ++j) {
        SpecSlot& slot = slots[static_cast<std::size_t>(j - 1)];
        const Snapshot realised = sim.snapshot_counts();
        bool committable =
            slot.valid &&
            (config.mode == ParallelMode::kExact
                 ? exact_match(realised, slot.assumed)
                 : within_tolerance(realised, slot.assumed,
                                    config.tolerance));
        // Commit without re-execution: the speculated end state, with
        // the transition counter rebased onto the realised chain (the
        // worker counted from zero).  restore_counts rebuilds derived
        // state exactly as the serial boundary canonicalize would.
        Snapshot end{};
        if (committable) {
          end = slot.result;
          if (config.mode == ParallelMode::kApproximate) {
            // Parareal-style boundary correction: re-inject the realised
            // − predicted delta into the committed state.  Without it a
            // cascade of j commits collapses j windows of diffusion into
            // one (every speculation starts from a prediction off the
            // *round-start* state), and the final-count law visibly
            // narrows — tests/test_parallel_stat.cpp holds the line.
            // The delta sums to zero across cells, so the population is
            // conserved; a cell the shift would drive negative demotes
            // the window to a miss (replayed serially, still correct).
            const core::CountsSnapshot& r = counts_part(realised);
            const core::CountsSnapshot& a = counts_part(slot.assumed);
            core::CountsSnapshot& e = counts_part(end);
            for (std::size_t i = 0; i < e.dark.size(); ++i) {
              e.dark[i] += r.dark[i] - a.dark[i];
              e.light[i] += r.light[i] - a.light[i];
              if (e.dark[i] < 0 || e.light[i] < 0) {
                committable = false;
                break;
              }
            }
          }
        }
        if (!committable) {
          stats.misses += K - j;
          ++stats.replays;
          break;
        }
        counts_part(end).active_transitions +=
            counts_part(realised).active_transitions;
        sim.restore_counts(end);
        SIM_IF_CHECKED({
          // Conservation across the commit: the speculated window moved
          // agents between cells, never in or out of the population.
          SIM_DCHECK_EQ(counts_of(sim).n(),
                        counts_of(*slot.sim).n());
        });
        ++stats.windows;
        ++stats.hits;
        gen = m[static_cast<std::size_t>(j) + 1];
        now = b[static_cast<std::size_t>(j) + 1];
        if (after_commit(now)) {
          stop = true;
          break;
        }
      }
    }
    if (stop) break;
  }
  return stats;
}

}  // namespace

ParallelRunStats run_parallel_windows(core::CountSimulation& sim,
                                      rng::Xoshiro256& gen,
                                      const ParallelRunConfig& config) {
  return drive_parallel(sim, gen, config);
}

ParallelRunStats run_parallel_windows(core::TaggedCountSimulation& sim,
                                      rng::Xoshiro256& gen,
                                      const ParallelRunConfig& config) {
  return drive_parallel(sim, gen, config);
}

}  // namespace divpp::parallel
