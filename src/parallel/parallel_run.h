#ifndef DIVPP_PARALLEL_PARALLEL_RUN_H
#define DIVPP_PARALLEL_PARALLEL_RUN_H

/// \file parallel_run.h
/// Time-parallel execution of ONE simulation chain: speculative windows
/// validated at period-aligned boundaries (ROADMAP item 1; the
/// speculate/validate/rollback pattern of OMNeT++'s parsim subsystem).
///
/// ## The window-stream discipline
///
/// A chain is advanced in period-aligned windows (runtime/window_math.h
/// — the durable runner's boundary arithmetic).  Window w draws from
/// its own RNG substream: a copy of the master generator, while the
/// master itself advances by exactly one jump() (2¹²⁸ steps) per
/// committed window.  The stream of window w is therefore a pure
/// function of (initial master state, w) — independent of how many
/// draws earlier windows consumed and of which thread executes it.
/// That independence is the whole trick: a speculation thread can run
/// window w before window w−1 has finished, on exactly the stream a
/// serial execution of window w would use.
///
/// **The serial windowed run** — the reference every bit-identity claim
/// in this file is against — is `run_parallel_windows` at threads = 1:
/// per window, fork the window substream, advance, canonicalize, jump
/// the master.  Its final (counts, clock, 256-bit master state) is a
/// pure function of (initial state, seed, window, target); the golden
/// pins in tests/test_check.cpp capture it.  Note it is *not* the same
/// draw sequence as a bare `advance_with` call — the discipline exists
/// to make window streams speculation-independent (the README
/// reproducibility note applies, as it already does between engines).
///
/// ## Speculation rounds
///
/// With W = threads, each round covers up to W consecutive windows
/// [b₀,b₁], …, [b_{W-1},b_W].  The leader executes the first on the
/// calling thread while W−1 pool workers run the rest, each starting
/// from the deterministic mean-field prediction of the counts at its
/// boundary (core/mean_field.h predict_counts_after — concentration is
/// O(√window), Section 1.2) on its own window substream.  At each
/// boundary the realised state is compared with what the speculation
/// assumed:
///
///  * **exact mode** — commit only on exact integer equality of every
///    dark/light count, bitwise equality of the auto-engine EWMA, and
///    (tagged runs) the tagged agent's exact (colour, shade).  A
///    committed window is then *bit-identical* to what replaying it
///    serially would produce, because its stream never depended on the
///    speculation outcome — so the whole run is bit-identical to the
///    serial windowed run, hits or not.
///  * **approximate mode** — commit when the realised counts are within
///    an L∞ tolerance of the assumed start (tagged state must still
///    match exactly), adopting the speculated trajectory *plus the
///    realised − predicted boundary delta* (a parareal-style correction:
///    without it a cascade of commits collapses several windows of
///    diffusion into one and the final-count law narrows).  Beyond the
///    tolerance — or when the delta would drive a cell negative — fall
///    back to replay exactly as a miss.  The final-count *law* is
///    validated statistically (tests/test_parallel_stat.cpp).
///
/// The first failed validation discards the round's remaining
/// speculation; the missed window re-executes as the next round's
/// leader window (the replay).  Scheduled events force the affected
/// windows onto the leader (event actions mutate structure, which
/// speculation cannot predict).  The master generator is never drawn
/// from — it only jumps — so zero speculative draws can leak into the
/// committed trajectory.
///
/// ## Economics
///
/// An exact hit needs the window to realise *exactly* the predicted
/// counts, which near equilibrium is roughly P(no net transition) —
/// e^{−λ} for λ = active_probability × window.  Speculation pays when
/// λ ≲ 1 (transition-sparse windows: heavy total weight, large n, short
/// windows), where expected committed windows per round approach
/// 1 + Σ_{j≥1} e^{−jλ}.  Hit/miss/replay counters are surfaced so the
/// bench gate (bench/e24_parallel.cpp) can pin the realised rate.
///
/// Durable composition: when a checkpoint sink is configured, every
/// *committed* boundary emits a v2 checkpoint of (state, master) — the
/// same blob the serial windowed run would emit there, so parallel
/// runs, durable resume, and golden replay all interoperate.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/count_simulation.h"
#include "rng/xoshiro.h"

namespace divpp::runtime {
class ThreadPool;
}  // namespace divpp::runtime

namespace divpp::parallel {

/// Validation regime at window boundaries (file comment).
enum class ParallelMode { kExact, kApproximate };

/// A predicted (dark, light) count configuration at a future boundary.
struct CountPrediction {
  std::vector<std::int64_t> dark;
  std::vector<std::int64_t> light;
};

/// Start-count predictor: called on the leader thread at round start
/// with the realised simulation and a horizon (interactions ahead),
/// returning the predicted counts at that boundary.  Must be
/// deterministic.  Tests inject a mispredictor here to force the
/// miss/replay path.
using Predictor = std::function<CountPrediction(
    const core::CountSimulation&, std::int64_t interactions_ahead)>;

/// The default predictor: MeanFieldOde::predict_counts_after on the
/// simulation's weights and current counts.
[[nodiscard]] CountPrediction mean_field_prediction(
    const core::CountSimulation& sim, std::int64_t interactions_ahead);

/// One time-parallel run.
struct ParallelRunConfig {
  core::Engine engine = core::Engine::kBatch;
  /// Interaction count to advance to.  \pre >= the simulation's clock.
  std::int64_t target_time = 0;
  /// Interactions per window; boundaries are the multiples of this
  /// period (absolute time), plus target_time.  \pre > 0.
  std::int64_t window = 0;
  /// Total threads including the leader; 1 = the serial windowed
  /// reference (no pool, no speculation).  \pre >= 1.
  int threads = 1;
  ParallelMode mode = ParallelMode::kExact;
  /// Approximate mode's L∞ commit tolerance on per-cell counts.
  /// Ignored in exact mode.  \pre >= 0.
  std::int64_t tolerance = 0;
  /// Start-count predictor; empty = mean_field_prediction.
  Predictor predictor;
  /// When non-empty, every committed boundary's v2 checkpoint is
  /// written here atomically (fault/durable_file.h) — parallel windows
  /// compose with the durable-runner contract.
  std::string checkpoint_path;
  /// When set, called with the v2 blob at every committed boundary
  /// (after the disk write, when both are configured).
  std::function<void(const std::string&)> on_checkpoint;
  /// Called after every committed boundary with its absolute time; the
  /// simulation reflects the committed state during the call (boundary
  /// observers — occupancy sampling, telemetry).
  std::function<void(std::int64_t)> on_commit;
  /// Cooperative drain hook, checked after each committed boundary's
  /// bookkeeping; returning true parks the run at that boundary.
  std::function<bool()> should_stop;
  /// Optional external pool for the W−1 speculation workers; nullptr
  /// constructs a private pool of threads−1 workers when threads > 1.
  runtime::ThreadPool* pool = nullptr;
};

/// Speculation telemetry of one run.
struct ParallelRunStats {
  std::int64_t windows = 0;    ///< committed windows (serial + hits)
  std::int64_t speculated = 0; ///< speculative window executions launched
  std::int64_t hits = 0;       ///< speculated windows committed as-is
  std::int64_t misses = 0;     ///< speculated windows discarded
  /// Miss events: each first-failed validation of a round, whose missed
  /// window re-executes as the next round's leader window.
  std::int64_t replays = 0;
  std::int64_t serial_windows = 0; ///< leader-executed windows (incl. replays)
  std::int64_t event_windows = 0;  ///< windows forced serial by pending events

  [[nodiscard]] double hit_rate() const noexcept {
    return speculated > 0
               ? static_cast<double>(hits) / static_cast<double>(speculated)
               : 0.0;
  }
};

/// Advances `sim` to config.target_time under the window-stream
/// discipline and speculation contract above.  `gen` is the master
/// generator: consulted only by copy for window substreams and advanced
/// by exactly one jump() per committed window, never drawn from.
/// \throws std::invalid_argument on a bad config; propagates
/// fault::DurableFileError from checkpoint writes.
ParallelRunStats run_parallel_windows(core::CountSimulation& sim,
                                      rng::Xoshiro256& gen,
                                      const ParallelRunConfig& config);

/// The tagged-chain counterpart: identical contract, with the tagged
/// agent's (colour, shade) joining the exact-mode validation vector
/// (speculation predicts it unchanged — involvement is O(window/n) per
/// window, so mispredictions are rare and replay absorbs them).
ParallelRunStats run_parallel_windows(core::TaggedCountSimulation& sim,
                                      rng::Xoshiro256& gen,
                                      const ParallelRunConfig& config);

}  // namespace divpp::parallel

#endif  // DIVPP_PARALLEL_PARALLEL_RUN_H
