#ifndef DIVPP_PROTOCOLS_ANTI_VOTER_H
#define DIVPP_PROTOCOLS_ANTI_VOTER_H

/// \file anti_voter.h
/// The anti-voter model (§1.1): two colours; the scheduled agent adopts
/// the *opposite* of the sampled neighbour's colour ([1], [31]).  It
/// keeps both colours alive and balanced, but — as the paper notes — it
/// is restricted to k = 2 and needs agents to know the colour set, so it
/// does not generalise to weighted diversity.

#include <stdexcept>

#include "core/agent.h"
#include "core/diversification.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// One-way anti-voter rule; colours must be 0 or 1.
class AntiVoterRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = false;

  core::Transition apply(core::AgentState& initiator,
                         const core::AgentState& responder,
                         rng::Xoshiro256& gen) const {
    (void)gen;
    if (responder.color != 0 && responder.color != 1)
      throw std::invalid_argument("AntiVoterRule: colours must be binary");
    const core::ColorId opposite = 1 - responder.color;
    if (initiator.color == opposite) return core::Transition::kNoOp;
    initiator.color = opposite;
    return core::Transition::kAdopt;
  }
};

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_ANTI_VOTER_H
