#include "protocols/averaging.h"

#include <algorithm>
#include <stdexcept>

namespace divpp::protocols {

NoisyAveragingRule::NoisyAveragingRule(double noise) : noise_(noise) {
  if (noise < 0.0)
    throw std::invalid_argument("NoisyAveragingRule: noise must be >= 0");
}

double discrepancy(std::span<const double> values) {
  if (values.empty())
    throw std::invalid_argument("discrepancy: empty value vector");
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return *hi - *lo;
}

double value_mean(std::span<const double> values) {
  if (values.empty())
    throw std::invalid_argument("value_mean: empty value vector");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace divpp::protocols
