#ifndef DIVPP_PROTOCOLS_AVERAGING_H
#define DIVPP_PROTOCOLS_AVERAGING_H

/// \file averaging.h
/// Averaging processes (§1.1 related work: [2], [25], [29]).
///
/// Agents hold a real value; interacting pairs move towards (or exactly
/// to) their average.  The two-way rule matches the diffusion
/// load-balancing matching model of [29] (both endpoints update); the
/// noisy variant implements the ICALP'19 noisy averaging of [25], where
/// the *communicated* value is perturbed before averaging.

#include <cstdint>
#include <span>

#include "core/diversification.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// Exact two-way averaging: both agents adopt the pair mean.
class AveragingRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = true;

  core::Transition apply(double& initiator, double& responder,
                         rng::Xoshiro256& gen) const noexcept {
    (void)gen;
    const double mean = 0.5 * (initiator + responder);
    if (mean == initiator && mean == responder)
      return core::Transition::kNoOp;
    initiator = mean;
    responder = mean;
    return core::Transition::kAdopt;
  }
};

/// Noisy averaging ([25]): each agent receives the other's value
/// perturbed by independent uniform noise in [-noise, +noise], then
/// both move to the average of (own, received).
class NoisyAveragingRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = true;

  /// \pre noise >= 0.
  explicit NoisyAveragingRule(double noise);

  core::Transition apply(double& initiator, double& responder,
                         rng::Xoshiro256& gen) const {
    const double sent_by_responder =
        responder + noise_ * (2.0 * rng::uniform01(gen) - 1.0);
    const double sent_by_initiator =
        initiator + noise_ * (2.0 * rng::uniform01(gen) - 1.0);
    initiator = 0.5 * (initiator + sent_by_responder);
    responder = 0.5 * (responder + sent_by_initiator);
    return core::Transition::kAdopt;
  }

  [[nodiscard]] double noise() const noexcept { return noise_; }

 private:
  double noise_;
};

/// max - min of the value vector (the load "discrepancy" of [29]).
[[nodiscard]] double discrepancy(std::span<const double> values);

/// Arithmetic mean of the value vector (conserved by exact averaging).
[[nodiscard]] double value_mean(std::span<const double> values);

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_AVERAGING_H
