#include "protocols/global_sampling.h"

namespace divpp::protocols {

GlobalSamplingRule::GlobalSamplingRule(const core::WeightMap& weights)
    : table_(weights.weights()) {}

}  // namespace divpp::protocols
