#ifndef DIVPP_PROTOCOLS_GLOBAL_SAMPLING_H
#define DIVPP_PROTOCOLS_GLOBAL_SAMPLING_H

/// \file global_sampling.h
/// The "trivial protocol" strawman from the paper's introduction: every
/// scheduled agent resamples its colour with probability proportional to
/// the weights — which requires global knowledge of the palette and its
/// normalisation constant.
///
/// It trivially achieves the target distribution, but the paper's point
/// (reproduced by experiment E8) is that it is *not robust*: the palette
/// is frozen at construction, so colours added or retired at run time are
/// never noticed.  We freeze an AliasTable at construction to make the
/// failure mode explicit in code.

#include <cstdint>

#include "core/agent.h"
#include "core/diversification.h"
#include "core/weights.h"
#include "rng/xoshiro.h"
#include "sampling/alias.h"

namespace divpp::protocols {

/// One-way rule ignoring the responder entirely; the scheduled agent
/// redraws its colour from the *frozen* weight distribution.
class GlobalSamplingRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = false;

  explicit GlobalSamplingRule(const core::WeightMap& weights);

  core::Transition apply(core::AgentState& initiator,
                         const core::AgentState& responder,
                         rng::Xoshiro256& gen) const {
    (void)responder;  // the strawman never looks at the population
    const auto next = static_cast<core::ColorId>(table_.sample(gen));
    if (next == initiator.color) return core::Transition::kNoOp;
    initiator.color = next;
    return core::Transition::kAdopt;
  }

  /// Number of colours the rule was frozen with.
  [[nodiscard]] std::int64_t frozen_colors() const noexcept {
    return table_.size();
  }

 private:
  sampling::AliasTable table_;
};

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_GLOBAL_SAMPLING_H
