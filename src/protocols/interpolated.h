#ifndef DIVPP_PROTOCOLS_INTERPOLATED_H
#define DIVPP_PROTOCOLS_INTERPOLATED_H

/// \file interpolated.h
/// "What lies in between consensus and diversification?" (paper §3).
///
/// The BlendRule interpolates between the two regimes with one knob:
/// with probability epsilon the scheduled agent behaves like a Voter
/// (adopts the responder's colour unconditionally — shade and all),
/// otherwise it runs the Diversification rule (Eq. (2)).
///
///  * epsilon = 0 is exactly Diversification: diverse, fair, sustainable;
///  * epsilon = 1 is exactly the Voter model: consensus, colours die;
///  * in between, the voter component breaks the sustainability argument
///    (a dark agent can now be overwritten without meeting its own
///    colour), so colours vanish at a rate growing with epsilon while
///    the surviving colours still feel the diversification drift.
///
/// Experiment E19 sweeps epsilon and measures where diversity collapses —
/// an empirical answer to the §3 question: sustainability is lost
/// *immediately* (any epsilon > 0 gives colour death in finite time),
/// while the diversity drift degrades gracefully.

#include <stdexcept>

#include "core/agent.h"
#include "core/diversification.h"
#include "core/weights.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// Mixture of Voter (weight epsilon) and Diversification (1 − epsilon).
class BlendRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = false;

  /// \pre 0 <= epsilon <= 1.
  BlendRule(core::WeightMap weights, double epsilon)
      : diversification_(std::move(weights)), epsilon_(epsilon) {
    if (epsilon < 0.0 || epsilon > 1.0)
      throw std::invalid_argument("BlendRule: epsilon must be in [0, 1]");
  }

  core::Transition apply(core::AgentState& initiator,
                         const core::AgentState& responder,
                         rng::Xoshiro256& gen) const {
    if (epsilon_ > 0.0 && rng::bernoulli(gen, epsilon_)) {
      // Voter move: copy colour and shade unconditionally.
      if (initiator == responder) return core::Transition::kNoOp;
      initiator = responder;
      return core::Transition::kAdopt;
    }
    return diversification_.apply(initiator, responder, gen);
  }

  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] const core::WeightMap& weights() const noexcept {
    return diversification_.weights();
  }

 private:
  core::DiversificationRule diversification_;
  double epsilon_;
};

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_INTERPOLATED_H
