#include "protocols/moran.h"

#include <cmath>

namespace divpp::protocols {

double MoranRule::fixation_probability(double r, std::int64_t n) {
  if (!(r > 0.0))
    throw std::invalid_argument("fixation_probability: r must be > 0");
  if (n < 1)
    throw std::invalid_argument("fixation_probability: n must be >= 1");
  if (r == 1.0) return 1.0 / static_cast<double>(n);
  // (1 − 1/r)/(1 − 1/rⁿ) computed stably via expm1 in log space.
  const double log_inv_r = -std::log(r);
  const double num = -std::expm1(log_inv_r);
  const double den = -std::expm1(static_cast<double>(n) * log_inv_r);
  return num / den;
}

}  // namespace divpp::protocols
