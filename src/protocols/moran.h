#ifndef DIVPP_PROTOCOLS_MORAN_H
#define DIVPP_PROTOCOLS_MORAN_H

/// \file moran.h
/// A Moran-style death-birth process (§1.1 related work: [18], [23]).
///
/// The scheduled agent is the *dying* individual; it samples a uniformly
/// random neighbour and adopts that neighbour's colour with probability
/// fitness(colour)/max-fitness (fitness-proportional acceptance by
/// rejection).  With all fitnesses equal this is exactly the Voter
/// model; a fitter colour spreads with positive drift and fixates with
/// the classical Moran advantage.  Like all consensus processes it
/// destroys diversity — the contrast Diversification is designed to
/// avoid.

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/agent.h"
#include "core/diversification.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// One-way Moran rule with per-colour fitness.
class MoranRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = false;

  /// \pre fitness non-empty, all values > 0.
  explicit MoranRule(std::vector<double> fitness)
      : fitness_(std::move(fitness)) {
    if (fitness_.empty())
      throw std::invalid_argument("MoranRule: empty fitness vector");
    max_fitness_ = 0.0;
    for (const double f : fitness_) {
      if (!(f > 0.0))
        throw std::invalid_argument("MoranRule: fitness must be positive");
      max_fitness_ = std::max(max_fitness_, f);
    }
  }

  core::Transition apply(core::AgentState& initiator,
                         const core::AgentState& responder,
                         rng::Xoshiro256& gen) const {
    if (responder.color < 0 ||
        responder.color >= static_cast<core::ColorId>(fitness_.size()))
      throw std::invalid_argument("MoranRule: colour outside fitness table");
    const double accept =
        fitness_[static_cast<std::size_t>(responder.color)] / max_fitness_;
    if (!rng::bernoulli(gen, accept)) return core::Transition::kNoOp;
    if (initiator.color == responder.color) return core::Transition::kNoOp;
    initiator.color = responder.color;
    return core::Transition::kAdopt;
  }

  /// The classical Moran fixation probability of a single mutant with
  /// relative fitness r in a resident population of n-1 agents:
  /// (1 − 1/r) / (1 − 1/rⁿ).
  [[nodiscard]] static double fixation_probability(double r, std::int64_t n);

 private:
  std::vector<double> fitness_;
  double max_fitness_ = 1.0;
};

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_MORAN_H
