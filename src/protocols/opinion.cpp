#include "protocols/opinion.h"

#include <stdexcept>
#include <vector>

namespace divpp::protocols {

std::int64_t surviving_colors(std::span<const core::AgentState> states,
                              std::int64_t num_colors) {
  if (num_colors < 1)
    throw std::invalid_argument("surviving_colors: need num_colors >= 1");
  std::vector<char> seen(static_cast<std::size_t>(num_colors), 0);
  std::int64_t survivors = 0;
  for (const core::AgentState& s : states) {
    if (s.color < 0 || s.color >= num_colors)
      throw std::invalid_argument("surviving_colors: colour out of range");
    if (seen[static_cast<std::size_t>(s.color)] == 0) {
      seen[static_cast<std::size_t>(s.color)] = 1;
      ++survivors;
    }
  }
  return survivors;
}

bool is_consensus(std::span<const core::AgentState> states) {
  if (states.empty()) return true;
  const core::ColorId first = states.front().color;
  for (const core::AgentState& s : states) {
    if (s.color != first) return false;
  }
  return true;
}

core::ColorId plurality_color(std::span<const core::AgentState> states,
                              std::int64_t num_colors) {
  const core::ColorCounts counts = core::tally(states, num_colors);
  const std::vector<std::int64_t> supports = counts.supports();
  core::ColorId best = 0;
  for (core::ColorId i = 1; i < num_colors; ++i) {
    if (supports[static_cast<std::size_t>(i)] >
        supports[static_cast<std::size_t>(best)])
      best = i;
  }
  return best;
}

std::vector<core::AgentState> opinion_initial(
    std::span<const std::int64_t> supports) {
  return core::make_initial_agents(supports);
}

}  // namespace divpp::protocols
