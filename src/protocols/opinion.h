#ifndef DIVPP_PROTOCOLS_OPINION_H
#define DIVPP_PROTOCOLS_OPINION_H

/// \file opinion.h
/// Shared utilities for opinion/consensus dynamics (the §1.1 baselines).
///
/// All baseline opinion protocols reuse core::AgentState with the shade
/// ignored (kept dark), so the tallying helpers of core/agent.h apply and
/// the engines are shared with the Diversification protocol.

#include <cstdint>
#include <span>

#include "core/agent.h"
#include "core/population.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// Number of colours with at least one supporter.
[[nodiscard]] std::int64_t surviving_colors(
    std::span<const core::AgentState> states, std::int64_t num_colors);

/// True when all agents share one colour (consensus).
[[nodiscard]] bool is_consensus(std::span<const core::AgentState> states);

/// The colour with the largest support (ties broken by smaller id).
[[nodiscard]] core::ColorId plurality_color(
    std::span<const core::AgentState> states, std::int64_t num_colors);

/// Runs `population` until consensus or until `max_steps` steps elapsed.
/// Returns the consensus time in steps, or -1 when the cap was hit.
/// The consensus check costs O(n) and is amortised by checking every
/// `check_every` steps (>= 1).
template <typename Rule, typename GraphT>
std::int64_t run_until_consensus(
    core::Population<core::AgentState, Rule, GraphT>& population,
    std::int64_t max_steps, rng::Xoshiro256& gen,
    std::int64_t check_every = 64) {
  if (check_every < 1) check_every = 1;
  const std::int64_t start = population.time();
  while (population.time() - start < max_steps) {
    const std::int64_t burst =
        std::min<std::int64_t>(check_every,
                               max_steps - (population.time() - start));
    population.run(burst, gen);
    if (is_consensus(population.states()))
      return population.time() - start;
  }
  return is_consensus(population.states()) ? population.time() - start : -1;
}

/// Builds an all-dark opinion population (colour multiset from supports)
/// — shared initialisation across the §1.1 baselines.
[[nodiscard]] std::vector<core::AgentState> opinion_initial(
    std::span<const std::int64_t> supports);

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_OPINION_H
