#ifndef DIVPP_PROTOCOLS_SIS_H
#define DIVPP_PROTOCOLS_SIS_H

/// \file sis.h
/// A susceptible–infected–susceptible (SIS) contact process
/// (§1.1 related work: [8], [24], [27]) in the pairwise-interaction
/// scheduling of population protocols.
///
/// When scheduled, an infected agent recovers with probability
/// `recovery`; a susceptible agent samples a neighbour and becomes
/// infected with probability `infection` if that neighbour is infected.
/// On the complete graph the fluid limit is the logistic SIS equation
/// with endemic prevalence x* = 1 − recovery/infection (for
/// infection > recovery; below that threshold the epidemic dies out).
/// The epidemic contrast to sustainability: the "infected" colour *can*
/// vanish — and does, almost surely, below threshold.

#include <stdexcept>

#include "core/agent.h"
#include "core/diversification.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// State encoding for the SIS rule on AgentState colours.
inline constexpr core::ColorId kSusceptible = 0;
inline constexpr core::ColorId kInfected = 1;

/// One-way SIS rule.
class SisRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = false;

  /// \pre 0 <= infection, recovery <= 1.
  SisRule(double infection, double recovery)
      : infection_(infection), recovery_(recovery) {
    if (infection < 0.0 || infection > 1.0 || recovery < 0.0 ||
        recovery > 1.0)
      throw std::invalid_argument("SisRule: rates must be in [0, 1]");
  }

  core::Transition apply(core::AgentState& initiator,
                         const core::AgentState& responder,
                         rng::Xoshiro256& gen) const {
    if (initiator.color == kInfected) {
      if (rng::bernoulli(gen, recovery_)) {
        initiator.color = kSusceptible;
        return core::Transition::kFade;  // "loses" the infection
      }
      return core::Transition::kNoOp;
    }
    if (responder.color == kInfected &&
        rng::bernoulli(gen, infection_)) {
      initiator.color = kInfected;
      return core::Transition::kAdopt;
    }
    return core::Transition::kNoOp;
  }

  /// Endemic prevalence of the fluid limit: max(0, 1 − recovery/infection).
  [[nodiscard]] double endemic_prevalence() const noexcept {
    if (infection_ <= 0.0) return 0.0;
    const double x = 1.0 - recovery_ / infection_;
    return x > 0.0 ? x : 0.0;
  }

  [[nodiscard]] double infection() const noexcept { return infection_; }
  [[nodiscard]] double recovery() const noexcept { return recovery_; }

 private:
  double infection_;
  double recovery_;
};

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_SIS_H
