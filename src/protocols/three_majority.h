#ifndef DIVPP_PROTOCOLS_THREE_MAJORITY_H
#define DIVPP_PROTOCOLS_THREE_MAJORITY_H

/// \file three_majority.h
/// The 3-Majority dynamics (§1.1): the scheduled agent samples two
/// neighbours; if any colour appears at least twice among {its own, the
/// two samples}, it adopts that majority colour, otherwise it picks one
/// of the three uniformly at random ([6]).

#include "core/agent.h"
#include "core/diversification.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// Two-responder 3-Majority rule on AgentState (shade ignored).
class ThreeMajorityRule {
 public:
  static constexpr int kResponders = 2;
  static constexpr bool kMutatesResponder = false;

  core::Transition apply(core::AgentState& initiator,
                         const core::AgentState& first,
                         const core::AgentState& second,
                         rng::Xoshiro256& gen) const {
    const core::ColorId mine = initiator.color;
    const core::ColorId c1 = first.color;
    const core::ColorId c2 = second.color;
    core::ColorId next = mine;
    if (c1 == c2) {
      next = c1;  // the two samples agree (covers the all-equal case)
    } else if (mine == c1 || mine == c2) {
      next = mine;  // own colour is in the majority pair
    } else {
      // All three distinct: pick uniformly among them.
      const std::int64_t pick = rng::uniform_below(gen, 3);
      next = pick == 0 ? mine : (pick == 1 ? c1 : c2);
    }
    if (next == mine) return core::Transition::kNoOp;
    initiator.color = next;
    return core::Transition::kAdopt;
  }
};

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_THREE_MAJORITY_H
