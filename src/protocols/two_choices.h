#ifndef DIVPP_PROTOCOLS_TWO_CHOICES_H
#define DIVPP_PROTOCOLS_TWO_CHOICES_H

/// \file two_choices.h
/// The 2-Choices dynamics (§1.1): the scheduled agent samples two
/// neighbours and adopts their colour only when both sampled agents
/// agree.  A fast consensus baseline ([12], [16]).

#include "core/agent.h"
#include "core/diversification.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// Two-responder 2-Choices rule on AgentState (shade ignored).
class TwoChoicesRule {
 public:
  static constexpr int kResponders = 2;
  static constexpr bool kMutatesResponder = false;

  core::Transition apply(core::AgentState& initiator,
                         const core::AgentState& first,
                         const core::AgentState& second,
                         rng::Xoshiro256& gen) const noexcept {
    (void)gen;
    if (first.color != second.color || initiator.color == first.color)
      return core::Transition::kNoOp;
    initiator.color = first.color;
    return core::Transition::kAdopt;
  }
};

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_TWO_CHOICES_H
