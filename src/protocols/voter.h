#ifndef DIVPP_PROTOCOLS_VOTER_H
#define DIVPP_PROTOCOLS_VOTER_H

/// \file voter.h
/// The Voter model (§1.1): the scheduled agent adopts the colour of a
/// uniformly sampled neighbour.  The canonical consensus baseline — it
/// destroys diversity and (unlike Diversification) colours die out,
/// which experiment E6/E7 contrasts with sustainability.

#include "core/agent.h"
#include "core/diversification.h"
#include "rng/xoshiro.h"

namespace divpp::protocols {

/// One-way Voter rule on AgentState (shade ignored).
class VoterRule {
 public:
  static constexpr int kResponders = 1;
  static constexpr bool kMutatesResponder = false;

  core::Transition apply(core::AgentState& initiator,
                         const core::AgentState& responder,
                         rng::Xoshiro256& gen) const noexcept {
    (void)gen;
    if (initiator.color == responder.color) return core::Transition::kNoOp;
    initiator.color = responder.color;
    return core::Transition::kAdopt;
  }
};

}  // namespace divpp::protocols

#endif  // DIVPP_PROTOCOLS_VOTER_H
