#include "rng/discrete.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/invariant.h"
#include "rng/distributions.h"

namespace divpp::rng {

namespace {

/// log(x!) for integer x: table lookup below kLogFactTable, Stirling
/// series above.  Every pmf argument in this file is an integer count,
/// so this replaces std::lgamma (~13 ns) with ~2 ns lookups; the
/// Stirling branch is accurate to ~1e-16 relative well below the table
/// edge (the next omitted term is O(x^{-7})).  The table spans 64 Ki
/// entries (512 KB, built once) because the collision-batch engine's
/// rejection draws evaluate the pmf at participant-scale arguments —
/// up to 2·E[ℓ] ≈ 40 000 at n = 10⁹ — on every iteration, and a lookup
/// there is ~4× cheaper than the Stirling evaluation.

constexpr std::int64_t kLogFactTable = kLogFactTableSize;

double log_fact(std::int64_t x) {
  static const std::vector<double> table = [] {
    std::vector<double> t(static_cast<std::size_t>(kLogFactTable));
    t[0] = 0.0;
    // Sums of logs drift; lgamma each entry instead (one-time cost).
    for (std::int64_t i = 1; i < kLogFactTable; ++i)
      t[static_cast<std::size_t>(i)] =
          std::lgamma(static_cast<double>(i) + 1.0);
    return t;
  }();
  if (x < kLogFactTable) return table[static_cast<std::size_t>(x)];
  const double d = static_cast<double>(x);
  const double inv = 1.0 / d;
  const double inv2 = inv * inv;
  return (d + 0.5) * std::log(d) - d + 0.9189385332046727 +  // ln√(2π)
         inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0));
}

/// log C(n, k) on integers via log_fact.
double log_choose(std::int64_t n, std::int64_t k) {
  return log_fact(n) - log_fact(k) - log_fact(n - k);
}

/// Mode-centred chop-down inversion over the integer support [lo, hi]:
/// one uniform is split against the pmf starting at `mode` (value `fm`)
/// and expanding outwards, every value after the first coming from the
/// exact adjacent-ratio recurrence ratio_up(x) = f(x+1)/f(x).  Expected
/// O(1 + sd) pmf evaluations.  Shared by hypergeometric() and
/// full_pairs(); the outward order is a fixed deterministic enumeration
/// of the support, so the inversion is exact for any log-concave or
/// not-so-concave pmf alike.
template <class RatioUp>
std::int64_t chop_down_from_mode(Xoshiro256& gen, std::int64_t lo,
                                 std::int64_t hi, std::int64_t mode,
                                 double fm, RatioUp&& ratio_up) {
  while (true) {
    double u = uniform01(gen);
    std::int64_t up = mode;
    std::int64_t down = mode;
    double fu = fm;
    double fd = fm;
    u -= fm;
    if (u <= 0.0) return mode;
    while (up < hi || down > lo) {
      if (up < hi) {
        fu *= ratio_up(up);
        ++up;
        u -= fu;
        if (u <= 0.0) return up;
      }
      if (down > lo) {
        fd /= ratio_up(down - 1);
        --down;
        u -= fd;
        if (u <= 0.0) return down;
      }
    }
    // Float rounding left a sliver of u unassigned (probability ~1e-16):
    // redraw rather than clamp, keeping the sampler bias-free.
  }
}

/// HRUA ratio-of-uniforms rejection (Stadlober 1990) over an integer
/// support [lo, hi]: a point (u, v) uniform in the enclosing rectangle is
/// mapped to w = mean + 0.5 + d8·(v − 0.5)/u and accepted when
/// u² <= f(w)/f(mode).  For any log-concave discrete pmf the rectangle
/// half-width d8 = D1·sqrt(var + 0.5) + D2 with D1 = 2·sqrt(2/e) and
/// D2 = 3 − 2·sqrt(3/e) dominates the ratio-of-uniforms region, so the
/// sampler is exact and O(1) expected time for any parameters.  Support
/// beyond mean + 16·sd carries less mass than any drawable uniform
/// resolves and is cut like the reference HRUA.
///
/// The acceptance test is evaluated in whichever domain is cheaper for
/// the candidate:
///  * near the mode (|z − mode| <= kHruaProductCutoff, the common case)
///    f(z)/f(mode) is an exact product of adjacent-pmf ratios — pure
///    multiplies, batched eight factors per division so no log or
///    lgamma is touched at all;
///  * far from the mode the ratio is evaluated through `log_weight`
///    (log f up to an additive constant, typically log-factorial sums),
///    with the classical squeeze pair around the exact log test.
/// Both are evaluations of the same pmf at double precision, so the
/// split is invisible beyond rounding.
///
/// `up_num(x)`/`up_den(x)` give f(x+1)/f(x) = up_num(x)/up_den(x) as
/// separate non-negative factors of a double-valued (exact-integer)
/// position; `mode` must be an argmax of f (ties fine).
constexpr double kHruaD1 = 1.7155277699214135;  // 2·sqrt(2/e)
constexpr double kHruaD2 = 0.8989161620588988;  // 3 − 2·sqrt(3/e)
constexpr std::int64_t kHruaProductCutoff = 32;

template <class UpNum, class UpDen, class LogWeight>
std::int64_t hrua_sample(Xoshiro256& gen, std::int64_t lo, std::int64_t hi,
                         double mean, double variance, std::int64_t mode,
                         UpNum&& up_num, UpDen&& up_den,
                         LogWeight&& log_weight) {
  const double d6 = mean + 0.5;
  const double d7 = std::sqrt(variance + 0.5);
  const double d8 = kHruaD1 * d7 + kHruaD2;
  const double cut_lo = static_cast<double>(lo);
  const double cut_hi = std::min(static_cast<double>(hi) + 1.0,
                                 std::floor(d6 + 16.0 * d7));
  double lw_mode = 0.0;  // computed on the first far-candidate only
  bool have_lw_mode = false;
  while (true) {
    const double u = uniform01(gen);
    const double v = uniform01(gen);
    const double w = d6 + d8 * (v - 0.5) / u;
    // !(w >= cut_lo) also catches the NaN from u == 0, v == 0.5.
    if (!(w >= cut_lo) || w >= cut_hi) continue;
    const auto z = static_cast<std::int64_t>(std::floor(w));
    if (std::llabs(z - mode) <= kHruaProductCutoff) {
      // Exact linear-domain test: Π up_num/up_den over [min(z,mode),
      // max(z,mode)) is f(max)/f(min), compared against u² (inverted for
      // a downward candidate by moving the factor to the other side).
      // The walk runs on a double-valued position (counts are far below
      // 2^53, so increments are exact) with two independent accumulator
      // pairs so the multiply chains pipeline; factors are O(support²)
      // each, so a chunk of eight stays far below the double range —
      // one division per chunk.
      const bool upward = z >= mode;
      double x = static_cast<double>(upward ? mode : z);
      std::int64_t steps = upward ? z - mode : mode - z;
      double ratio = 1.0;
      while (steps > 0) {
        const int chunk = steps >= 8 ? 8 : static_cast<int>(steps);
        double n0 = 1.0, n1 = 1.0, d0 = 1.0, d1 = 1.0;
        int j = 0;
        for (; j + 1 < chunk; j += 2) {
          n0 *= up_num(x);
          d0 *= up_den(x);
          n1 *= up_num(x + 1.0);
          d1 *= up_den(x + 1.0);
          x += 2.0;
        }
        if (j < chunk) {
          n0 *= up_num(x);
          d0 *= up_den(x);
          x += 1.0;
        }
        ratio *= (n0 * n1) / (d0 * d1);
        steps -= chunk;
      }
      // upward: accept iff u² <= ratio; downward: iff u²·ratio <= 1.
      if (upward ? (u * u <= ratio) : (u * u * ratio <= 1.0)) return z;
      continue;
    }
    if (!have_lw_mode) {
      lw_mode = log_weight(mode);
      have_lw_mode = true;
    }
    const double t = log_weight(z) - lw_mode;
    if (u * (4.0 - u) - 3.0 <= t) return z;  // squeeze: accept
    if (u * (u - t) >= 1.0) continue;        // squeeze: reject
    if (2.0 * std::log(u) <= t) return z;    // exact test
  }
}

/// Variance of Hypergeometric(total, marked, draws) given the marked
/// fraction p — the single definition both the public predicate and the
/// dispatcher evaluate, so the two can never disagree about which
/// kernel runs.  Invariant under marked <-> draws and under both
/// complement transformations.
double hypergeometric_variance_at(double p, double draws, double total) {
  return draws * p * (1.0 - p) * (total - draws) / (total - 1.0);
}

double hypergeometric_variance(std::int64_t total, std::int64_t marked,
                               std::int64_t draws) {
  const double dn = static_cast<double>(total);
  return hypergeometric_variance_at(static_cast<double>(marked) / dn,
                                    static_cast<double>(draws), dn);
}

/// BINV: chop-down inversion from 0.  Exact; expected O(1 + n·p) time, so
/// callers only use it when n·min(p, 1-p) is small.  \pre 0 < p <= 0.5.
std::int64_t binomial_inversion(Xoshiro256& gen, std::int64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  // q^n; n·p small implies n·log1p(-p) >= -O(30), no underflow.
  const double r0 = std::exp(static_cast<double>(n) * std::log1p(-p));
  while (true) {
    double r = r0;
    double u = uniform01(gen);
    std::int64_t x = 0;
    while (u > r) {
      u -= r;
      ++x;
      if (x > n) break;  // float-rounding tail: reject and redraw
      r *= (a / static_cast<double>(x) - s);
    }
    if (x <= n) return x;
  }
}

/// BTPE (Kachitvichyanukul & Schmeiser 1988): rejection from a
/// triangle + parallelogram + two exponential tails fitted around the
/// mode, with a squeeze and a final Stirling-corrected exact test.
/// O(1) expected time for any (n, p).  \pre n·min(p,1-p) >= 30.
std::int64_t binomial_btpe(Xoshiro256& gen, std::int64_t n, double p) {
  const double r = std::min(p, 1.0 - p);
  const double q = 1.0 - r;
  const double fm = static_cast<double>(n) * r + r;
  const auto m = static_cast<std::int64_t>(std::floor(fm));
  const double nrq = static_cast<double>(n) * r * q;
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = static_cast<double>(m) + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + static_cast<double>(m));
  double a = (fm - xl) / (fm - xl * r);
  const double laml = a * (1.0 + a / 2.0);
  a = (xr - fm) / (xr * q);
  const double lamr = a * (1.0 + a / 2.0);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / laml;
  const double p4 = p3 + c / lamr;

  while (true) {
    // Region draw: u picks the envelope piece, v is the rejection uniform.
    const double u = uniform01(gen) * p4;
    double v = uniform01(gen);
    std::int64_t y;
    bool accepted = false;
    if (u <= p1) {
      // Triangle: accept immediately.
      y = static_cast<std::int64_t>(std::floor(xm - p1 * v + u));
      accepted = true;
    } else if (u <= p2) {
      // Parallelogram.
      const double x = xl + (u - p1) / c;
      v = v * c + 1.0 - std::abs(static_cast<double>(m) - x + 0.5) / p1;
      if (v > 1.0) continue;
      y = static_cast<std::int64_t>(std::floor(x));
    } else if (u <= p3) {
      // Left exponential tail.
      y = static_cast<std::int64_t>(std::floor(xl + std::log(v) / laml));
      if (y < 0) continue;
      v = v * (u - p2) * laml;
    } else {
      // Right exponential tail.
      y = static_cast<std::int64_t>(std::floor(xr - std::log(v) / lamr));
      if (y > n) continue;
      v = v * (u - p3) * lamr;
    }

    if (!accepted) {
      const std::int64_t k = std::llabs(y - m);
      if (k <= 20 || static_cast<double>(k) >= nrq / 2.0 - 1.0) {
        // Direct pmf-ratio evaluation f(y)/f(m) by recurrence.
        const double s = r / q;
        a = s * static_cast<double>(n + 1);
        double f = 1.0;
        if (m < y) {
          for (std::int64_t i = m + 1; i <= y; ++i)
            f *= (a / static_cast<double>(i) - s);
        } else if (m > y) {
          for (std::int64_t i = y + 1; i <= m; ++i)
            f /= (a / static_cast<double>(i) - s);
        }
        if (v > f) continue;
      } else {
        // Squeeze on log f(y)/f(m), then the exact Stirling-series test.
        const double kd = static_cast<double>(k);
        const double rho =
            (kd / nrq) *
            ((kd * (kd / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
        const double t = -kd * kd / (2.0 * nrq);
        const double alv = std::log(v);
        if (alv < t - rho) {
          // accepted by squeeze
        } else if (alv > t + rho) {
          continue;
        } else {
          const double x1 = static_cast<double>(y + 1);
          const double f1 = static_cast<double>(m + 1);
          const double z = static_cast<double>(n + 1 - m);
          const double w = static_cast<double>(n - y + 1);
          const double x2 = x1 * x1;
          const double f2 = f1 * f1;
          const double z2 = z * z;
          const double w2 = w * w;
          const auto stirling = [](double v2, double v1) {
            return (13860.0 -
                    (462.0 - (132.0 - (99.0 - 140.0 / v2) / v2) / v2) / v2) /
                   v1 / 166320.0;
          };
          // log f(y)/f(m) = lg(m+1) + lg(n−m+1) − lg(y+1) − lg(n−y+1)
          // + (y−m)·log(r/q): the Stirling corrections of the numerator
          // terms (f1, z) enter positively, those of the denominator
          // terms (x1, w) negatively.
          const double bound =
              xm * std::log(f1 / x1) +
              (static_cast<double>(n - m) + 0.5) * std::log(z / w) +
              static_cast<double>(y - m) * std::log(w * r / (x1 * q)) +
              stirling(f2, f1) + stirling(z2, z) - stirling(x2, x1) -
              stirling(w2, w);
          if (alv > bound) continue;
        }
      }
    }
    return p > 0.5 ? n - y : y;
  }
}

}  // namespace

void warm_log_fact_table() { (void)log_fact(kLogFactTableSize - 1); }

std::int64_t binomial(Xoshiro256& gen, std::int64_t n, double p) {
  if (n < 0) throw std::invalid_argument("binomial: n must be >= 0");
  if (!(p >= 0.0) || p > 1.0)
    throw std::invalid_argument("binomial: p must be in [0, 1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  std::int64_t result = 0;
  if (n <= 16) {
    // A handful of Bernoulli trials beats the BINV setup (exp + log1p);
    // the collision-batch fade thinnings live here.  Trivially exact.
    for (std::int64_t i = 0; i < n; ++i)
      if (uniform01(gen) < p) ++result;
  } else if (const double pr = std::min(p, 1.0 - p);
             static_cast<double>(n) * pr < 30.0) {
    const std::int64_t x = binomial_inversion(gen, n, pr);
    result = p > 0.5 ? n - x : x;
  } else {
    result = binomial_btpe(gen, n, p);
  }
  // Support check on every kernel: a BINV/BTPE float-edge escape would
  // silently corrupt the batch margins downstream.
  SIM_ASSERT(result >= 0 && result <= n);
  return result;
}

namespace {

void hypergeometric_validate(std::int64_t total, std::int64_t marked,
                             std::int64_t draws) {
  if (total < 0 || marked < 0 || marked > total || draws < 0 ||
      draws > total)
    throw std::invalid_argument(
        "hypergeometric: need 0 <= marked <= total and 0 <= draws <= total");
}

/// The PR-3 kernel: chop-down inversion started at the mode and expanding
/// outwards.  The expected number of pmf evaluations is O(1 + sd), and
/// every pmf value after the first comes from the exact adjacent-ratio
/// recurrence
///   f(x+1)/f(x) = (marked-x)(draws-x) / ((x+1)(total-marked-draws+x+1)).
std::int64_t hypergeometric_chopdown_impl(Xoshiro256& gen, std::int64_t total,
                                          std::int64_t marked,
                                          std::int64_t draws, std::int64_t lo,
                                          std::int64_t hi) {
  const double dn = static_cast<double>(total);
  const double dk = static_cast<double>(marked);
  const double dm = static_cast<double>(draws);
  auto mode = static_cast<std::int64_t>(
      std::floor((dm + 1.0) * (dk + 1.0) / (dn + 2.0)));
  mode = std::clamp(mode, lo, hi);
  const double log_fm = log_choose(marked, mode) +
                        log_choose(total - marked, draws - mode) -
                        log_choose(total, draws);
  const double fm = std::exp(log_fm);
  return chop_down_from_mode(gen, lo, hi, mode, fm, [&](std::int64_t x) {
    // f(x+1)/f(x)
    return (dk - static_cast<double>(x)) * (dm - static_cast<double>(x)) /
           ((static_cast<double>(x) + 1.0) *
            (dn - dk - dm + static_cast<double>(x) + 1.0));
  });
}

/// HRUA rejection in the canonical coordinates: sample over the smaller
/// marked class and the smaller sample side (where the support starts at
/// 0 — min(draws, total-draws) never exceeds max(marked, total-marked)),
/// then undo the two symmetry transformations.  `frac` is the marked
/// fraction min(marked, total−marked)/total, computed once by the
/// dispatcher alongside the variance (the HRUA setup is division-latency
/// bound, so shared subexpressions matter).
std::int64_t hypergeometric_hrua(Xoshiro256& gen, std::int64_t total,
                                 std::int64_t marked, std::int64_t draws,
                                 double var, double frac) {
  const std::int64_t mingood = std::min(marked, total - marked);
  const std::int64_t maxgood = total - mingood;
  const std::int64_t m = std::min(draws, total - draws);
  const double mean = static_cast<double>(m) * frac;
  const std::int64_t hi = std::min(m, mingood);
  // floor((m+1)(mingood+1)/(total+2)) is the exact mode.  The double
  // evaluation is provably exact while the numerator product stays
  // below 2^53 (the factors convert exactly, the product is exact, and
  // a correctly-rounded division can only cross the next integer when
  // quotient · 2^-53 >= 1/(total+2), i.e. when the product >= 2^53; an
  // exactly-integer quotient is a two-way mode tie where either choice
  // is an argmax).  Beyond 2^53 one rounding can land the floor a step
  // off, and the rejection kernel needs the exact argmax — an
  // underestimated f(mode) would shrink the hat — so climb the
  // log-concave pmf to the true mode via the adjacent ratio (O(1)
  // steps from a one-off candidate, paid only at >= 2^53 scale).
  const double mode_numerator = static_cast<double>(m + 1) *
                                static_cast<double>(mingood + 1);
  auto mode = std::clamp(
      static_cast<std::int64_t>(
          std::floor(mode_numerator / static_cast<double>(total + 2))),
      std::int64_t{0}, hi);
  if (mode_numerator >= 0x1.0p53) {
    const auto ratio_up_at = [&](std::int64_t x) {
      return (static_cast<double>(mingood - x) *
              static_cast<double>(m - x)) /
             (static_cast<double>(x + 1) *
              static_cast<double>(maxgood - m + x + 1));
    };
    while (mode < hi && ratio_up_at(mode) > 1.0) ++mode;
    while (mode > 0 && ratio_up_at(mode - 1) < 1.0) --mode;
  }
  const double dming = static_cast<double>(mingood);
  const double dm = static_cast<double>(m);
  const double dtail = static_cast<double>(maxgood - m);
  std::int64_t z = hrua_sample(
      gen, 0, hi, mean, var, mode,
      [=](double x) {  // numerator of f(x+1)/f(x)
        return (dming - x) * (dm - x);
      },
      [=](double x) {  // denominator of f(x+1)/f(x)
        return (x + 1.0) * (dtail + x + 1.0);
      },
      [&](std::int64_t x) {
        return -(log_fact(x) + log_fact(mingood - x) + log_fact(m - x) +
                 log_fact(maxgood - m + x));
      });
  if (marked > total - marked) z = m - z;
  if (m < draws) z = marked - z;
  return z;
}

}  // namespace

namespace {

/// The shared dispatch rule: rejection needs enough variance to beat
/// the chop-down walk, and either Stirling-scale pmf arguments (the
/// chop-down setup is what the rejection kernel avoids) or a walk so
/// long that even a table-backed setup loses.  `max_argument` is the
/// largest value the chop-down setup feeds to log_fact.
bool rejection_pays(double var, std::int64_t max_argument) {
  if (var < kRejectionVarianceCutoff) return false;
  return max_argument >= kLogFactTableSize ||
         var >= kRejectionInTableVarianceCutoff;
}

}  // namespace

bool hypergeometric_uses_rejection(std::int64_t total, std::int64_t marked,
                                   std::int64_t draws) {
  hypergeometric_validate(total, marked, draws);
  const std::int64_t lo = std::max<std::int64_t>(0, draws - (total - marked));
  const std::int64_t hi = std::min(draws, marked);
  if (lo == hi) return false;
  return rejection_pays(hypergeometric_variance(total, marked, draws),
                        total);
}

std::int64_t hypergeometric_chopdown(Xoshiro256& gen, std::int64_t total,
                                     std::int64_t marked, std::int64_t draws) {
  hypergeometric_validate(total, marked, draws);
  const std::int64_t lo = std::max<std::int64_t>(0, draws - (total - marked));
  const std::int64_t hi = std::min(draws, marked);
  if (lo == hi) return lo;
  return hypergeometric_chopdown_impl(gen, total, marked, draws, lo, hi);
}

namespace {

/// Validation-free dispatcher shared by hypergeometric() and the
/// conditional chains (whose loop invariants already guarantee the
/// preconditions).  One division computes the marked fraction; variance
/// and the HRUA mean both reuse it.
std::int64_t hypergeometric_impl(Xoshiro256& gen, std::int64_t total,
                                 std::int64_t marked, std::int64_t draws) {
  const std::int64_t lo = std::max<std::int64_t>(0, draws - (total - marked));
  const std::int64_t hi = std::min(draws, marked);
  if (lo == hi) return lo;
  const double dn = static_cast<double>(total);
  const double p = static_cast<double>(marked) / dn;
  const double var =
      hypergeometric_variance_at(p, static_cast<double>(draws), dn);
  if (rejection_pays(var, total))
    return hypergeometric_hrua(gen, total, marked, draws, var,
                               std::min(p, 1.0 - p));
  return hypergeometric_chopdown_impl(gen, total, marked, draws, lo, hi);
}

}  // namespace

std::int64_t hypergeometric(Xoshiro256& gen, std::int64_t total,
                            std::int64_t marked, std::int64_t draws) {
  hypergeometric_validate(total, marked, draws);
  const std::int64_t x = hypergeometric_impl(gen, total, marked, draws);
  // Support check: HRUA's hat can only propose in-range values and the
  // chop-down walk is clamped, but both depend on float mode/variance
  // setup — an escape here would over-draw a colour in the batch engine.
  SIM_ASSERT(x >= std::max<std::int64_t>(0, draws - (total - marked)));
  SIM_ASSERT(x <= std::min(draws, marked));
  return x;
}

std::vector<std::int64_t> multinomial(Xoshiro256& gen, std::int64_t trials,
                                      std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("multinomial: empty weight vector");
  if (trials < 0) throw std::invalid_argument("multinomial: trials < 0");
  double remaining_weight = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0))
      throw std::invalid_argument("multinomial: negative weight");
    remaining_weight += w;
  }
  if (!(remaining_weight > 0.0))
    throw std::invalid_argument("multinomial: weights sum to zero");
  std::vector<std::int64_t> out(weights.size(), 0);
  std::int64_t remaining = trials;
  for (std::size_t i = 0; i + 1 < weights.size() && remaining > 0; ++i) {
    const double p =
        std::clamp(weights[i] / remaining_weight, 0.0, 1.0);
    const std::int64_t x = binomial(gen, remaining, p);
    out[i] = x;
    remaining -= x;
    remaining_weight -= weights[i];
    if (!(remaining_weight > 0.0)) break;  // all residual mass spent
  }
  out.back() = remaining;
  SIM_IF_CHECKED({
    std::int64_t sum = 0;
    for (const std::int64_t c : out) {
      SIM_ASSERT(c >= 0);
      sum += c;
    }
    SIM_DCHECK_EQ(sum, trials);  // conditional-binomial chain conserves mass
  });
  return out;
}

namespace {

/// Sample sizes up to this are tallied by a sequential urn walk (one
/// uniform + an O(k) scan per ball) instead of the conditional
/// hypergeometric chain: for a handful of draws from population-scale
/// category counts the k chain setups (each touching factorials of the
/// pool sizes) cost far more than draws·k flops.  Exact either way — a
/// without-replacement sequence tallied by category IS the multivariate
/// hypergeometric — so the cutoff is distributionally invisible.
constexpr std::int64_t kMvhUrnCutoff = 32;

}  // namespace

void multivariate_hypergeometric(Xoshiro256& gen,
                                 std::span<const std::int64_t> counts,
                                 std::int64_t draws,
                                 std::span<std::int64_t> out) {
  if (out.size() != counts.size())
    throw std::invalid_argument(
        "multivariate_hypergeometric: out size mismatch");
  std::int64_t pool = 0;
  for (const std::int64_t c : counts) {
    if (c < 0)
      throw std::invalid_argument(
          "multivariate_hypergeometric: negative count");
    pool += c;
  }
  if (draws < 0 || draws > pool)
    throw std::invalid_argument(
        "multivariate_hypergeometric: draws outside [0, sum(counts)]");
  if (draws <= kMvhUrnCutoff) {
    // `out` holds the *remaining* counts during the walk (one load per
    // category in the scan) and is flipped to the taken counts at the
    // end.
    std::copy(counts.begin(), counts.end(), out.begin());
    for (std::int64_t t = 0; t < draws; ++t) {
      std::int64_t target = uniform_below(gen, pool - t);
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (target < out[i]) {
          --out[i];
          break;
        }
        target -= out[i];
      }
    }
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = counts[i] - out[i];
    return;
  }
  std::int64_t remaining = draws;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (remaining == 0) {
      out[i] = 0;
      continue;
    }
    // The loop invariants guarantee the preconditions, so skip the
    // per-call validation of the public entry point.
    const std::int64_t x =
        hypergeometric_impl(gen, pool, counts[i], remaining);
    out[i] = x;
    remaining -= x;
    pool -= counts[i];
  }
  SIM_IF_CHECKED({
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      // Each category takes within its own count, and the split spends
      // exactly `draws` — the batch engine's colour margins rely on both.
      SIM_ASSERT(out[i] >= 0 && out[i] <= counts[i]);
      sum += out[i];
    }
    SIM_DCHECK_EQ(sum, draws);
  });
}

std::vector<std::int64_t> multivariate_hypergeometric(
    Xoshiro256& gen, std::span<const std::int64_t> counts,
    std::int64_t draws) {
  std::vector<std::int64_t> out(counts.size());
  multivariate_hypergeometric(gen, counts, draws, out);
  return out;
}

namespace {

void full_pairs_validate(std::int64_t pairs, std::int64_t items) {
  if (pairs < 0 || items < 0 || items > 2 * pairs)
    throw std::invalid_argument(
        "full_pairs: need 0 <= items <= 2 * pairs");
}

/// f(t+1)/f(t) = (m−2t)(m−2t−1) / (4 (t+1) (p − m + t + 1)), with
/// m = items, p = pairs — shared by the chop-down walk, the mode
/// adjustment of the rejection path, and nothing else.
double full_pairs_ratio_up(std::int64_t pairs, std::int64_t items,
                           std::int64_t t) {
  const double b =
      static_cast<double>(items) - 2.0 * static_cast<double>(t);
  return b * (b - 1.0) /
         (4.0 * (static_cast<double>(t) + 1.0) *
          (static_cast<double>(pairs) - static_cast<double>(items) +
           static_cast<double>(t) + 1.0));
}

/// E[t] = p·m(m−1)/(2p(2p−1)) — the indicator sum over pairs.
double full_pairs_mean(std::int64_t pairs, std::int64_t items) {
  const double dm = static_cast<double>(items);
  const double dp = static_cast<double>(pairs);
  return dm * (dm - 1.0) / (2.0 * (2.0 * dp - 1.0));
}

/// Var[t] from the pair-indicator second factorial moment
/// E[t(t−1)] = p(p−1)·m(m−1)(m−2)(m−3) / ((2p)(2p−1)(2p−2)(2p−3)).
double full_pairs_variance(std::int64_t pairs, std::int64_t items) {
  const double dm = static_cast<double>(items);
  const double dp = static_cast<double>(pairs);
  const double q1 = dm * (dm - 1.0) / ((2.0 * dp) * (2.0 * dp - 1.0));
  const double q2 =
      q1 * (dm - 2.0) * (dm - 3.0) / ((2.0 * dp - 2.0) * (2.0 * dp - 3.0));
  const double mean = dp * q1;
  return dp * (dp - 1.0) * q2 + mean - mean * mean;
}

std::int64_t full_pairs_chopdown_impl(Xoshiro256& gen, std::int64_t pairs,
                                      std::int64_t items, std::int64_t lo,
                                      std::int64_t hi) {
  // Mode-centred chop-down, exactly like hypergeometric_chopdown():
  // start from the (near-)mode, expand outwards via the adjacent-ratio
  // recurrence.
  auto mode =
      static_cast<std::int64_t>(std::floor(full_pairs_mean(pairs, items)));
  mode = std::clamp(mode, lo, hi);
  const double log_fm = log_choose(pairs, mode) +
                        log_choose(pairs - mode, items - 2 * mode) +
                        static_cast<double>(items - 2 * mode) *
                            0.6931471805599453 -  // ln 2
                        log_choose(2 * pairs, items);
  const double fm = std::exp(log_fm);
  return chop_down_from_mode(gen, lo, hi, mode, fm, [&](std::int64_t t) {
    return full_pairs_ratio_up(pairs, items, t);
  });
}

std::int64_t full_pairs_hrua(Xoshiro256& gen, std::int64_t pairs,
                             std::int64_t items, std::int64_t lo,
                             std::int64_t hi) {
  const double mean = full_pairs_mean(pairs, items);
  const double var = full_pairs_variance(pairs, items);
  // floor(mean) is within one of the mode; the rejection kernel needs the
  // exact argmax (an underestimated f(mode) would shrink the hat), so
  // climb the log-concave pmf via the adjacent ratio — O(1) steps.
  auto mode = std::clamp(static_cast<std::int64_t>(std::floor(mean)), lo, hi);
  while (mode < hi && full_pairs_ratio_up(pairs, items, mode) > 1.0) ++mode;
  while (mode > lo && full_pairs_ratio_up(pairs, items, mode - 1) < 1.0)
    --mode;
  constexpr double kLn2 = 0.6931471805599453;
  const double ditems = static_cast<double>(items);
  const double dtail = static_cast<double>(pairs - items);
  return hrua_sample(
      gen, lo, hi, mean, var, mode,
      [=](double t) {  // numerator of f(t+1)/f(t)
        const double b = ditems - 2.0 * t;
        return b * (b - 1.0);
      },
      [=](double t) {  // denominator of f(t+1)/f(t)
        return 4.0 * (t + 1.0) * (dtail + t + 1.0);
      },
      [&](std::int64_t t) {
        // log f(t) up to a constant: the C(p,·)·C(p−t,·) product
        // telescopes to −lf(t) − lf(m−2t) − lf(p−m+t) + (m−2t)·ln2.
        return -(log_fact(t) + log_fact(items - 2 * t) +
                 log_fact(pairs - items + t)) +
               static_cast<double>(items - 2 * t) * kLn2;
      });
}

}  // namespace

bool full_pairs_uses_rejection(std::int64_t pairs, std::int64_t items) {
  full_pairs_validate(pairs, items);
  const std::int64_t lo = std::max<std::int64_t>(0, items - pairs);
  const std::int64_t hi = items / 2;
  if (lo == hi) return false;
  // The chop-down setup's largest log_fact argument is 2·pairs.
  return rejection_pays(full_pairs_variance(pairs, items), 2 * pairs);
}

std::int64_t full_pairs_chopdown(Xoshiro256& gen, std::int64_t pairs,
                                 std::int64_t items) {
  full_pairs_validate(pairs, items);
  const std::int64_t lo = std::max<std::int64_t>(0, items - pairs);
  const std::int64_t hi = items / 2;
  if (lo == hi) return lo;
  return full_pairs_chopdown_impl(gen, pairs, items, lo, hi);
}

std::int64_t full_pairs(Xoshiro256& gen, std::int64_t pairs,
                        std::int64_t items) {
  full_pairs_validate(pairs, items);
  const std::int64_t lo = std::max<std::int64_t>(0, items - pairs);
  const std::int64_t hi = items / 2;
  if (lo == hi) return lo;
  const std::int64_t t =
      rejection_pays(full_pairs_variance(pairs, items), 2 * pairs)
          ? full_pairs_hrua(gen, pairs, items, lo, hi)
          : full_pairs_chopdown_impl(gen, pairs, items, lo, hi);
  SIM_ASSERT(t >= lo && t <= hi);  // doubly-filled slots within support
  return t;
}

}  // namespace divpp::rng
