#include "rng/discrete.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.h"

namespace divpp::rng {

namespace {

/// log(x!) for integer x: table lookup below kLogFactTable, Stirling
/// series above.  Every pmf argument in this file is an integer count,
/// so this replaces std::lgamma (~13 ns) with ~2 ns lookups in the small
/// range the chop-down walks live in; the Stirling branch is accurate to
/// ~1e-16 relative at x >= 1024 (the next omitted term is O(x^{-7})).
constexpr std::int64_t kLogFactTable = 1024;

double log_fact(std::int64_t x) {
  static const std::vector<double> table = [] {
    std::vector<double> t(static_cast<std::size_t>(kLogFactTable));
    t[0] = 0.0;
    // Sums of logs drift; lgamma each entry instead (one-time cost).
    for (std::int64_t i = 1; i < kLogFactTable; ++i)
      t[static_cast<std::size_t>(i)] =
          std::lgamma(static_cast<double>(i) + 1.0);
    return t;
  }();
  if (x < kLogFactTable) return table[static_cast<std::size_t>(x)];
  const double d = static_cast<double>(x);
  const double inv = 1.0 / d;
  const double inv2 = inv * inv;
  return (d + 0.5) * std::log(d) - d + 0.9189385332046727 +  // ln√(2π)
         inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0));
}

/// log C(n, k) on integers via log_fact.
double log_choose(std::int64_t n, std::int64_t k) {
  return log_fact(n) - log_fact(k) - log_fact(n - k);
}

/// Mode-centred chop-down inversion over the integer support [lo, hi]:
/// one uniform is split against the pmf starting at `mode` (value `fm`)
/// and expanding outwards, every value after the first coming from the
/// exact adjacent-ratio recurrence ratio_up(x) = f(x+1)/f(x).  Expected
/// O(1 + sd) pmf evaluations.  Shared by hypergeometric() and
/// full_pairs(); the outward order is a fixed deterministic enumeration
/// of the support, so the inversion is exact for any log-concave or
/// not-so-concave pmf alike.
template <class RatioUp>
std::int64_t chop_down_from_mode(Xoshiro256& gen, std::int64_t lo,
                                 std::int64_t hi, std::int64_t mode,
                                 double fm, RatioUp&& ratio_up) {
  while (true) {
    double u = uniform01(gen);
    std::int64_t up = mode;
    std::int64_t down = mode;
    double fu = fm;
    double fd = fm;
    u -= fm;
    if (u <= 0.0) return mode;
    while (up < hi || down > lo) {
      if (up < hi) {
        fu *= ratio_up(up);
        ++up;
        u -= fu;
        if (u <= 0.0) return up;
      }
      if (down > lo) {
        fd /= ratio_up(down - 1);
        --down;
        u -= fd;
        if (u <= 0.0) return down;
      }
    }
    // Float rounding left a sliver of u unassigned (probability ~1e-16):
    // redraw rather than clamp, keeping the sampler bias-free.
  }
}

/// BINV: chop-down inversion from 0.  Exact; expected O(1 + n·p) time, so
/// callers only use it when n·min(p, 1-p) is small.  \pre 0 < p <= 0.5.
std::int64_t binomial_inversion(Xoshiro256& gen, std::int64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  // q^n; n·p small implies n·log1p(-p) >= -O(30), no underflow.
  const double r0 = std::exp(static_cast<double>(n) * std::log1p(-p));
  while (true) {
    double r = r0;
    double u = uniform01(gen);
    std::int64_t x = 0;
    while (u > r) {
      u -= r;
      ++x;
      if (x > n) break;  // float-rounding tail: reject and redraw
      r *= (a / static_cast<double>(x) - s);
    }
    if (x <= n) return x;
  }
}

/// BTPE (Kachitvichyanukul & Schmeiser 1988): rejection from a
/// triangle + parallelogram + two exponential tails fitted around the
/// mode, with a squeeze and a final Stirling-corrected exact test.
/// O(1) expected time for any (n, p).  \pre n·min(p,1-p) >= 30.
std::int64_t binomial_btpe(Xoshiro256& gen, std::int64_t n, double p) {
  const double r = std::min(p, 1.0 - p);
  const double q = 1.0 - r;
  const double fm = static_cast<double>(n) * r + r;
  const auto m = static_cast<std::int64_t>(std::floor(fm));
  const double nrq = static_cast<double>(n) * r * q;
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = static_cast<double>(m) + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + static_cast<double>(m));
  double a = (fm - xl) / (fm - xl * r);
  const double laml = a * (1.0 + a / 2.0);
  a = (xr - fm) / (xr * q);
  const double lamr = a * (1.0 + a / 2.0);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / laml;
  const double p4 = p3 + c / lamr;

  while (true) {
    // Region draw: u picks the envelope piece, v is the rejection uniform.
    const double u = uniform01(gen) * p4;
    double v = uniform01(gen);
    std::int64_t y;
    bool accepted = false;
    if (u <= p1) {
      // Triangle: accept immediately.
      y = static_cast<std::int64_t>(std::floor(xm - p1 * v + u));
      accepted = true;
    } else if (u <= p2) {
      // Parallelogram.
      const double x = xl + (u - p1) / c;
      v = v * c + 1.0 - std::abs(static_cast<double>(m) - x + 0.5) / p1;
      if (v > 1.0) continue;
      y = static_cast<std::int64_t>(std::floor(x));
    } else if (u <= p3) {
      // Left exponential tail.
      y = static_cast<std::int64_t>(std::floor(xl + std::log(v) / laml));
      if (y < 0) continue;
      v = v * (u - p2) * laml;
    } else {
      // Right exponential tail.
      y = static_cast<std::int64_t>(std::floor(xr - std::log(v) / lamr));
      if (y > n) continue;
      v = v * (u - p3) * lamr;
    }

    if (!accepted) {
      const std::int64_t k = std::llabs(y - m);
      if (k <= 20 || static_cast<double>(k) >= nrq / 2.0 - 1.0) {
        // Direct pmf-ratio evaluation f(y)/f(m) by recurrence.
        const double s = r / q;
        a = s * static_cast<double>(n + 1);
        double f = 1.0;
        if (m < y) {
          for (std::int64_t i = m + 1; i <= y; ++i)
            f *= (a / static_cast<double>(i) - s);
        } else if (m > y) {
          for (std::int64_t i = y + 1; i <= m; ++i)
            f /= (a / static_cast<double>(i) - s);
        }
        if (v > f) continue;
      } else {
        // Squeeze on log f(y)/f(m), then the exact Stirling-series test.
        const double kd = static_cast<double>(k);
        const double rho =
            (kd / nrq) *
            ((kd * (kd / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
        const double t = -kd * kd / (2.0 * nrq);
        const double alv = std::log(v);
        if (alv < t - rho) {
          // accepted by squeeze
        } else if (alv > t + rho) {
          continue;
        } else {
          const double x1 = static_cast<double>(y + 1);
          const double f1 = static_cast<double>(m + 1);
          const double z = static_cast<double>(n + 1 - m);
          const double w = static_cast<double>(n - y + 1);
          const double x2 = x1 * x1;
          const double f2 = f1 * f1;
          const double z2 = z * z;
          const double w2 = w * w;
          const auto stirling = [](double v2, double v1) {
            return (13860.0 -
                    (462.0 - (132.0 - (99.0 - 140.0 / v2) / v2) / v2) / v2) /
                   v1 / 166320.0;
          };
          // log f(y)/f(m) = lg(m+1) + lg(n−m+1) − lg(y+1) − lg(n−y+1)
          // + (y−m)·log(r/q): the Stirling corrections of the numerator
          // terms (f1, z) enter positively, those of the denominator
          // terms (x1, w) negatively.
          const double bound =
              xm * std::log(f1 / x1) +
              (static_cast<double>(n - m) + 0.5) * std::log(z / w) +
              static_cast<double>(y - m) * std::log(w * r / (x1 * q)) +
              stirling(f2, f1) + stirling(z2, z) - stirling(x2, x1) -
              stirling(w2, w);
          if (alv > bound) continue;
        }
      }
    }
    return p > 0.5 ? n - y : y;
  }
}

}  // namespace

std::int64_t binomial(Xoshiro256& gen, std::int64_t n, double p) {
  if (n < 0) throw std::invalid_argument("binomial: n must be >= 0");
  if (!(p >= 0.0) || p > 1.0)
    throw std::invalid_argument("binomial: p must be in [0, 1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const double pr = std::min(p, 1.0 - p);
  if (static_cast<double>(n) * pr < 30.0) {
    const std::int64_t x = binomial_inversion(gen, n, pr);
    return p > 0.5 ? n - x : x;
  }
  return binomial_btpe(gen, n, p);
}

std::int64_t hypergeometric(Xoshiro256& gen, std::int64_t total,
                            std::int64_t marked, std::int64_t draws) {
  if (total < 0 || marked < 0 || marked > total || draws < 0 ||
      draws > total)
    throw std::invalid_argument(
        "hypergeometric: need 0 <= marked <= total and 0 <= draws <= total");
  const std::int64_t lo = std::max<std::int64_t>(0, draws - (total - marked));
  const std::int64_t hi = std::min(draws, marked);
  if (lo == hi) return lo;

  // Chop-down inversion started at the mode and expanding outwards: the
  // expected number of pmf evaluations is O(1 + sd), and every pmf value
  // after the first comes from the exact adjacent-ratio recurrence
  //   f(x+1)/f(x) = (marked-x)(draws-x) / ((x+1)(total-marked-draws+x+1)).
  const double dn = static_cast<double>(total);
  const double dk = static_cast<double>(marked);
  const double dm = static_cast<double>(draws);
  auto mode = static_cast<std::int64_t>(
      std::floor((dm + 1.0) * (dk + 1.0) / (dn + 2.0)));
  mode = std::clamp(mode, lo, hi);
  const double log_fm = log_choose(marked, mode) +
                        log_choose(total - marked, draws - mode) -
                        log_choose(total, draws);
  const double fm = std::exp(log_fm);
  return chop_down_from_mode(gen, lo, hi, mode, fm, [&](std::int64_t x) {
    // f(x+1)/f(x)
    return (dk - static_cast<double>(x)) * (dm - static_cast<double>(x)) /
           ((static_cast<double>(x) + 1.0) *
            (dn - dk - dm + static_cast<double>(x) + 1.0));
  });
}

std::vector<std::int64_t> multinomial(Xoshiro256& gen, std::int64_t trials,
                                      std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("multinomial: empty weight vector");
  if (trials < 0) throw std::invalid_argument("multinomial: trials < 0");
  double remaining_weight = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0))
      throw std::invalid_argument("multinomial: negative weight");
    remaining_weight += w;
  }
  if (!(remaining_weight > 0.0))
    throw std::invalid_argument("multinomial: weights sum to zero");
  std::vector<std::int64_t> out(weights.size(), 0);
  std::int64_t remaining = trials;
  for (std::size_t i = 0; i + 1 < weights.size() && remaining > 0; ++i) {
    const double p =
        std::clamp(weights[i] / remaining_weight, 0.0, 1.0);
    const std::int64_t x = binomial(gen, remaining, p);
    out[i] = x;
    remaining -= x;
    remaining_weight -= weights[i];
    if (!(remaining_weight > 0.0)) break;  // all residual mass spent
  }
  out.back() = remaining;
  return out;
}

void multivariate_hypergeometric(Xoshiro256& gen,
                                 std::span<const std::int64_t> counts,
                                 std::int64_t draws,
                                 std::span<std::int64_t> out) {
  if (out.size() != counts.size())
    throw std::invalid_argument(
        "multivariate_hypergeometric: out size mismatch");
  std::int64_t pool = 0;
  for (const std::int64_t c : counts) {
    if (c < 0)
      throw std::invalid_argument(
          "multivariate_hypergeometric: negative count");
    pool += c;
  }
  if (draws < 0 || draws > pool)
    throw std::invalid_argument(
        "multivariate_hypergeometric: draws outside [0, sum(counts)]");
  std::int64_t remaining = draws;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (remaining == 0) {
      out[i] = 0;
      continue;
    }
    const std::int64_t x = hypergeometric(gen, pool, counts[i], remaining);
    out[i] = x;
    remaining -= x;
    pool -= counts[i];
  }
}

std::vector<std::int64_t> multivariate_hypergeometric(
    Xoshiro256& gen, std::span<const std::int64_t> counts,
    std::int64_t draws) {
  std::vector<std::int64_t> out(counts.size());
  multivariate_hypergeometric(gen, counts, draws, out);
  return out;
}

std::int64_t full_pairs(Xoshiro256& gen, std::int64_t pairs,
                        std::int64_t items) {
  if (pairs < 0 || items < 0 || items > 2 * pairs)
    throw std::invalid_argument(
        "full_pairs: need 0 <= items <= 2 * pairs");
  const std::int64_t lo = std::max<std::int64_t>(0, items - pairs);
  const std::int64_t hi = items / 2;
  if (lo == hi) return lo;

  // Mode-centred chop-down, exactly like hypergeometric(): start from
  // the (near-)mode, expand outwards via the adjacent-ratio recurrence
  //   f(t+1)/f(t) = (m−2t)(m−2t−1) / (4 (t+1) (p − m + t + 1)),
  // with m = items, p = pairs.
  const double dm = static_cast<double>(items);
  const double dp = static_cast<double>(pairs);
  // E[t] = p · C(m,2)/C(2p,2) = m(m−1)/(2(2p−1)) ≈ m²/4p.
  auto mode = static_cast<std::int64_t>(
      std::floor(dm * (dm - 1.0) / (2.0 * (2.0 * dp - 1.0))));
  mode = std::clamp(mode, lo, hi);
  const double log_fm = log_choose(pairs, mode) +
                        log_choose(pairs - mode, items - 2 * mode) +
                        static_cast<double>(items - 2 * mode) *
                            0.6931471805599453 -  // ln 2
                        log_choose(2 * pairs, items);
  const double fm = std::exp(log_fm);
  return chop_down_from_mode(gen, lo, hi, mode, fm, [&](std::int64_t t) {
    // f(t+1)/f(t)
    const double b = dm - 2.0 * static_cast<double>(t);
    return b * (b - 1.0) /
           (4.0 * (static_cast<double>(t) + 1.0) *
            (dp - dm + static_cast<double>(t) + 1.0));
  });
}

}  // namespace divpp::rng
