#ifndef DIVPP_RNG_DISCRETE_H
#define DIVPP_RNG_DISCRETE_H

/// \file discrete.h
/// Exact samplers for the classical counting distributions.
///
/// These are the primitives the collision-batch engine
/// (batch/collision_batch.h) is built on: a batch of interactions is
/// applied to the lumped count state not one draw at a time but through
/// binomial / hypergeometric / multinomial splits, so the per-sample cost
/// of these functions bounds the per-batch cost of the engine.
///
///  * binomial()        — BINV inversion when n·min(p,1-p) is small,
///    BTPE-style triangle/parallelogram/exponential rejection otherwise
///    (Kachitvichyanukul & Schmeiser 1988), so the cost is O(1) for any
///    (n, p) instead of O(n·p);
///  * hypergeometric()  — chop-down inversion, started at 0 for small
///    expected counts and at the mode (expanding outwards) for large
///    ones: O(1 + sd) worst case with a tiny constant, which is O(n^{1/4})
///    for every draw the batch engine issues;
///  * multinomial()     — conditional binomial chain;
///  * multivariate_hypergeometric() — conditional hypergeometric chain
///    (sampling without replacement from per-class counts).
///
/// All samplers are *exact*: they realise the textbook pmf up to the
/// accuracy of double-precision pmf evaluation, not an asymptotic
/// approximation.  tests/test_discrete.cpp pins each of them against the
/// naive loop (n Bernoulli trials, urn draws one ball at a time) and
/// against the lgamma-evaluated pmf with chi-square tests under fixed
/// seeds.

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro.h"

namespace divpp::rng {

/// Number of successes in n independent Bernoulli(p) trials.
/// \pre n >= 0 and p in [0, 1].  O(1) expected time for all (n, p).
[[nodiscard]] std::int64_t binomial(Xoshiro256& gen, std::int64_t n,
                                    double p);

/// Number of marked items in a uniform sample of `draws` items, taken
/// without replacement from a population of `total` items of which
/// `marked` are marked.  \pre 0 <= marked <= total, 0 <= draws <= total.
/// Expected time O(1 + sd(result)).
[[nodiscard]] std::int64_t hypergeometric(Xoshiro256& gen, std::int64_t total,
                                          std::int64_t marked,
                                          std::int64_t draws);

/// Splits `trials` draws-with-replacement over categories with the given
/// probability weights (need not be normalised).  Conditional-binomial
/// chain: O(k) binomial() calls.  \pre weights non-empty, all >= 0,
/// sum > 0, trials >= 0.
[[nodiscard]] std::vector<std::int64_t> multinomial(
    Xoshiro256& gen, std::int64_t trials, std::span<const double> weights);

/// Splits a without-replacement sample of size `draws` over categories
/// holding `counts` items each (a random `draws`-subset of the pooled
/// population, tallied by category).  Writes the per-category sample
/// sizes to `out` (same length as `counts`).  Conditional hypergeometric
/// chain: O(k) hypergeometric() calls.
/// \pre draws <= sum(counts); out.size() == counts.size().
void multivariate_hypergeometric(Xoshiro256& gen,
                                 std::span<const std::int64_t> counts,
                                 std::int64_t draws,
                                 std::span<std::int64_t> out);

/// Allocating convenience overload of the above.
[[nodiscard]] std::vector<std::int64_t> multivariate_hypergeometric(
    Xoshiro256& gen, std::span<const std::int64_t> counts,
    std::int64_t draws);

/// Number of *completely filled* slot-pairs when `items` items occupy a
/// uniformly random `items`-subset of the 2·`pairs` slots of `pairs`
/// disjoint two-slot bins.  pmf
///   P(t) = C(pairs, t) · C(pairs − t, items − 2t) · 2^{items−2t}
///          / C(2·pairs, items),
/// support max(0, items − pairs) <= t <= items/2.  This is the
/// monochromatic-pair count of a uniform perfect matching processed one
/// colour at a time — the O(k) replacement for the O(k²)
/// contingency-table pass in the collision-batch engine.  Sampled by
/// mode-centred chop-down, O(1 + sd) expected time.
/// \pre pairs >= 0 and 0 <= items <= 2·pairs.
[[nodiscard]] std::int64_t full_pairs(Xoshiro256& gen, std::int64_t pairs,
                                      std::int64_t items);

}  // namespace divpp::rng

#endif  // DIVPP_RNG_DISCRETE_H
