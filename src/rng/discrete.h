#ifndef DIVPP_RNG_DISCRETE_H
#define DIVPP_RNG_DISCRETE_H

/// \file discrete.h
/// Exact samplers for the classical counting distributions.
///
/// These are the primitives the collision-batch engine
/// (batch/collision_batch.h) is built on: a batch of interactions is
/// applied to the lumped count state not one draw at a time but through
/// binomial / hypergeometric / multinomial splits, so the per-sample cost
/// of these functions bounds the per-batch cost of the engine.
///
///  * binomial()        — BINV inversion when n·min(p,1-p) is small,
///    BTPE-style triangle/parallelogram/exponential rejection otherwise
///    (Kachitvichyanukul & Schmeiser 1988), so the cost is O(1) for any
///    (n, p) instead of O(n·p);
///  * hypergeometric()  — HRUA-style ratio-of-uniforms rejection
///    (Stadlober 1990) in O(1) expected time when the distribution is
///    wide (variance >= kRejectionVarianceCutoff), falling back to the
///    PR-3 mode-centred chop-down kernel below the cutoff, where the
///    O(1 + sd) walk is cheaper than the rejection setup and the
///    historical chi-square pins keep exercising the inversion path;
///  * full_pairs()      — the same two-regime dispatch over the
///    slot-occupancy law of a uniform perfect matching;
///  * multinomial()     — conditional binomial chain;
///  * multivariate_hypergeometric() — conditional hypergeometric chain
///    (sampling without replacement from per-class counts).
///
/// The rejection kernels are what make the collision-batch engine's
/// per-batch constant independent of n: every draw the batcher issues
/// used to cost O(n^{1/4}) pmf evaluations, now O(1) — see bench
/// e20_batch and BENCH_pr4.json for the measured effect on the
/// batch-vs-jump crossover.
///
/// All samplers are *exact*: they realise the textbook pmf up to the
/// accuracy of double-precision pmf evaluation, not an asymptotic
/// approximation.  tests/test_discrete.cpp pins each of them against the
/// naive loop (n Bernoulli trials, urn draws one ball at a time) and
/// against the lgamma-evaluated pmf with chi-square tests under fixed
/// seeds, in both the inversion and the rejection regime, and pins the
/// dispatchers bit-identically to the chop-down kernels below the
/// cutoff.

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro.h"

namespace divpp::rng {

/// Number of successes in n independent Bernoulli(p) trials.
/// \pre n >= 0 and p in [0, 1].  O(1) expected time for all (n, p).
[[nodiscard]] std::int64_t binomial(Xoshiro256& gen, std::int64_t n,
                                    double p);

/// Dispatch thresholds between the chop-down inversion kernels and the
/// HRUA ratio-of-uniforms rejection kernels.  A draw uses rejection
/// (O(1) expected time) when its variance is at least
/// kRejectionVarianceCutoff AND its pmf arguments are beyond the
/// log-factorial table (where the chop-down setup pays ~6 Stirling
/// evaluations); with all arguments inside the table the setup is a
/// handful of lookups and the O(1 + sd) walk stays cheaper up to
/// kRejectionInTableVarianceCutoff (~25 standard deviations of walk).
/// Every path is exact, so the cutoffs are distributionally invisible;
/// they are pinned by bit-identity tests (tests/test_discrete.cpp) so
/// moving them is a deliberate act.
inline constexpr double kRejectionVarianceCutoff = 9.0;
inline constexpr double kRejectionInTableVarianceCutoff = 625.0;

/// Largest argument the log-factorial lookup table covers (the
/// in-table/Stirling boundary the dispatch above refers to).
inline constexpr std::int64_t kLogFactTableSize = 65536;

/// Forces the shared log-factorial table to exist now.  The table is a
/// lazily built function-local static (thread-safe, built once per
/// process), so the first sampler to touch it pays the 64 Ki lgamma
/// build; shared contexts (context/sampler_context.h) warm it eagerly so
/// no scenario pays that cost mid-run.
void warm_log_fact_table();

/// Number of marked items in a uniform sample of `draws` items, taken
/// without replacement from a population of `total` items of which
/// `marked` are marked.  \pre 0 <= marked <= total, 0 <= draws <= total.
/// O(1) expected time: HRUA rejection for wide distributions
/// (variance >= kRejectionVarianceCutoff), chop-down inversion
/// (hypergeometric_chopdown) below.
[[nodiscard]] std::int64_t hypergeometric(Xoshiro256& gen, std::int64_t total,
                                          std::int64_t marked,
                                          std::int64_t draws);

/// The PR-3 mode-centred chop-down kernel, exact for every parameter set
/// in O(1 + sd) expected pmf evaluations.  hypergeometric() delegates to
/// this below kRejectionVarianceCutoff; exposed so tests can pin the
/// dispatcher bit-identically to the fallback and chi-square both paths
/// independently.
[[nodiscard]] std::int64_t hypergeometric_chopdown(Xoshiro256& gen,
                                                   std::int64_t total,
                                                   std::int64_t marked,
                                                   std::int64_t draws);

/// True when hypergeometric() takes the HRUA rejection path for these
/// parameters (exposed for the fallback-threshold tests).
[[nodiscard]] bool hypergeometric_uses_rejection(std::int64_t total,
                                                 std::int64_t marked,
                                                 std::int64_t draws);

/// Splits `trials` draws-with-replacement over categories with the given
/// probability weights (need not be normalised).  Conditional-binomial
/// chain: O(k) binomial() calls.  \pre weights non-empty, all >= 0,
/// sum > 0, trials >= 0.
[[nodiscard]] std::vector<std::int64_t> multinomial(
    Xoshiro256& gen, std::int64_t trials, std::span<const double> weights);

/// Splits a without-replacement sample of size `draws` over categories
/// holding `counts` items each (a random `draws`-subset of the pooled
/// population, tallied by category).  Writes the per-category sample
/// sizes to `out` (same length as `counts`).  Conditional hypergeometric
/// chain: O(k) hypergeometric() calls.
/// \pre draws <= sum(counts); out.size() == counts.size().
void multivariate_hypergeometric(Xoshiro256& gen,
                                 std::span<const std::int64_t> counts,
                                 std::int64_t draws,
                                 std::span<std::int64_t> out);

/// Allocating convenience overload of the above.
[[nodiscard]] std::vector<std::int64_t> multivariate_hypergeometric(
    Xoshiro256& gen, std::span<const std::int64_t> counts,
    std::int64_t draws);

/// Number of *completely filled* slot-pairs when `items` items occupy a
/// uniformly random `items`-subset of the 2·`pairs` slots of `pairs`
/// disjoint two-slot bins.  pmf
///   P(t) = C(pairs, t) · C(pairs − t, items − 2t) · 2^{items−2t}
///          / C(2·pairs, items),
/// support max(0, items − pairs) <= t <= items/2.  This is the
/// monochromatic-pair count of a uniform perfect matching processed one
/// colour at a time — the O(k) replacement for the O(k²)
/// contingency-table pass in the collision-batch engine.  O(1) expected
/// time: the pmf is log-concave, so the same HRUA rejection kernel as
/// hypergeometric() applies above kRejectionVarianceCutoff; mode-centred
/// chop-down below.
/// \pre pairs >= 0 and 0 <= items <= 2·pairs.
[[nodiscard]] std::int64_t full_pairs(Xoshiro256& gen, std::int64_t pairs,
                                      std::int64_t items);

/// The chop-down kernel of full_pairs(), exact for every parameter set;
/// the dispatcher delegates to it below kRejectionVarianceCutoff
/// (exposed for the same bit-identity pins as the hypergeometric pair).
[[nodiscard]] std::int64_t full_pairs_chopdown(Xoshiro256& gen,
                                               std::int64_t pairs,
                                               std::int64_t items);

/// True when full_pairs() takes the HRUA rejection path.
[[nodiscard]] bool full_pairs_uses_rejection(std::int64_t pairs,
                                             std::int64_t items);

}  // namespace divpp::rng

#endif  // DIVPP_RNG_DISCRETE_H
