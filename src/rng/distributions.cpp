#include "rng/distributions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace divpp::rng {

std::int64_t uniform_below(Xoshiro256& gen, std::int64_t bound) {
  if (bound < 1) throw std::invalid_argument("uniform_below: bound must be >= 1");
  const auto range = static_cast<std::uint64_t>(bound);
  // Lemire's multiply-shift with rejection: exact uniformity.
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::int64_t>(m >> 64);
}

std::int64_t uniform_int(Xoshiro256& gen, std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo must be <= hi");
  return lo + uniform_below(gen, hi - lo + 1);
}

double uniform01(Xoshiro256& gen) {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

bool bernoulli(Xoshiro256& gen, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01(gen) < p;
}

std::int64_t geometric_failures(Xoshiro256& gen, double p) {
  if (!(p > 0.0) || p > 1.0)
    throw std::invalid_argument("geometric_failures: p must be in (0, 1]");
  if (p == 1.0) return 0;  // deterministic: no uniform consumed
  // Inversion: floor(log(U) / log(1-p)) with U in (0, 1].
  double u = 1.0 - uniform01(gen);  // in (0, 1]
  const double denom = std::log1p(-p);
  const double value = std::floor(std::log(u) / denom);
  // Overflow guard: for p ≈ 0 the quotient exceeds the int64 range (the
  // smallest representable U bounds |log U| by ~37, so value can reach
  // ~37/p, or ±inf/NaN when log1p underflows to -0); clamp to the
  // documented ceiling instead of invoking UB in the float→int
  // conversion.  Negated comparison so NaN also lands on the ceiling.
  if (!(value < static_cast<double>(kGeometricFailuresCeiling)))
    return kGeometricFailuresCeiling;
  return static_cast<std::int64_t>(value);
}

std::pair<std::int64_t, std::int64_t> two_distinct(Xoshiro256& gen,
                                                   std::int64_t n) {
  if (n < 2) throw std::invalid_argument("two_distinct: need n >= 2");
  const std::int64_t first = uniform_below(gen, n);
  std::int64_t second = uniform_below(gen, n - 1);
  if (second >= first) ++second;
  return {first, second};
}

std::int64_t sample_discrete(Xoshiro256& gen,
                             std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("sample_discrete: empty weight vector");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("sample_discrete: negative weight");
    total += w;
  }
  if (!(total > 0.0))
    throw std::invalid_argument("sample_discrete: weights sum to zero");
  double target = uniform01(gen) * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return static_cast<std::int64_t>(i);
  }
  return static_cast<std::int64_t>(weights.size() - 1);
}

std::int64_t sample_counts(Xoshiro256& gen,
                           std::span<const std::int64_t> counts,
                           std::int64_t total) {
  if (total <= 0) throw std::invalid_argument("sample_counts: total <= 0");
  std::int64_t target = uniform_below(gen, total);
  for (std::size_t i = 0; i + 1 < counts.size(); ++i) {
    target -= counts[i];
    if (target < 0) return static_cast<std::int64_t>(i);
  }
  return static_cast<std::int64_t>(counts.size() - 1);
}

void shuffle(Xoshiro256& gen, std::span<std::int64_t> values) {
  const auto n = static_cast<std::int64_t>(values.size());
  for (std::int64_t i = n - 1; i > 0; --i) {
    const std::int64_t j = uniform_below(gen, i + 1);
    std::swap(values[static_cast<std::size_t>(i)],
              values[static_cast<std::size_t>(j)]);
  }
}

std::vector<std::int64_t> random_permutation(Xoshiro256& gen, std::int64_t n) {
  if (n < 0) throw std::invalid_argument("random_permutation: n must be >= 0");
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  shuffle(gen, perm);
  return perm;
}

}  // namespace divpp::rng
