#ifndef DIVPP_RNG_DISTRIBUTIONS_H
#define DIVPP_RNG_DISTRIBUTIONS_H

/// \file distributions.h
/// Bias-free sampling primitives used by the simulation engines.
///
/// All bounded integer sampling goes through Lemire's multiply-shift
/// method with rejection, which is exact (no modulo bias) and branch-light.
/// Counts and indices are signed 64-bit throughout the library (per the
/// C++ Core Guidelines' advice to avoid unsigned arithmetic), so these
/// helpers take and return std::int64_t.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "rng/xoshiro.h"

namespace divpp::rng {

/// Uniform draw from {0, 1, ..., bound-1}.  \pre bound >= 1.
[[nodiscard]] std::int64_t uniform_below(Xoshiro256& gen, std::int64_t bound);

/// Uniform draw from {lo, ..., hi} inclusive.  \pre lo <= hi.
[[nodiscard]] std::int64_t uniform_int(Xoshiro256& gen, std::int64_t lo,
                                       std::int64_t hi);

/// Uniform double in [0, 1) with 53 random mantissa bits.
[[nodiscard]] double uniform01(Xoshiro256& gen);

/// Bernoulli trial; returns true with probability p (clamped to [0,1]).
[[nodiscard]] bool bernoulli(Xoshiro256& gen, double p);

/// Ceiling returned by geometric_failures() when inversion overflows.
/// For p ≈ 0 the inversion value floor(log U / log(1-p)) can exceed the
/// int64 range (p = 1e-300 yields ~3.7e301); any value this large is far
/// beyond every horizon the engines use (jump chains cap skips at the
/// window edge), so clamping is observationally exact.  The constant is
/// below INT64_MAX by a comfortable margin so callers may add small
/// offsets (e.g. `time + skip`) without overflow.
inline constexpr std::int64_t kGeometricFailuresCeiling =
    std::int64_t{9'000'000'000'000'000'000};  // 9.0e18 < 2^63 - 1

/// Number of failures before the first success in iid Bernoulli(p) trials
/// (i.e. a geometric variable supported on {0, 1, 2, ...}).
/// Sampled by inversion so a single uniform suffices.  \pre p in (0, 1].
/// Edge behaviour: p == 1 returns 0 *without consuming a uniform* (the
/// outcome is deterministic, and skipping the draw keeps jump-chain RNG
/// sequences aligned across engines that special-case certain steps);
/// when p is so small that inversion exceeds the int64 range the result
/// is clamped to kGeometricFailuresCeiling (see its comment).
[[nodiscard]] std::int64_t geometric_failures(Xoshiro256& gen, double p);

/// Uniformly random pair of *distinct* indices from {0, ..., n-1}.
/// \pre n >= 2.
[[nodiscard]] std::pair<std::int64_t, std::int64_t> two_distinct(
    Xoshiro256& gen, std::int64_t n);

/// Samples an index i with probability weights[i] / sum(weights) by linear
/// scan.  Retained as the O(k) *reference* sampler: the engines' hot paths
/// use the Fenwick trees in sampling/fenwick.h, and the distributional
/// tests pin those trees against this scan.
/// \pre weights non-empty, all >= 0, sum > 0.
[[nodiscard]] std::int64_t sample_discrete(Xoshiro256& gen,
                                           std::span<const double> weights);

/// Same as sample_discrete but over integer counts — the O(k) reference
/// for sampling::FenwickCounts.  \pre total == sum(counts) > 0.
[[nodiscard]] std::int64_t sample_counts(Xoshiro256& gen,
                                         std::span<const std::int64_t> counts,
                                         std::int64_t total);

/// Fisher–Yates shuffle (deterministic given the generator state).
void shuffle(Xoshiro256& gen, std::span<std::int64_t> values);

/// A uniformly random permutation of {0, ..., n-1}.
[[nodiscard]] std::vector<std::int64_t> random_permutation(Xoshiro256& gen,
                                                           std::int64_t n);

// The Walker/Vose alias table moved to sampling/alias.h
// (divpp::sampling::AliasTable) as part of the sampling subsystem.

}  // namespace divpp::rng

#endif  // DIVPP_RNG_DISTRIBUTIONS_H
