#include "rng/xoshiro.h"

namespace divpp::rng {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // Expand the seed into 256 bits of state; splitmix64 guarantees the
  // all-zero state (which xoshiro cannot leave) is never produced.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64_next(s);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;

  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);

  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};

  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (std::uint64_t{1} << bit)) != 0) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

Xoshiro256 Xoshiro256::from_state(
    const std::array<std::uint64_t, 4>& state) {
  if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0)
    throw std::invalid_argument(
        "Xoshiro256::from_state: the all-zero state is not a valid "
        "xoshiro256** state");
  Xoshiro256 gen;
  gen.state_ = state;
  return gen;
}

Xoshiro256 Xoshiro256::fork() noexcept {
  jump();
  Xoshiro256 child = *this;
  child.jump();
  return child;
}

}  // namespace divpp::rng
