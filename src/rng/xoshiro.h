#ifndef DIVPP_RNG_XOSHIRO_H
#define DIVPP_RNG_XOSHIRO_H

/// \file xoshiro.h
/// Deterministic pseudo-random number substrate for all simulations.
///
/// The library uses xoshiro256** (Blackman & Vigna) seeded through
/// splitmix64.  Every stochastic component in divpp takes one of these
/// generators (or a seed) explicitly, so every experiment is reproducible
/// bit-for-bit from the seeds it prints.

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace divpp::rng {

/// One step of the splitmix64 generator; also used as a seed expander.
/// \param state is advanced in place; the return value is the output.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — a small, fast, high-quality 64-bit PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// plugged into <random> distributions, although divpp ships its own
/// bias-free bounded sampling (see distributions.h).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from \p seed via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Produces the next 64 random bits.
  result_type operator()() noexcept;

  /// Smallest value produced (UniformRandomBitGenerator requirement).
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  /// Largest value produced (UniformRandomBitGenerator requirement).
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Equivalent to 2^128 calls of operator(); used to derive parallel
  /// streams that are guaranteed not to overlap.
  void jump() noexcept;

  /// Returns an independent generator: a copy of *this after a jump,
  /// while *this itself is also advanced by a jump.  Forked streams are
  /// non-overlapping for any realistic number of draws.
  [[nodiscard]] Xoshiro256 fork() noexcept;

  /// The raw 256-bit state, exposed for tests and checkpointing.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

  /// Rebuilds a generator from a raw 256-bit state (checkpoint v2
  /// restore): the returned generator continues the stream bit-for-bit
  /// from where state() was captured.
  /// \throws std::invalid_argument on the all-zero state, which xoshiro
  /// can neither produce nor leave.
  [[nodiscard]] static Xoshiro256 from_state(
      const std::array<std::uint64_t, 4>& state);

  friend bool operator==(const Xoshiro256&, const Xoshiro256&) = default;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace divpp::rng

#endif  // DIVPP_RNG_XOSHIRO_H
