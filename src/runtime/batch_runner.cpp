#include "runtime/batch_runner.h"

namespace divpp::runtime {

rng::Xoshiro256 replica_rng(std::uint64_t seed, std::int64_t replica) {
  if (replica < 0)
    throw std::invalid_argument("replica_rng: negative replica index");
  rng::Xoshiro256 gen(seed);
  for (std::int64_t r = 0; r < replica; ++r) gen.jump();
  return gen;
}

}  // namespace divpp::runtime
