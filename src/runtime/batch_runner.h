#ifndef DIVPP_RUNTIME_BATCH_RUNNER_H
#define DIVPP_RUNTIME_BATCH_RUNNER_H

/// \file batch_runner.h
/// Deterministic parallel execution of independent simulation replicas.
///
/// The contract that makes `--threads=N` safe for experiments:
///
///   1. Replica r always receives the generator `replica_rng(seed, r)`,
///      which is Xoshiro256(seed) advanced by exactly r `jump()` calls.
///      Jumps are 2^128 steps apart, so replica streams never overlap,
///      and the assignment depends only on (seed, r) — never on the
///      thread count or on which worker happens to claim the replica.
///   2. Results are collected into a vector indexed by replica, and any
///      reduction (OnlineStats, sums, ...) runs serially in replica
///      order after the batch completes.
///
/// Together these make every statistic bit-identical for a fixed seed at
/// any thread count; only the wall clock changes.

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "rng/xoshiro.h"
#include "runtime/thread_pool.h"
#include "stats/online_stats.h"

namespace divpp::runtime {

/// The generator replica \p replica reads from under seed \p seed:
/// Xoshiro256(seed) advanced by exactly \p replica jump() calls.
[[nodiscard]] rng::Xoshiro256 replica_rng(std::uint64_t seed,
                                          std::int64_t replica);

/// Wall-clock accounting for the most recent batch.
struct BatchTiming {
  std::int64_t replicas = 0;
  int threads = 1;
  double wall_seconds = 0.0;
};

/// Summary of a batch whose replicas each produced one double.
struct BatchStats {
  stats::OnlineStats stats;
  BatchTiming timing;
};

/// Fans independent replicas across a ThreadPool; see the file comment
/// for the determinism contract.
class BatchRunner {
 public:
  /// \p threads workers; 0 means one per hardware thread.
  explicit BatchRunner(int threads = 0)
      : pool_(threads), threads_(pool_.thread_count()) {}

  /// Worker count actually in use.
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Timing of the most recent map()/run_stats() call.
  [[nodiscard]] const BatchTiming& last_timing() const noexcept {
    return timing_;
  }

  /// Runs fn(replica_index, gen) for every replica in [0, replicas),
  /// with gen = replica_rng(seed, replica), and returns the results
  /// indexed by replica.  fn must not touch shared mutable state.
  template <class F>
  auto map(std::int64_t replicas, std::uint64_t seed, F&& fn)
      -> std::vector<
          std::invoke_result_t<F&, std::int64_t, rng::Xoshiro256&>> {
    using Result = std::invoke_result_t<F&, std::int64_t, rng::Xoshiro256&>;
    static_assert(!std::is_void_v<Result>,
                  "BatchRunner::map requires a value-returning replica");
    static_assert(!std::is_same_v<Result, bool>,
                  "std::vector<bool> packs bits into shared words, so "
                  "concurrent per-replica writes would race; return int "
                  "or char instead");
    if (replicas < 0)
      throw std::invalid_argument("BatchRunner: negative replica count");
    // Stream assignment is precomputed serially: one incremental jump per
    // replica, rather than r jumps for replica r.
    std::vector<rng::Xoshiro256> streams;
    streams.reserve(static_cast<std::size_t>(replicas));
    rng::Xoshiro256 base(seed);
    for (std::int64_t r = 0; r < replicas; ++r) {
      streams.push_back(base);
      base.jump();
    }
    std::vector<Result> results(static_cast<std::size_t>(replicas));
    const auto t0 = std::chrono::steady_clock::now();
    parallel_for(pool_, replicas, [&](std::int64_t r) {
      const auto index = static_cast<std::size_t>(r);
      results[index] = fn(r, streams[index]);
    });
    const auto t1 = std::chrono::steady_clock::now();
    timing_.replicas = replicas;
    timing_.threads = threads_;
    timing_.wall_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    return results;
  }

  /// map() for replicas producing a single double, reduced in replica
  /// order into an OnlineStats accumulator.
  template <class F>
  BatchStats run_stats(std::int64_t replicas, std::uint64_t seed, F&& fn) {
    const std::vector<double> values =
        map(replicas, seed, std::forward<F>(fn));
    BatchStats out;
    for (const double v : values) out.stats.add(v);
    out.timing = timing_;
    return out;
  }

 private:
  ThreadPool pool_;
  int threads_;
  BatchTiming timing_;
};

}  // namespace divpp::runtime

#endif  // DIVPP_RUNTIME_BATCH_RUNNER_H
