#include "runtime/durable_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>
#include <utility>

#include "check/counting_generator.h"
#include "core/checkpoint.h"
#include "fault/durable_file.h"
#include "runtime/window_math.h"

namespace divpp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

void validate_config(const core::CountSimulation& counts,
                     const DurableRunConfig& config) {
  if (config.checkpoint_period <= 0)
    throw std::invalid_argument("run_windows: checkpoint_period must be > 0");
  if (config.target_time < counts.time())
    throw std::invalid_argument(
        "run_windows: target_time is before the simulation clock");
  if (config.deadline_seconds < 0)
    throw std::invalid_argument("run_windows: negative deadline");
}

/// The windowed driver, shared by the untagged and tagged runs.  `Sim`
/// provides time()/advance_with()/canonicalize(); `counts` is the
/// wrapped CountSimulation (== sim for the untagged case).
template <class Sim>
std::string drive_windows(Sim& sim, const core::CountSimulation& counts,
                          rng::Xoshiro256& gen,
                          const DurableRunConfig& config) {
  validate_config(counts, config);
  const fault::FaultSchedule* faults = nullptr;
  bool audit = false;
#if DIVPP_FAULTS
  faults = config.faults != nullptr && !config.faults->empty()
               ? config.faults
               : nullptr;
  audit = faults != nullptr && faults->needs_draw_audit();
#endif
  const auto start = Clock::now();
  rng::Xoshiro256 window_start_gen = gen;
  std::int64_t draws = config.draws_offset;
  const std::int64_t period = config.checkpoint_period;
  std::string blob;
  std::int64_t now = sim.time();
  while (now < config.target_time) {
    const std::int64_t prev = now;
    // Next period-aligned boundary (absolute time), clamped to target
    // (runtime/window_math.h — shared with the parallel engine, so both
    // drivers visit the identical boundary sequence).
    const std::int64_t next =
        next_window_boundary(now, period, config.target_time);
    sim.advance_with(config.engine, next, gen);
    // Shed float drift exactly where a restore would rebuild from
    // scratch — this is what aligns golden and resumed trajectories.
    sim.canonicalize();
    now = next;
    if (audit) {
      const std::int64_t d = check::draws_between(
          window_start_gen, gen, check::CountingBitGenerator::kDefaultReplayCap);
      if (d < 0)
        throw std::runtime_error(
            "run_windows: draw audit lost the stream (window exceeded the "
            "replay cap)");
      draws += d;
      window_start_gen = gen;
    }
    if (config.deadline_seconds > 0) {
      const double elapsed =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              Clock::now() - start)
              .count();
      if (elapsed > config.deadline_seconds)
        throw DeadlineExceeded(
            "run_windows: replica " + std::to_string(config.replica) +
            " overran its deadline at time " + std::to_string(now));
    }
    blob = core::to_checkpoint_v2(sim, gen);
    const fault::Boundary boundary{config.replica,
                                   window_index_at(now, period), prev, now,
                                   audit ? draws : -1};
#if DIVPP_FAULTS
    if (faults != nullptr) faults->fire_before_checkpoint(boundary);
#endif
    if (!config.checkpoint_path.empty())
      fault::write_durable(config.checkpoint_path, blob);
    if (config.on_checkpoint) config.on_checkpoint(blob);
#if DIVPP_FAULTS
    if (faults != nullptr) faults->fire_after_checkpoint(boundary);
#else
    (void)boundary;
#endif
    // Drain check last: the boundary's checkpoint is already durable, so
    // a stopped run parks in a resumable state.
    if (config.should_stop && config.should_stop()) break;
  }
  // Already at the target (no boundary ran): still report final state.
  if (blob.empty()) blob = core::to_checkpoint_v2(sim, gen);
  return blob;
}

}  // namespace

std::string run_windows(core::CountSimulation& sim, rng::Xoshiro256& gen,
                        const DurableRunConfig& config) {
  return drive_windows(sim, sim, gen, config);
}

std::string run_windows(core::TaggedCountSimulation& sim,
                        rng::Xoshiro256& gen,
                        const DurableRunConfig& config) {
  return drive_windows(sim, sim.counts(), gen, config);
}

RecoveryResult run_with_recovery(
    const RecoveryPolicy& policy, std::string& latest,
    const std::function<void(std::optional<core::ResumedRun>)>& attempt) {
  if (!attempt)
    throw std::invalid_argument("run_with_recovery: empty attempt");
  if (policy.max_retries < 0)
    throw std::invalid_argument("run_with_recovery: negative max_retries");
  if (policy.backoff_initial_ms < 0 || policy.backoff_cap_ms < 0)
    throw std::invalid_argument("run_with_recovery: negative backoff");
  RecoveryResult result;
  for (int att = 0;; ++att) {
    result.attempts = att + 1;
    try {
      // Recover the most recent usable state: the latest *valid*
      // checkpoint, else from scratch.  A torn or corrupt file is
      // detected (DurableFileError / invalid_argument), never silently
      // loaded.
      std::optional<core::ResumedRun> resumed;
      if (att > 0 || policy.resume_first_attempt) {
        std::string blob = latest;
        if (!policy.checkpoint_path.empty()) {
          try {
            blob = fault::read_durable(policy.checkpoint_path);
          } catch (const fault::DurableFileError&) {
            blob.clear();
          }
        }
        if (!blob.empty()) {
          try {
            resumed = core::resume_run_from_checkpoint(blob);
          } catch (const std::invalid_argument&) {
          }
        }
      }
      if (resumed.has_value()) ++result.resumes;
      attempt(std::move(resumed));
      result.completed = true;
      return result;
    } catch (const std::exception& error) {
      result.error = error.what();
      if (att >= policy.max_retries) return result;
      const double delay_ms = std::min(
          policy.backoff_cap_ms,
          policy.backoff_initial_ms *
              static_cast<double>(std::int64_t{1} << std::min(att, 40)));
      if (delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
}

DurableBatchRunner::DurableBatchRunner(DurableBatchOptions options)
    : options_(std::move(options)), runner_(options_.threads) {
  if (options_.checkpoint_period <= 0)
    throw std::invalid_argument(
        "DurableBatchRunner: checkpoint_period must be > 0");
  if (options_.max_retries < 0)
    throw std::invalid_argument("DurableBatchRunner: negative max_retries");
  if (options_.backoff_initial_ms < 0 || options_.backoff_cap_ms < 0)
    throw std::invalid_argument("DurableBatchRunner: negative backoff");
}

DurableBatchResult DurableBatchRunner::run(
    std::int64_t replicas, std::uint64_t seed,
    const core::CountSimulation& initial, const Statistic& statistic) {
  if (!statistic)
    throw std::invalid_argument("DurableBatchRunner: empty statistic");
  const fault::FaultSchedule* faults =
      options_.faults != nullptr ? options_.faults : &fault::global();

  std::vector<ReplicaReport> reports =
      runner_.map(replicas, seed, [&](std::int64_t r, rng::Xoshiro256& gen) {
        // The stream a from-scratch restart replays — replica_rng(seed, r)
        // by BatchRunner's contract, so recovery never changes streams.
        const rng::Xoshiro256 fresh = gen;
        const std::string path =
            options_.checkpoint_dir.empty()
                ? std::string()
                : options_.checkpoint_dir + "/replica_" + std::to_string(r) +
                      ".ckpt";
        std::string latest;  // in-memory fallback checkpoint

        RecoveryPolicy policy;
        policy.max_retries = options_.max_retries;
        policy.backoff_initial_ms = options_.backoff_initial_ms;
        policy.backoff_cap_ms = options_.backoff_cap_ms;
        policy.checkpoint_path = path;

        double value = 0.0;
        const RecoveryResult recovery = run_with_recovery(
            policy, latest,
            [&](std::optional<core::ResumedRun> resumed) {
              core::CountSimulation sim =
                  resumed.has_value() ? std::move(resumed->sim) : initial;
              rng::Xoshiro256 run_gen =
                  resumed.has_value() ? resumed->gen : fresh;

              DurableRunConfig config;
              config.engine = options_.engine;
              config.target_time = options_.target_time;
              config.checkpoint_period = options_.checkpoint_period;
              config.checkpoint_path = path;
              config.on_checkpoint = [&latest](const std::string& blob) {
                latest = blob;
              };
              config.deadline_seconds = options_.replica_deadline_seconds;
              config.faults = faults;
              config.replica = r;
              run_windows(sim, run_gen, config);

              value = statistic(sim);
            });

        ReplicaReport report;
        report.attempts = recovery.attempts;
        report.resumes = recovery.resumes;
        report.error = recovery.error;
        if (!recovery.completed) {
          report.outcome = ReplicaOutcome::kQuarantined;
          return report;  // quarantine keeps the checkpoint for post-mortem
        }
        report.value = value;
        report.outcome = recovery.attempts == 1 ? ReplicaOutcome::kOk
                                                : ReplicaOutcome::kRecovered;
        if (options_.cleanup_on_success && !path.empty())
          std::remove(path.c_str());
        return report;
      });

  DurableBatchResult out;
  out.replicas = std::move(reports);
  for (const ReplicaReport& report : out.replicas) {
    if (report.outcome == ReplicaOutcome::kQuarantined) {
      ++out.quarantined;
    } else {
      ++out.completed;
      out.stats.add(report.value);
    }
  }
  out.timing = runner_.last_timing();
  return out;
}

}  // namespace divpp::runtime
