#ifndef DIVPP_RUNTIME_DURABLE_RUNNER_H
#define DIVPP_RUNTIME_DURABLE_RUNNER_H

/// \file durable_runner.h
/// Durable (crash-safe) execution of lumped simulations, and a
/// self-healing replica runtime on top of it (PR 7).
///
/// run_windows advances one simulation to a target in *period-aligned*
/// checkpoint windows: boundaries sit at the multiples of
/// checkpoint_period (plus the target), computed from absolute
/// interaction time — never from where a previous run happened to die.
/// At every boundary it canonicalizes the simulation
/// (CountSimulation::canonicalize), emits a v2 checkpoint
/// (core/checkpoint.h), persists it atomically
/// (fault/durable_file.h), and gives the fault schedule its two firing
/// points.  The alignment plus canonicalisation yield the durability
/// contract:
///
///   kill the process at any point, resume from the latest valid
///   checkpoint, and the final counts, clock, and 256-bit RNG state are
///   bit-identical to the uninterrupted run — for every engine
///   (step/jump/batch/auto), untagged and tagged.
///
/// Why alignment matters: the batch engine's RNG draw sequence depends
/// on its window boundaries, so a resumed run must advance through the
/// *same* boundaries as the original — which period-aligned windows
/// guarantee and crash-relative windows would not.  Why
/// canonicalisation matters: a restore rebuilds the Fenwick propensity
/// trees exactly, so the uninterrupted run must shed its accumulated
/// float drift at the same points or the jump engine's trajectories
/// diverge.
///
/// DurableBatchRunner extends runtime/batch_runner.h's determinism
/// contract to a crashing world: per-replica periodic checkpoints, a
/// cooperative per-replica deadline, capped-exponential-backoff retry
/// from the latest valid checkpoint (falling back to a from-scratch
/// restart when the checkpoint is torn or missing), and graceful
/// degradation — a replica that keeps failing is quarantined after
/// max_retries and reported with its error, while the batch statistics
/// aggregate the completed replicas in replica order.  Because recovery
/// restores exact state (or replays from scratch on the same
/// jump()-offset stream), a crash-injected batch's statistics are
/// bit-identical to the fault-free batch at any --threads.

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/count_simulation.h"
#include "fault/fault.h"
#include "rng/xoshiro.h"
#include "runtime/batch_runner.h"
#include "stats/online_stats.h"

namespace divpp::runtime {

/// Thrown by run_windows when a replica overruns its cooperative
/// deadline (checked at every checkpoint boundary — the watchdog is
/// cooperative, not preemptive).
///
/// **The cooperative-deadline contract (PR 9).**  Everything in this
/// file enforces deadlines *best-effort only*: the clock is read at
/// checkpoint boundaries, so the guarantee is "a run is stopped at the
/// first boundary after its deadline", never "a run is stopped at its
/// deadline".  A window that wedges — a hung draw chain, a fault::kHang
/// injection, any non-terminating step — never reaches another boundary
/// and therefore is never stopped from in-process, no matter what
/// deadline_seconds says.  Preemptive enforcement needs process-level
/// supervision: runtime/supervisor.h heartbeats at boundaries, declares
/// a silent worker wedged after hang_timeout_seconds, SIGKILLs it, and
/// resumes the scenario from its latest durable checkpoint.  Pinned in
/// tests/test_supervisor.cpp: a hang-faulted scenario completes under
/// supervision and cannot complete in-process.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One durable windowed run.
struct DurableRunConfig {
  core::Engine engine = core::Engine::kBatch;
  /// Interaction count to advance to.  \pre >= the simulation's clock.
  std::int64_t target_time = 0;
  /// Checkpoint every this many interactions; boundaries are the
  /// multiples of the period (absolute time), plus target_time.  \pre > 0.
  std::int64_t checkpoint_period = 0;
  /// When non-empty, every boundary checkpoint is written here
  /// atomically (fault/durable_file.h).
  std::string checkpoint_path;
  /// When set, called with the v2 blob at every boundary (after the
  /// disk write) — in-memory checkpointing for callers without a path.
  std::function<void(const std::string&)> on_checkpoint;
  /// Cooperative deadline for this run, measured from the run_windows
  /// call; 0 disables.  Overruns throw DeadlineExceeded at the next
  /// boundary — best-effort only; a window that never reaches a
  /// boundary is never stopped (see the DeadlineExceeded contract).
  double deadline_seconds = 0.0;
  /// Fault schedule to consult at boundaries; nullptr = no faults.
  /// (Explicit opt-in: run_windows never reads fault::global().)
  const fault::FaultSchedule* faults = nullptr;
  /// This run's replica coordinate in fault::Boundary.
  std::int64_t replica = 0;
  /// Starting value for the cumulative draw count reported to draw-
  /// triggered faults (draws are audited per run_windows call).
  std::int64_t draws_offset = 0;
  /// Cooperative drain hook: checked at every boundary *after* the
  /// checkpoint is persisted (and after the fault hooks fired).
  /// Returning true makes run_windows return the boundary blob early,
  /// leaving the simulation parked exactly at that period-aligned
  /// boundary.  The caller detects the early exit via
  /// sim.time() < target_time; a later run from the persisted
  /// checkpoint replays the same boundary sequence, so drain + resume
  /// is bit-identical to an uninterrupted run (SweepRunner's graceful
  /// shutdown).  Empty = never stop.
  std::function<bool()> should_stop;
};

/// Advances `sim` with `gen` to config.target_time under the durability
/// contract above, and returns the final v2 checkpoint blob (the state
/// at target_time).  \throws std::invalid_argument on a bad config;
/// propagates injected faults, DeadlineExceeded, and
/// fault::DurableFileError from checkpoint writes.
std::string run_windows(core::CountSimulation& sim, rng::Xoshiro256& gen,
                        const DurableRunConfig& config);

/// The tagged-chain counterpart (same contract; the blob carries the
/// tagged agent's colour and shade).
std::string run_windows(core::TaggedCountSimulation& sim,
                        rng::Xoshiro256& gen, const DurableRunConfig& config);

/// Shared retry/recovery policy of the self-healing runtimes — the
/// attempt loop DurableBatchRunner always ran per replica, factored out
/// (PR 8) so SweepRunner scenarios heal through the identical machinery:
/// capped exponential backoff between attempts, resume from the latest
/// *valid* checkpoint (the file when a path is set, else the in-memory
/// copy; a torn or corrupt checkpoint is detected and skipped, never
/// loaded), quarantine after max_retries.
struct RecoveryPolicy {
  /// Retries beyond the first attempt before giving up.
  int max_retries = 3;
  double backoff_initial_ms = 1.0;
  double backoff_cap_ms = 100.0;
  /// Checkpoint file consulted when recovering (empty = memory-only).
  std::string checkpoint_path;
  /// When true the *first* attempt also restores from the checkpoint
  /// file — how a drained sweep scenario continues where it parked
  /// instead of replaying from scratch.
  bool resume_first_attempt = false;
};

/// What the recovery loop produced.
struct RecoveryResult {
  bool completed = false;  ///< false == quarantined (retries exhausted)
  int attempts = 1;        ///< total attempts, clean == 1
  int resumes = 0;         ///< attempts that restored from a checkpoint
  std::string error;       ///< last failure message (empty when clean)
};

/// Runs `attempt` under `policy`.  The callback receives the recovered
/// state — the latest valid checkpoint, or nullopt when there is none
/// (first attempt, or every checkpoint torn/missing: the attempt must
/// then start from scratch) — and either returns normally or throws.
/// `latest` is the caller's in-memory checkpoint slot; wire the run's
/// on_checkpoint hook to assign into it so recovery can fall back to it
/// when no file path is configured.
/// \throws std::invalid_argument on a bad policy; never propagates
/// attempt failures (they become the RecoveryResult).
RecoveryResult run_with_recovery(
    const RecoveryPolicy& policy, std::string& latest,
    const std::function<void(std::optional<core::ResumedRun>)>& attempt);

/// How one replica of a durable batch ended.
enum class ReplicaOutcome {
  kOk,           ///< completed on the first attempt
  kRecovered,    ///< completed after >= 1 retry (resumed or from scratch)
  kQuarantined,  ///< exhausted max_retries; excluded from the statistics
};

/// Per-replica status of a durable batch — graceful degradation is
/// explicit, never silent.
struct ReplicaReport {
  ReplicaOutcome outcome = ReplicaOutcome::kOk;
  int attempts = 1;   ///< total attempts, clean == 1
  int resumes = 0;    ///< attempts that resumed from a checkpoint
  double value = 0.0; ///< the replica statistic (meaningless if quarantined)
  std::string error;  ///< last failure message (empty when kOk)
};

/// Configuration of the self-healing replica runtime.
struct DurableBatchOptions {
  int threads = 0;  ///< 0 = one worker per hardware thread
  core::Engine engine = core::Engine::kBatch;
  std::int64_t target_time = 0;
  std::int64_t checkpoint_period = 0;
  /// Directory for per-replica checkpoint files ("replica_<r>.ckpt");
  /// empty keeps checkpoints in memory only (still crash-safe against
  /// injected faults, not against real process death).
  std::string checkpoint_dir;
  /// Retries per replica beyond the first attempt before quarantine.
  int max_retries = 3;
  /// Capped exponential backoff between attempts.
  double backoff_initial_ms = 1.0;
  double backoff_cap_ms = 100.0;
  /// Cooperative per-attempt deadline (0 disables).
  double replica_deadline_seconds = 0.0;
  /// Fault schedule; nullptr falls back to fault::global() — the
  /// DIVPP_FAULT_SPEC environment hook the CI fault job uses.
  const fault::FaultSchedule* faults = nullptr;
  /// Unlink each replica's checkpoint file after it completes cleanly
  /// (kOk / kRecovered).  A quarantined replica always keeps its last
  /// checkpoint for post-mortem.  Off by default — keeping files is the
  /// conservative choice for crash forensics.
  bool cleanup_on_success = false;
};

/// Result of a durable batch.  `stats` aggregates completed replicas in
/// replica order — bit-identical at any thread count for a fixed seed,
/// with or without injected crashes.
struct DurableBatchResult {
  stats::OnlineStats stats;
  std::vector<ReplicaReport> replicas;
  std::int64_t completed = 0;
  std::int64_t quarantined = 0;
  BatchTiming timing;
};

/// BatchRunner with durability: see the file comment.
class DurableBatchRunner {
 public:
  explicit DurableBatchRunner(DurableBatchOptions options);

  /// Maps the final simulation state to the replica statistic.
  using Statistic = std::function<double(const core::CountSimulation&)>;

  /// Runs `replicas` independent copies of `initial` to
  /// options.target_time on jump()-offset streams of `seed`
  /// (replica_rng), self-healing per the file comment, and reduces
  /// `statistic` over the completed replicas.
  DurableBatchResult run(std::int64_t replicas, std::uint64_t seed,
                         const core::CountSimulation& initial,
                         const Statistic& statistic);

  [[nodiscard]] int threads() const noexcept { return runner_.threads(); }

 private:
  DurableBatchOptions options_;
  BatchRunner runner_;
};

}  // namespace divpp::runtime

#endif  // DIVPP_RUNTIME_DURABLE_RUNNER_H
