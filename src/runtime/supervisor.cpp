#include "runtime/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <span>
#include <stdexcept>
#include <utility>

#include "context/sampler_context.h"
#include "io/json.h"
#include "runtime/thread_pool.h"

namespace divpp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Frames larger than this mean a corrupt stream, not a big payload:
/// the largest legitimate frame is a run command whose weights line
/// grows ~25 bytes per colour.
constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("supervisor: " + what);
}

std::string hex_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

double parse_hex_double(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || end == text.c_str() || *end != '\0')
    fail("bad double '" + text + "'");
  return value;
}

std::int64_t parse_i64(const std::string& text) {
  std::size_t used = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used == 0 || used != text.size()) fail("bad integer '" + text + "'");
  return value;
}

std::uint64_t parse_u64(const std::string& text) {
  std::size_t used = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used == 0 || used != text.size() || text[0] == '-')
    fail("bad unsigned integer '" + text + "'");
  return value;
}

void skip_spaces(const std::string& line, std::size_t& pos) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
}

/// Next space-delimited token (throws on end of payload).
std::string scan_token(const std::string& line, std::size_t& pos) {
  skip_spaces(line, pos);
  const std::size_t begin = pos;
  while (pos < line.size() && line[pos] != ' ') ++pos;
  if (begin == pos) fail("truncated payload");
  return line.substr(begin, pos - begin);
}

/// Reads one json_quote'd token starting at line[pos] (advancing pos
/// past it) and returns the unescaped bytes — the manifest idiom.
std::string scan_quoted(const std::string& line, std::size_t& pos) {
  skip_spaces(line, pos);
  if (pos >= line.size() || line[pos] != '"')
    fail("expected a quoted string");
  std::size_t end = pos + 1;
  while (end < line.size() && line[end] != '"') {
    if (line[end] == '\\') ++end;  // skip the escaped character
    ++end;
  }
  if (end >= line.size()) fail("unterminated quoted string");
  const std::string_view raw(line.data() + pos, end - pos + 1);
  pos = end + 1;
  return io::json_unquote(raw);
}

const char* start_name(ScenarioSpec::Start start) {
  switch (start) {
    case ScenarioSpec::Start::kProportional: return "proportional";
    case ScenarioSpec::Start::kAdversarial: return "adversarial";
    case ScenarioSpec::Start::kEqual: return "equal";
  }
  return "?";
}

ScenarioSpec::Start parse_start(const std::string& name) {
  if (name == "proportional") return ScenarioSpec::Start::kProportional;
  if (name == "adversarial") return ScenarioSpec::Start::kAdversarial;
  if (name == "equal") return ScenarioSpec::Start::kEqual;
  fail("unknown start '" + name + "'");
}

ScenarioOutcome parse_outcome(const std::string& name) {
  if (name == "ok") return ScenarioOutcome::kOk;
  if (name == "recovered") return ScenarioOutcome::kRecovered;
  if (name == "quarantined") return ScenarioOutcome::kQuarantined;
  if (name == "rejected") return ScenarioOutcome::kRejected;
  // kDrained cannot come off the wire: workers get no should_stop.
  fail("unknown outcome '" + name + "'");
}

// ---- low-level I/O ---------------------------------------------------

/// EINTR-retried full write; false on any other error (EPIPE when the
/// peer died — SIGPIPE is ignored for the supervision window).
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, std::string_view payload) {
  std::string framed;
  wire::append_frame(framed, payload);
  return write_all(fd, framed.data(), framed.size());
}

/// EINTR-retried full read; false on EOF or error.
bool read_exact(int fd, char* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking frame read (worker side).  nullopt on EOF/error — the
/// parent is gone and the worker should exit.
std::optional<std::string> read_frame_blocking(int fd) {
  char header[4];
  if (!read_exact(fd, header, sizeof header)) return std::nullopt;
  std::size_t size = 0;
  for (int i = 3; i >= 0; --i)
    size = (size << 8) | static_cast<unsigned char>(header[i]);
  if (size > kMaxFrameBytes) return std::nullopt;
  std::string payload(size, '\0');
  if (size > 0 && !read_exact(fd, payload.data(), size)) return std::nullopt;
  return payload;
}

// ---- exit-status classification --------------------------------------

/// Names without strsignal(3) (not MT-safe; also keeps the text stable
/// across libcs for the tests).
std::string signal_desc(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGTERM: return "SIGTERM";
    default: return "signal " + std::to_string(sig);
  }
}

std::string classify_status(int status) {
  if (WIFSIGNALED(status))
    return "worker killed by " + signal_desc(WTERMSIG(status));
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == 0) return "worker exited cleanly mid-scenario";
    return "worker exited with status " + std::to_string(code);
  }
  return "worker ended with unrecognised wait status";
}

// ---- worker process ---------------------------------------------------

/// Worker frame payloads.
std::string encode_heartbeat(std::size_t index) {
  return "hb " + std::to_string(index);
}

std::string encode_result(std::size_t index, const ScenarioReport& report) {
  return "res " + std::to_string(index) + " " +
         scenario_outcome_name(report.outcome) + " " +
         std::to_string(report.attempts) + " " +
         std::to_string(report.resumes) + " " + hex_double(report.value) +
         " " + io::json_quote(report.error);
}

/// The forked worker's main loop: read a command frame, run the
/// scenario through the shared execute_scenario, report, repeat.  Exits
/// with _exit (never returns into the parent's stack): atexit handlers
/// and static destructors belong to the parent image.
[[noreturn]] void worker_main(int cmd_fd, int out_fd,
                              const SweepOptions& options,
                              const SweepStatistic& statistic) {
  // Inherited by fork, never serialised: options, statistic, and (via
  // options.faults or fault::global()) the fault schedule.
  context::SamplerContextCache cache(
      options.context_budget_bytes > 0
          ? options.context_budget_bytes
          : context::SamplerContextCache::kDefaultBudgetBytes);
  const fault::FaultSchedule* faults =
      options.faults != nullptr ? options.faults : &fault::global();
  const std::chrono::duration<double> heartbeat_gap(
      options.supervision.heartbeat_period_seconds);

  const auto send = [out_fd](const std::string& payload) {
    // A failed send means the parent died; nothing left to work for.
    if (!write_frame(out_fd, payload)) ::_exit(0);
  };

  for (;;) {
    const std::optional<std::string> frame = read_frame_blocking(cmd_fd);
    if (!frame.has_value() || *frame == "quit") ::_exit(0);
    wire::RunCommand command;
    try {
      command = wire::decode_run(*frame);
    } catch (const std::exception&) {
      ::_exit(3);  // protocol violation; the parent classifies the exit
    }
    send(encode_heartbeat(command.index));  // liveness on pickup
    auto last_heartbeat = Clock::now();

    ScenarioReport report;
    execute_scenario(
        command.spec, command.index, options, statistic, faults,
        command.resuming, cache, /*should_stop=*/nullptr,
        /*on_boundary=*/
        [&] {
          const auto now = Clock::now();
          if (now - last_heartbeat < heartbeat_gap) return;
          last_heartbeat = now;
          send(encode_heartbeat(command.index));
        },
        report);
    send(encode_result(command.index, report));
  }
}

// ---- parent-side worker bookkeeping -----------------------------------

struct WorkerProc {
  pid_t pid = -1;
  int cmd_fd = -1;  ///< parent writes command frames
  int out_fd = -1;  ///< parent reads worker frames (non-blocking)
  bool alive = false;
  std::ptrdiff_t scenario = -1;  ///< index being run, -1 when idle
  std::string buffer;            ///< unparsed bytes off out_fd
  Clock::time_point last_heard;
  Clock::time_point dispatched;
  std::string kill_reason;  ///< set when the watchdog SIGKILLed it
};

WorkerProc spawn_worker(const SweepOptions& options,
                        const SweepStatistic& statistic,
                        const std::vector<WorkerProc>& existing) {
  int cmd[2] = {-1, -1};
  int out[2] = {-1, -1};
  if (::pipe(cmd) != 0)
    throw std::runtime_error(std::string("supervisor: pipe: ") +
                             std::strerror(errno));
  if (::pipe(out) != 0) {
    const int saved = errno;
    ::close(cmd[0]);
    ::close(cmd[1]);
    throw std::runtime_error(std::string("supervisor: pipe: ") +
                             std::strerror(saved));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(cmd[0]);
    ::close(cmd[1]);
    ::close(out[0]);
    ::close(out[1]);
    throw std::runtime_error(std::string("supervisor: fork: ") +
                             std::strerror(saved));
  }
  if (pid == 0) {
    // Worker: keep only this worker's ends.  Closing the siblings'
    // descriptors matters — an inherited write end would keep a dead
    // sibling's pipe open and mask its EOF from the parent.
    ::close(cmd[1]);
    ::close(out[0]);
    for (const WorkerProc& other : existing) {
      if (other.cmd_fd >= 0) ::close(other.cmd_fd);
      if (other.out_fd >= 0) ::close(other.out_fd);
    }
    worker_main(cmd[0], out[1], options, statistic);
  }
  ::close(cmd[0]);
  ::close(out[1]);
  (void)::fcntl(out[0], F_SETFL, O_NONBLOCK);
  WorkerProc worker;
  worker.pid = pid;
  worker.cmd_fd = cmd[1];
  worker.out_fd = out[0];
  worker.alive = true;
  worker.last_heard = Clock::now();
  return worker;
}

/// Non-blocking drain of a worker's out pipe into its buffer.
/// \returns true when the pipe hit EOF (the worker is dead).
bool drain_pipe(WorkerProc& worker) {
  for (;;) {
    char chunk[4096];
    const ssize_t n = ::read(worker.out_fd, chunk, sizeof chunk);
    if (n > 0) {
      worker.buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return true;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    return true;  // unexpected read error: treat as death
  }
}

std::string format_seconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", seconds);
  return std::string(buffer) + "s";
}

}  // namespace

namespace wire {

void append_frame(std::string& out, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    fail("frame payload too large (" + std::to_string(payload.size()) +
         " bytes)");
  char header[4];
  const std::size_t size = payload.size();
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<char>((size >> (8 * i)) & 0xffU);
  out.append(header, sizeof header);
  out.append(payload);
}

std::optional<std::string> take_frame(std::string& buffer) {
  if (buffer.size() < 4) return std::nullopt;
  std::size_t size = 0;
  for (int i = 3; i >= 0; --i)
    size = (size << 8) | static_cast<unsigned char>(buffer[i]);
  if (size > kMaxFrameBytes)
    fail("frame size " + std::to_string(size) + " exceeds the limit");
  if (buffer.size() < 4 + size) return std::nullopt;
  std::string payload = buffer.substr(4, size);
  buffer.erase(0, 4 + size);
  return payload;
}

std::string encode_run(std::size_t index, bool resuming,
                       const ScenarioSpec& spec) {
  std::string out = "run ";
  out.append(std::to_string(index));
  out.append(resuming ? " 1 " : " 0 ");
  out.append(std::to_string(spec.n));
  out.append(" ");
  out.append(start_name(spec.start));
  out.append(" ");
  out.append(core::engine_name(spec.engine));
  out.append(" ");
  out.append(std::to_string(spec.target_time));
  out.append(" ");
  out.append(std::to_string(spec.seed));
  out.append(" ");
  out.append(io::json_quote(spec.name));
  const std::span<const double> weights = spec.weights.weights();
  out.append(" ");
  out.append(std::to_string(weights.size()));
  // Hexfloats: the palette must round-trip bit-exactly or the worker's
  // run would be a different simulation.
  for (const double weight : weights) {
    out.append(" ");
    out.append(hex_double(weight));
  }
  return out;
}

RunCommand decode_run(const std::string& payload) {
  std::size_t pos = 0;
  if (scan_token(payload, pos) != "run") fail("not a run command");
  RunCommand command;
  command.index = static_cast<std::size_t>(parse_u64(scan_token(payload, pos)));
  const std::string resuming = scan_token(payload, pos);
  if (resuming != "0" && resuming != "1")
    fail("bad resuming flag '" + resuming + "'");
  command.resuming = resuming == "1";
  command.spec.n = parse_i64(scan_token(payload, pos));
  command.spec.start = parse_start(scan_token(payload, pos));
  command.spec.engine = core::parse_engine(scan_token(payload, pos));
  command.spec.target_time = parse_i64(scan_token(payload, pos));
  command.spec.seed = parse_u64(scan_token(payload, pos));
  command.spec.name = scan_quoted(payload, pos);
  const std::int64_t colors = parse_i64(scan_token(payload, pos));
  if (colors < 1) fail("bad colour count");
  std::vector<double> weights;
  weights.reserve(static_cast<std::size_t>(colors));
  for (std::int64_t i = 0; i < colors; ++i)
    weights.push_back(parse_hex_double(scan_token(payload, pos)));
  command.spec.weights = core::WeightMap(std::move(weights));
  skip_spaces(payload, pos);
  if (pos != payload.size()) fail("trailing junk in run command");
  return command;
}

}  // namespace wire

SweepSupervisor::SweepSupervisor(SweepOptions options)
    : options_(std::move(options)) {
  if (options_.sweep_dir.empty())
    fail("needs a sweep_dir — respawn-and-resume requires checkpoints "
         "that survive process death");
  if (options_.supervision.workers < 0) fail("negative worker count");
  if (options_.supervision.heartbeat_period_seconds < 0 ||
      options_.supervision.hang_timeout_seconds < 0)
    fail("negative supervision timing");
  if (options_.supervision.crash_loop_k < 1) fail("crash_loop_k must be >= 1");
}

void SweepSupervisor::run(const std::vector<ScenarioSpec>& specs,
                          const SweepStatistic& statistic, bool resuming,
                          std::vector<ScenarioReport>& reports,
                          const std::vector<char>& finished) {
  if (!statistic) fail("empty statistic");
  const std::size_t count = specs.size();
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < count; ++i)
    if (i >= finished.size() || finished[i] == 0) queue.push_back(i);
  std::size_t outstanding = queue.size();
  if (outstanding == 0) return;

  // SIGPIPE would kill the parent on a write to a just-died worker;
  // ignore it for the supervision window (workers inherit the ignore,
  // which they want too).  Restored on every exit path below.
  struct sigaction ignore_pipe {};
  struct sigaction old_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  const int pool_size =
      options_.supervision.workers > 0 ? options_.supervision.workers
                                       : ThreadPool::hardware_threads();
  const double hang_timeout = options_.supervision.hang_timeout_seconds;
  const double deadline = options_.scenario_deadline_seconds;
  // Grace before the preemptive deadline kill: a healthy worker's
  // cooperative deadline check (at its next boundary) should win.
  const double deadline_grace = std::max(
      0.25, 2.0 * options_.supervision.heartbeat_period_seconds);
  const int crash_loop_k = options_.supervision.crash_loop_k;

  std::vector<WorkerProc> workers;
  std::vector<int> kills(count, 0);  // successive worker deaths per scenario

  const auto shutdown_workers = [&workers, &old_pipe] {
    for (WorkerProc& worker : workers) {
      if (!worker.alive) continue;
      (void)write_frame(worker.cmd_fd, "quit");
      ::close(worker.cmd_fd);
    }
    for (WorkerProc& worker : workers) {
      if (!worker.alive) continue;
      int status = 0;
      (void)::waitpid(worker.pid, &status, 0);
      ::close(worker.out_fd);
      worker.alive = false;
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
  };

  // Fills a report for a result frame off the wire.  Prior worker
  // deaths count as attempts, and upgrade a clean completion to
  // kRecovered — the scenario as a whole did not finish first try.
  const auto record_result = [&](WorkerProc& worker,
                                 const std::string& payload) {
    std::size_t pos = 0;
    (void)scan_token(payload, pos);  // "res", already matched
    const std::size_t index =
        static_cast<std::size_t>(parse_u64(scan_token(payload, pos)));
    if (static_cast<std::ptrdiff_t>(index) != worker.scenario)
      fail("result for scenario " + std::to_string(index) +
           " from a worker running " + std::to_string(worker.scenario));
    ScenarioOutcome outcome = parse_outcome(scan_token(payload, pos));
    const int attempts = static_cast<int>(parse_i64(scan_token(payload, pos)));
    const int resumes = static_cast<int>(parse_i64(scan_token(payload, pos)));
    const double value = parse_hex_double(scan_token(payload, pos));
    const std::string error = scan_quoted(payload, pos);

    ScenarioReport& report = reports[index];
    report.name = specs[index].name;
    if (kills[index] > 0 && outcome == ScenarioOutcome::kOk)
      outcome = ScenarioOutcome::kRecovered;
    report.outcome = outcome;
    report.attempts = attempts + kills[index];
    report.resumes = resumes;
    report.error = error;
    if (outcome == ScenarioOutcome::kOk ||
        outcome == ScenarioOutcome::kRecovered) {
      report.value = value;
      report.json = scenario_result_json(specs[index], value);
    }
    worker.scenario = -1;
    --outstanding;
  };

  const auto process_frames = [&](WorkerProc& worker) {
    worker.last_heard = Clock::now();
    for (;;) {
      const std::optional<std::string> frame = wire::take_frame(worker.buffer);
      if (!frame.has_value()) return;
      if (frame->rfind("hb ", 0) == 0) continue;
      if (frame->rfind("res ", 0) == 0) {
        record_result(worker, *frame);
        continue;
      }
      fail("unrecognised worker frame '" + *frame + "'");
    }
  };

  // A dead worker: reap, classify, blame its scenario (if any) and
  // either redispatch-from-checkpoint or quarantine on a crash loop.
  const auto handle_death = [&](WorkerProc& worker) {
    int status = 0;
    (void)::waitpid(worker.pid, &status, 0);
    ::close(worker.cmd_fd);
    ::close(worker.out_fd);
    worker.alive = false;
    if (worker.scenario < 0) return;  // died idle: just replace it
    const std::size_t index = static_cast<std::size_t>(worker.scenario);
    worker.scenario = -1;
    const std::string why = worker.kill_reason.empty()
                                ? classify_status(status)
                                : worker.kill_reason;
    ++kills[index];
    if (kills[index] >= crash_loop_k) {
      ScenarioReport& report = reports[index];
      report.name = specs[index].name;
      report.outcome = ScenarioOutcome::kQuarantined;
      report.attempts = kills[index];
      report.error = "crash loop: " + std::to_string(kills[index]) +
                     " successive workers died on this scenario; last: " +
                     why + " (checkpoint kept)";
      --outstanding;
      return;
    }
    // Redispatch resumes from the latest durable checkpoint; pushed to
    // the front so recovery does not starve behind fresh work.
    queue.push_front(index);
  };

  try {
    while (outstanding > 0) {
      // Compact: drop dead workers (their fds are closed already).
      std::erase_if(workers,
                    [](const WorkerProc& worker) { return !worker.alive; });

      // Keep the pool at min(pool_size, scenarios still outstanding).
      const std::size_t want = std::min<std::size_t>(
          static_cast<std::size_t>(pool_size), outstanding);
      while (workers.size() < want)
        workers.push_back(spawn_worker(options_, statistic, workers));

      // Dispatch queued scenarios to idle workers.  A failed dispatch
      // means the worker died between scenarios; handle it and retry.
      for (WorkerProc& worker : workers) {
        if (!worker.alive || worker.scenario >= 0 || queue.empty()) continue;
        const std::size_t index = queue.front();
        // First dispatch follows the manifest-level resume flag; any
        // redispatch after a worker death resumes from the checkpoint.
        const bool resume_this = resuming || kills[index] > 0;
        if (!write_frame(worker.cmd_fd,
                         wire::encode_run(index, resume_this,
                                          specs[index]))) {
          (void)drain_pipe(worker);
          process_frames(worker);
          handle_death(worker);
          continue;
        }
        queue.pop_front();
        worker.scenario = static_cast<std::ptrdiff_t>(index);
        worker.dispatched = worker.last_heard = Clock::now();
        worker.kill_reason.clear();
      }

      // Poll timeout: the nearest watchdog or deadline expiry.
      const auto now = Clock::now();
      double timeout_s = 0.5;
      for (const WorkerProc& worker : workers) {
        if (!worker.alive || worker.scenario < 0) continue;
        const double silent =
            std::chrono::duration<double>(now - worker.last_heard).count();
        const double running =
            std::chrono::duration<double>(now - worker.dispatched).count();
        if (hang_timeout > 0)
          timeout_s = std::min(timeout_s, hang_timeout - silent);
        if (deadline > 0)
          timeout_s =
              std::min(timeout_s, deadline + deadline_grace - running);
      }
      const int timeout_ms =
          timeout_s <= 0 ? 0
                         : static_cast<int>(std::ceil(timeout_s * 1000.0));

      std::vector<pollfd> fds;
      std::vector<std::size_t> fd_owner;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        if (!workers[w].alive) continue;
        fds.push_back(pollfd{workers[w].out_fd, POLLIN, 0});
        fd_owner.push_back(w);
      }
      const int ready = ::poll(fds.data(),
                               static_cast<nfds_t>(fds.size()), timeout_ms);
      if (ready < 0 && errno != EINTR)
        throw std::runtime_error(std::string("supervisor: poll: ") +
                                 std::strerror(errno));

      for (std::size_t f = 0; f < fds.size(); ++f) {
        if (fds[f].revents == 0) continue;
        WorkerProc& worker = workers[fd_owner[f]];
        const bool dead = drain_pipe(worker);
        process_frames(worker);  // results beat death-blame: drain first
        if (dead) handle_death(worker);
      }

      // Watchdog: SIGKILL wedged or over-deadline workers.  Their EOF
      // arrives on the next poll and goes through handle_death.
      const auto after = Clock::now();
      for (WorkerProc& worker : workers) {
        if (!worker.alive || worker.scenario < 0 ||
            !worker.kill_reason.empty())
          continue;
        const double silent =
            std::chrono::duration<double>(after - worker.last_heard).count();
        const double running =
            std::chrono::duration<double>(after - worker.dispatched).count();
        if (hang_timeout > 0 && silent >= hang_timeout) {
          worker.kill_reason = "watchdog: worker silent for " +
                               format_seconds(silent) + " (hang timeout " +
                               format_seconds(hang_timeout) + ")";
          (void)::kill(worker.pid, SIGKILL);
        } else if (deadline > 0 && running >= deadline + deadline_grace) {
          worker.kill_reason = "wall-clock deadline " +
                               format_seconds(deadline) +
                               " exceeded after " + format_seconds(running) +
                               " (preemptive kill)";
          (void)::kill(worker.pid, SIGKILL);
        }
      }
    }
  } catch (...) {
    shutdown_workers();
    throw;
  }
  shutdown_workers();
}

}  // namespace divpp::runtime
