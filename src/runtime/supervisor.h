#ifndef DIVPP_RUNTIME_SUPERVISOR_H
#define DIVPP_RUNTIME_SUPERVISOR_H

/// \file supervisor.h
/// Crash containment: process-isolated sweep workers with watchdog
/// supervision (PR 9).
///
/// The PR 8 SweepRunner heals from *cooperative* faults — exceptions,
/// simulated crashes, torn checkpoints — but every scenario shares one
/// address space, so a real SIGSEGV, abort, OOM, or a wedged
/// (non-terminating) scenario loses or stalls the whole sweep.
/// SweepSupervisor closes that gap the way production simulation farms
/// do (OMNeT++'s parsim runs partitions as separate OS processes): it
/// forks a pool of worker *processes*, dispatches scenarios to them
/// over pipes, and supervises:
///
///  - **Death detection.** Each worker is reaped with waitpid and its
///    end classified: signal (which one) vs exit code.  A worker dying
///    mid-scenario blames that scenario.
///  - **Watchdog.** Workers heartbeat at checkpoint boundaries
///    (throttled to heartbeat_period_seconds).  A busy worker silent
///    for hang_timeout_seconds is declared wedged and SIGKILLed — the
///    *preemptive* enforcement the in-process cooperative deadline
///    cannot provide (runtime/durable_runner.h checks deadlines only at
///    boundaries, so a hung draw chain stalls forever in-process).  The
///    wall-clock scenario_deadline_seconds is enforced the same way,
///    with a small grace so the cooperative check fires first when the
///    worker is healthy.
///  - **Respawn and resume.** A dead worker is replaced (fresh fork)
///    and its scenario redispatched resuming from the latest valid
///    durable checkpoint — the same recovery machinery as in-process
///    retries, so the finished value is bit-identical.
///  - **Crash-loop quarantine.** A scenario that kills crash_loop_k
///    successive workers is quarantined with its checkpoint kept; only
///    that scenario is lost, the sweep completes.
///
/// **Why fork (not exec): bit-identity by construction.**  Workers are
/// forked from the parent, so they inherit the SweepStatistic closure
/// and SweepOptions verbatim — nothing behavioural crosses the wire
/// except the ScenarioSpec — and every worker drives the *same*
/// execute_scenario() as the in-process path: same context admission,
/// same recovery loop, same period-aligned checkpoint boundaries, same
/// RNG stream.  The parent rebuilds each report's JSON line from
/// (spec, hexfloat value) via scenario_result_json, which by contract
/// uses deterministic fields only.  Hence a supervised sweep's reports
/// are byte-identical to the in-process SweepRunner's, fault-free or
/// not (pinned in tests/test_supervisor.cpp and bench/e23_containment).
///
/// Fork safety: the parent must be effectively single-threaded when
/// spawning (SweepRunner guarantees this — its ThreadPool starts
/// workers lazily and the supervised path never submits to it).
///
/// **Worker protocol.**  Each worker gets two pipes (commands in,
/// frames out).  Every message is a length-prefixed frame: a 4-byte
/// little-endian payload size, then the payload.  Payloads are
/// space-separated tokens with io/json-quoted strings (io::json_quote /
/// io::json_unquote — the manifest idiom), hexfloats where bit-exact
/// doubles must cross the wire:
///
///   parent -> worker:
///     "run <index> <resuming> <n> <start> <engine> <target> <seed>
///      <name-json> <k> <w0-hex> ... <w(k-1)-hex>"
///     "quit"
///   worker -> parent:
///     "hb <index>"                              (heartbeat)
///     "res <index> <outcome> <attempts> <resumes> <value-hex>
///      <error-json>"                            (scenario finished)
///
/// The wire helpers are exposed below so the protocol is unit-testable.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/sweep_runner.h"

namespace divpp::runtime {

/// Wire-level protocol pieces (see the file comment), exposed for
/// tests: framing plus the run-command codec.  Decoding rejects
/// malformed input with std::invalid_argument.
namespace wire {

/// Appends one length-prefixed frame carrying \p payload to \p out.
void append_frame(std::string& out, std::string_view payload);

/// Extracts the first complete frame from \p buffer (consuming it), or
/// std::nullopt when the buffer holds less than one full frame.
/// \throws std::invalid_argument on an over-limit frame size (corrupt
/// stream).
[[nodiscard]] std::optional<std::string> take_frame(std::string& buffer);

/// The "run" command payload for dispatching \p spec as scenario
/// \p index; weights travel as hexfloats (bit-exact round trip).
[[nodiscard]] std::string encode_run(std::size_t index, bool resuming,
                                     const ScenarioSpec& spec);

/// Inverse of encode_run.  \throws std::invalid_argument on malformed
/// payloads (including anything that is not a "run" command).
struct RunCommand {
  std::size_t index = 0;
  bool resuming = false;
  ScenarioSpec spec;
};
[[nodiscard]] RunCommand decode_run(const std::string& payload);

}  // namespace wire

/// The process-level supervisor: see the file comment.  Constructed
/// from the same SweepOptions as the SweepRunner that hosts it
/// (SweepOptions::supervision carries the knobs); normally reached via
/// SweepRunner with supervision.enabled rather than directly.
class SweepSupervisor {
 public:
  /// \throws std::invalid_argument on bad options (no sweep_dir,
  /// negative timings, crash_loop_k < 1).
  explicit SweepSupervisor(SweepOptions options);

  /// Runs every scenario with finished[i] == 0 on forked workers and
  /// fills its slot of \p reports (slots of finished scenarios are left
  /// untouched).  \p resuming makes first dispatches resume from their
  /// durable checkpoints (the manifest-level resume); redispatches
  /// after a worker death always resume.  Blocks until every scenario
  /// settled (ok / recovered / quarantined / rejected) — a supervised
  /// sweep never drains.
  void run(const std::vector<ScenarioSpec>& specs,
           const SweepStatistic& statistic, bool resuming,
           std::vector<ScenarioReport>& reports,
           const std::vector<char>& finished);

 private:
  SweepOptions options_;
};

}  // namespace divpp::runtime

#endif  // DIVPP_RUNTIME_SUPERVISOR_H
