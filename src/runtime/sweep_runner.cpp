#include "runtime/sweep_runner.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

#include "fault/durable_file.h"
#include "io/json.h"
#include "rng/xoshiro.h"
#include "runtime/durable_runner.h"
#include "runtime/supervisor.h"

namespace divpp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Hexfloat rendering for manifest values: exact (bit-for-bit) double
/// round-trips, unlike any decimal format with fewer than 17 digits.
std::string hex_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

double parse_hex_double(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || end == text.c_str() || *end != '\0')
    throw std::invalid_argument("sweep manifest: bad value '" + text + "'");
  return value;
}

int parse_int(const std::string& text) {
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used == 0 || used != text.size() || value < 0)
    throw std::invalid_argument("sweep manifest: bad count '" + text + "'");
  return value;
}

/// Reads one json_quote'd token starting at line[pos] (advancing pos
/// past it) and returns the unescaped bytes.
std::string scan_quoted(const std::string& line, std::size_t& pos) {
  if (pos >= line.size() || line[pos] != '"')
    throw std::invalid_argument("sweep manifest: expected a quoted string");
  std::size_t end = pos + 1;
  while (end < line.size() && line[end] != '"') {
    if (line[end] == '\\') ++end;  // skip the escaped character
    ++end;
  }
  if (end >= line.size())
    throw std::invalid_argument("sweep manifest: unterminated quoted string");
  const std::string_view raw(line.data() + pos, end - pos + 1);
  pos = end + 1;
  return io::json_unquote(raw);
}

void skip_spaces(const std::string& line, std::size_t& pos) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
}

/// Next space-delimited token (throws on end of line).
std::string scan_token(const std::string& line, std::size_t& pos) {
  skip_spaces(line, pos);
  const std::size_t begin = pos;
  while (pos < line.size() && line[pos] != ' ') ++pos;
  if (begin == pos)
    throw std::invalid_argument("sweep manifest: truncated line");
  return line.substr(begin, pos - begin);
}

/// Manifest status word.  kDrained (and never-started) persists as
/// "pending": both mean "unfinished work resume() must run".
const char* manifest_status(ScenarioOutcome outcome) {
  switch (outcome) {
    case ScenarioOutcome::kOk: return "ok";
    case ScenarioOutcome::kRecovered: return "recovered";
    case ScenarioOutcome::kQuarantined: return "quarantined";
    case ScenarioOutcome::kRejected: return "rejected";
    case ScenarioOutcome::kDrained: return "pending";
  }
  return "pending";
}

core::CountSimulation initial_state(const ScenarioSpec& spec) {
  switch (spec.start) {
    case ScenarioSpec::Start::kProportional:
      return core::CountSimulation::proportional_start(spec.weights, spec.n);
    case ScenarioSpec::Start::kAdversarial:
      return core::CountSimulation::adversarial_start(spec.weights, spec.n);
    case ScenarioSpec::Start::kEqual:
      return core::CountSimulation::equal_start(spec.weights, spec.n);
  }
  throw std::invalid_argument("ScenarioSpec: unknown start kind");
}

void ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw std::runtime_error("SweepRunner: cannot create sweep_dir '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

const char* scenario_outcome_name(ScenarioOutcome outcome) {
  switch (outcome) {
    case ScenarioOutcome::kOk: return "ok";
    case ScenarioOutcome::kRecovered: return "recovered";
    case ScenarioOutcome::kQuarantined: return "quarantined";
    case ScenarioOutcome::kRejected: return "rejected";
    case ScenarioOutcome::kDrained: return "drained";
  }
  return "unknown";
}

std::string scenario_checkpoint_path(const std::string& sweep_dir,
                                     std::size_t index) {
  if (sweep_dir.empty()) return {};
  return sweep_dir + "/scenario_" + std::to_string(index) + ".ckpt";
}

std::string scenario_result_json(const ScenarioSpec& spec, double value) {
  io::Json json;
  json.set("scenario", spec.name)
      .set("n", spec.n)
      .set("k", spec.weights.num_colors())
      .set("engine", core::engine_name(spec.engine))
      .set("target", spec.target_time)
      .set("seed", static_cast<std::int64_t>(spec.seed))
      .set("value", value);
  return json.to_string();
}

void execute_scenario(const ScenarioSpec& spec, std::size_t index,
                      const SweepOptions& options,
                      const SweepStatistic& statistic,
                      const fault::FaultSchedule* faults, bool resuming,
                      context::SamplerContextCache& cache,
                      const std::function<bool()>& should_stop,
                      const std::function<void()>& on_boundary,
                      ScenarioReport& report) {
  report.name = spec.name;
  const std::string path = scenario_checkpoint_path(options.sweep_dir, index);
  try {
    // Shared immutables first: admission is the only failure that is a
    // *decision* (budget) rather than an accident, hence its own outcome.
    std::shared_ptr<const context::SamplerContext> shared;
    try {
      shared = cache.acquire(spec.n, spec.weights);
    } catch (const context::ContextAdmissionError& error) {
      report.outcome = ScenarioOutcome::kRejected;
      report.error = error.what();
      return;
    }

    RecoveryPolicy policy;
    policy.max_retries = options.max_retries;
    policy.backoff_initial_ms = options.backoff_initial_ms;
    policy.backoff_cap_ms = options.backoff_cap_ms;
    policy.checkpoint_path = path;
    policy.resume_first_attempt = resuming && !path.empty();

    std::string latest;  // in-memory fallback checkpoint
    bool parked = false;
    double value = 0.0;
    const RecoveryResult recovery = run_with_recovery(
        policy, latest, [&](std::optional<core::ResumedRun> resumed) {
          core::CountSimulation sim = resumed.has_value()
                                          ? std::move(resumed->sim)
                                          : initial_state(spec);
          rng::Xoshiro256 gen = resumed.has_value()
                                    ? resumed->gen
                                    : rng::Xoshiro256(spec.seed);
          // Attach the shared tables.  Without this the batch engine
          // lazily builds identical private ones — bit-identical by the
          // pin in test_context, just slower and per-scenario.
          sim.set_sampler_context(shared);

          DurableRunConfig config;
          config.engine = spec.engine;
          config.target_time = spec.target_time;
          config.checkpoint_period = options.checkpoint_period;
          config.checkpoint_path = path;
          config.on_checkpoint = [&latest,
                                  &on_boundary](const std::string& blob) {
            latest = blob;
            if (on_boundary) on_boundary();
          };
          config.deadline_seconds = options.scenario_deadline_seconds;
          config.faults = faults;
          config.replica = static_cast<std::int64_t>(index);
          config.should_stop = should_stop;
          run_windows(sim, gen, config);

          if (sim.time() < spec.target_time) {
            parked = true;  // stopped by a drain at a durable boundary
            return;
          }
          parked = false;
          value = statistic(sim);
        });

    report.attempts = recovery.attempts;
    report.resumes = recovery.resumes;
    report.error = recovery.error;
    if (!recovery.completed) {
      // Quarantine keeps its last checkpoint for post-mortem.
      report.outcome = ScenarioOutcome::kQuarantined;
      return;
    }
    if (parked) {
      report.outcome = ScenarioOutcome::kDrained;
      return;
    }
    report.value = value;
    report.outcome = recovery.attempts == 1 ? ScenarioOutcome::kOk
                                            : ScenarioOutcome::kRecovered;
    report.json = scenario_result_json(spec, value);
    if (options.cleanup_on_success && !path.empty())
      std::remove(path.c_str());
  } catch (const std::exception& error) {
    // Callers must not see throws; an unexpected failure outside the
    // recovery loop quarantines just this scenario.
    report.outcome = ScenarioOutcome::kQuarantined;
    report.error = error.what();
  } catch (...) {
    report.outcome = ScenarioOutcome::kQuarantined;
    report.error = "unknown error";
  }
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)),
      cache_(options_.context_budget_bytes > 0
                 ? options_.context_budget_bytes
                 : context::SamplerContextCache::kDefaultBudgetBytes),
      pool_(options_.threads) {
  if (options_.checkpoint_period <= 0)
    throw std::invalid_argument("SweepRunner: checkpoint_period must be > 0");
  if (options_.max_retries < 0)
    throw std::invalid_argument("SweepRunner: negative max_retries");
  if (options_.backoff_initial_ms < 0 || options_.backoff_cap_ms < 0)
    throw std::invalid_argument("SweepRunner: negative backoff");
  if (options_.scenario_deadline_seconds < 0)
    throw std::invalid_argument("SweepRunner: negative deadline");
  if (options_.admission_capacity < 0)
    throw std::invalid_argument("SweepRunner: negative admission_capacity");
  if (options_.supervision.enabled) {
    if (options_.sweep_dir.empty())
      throw std::invalid_argument(
          "SweepRunner: supervision needs a sweep_dir — respawn-and-resume "
          "requires checkpoints that survive process death");
    if (options_.supervision.workers < 0)
      throw std::invalid_argument("SweepRunner: negative supervision workers");
    if (options_.supervision.heartbeat_period_seconds < 0 ||
        options_.supervision.hang_timeout_seconds < 0)
      throw std::invalid_argument("SweepRunner: negative supervision timing");
    if (options_.supervision.crash_loop_k < 1)
      throw std::invalid_argument("SweepRunner: crash_loop_k must be >= 1");
  }
}

SweepResult SweepRunner::run(const std::vector<ScenarioSpec>& specs,
                             const Statistic& statistic) {
  return execute(specs, statistic, /*resuming=*/false);
}

SweepResult SweepRunner::resume(const std::vector<ScenarioSpec>& specs,
                                const Statistic& statistic) {
  if (options_.sweep_dir.empty())
    throw std::invalid_argument(
        "SweepRunner::resume: needs a sweep_dir (in-memory sweeps leave "
        "nothing to resume from)");
  return execute(specs, statistic, /*resuming=*/true);
}

void SweepRunner::request_drain() {
  drain_.store(true, std::memory_order_relaxed);
  // Wake both the blocked submitter and any idle workers so the drain
  // takes effect now, not at the next queue transition.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  can_submit_.notify_all();
  have_work_.notify_all();
}

std::string SweepRunner::manifest_path() const {
  return options_.sweep_dir + "/sweep.manifest";
}

SweepResult SweepRunner::execute(const std::vector<ScenarioSpec>& specs,
                                 const Statistic& statistic, bool resuming) {
  if (!statistic)
    throw std::invalid_argument("SweepRunner: empty statistic");
  for (const ScenarioSpec& spec : specs) {
    if (spec.n < 2)
      throw std::invalid_argument("SweepRunner: scenario '" + spec.name +
                                  "' has n < 2");
    if (spec.target_time < 0)
      throw std::invalid_argument("SweepRunner: scenario '" + spec.name +
                                  "' has a negative target");
  }
  const auto start = Clock::now();
  drain_.store(false, std::memory_order_relaxed);
  if (!options_.sweep_dir.empty()) ensure_directory(options_.sweep_dir);

  const fault::FaultSchedule* faults =
      options_.faults != nullptr ? options_.faults : &fault::global();

  const std::size_t count = specs.size();
  std::vector<ScenarioReport> reports(count);
  for (std::size_t i = 0; i < count; ++i) reports[i].name = specs[i].name;
  std::vector<char> finished(count, 0);  // recorded done in the manifest
  if (resuming) load_manifest(specs, reports, finished);

  if (options_.supervision.enabled) {
    // Process-isolated path: fan unfinished scenarios out to forked
    // worker processes.  pool_ is never submitted to, so this process
    // stays single-threaded — a precondition for safe fork().
    SweepSupervisor supervisor(options_);
    supervisor.run(specs, statistic, resuming, reports, finished);
  } else {
    run_in_process(specs, statistic, faults, resuming, reports, finished);
  }

  SweepResult out;
  out.drain_requested = drain_.load(std::memory_order_relaxed);
  for (const ScenarioReport& report : reports) {
    switch (report.outcome) {
      case ScenarioOutcome::kOk: ++out.completed; break;
      case ScenarioOutcome::kRecovered:
        ++out.completed;
        ++out.recovered;
        break;
      case ScenarioOutcome::kQuarantined: ++out.quarantined; break;
      case ScenarioOutcome::kRejected: ++out.rejected; break;
      case ScenarioOutcome::kDrained: ++out.drained; break;
    }
  }
  out.scenarios = std::move(reports);
  out.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                start)
          .count();
  if (!options_.sweep_dir.empty()) write_manifest(specs, out.scenarios);
  return out;
}

void SweepRunner::run_in_process(const std::vector<ScenarioSpec>& specs,
                                 const Statistic& statistic,
                                 const fault::FaultSchedule* faults,
                                 bool resuming,
                                 std::vector<ScenarioReport>& reports,
                                 const std::vector<char>& finished) {
  const std::size_t count = specs.size();
  // The bounded admission queue.  Plain locals guarded by queue_mutex_;
  // the cvs are members only so request_drain() can wake the waiters.
  std::deque<std::size_t> ready;
  bool closed = false;
  std::vector<char> settled(count, 0);  // report written by a worker
  const std::int64_t capacity =
      options_.admission_capacity > 0
          ? options_.admission_capacity
          : 4 * static_cast<std::int64_t>(pool_.thread_count());

  auto worker = [&] {
    for (;;) {
      std::size_t index = 0;
      {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        have_work_.wait(lock, [&] {
          return !ready.empty() || closed ||
                 drain_.load(std::memory_order_relaxed);
        });
        if (drain_.load(std::memory_order_relaxed)) {
          // Admitted-but-unstarted scenarios drain too: drop them here,
          // unsettled; the post-join pass reports them kDrained.
          ready.clear();
          can_submit_.notify_all();
          return;
        }
        if (ready.empty()) return;  // closed, queue drained
        index = ready.front();
        ready.pop_front();
        can_submit_.notify_one();
      }
      run_scenario(index, specs[index], statistic, faults, resuming,
                   reports[index]);
      settled[index] = 1;
    }
  };
  for (int t = 0; t < pool_.thread_count(); ++t) pool_.submit(worker);

  // Submission, with backpressure: block while the queue is full.
  for (std::size_t i = 0; i < count; ++i) {
    if (finished[i] != 0) continue;
    std::unique_lock<std::mutex> lock(queue_mutex_);
    can_submit_.wait(lock, [&] {
      return static_cast<std::int64_t>(ready.size()) < capacity ||
             drain_.load(std::memory_order_relaxed);
    });
    if (drain_.load(std::memory_order_relaxed)) break;
    ready.push_back(i);
    have_work_.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    closed = true;
  }
  have_work_.notify_all();
  pool_.wait_idle();

  for (std::size_t i = 0; i < count; ++i) {
    if (finished[i] == 0 && settled[i] == 0) {
      // Never reached a worker: drained out of the queue (or never
      // admitted).  attempts == 0 records that no attempt ran.
      reports[i].outcome = ScenarioOutcome::kDrained;
      reports[i].attempts = 0;
    }
  }
}

void SweepRunner::run_scenario(std::size_t index, const ScenarioSpec& spec,
                               const Statistic& statistic,
                               const fault::FaultSchedule* faults,
                               bool resuming, ScenarioReport& report) {
  execute_scenario(
      spec, index, options_, statistic, faults, resuming, cache_,
      [this] { return drain_.load(std::memory_order_relaxed); },
      /*on_boundary=*/nullptr, report);
}

void SweepRunner::write_manifest(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<ScenarioReport>& reports) const {
  std::string text =
      "divpp-sweep-v1 " + std::to_string(specs.size()) + "\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const ScenarioReport& report = reports[i];
    text += "scenario " + std::to_string(i) + " " +
            manifest_status(report.outcome) + " " +
            std::to_string(report.attempts) + " " +
            std::to_string(report.resumes) + " " + hex_double(report.value) +
            " " + io::json_quote(report.name) + " " +
            io::json_quote(report.error) + "\n";
  }
  text += "end\n";
  fault::write_durable(manifest_path(), text);
}

void SweepRunner::load_manifest(const std::vector<ScenarioSpec>& specs,
                                std::vector<ScenarioReport>& reports,
                                std::vector<char>& finished) const {
  const std::string text = fault::read_durable(manifest_path());
  std::vector<std::string> lines;
  for (std::size_t begin = 0; begin < text.size();) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  if (lines.size() != specs.size() + 2)
    throw std::invalid_argument(
        "sweep manifest: expected " + std::to_string(specs.size()) +
        " scenarios, found " +
        std::to_string(lines.size() < 2 ? 0 : lines.size() - 2));
  const std::string header =
      "divpp-sweep-v1 " + std::to_string(specs.size());
  if (lines.front() != header)
    throw std::invalid_argument("sweep manifest: bad header '" +
                                lines.front() + "'");
  if (lines.back() != "end")
    throw std::invalid_argument("sweep manifest: missing end marker");

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string& line = lines[i + 1];
    std::size_t pos = 0;
    if (scan_token(line, pos) != "scenario" ||
        scan_token(line, pos) != std::to_string(i))
      throw std::invalid_argument("sweep manifest: bad scenario line " +
                                  std::to_string(i + 2));
    const std::string status = scan_token(line, pos);
    const int attempts = parse_int(scan_token(line, pos));
    const int resumes = parse_int(scan_token(line, pos));
    const double value = parse_hex_double(scan_token(line, pos));
    skip_spaces(line, pos);
    const std::string name = scan_quoted(line, pos);
    skip_spaces(line, pos);
    const std::string error = scan_quoted(line, pos);
    skip_spaces(line, pos);
    if (pos != line.size())
      throw std::invalid_argument("sweep manifest: trailing junk on line " +
                                  std::to_string(i + 2));
    if (name != specs[i].name)
      throw std::invalid_argument(
          "sweep manifest: scenario " + std::to_string(i) + " is '" + name +
          "' on disk but '" + specs[i].name +
          "' in the specs — refusing to resume a different sweep");

    ScenarioReport& report = reports[i];
    report.attempts = attempts;
    report.resumes = resumes;
    report.error = error;
    if (status == "pending") continue;  // resume() re-runs it
    if (status == "ok") {
      report.outcome = ScenarioOutcome::kOk;
    } else if (status == "recovered") {
      report.outcome = ScenarioOutcome::kRecovered;
    } else if (status == "quarantined") {
      report.outcome = ScenarioOutcome::kQuarantined;
    } else if (status == "rejected") {
      report.outcome = ScenarioOutcome::kRejected;
    } else {
      throw std::invalid_argument("sweep manifest: unknown status '" +
                                  status + "'");
    }
    if (report.outcome == ScenarioOutcome::kOk ||
        report.outcome == ScenarioOutcome::kRecovered) {
      report.value = value;  // hexfloat round-trip: bit-identical
      report.json = scenario_result_json(specs[i], value);
    }
    finished[i] = 1;
  }
}

}  // namespace divpp::runtime
