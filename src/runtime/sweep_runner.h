#ifndef DIVPP_RUNTIME_SWEEP_RUNNER_H
#define DIVPP_RUNTIME_SWEEP_RUNNER_H

/// \file sweep_runner.h
/// Resilient scenario sweeps: M heterogeneous scenarios (mixed n, k, w,
/// engines, targets) multiplexed over one ThreadPool, with per-scenario
/// fault isolation, shared SamplerContexts, and graceful drain (PR 8).
///
/// The sweep contract, piece by piece:
///
///  - **Sharing.** Every scenario acquires its (n, k, w) SamplerContext
///    from one bounded SamplerContextCache, so ten thousand scenarios on
///    the same population reuse one run-length table instead of building
///    ten thousand.  A scenario whose context would blow the cache's
///    memory budget is *rejected* (kRejected, structured error) — never
///    silently admitted over budget, never a reason to fail the sweep.
///  - **Isolation.** Each scenario runs under the same recovery loop as
///    DurableBatchRunner replicas (run_with_recovery): periodic durable
///    checkpoints, cooperative deadline, capped-backoff retries from the
///    latest valid checkpoint, quarantine after max_retries.  A crash,
///    injected fault, or invariant failure in one scenario quarantines
///    *that scenario only*; the rest of the sweep is unaffected, and the
///    completed scenarios' results are bit-identical to a fault-free
///    sweep (recovery restores exact state or replays the same stream).
///  - **Backpressure.** Scenarios are admitted through a bounded queue
///    (admission_capacity); submission blocks while the queue is full,
///    so a million-scenario sweep holds O(threads) scenarios in flight,
///    not a million simulations in memory.
///  - **Containment.** With SweepOptions::supervision.enabled the same
///    sweep runs on forked worker *processes* under a watchdog
///    (runtime/supervisor.h): hard faults — SIGSEGV, abort, OOM, a
///    wedged scenario — kill one worker, which is reaped, respawned and
///    resumed from its durable checkpoint; a crash-looping scenario is
///    quarantined alone.  Results are bit-identical to the in-process
///    path (both drive execute_scenario()).
///  - **Drain.** request_drain() (callable from any thread) stops
///    admission and parks every in-flight scenario at its next
///    checkpoint boundary — already persisted durably — then writes a
///    sweep manifest.  resume() reloads the manifest, keeps finished
///    results bit-identically, and finishes drained/pending scenarios
///    from their checkpoints; the combined results are bit-identical to
///    an uninterrupted run (period-aligned boundaries, see
///    runtime/durable_runner.h).
///
/// The statistic callback runs concurrently on pool threads: it must be
/// thread-safe and a pure function of the final simulation state.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "context/sampler_context.h"
#include "core/count_simulation.h"
#include "fault/fault.h"
#include "runtime/thread_pool.h"

namespace divpp::runtime {

/// How one scenario of a sweep ended.
enum class ScenarioOutcome {
  kOk,           ///< completed on the first attempt
  kRecovered,    ///< completed after >= 1 retry
  kQuarantined,  ///< exhausted max_retries; error says why
  kRejected,     ///< context admission refused (memory budget)
  kDrained,      ///< parked at a checkpoint by a drain request
};

/// Stable display name ("ok", "recovered", ...).
[[nodiscard]] const char* scenario_outcome_name(ScenarioOutcome outcome);

/// One scenario: a self-contained simulation request.
struct ScenarioSpec {
  /// Identifies the scenario in reports and the manifest; resume()
  /// cross-checks names against the manifest, so keep them unique.
  std::string name;
  std::int64_t n = 0;  ///< population, >= 2
  /// The palette (WeightMap has no default state; a one-colour unit
  /// palette stands in until the spec is filled).
  core::WeightMap weights = core::WeightMap({1.0});
  enum class Start { kProportional, kAdversarial, kEqual };
  Start start = Start::kProportional;
  core::Engine engine = core::Engine::kAuto;
  std::int64_t target_time = 0;
  std::uint64_t seed = 0;
};

/// Per-scenario result — graceful degradation is explicit, never silent.
struct ScenarioReport {
  std::string name;
  ScenarioOutcome outcome = ScenarioOutcome::kOk;
  int attempts = 1;    ///< total attempts, clean == 1
  int resumes = 0;     ///< attempts that restored from a checkpoint
  double value = 0.0;  ///< the statistic (meaningful for kOk/kRecovered)
  std::string error;   ///< last failure message (empty when clean)
  /// One-line JSON result for completed scenarios.  Deliberately built
  /// from deterministic fields only (name, n, k, engine, target, seed,
  /// value) — never attempts or timing — so a crash-injected sweep's
  /// completed scenarios are byte-identical to the fault-free sweep.
  std::string json;
};

/// Process-level supervision knobs (PR 9, runtime/supervisor.h).  When
/// enabled, the sweep fans scenarios out to forked worker *processes*
/// instead of pool threads: a real SIGSEGV, abort, OOM or wedged
/// scenario kills one worker, which the supervisor reaps (waitpid),
/// respawns, and resumes from the scenario's latest durable checkpoint —
/// results stay bit-identical to the in-process path because both drive
/// the same execute_scenario().  Requires a sweep_dir (checkpoints must
/// survive process death); request_drain() is in-process-only.
struct SupervisionOptions {
  bool enabled = false;
  /// Worker processes; 0 = one per hardware thread.
  int workers = 0;
  /// Minimum wall-clock gap between worker heartbeat frames (sent at
  /// checkpoint boundaries; throttled so short windows do not flood the
  /// pipe).  Must be well below hang_timeout_seconds.
  double heartbeat_period_seconds = 0.05;
  /// A busy worker silent for this long is declared wedged and
  /// SIGKILLed (then its scenario resumes on a fresh worker).  This is
  /// the *preemptive* watchdog the cooperative in-process deadline
  /// cannot provide (see runtime/durable_runner.h).  0 disables it.
  double hang_timeout_seconds = 30.0;
  /// A scenario whose workers die this many times in a row is
  /// quarantined (checkpoint kept) instead of respawned again.
  int crash_loop_k = 3;
};

/// Configuration of a sweep.
struct SweepOptions {
  int threads = 0;  ///< 0 = one worker per hardware thread
  /// Checkpoint period for every scenario.  \pre > 0.
  std::int64_t checkpoint_period = 0;
  /// Directory for per-scenario checkpoints ("scenario_<i>.ckpt") and
  /// the manifest ("sweep.manifest"); created if missing.  Empty keeps
  /// checkpoints in memory only — drain still parks scenarios, but
  /// resume() requires a directory.
  std::string sweep_dir;
  /// Retries per scenario beyond the first attempt before quarantine.
  int max_retries = 3;
  /// Capped exponential backoff between attempts.
  double backoff_initial_ms = 1.0;
  double backoff_cap_ms = 100.0;
  /// Cooperative per-attempt deadline per scenario (0 disables).
  double scenario_deadline_seconds = 0.0;
  /// Bound on the admission queue; 0 = 4 * threads.
  std::int64_t admission_capacity = 0;
  /// Memory budget of the shared SamplerContextCache; 0 = the cache
  /// default (SamplerContextCache::kDefaultBudgetBytes).
  std::size_t context_budget_bytes = 0;
  /// Fault schedule; nullptr falls back to fault::global() — the
  /// DIVPP_FAULT_SPEC environment hook the CI sweep-soak job uses.
  /// FaultSpec::replica addresses the scenario *index*.
  const fault::FaultSchedule* faults = nullptr;
  /// Unlink a scenario's checkpoint after it completes cleanly; a
  /// quarantined scenario always keeps its last checkpoint.
  bool cleanup_on_success = false;
  /// Process-isolated workers with watchdog supervision (PR 9).
  SupervisionOptions supervision;
};

/// Whole-sweep summary.
struct SweepResult {
  std::vector<ScenarioReport> scenarios;  ///< in spec order
  std::int64_t completed = 0;             ///< kOk + kRecovered
  std::int64_t recovered = 0;
  std::int64_t quarantined = 0;
  std::int64_t rejected = 0;
  std::int64_t drained = 0;
  bool drain_requested = false;
  double wall_seconds = 0.0;
};

/// Maps a scenario's final simulation state to its statistic.  Called
/// concurrently (pool threads or forked worker processes) — must be
/// thread-safe and a pure function of the final state.
using SweepStatistic = std::function<double(const core::CountSimulation&)>;

/// Per-scenario checkpoint file ("<sweep_dir>/scenario_<index>.ckpt");
/// empty when sweep_dir is empty (in-memory checkpoints only).
[[nodiscard]] std::string scenario_checkpoint_path(
    const std::string& sweep_dir, std::size_t index);

/// The one-line JSON result for a completed scenario — deterministic
/// fields only (see ScenarioReport::json), so the supervisor parent can
/// rebuild a worker's line byte-identically from (spec, value) alone.
[[nodiscard]] std::string scenario_result_json(const ScenarioSpec& spec,
                                               double value);

/// Runs ONE scenario through the shared recovery machinery (context
/// admission, run_with_recovery, durable checkpoints, quarantine) and
/// fills \p report.  This is the single code path behind both the
/// in-process SweepRunner workers and the forked supervisor workers —
/// sharing it is what makes supervised results bit-identical by
/// construction.  Never throws; failures land in the report.
/// \param should_stop optional cooperative stop (drain) checked after
///        each persisted boundary; a stopped scenario parks as kDrained.
/// \param on_boundary optional hook run at every checkpoint boundary —
///        the supervisor workers send heartbeats from it.
void execute_scenario(const ScenarioSpec& spec, std::size_t index,
                      const SweepOptions& options,
                      const SweepStatistic& statistic,
                      const fault::FaultSchedule* faults, bool resuming,
                      context::SamplerContextCache& cache,
                      const std::function<bool()>& should_stop,
                      const std::function<void()>& on_boundary,
                      ScenarioReport& report);

/// The sweep multiplexer: see the file comment.  One runner may execute
/// several sweeps sequentially (the context cache persists across them);
/// concurrent run() calls on one runner are not supported.
class SweepRunner {
 public:
  /// \throws std::invalid_argument on a bad option.
  explicit SweepRunner(SweepOptions options);

  /// Maps a scenario's final simulation state to its statistic.  Called
  /// concurrently — must be thread-safe and pure.
  using Statistic = SweepStatistic;

  /// Runs every scenario, returns reports in spec order, and (when
  /// sweep_dir is set) writes the sweep manifest.
  /// \throws std::invalid_argument on an invalid spec (n < 2, negative
  /// target); per-scenario failures never propagate.
  SweepResult run(const std::vector<ScenarioSpec>& specs,
                  const Statistic& statistic);

  /// Finishes a drained (or killed) sweep from its manifest: completed
  /// scenarios keep their recorded values bit-identically, quarantined
  /// and rejected scenarios keep their recorded outcomes, and pending /
  /// drained scenarios continue from their durable checkpoints (or from
  /// scratch when none was written — same stream, same result).
  /// \throws std::invalid_argument when sweep_dir is empty or the
  /// manifest does not match `specs` (count or names);
  /// fault::DurableFileError when the manifest is missing or corrupt.
  SweepResult resume(const std::vector<ScenarioSpec>& specs,
                     const Statistic& statistic);

  /// Requests a graceful drain of the sweep in flight: admission stops,
  /// running scenarios park at their next checkpoint boundary.  Safe
  /// from any thread; idempotent; a no-op when nothing is running.
  /// In-process sweeps only — a supervised sweep runs to completion
  /// (its containment story is the supervisor's, not drain's).
  void request_drain();

  [[nodiscard]] int threads() const noexcept { return pool_.thread_count(); }

  /// Counters of the shared context cache (hits/misses/evictions/...).
  [[nodiscard]] context::ContextCacheStats context_stats() const {
    return cache_.stats();
  }

 private:
  SweepResult execute(const std::vector<ScenarioSpec>& specs,
                      const Statistic& statistic, bool resuming);
  /// The PR 8 thread-pool path: bounded admission, pool workers, drain.
  void run_in_process(const std::vector<ScenarioSpec>& specs,
                      const Statistic& statistic,
                      const fault::FaultSchedule* faults, bool resuming,
                      std::vector<ScenarioReport>& reports,
                      const std::vector<char>& finished);
  void run_scenario(std::size_t index, const ScenarioSpec& spec,
                    const Statistic& statistic,
                    const fault::FaultSchedule* faults, bool resuming,
                    ScenarioReport& report);
  [[nodiscard]] std::string manifest_path() const;
  void write_manifest(const std::vector<ScenarioSpec>& specs,
                      const std::vector<ScenarioReport>& reports) const;
  /// Fills reports/finished from the manifest.  \throws on mismatch.
  void load_manifest(const std::vector<ScenarioSpec>& specs,
                     std::vector<ScenarioReport>& reports,
                     std::vector<char>& finished) const;

  SweepOptions options_;
  context::SamplerContextCache cache_;
  ThreadPool pool_;
  std::atomic<bool> drain_{false};
  // Admission queue state; members (not execute() locals) so
  // request_drain() can wake the waiters.
  std::mutex queue_mutex_;
  std::condition_variable can_submit_;
  std::condition_variable have_work_;
};

}  // namespace divpp::runtime

#endif  // DIVPP_RUNTIME_SWEEP_RUNNER_H
