#include "runtime/thread_pool.h"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

namespace divpp::runtime {

ThreadPool::ThreadPool(int threads) {
  if (threads < 0)
    throw std::invalid_argument("ThreadPool: negative thread count");
  configured_ = threads == 0 ? hardware_threads() : threads;
  // Workers spawn lazily in the first submit() — see the header: a pool
  // that is never used leaves the process single-threaded (fork-safe).
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
      throw std::logic_error("ThreadPool: submit after shutdown");
    ensure_started_locked();
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::ensure_started_locked() {
  if (!workers_.empty()) return;
  workers_.reserve(static_cast<std::size_t>(configured_));
  for (int i = 0; i < configured_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

TaskGroup::~TaskGroup() {
  cancel();
  wait();
}

void TaskGroup::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++outstanding_;
  }
  pool_.submit([this, task = std::move(task)] {
    if (!cancelled_.load(std::memory_order_relaxed)) task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --outstanding_;
      if (outstanding_ == 0) drained_.notify_all();
    }
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return outstanding_ == 0; });
}

std::int64_t TaskGroup::outstanding() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return outstanding_;
}

void parallel_for(ThreadPool& pool, std::int64_t count,
                  const std::function<void(std::int64_t)>& fn) {
  if (count <= 0) return;
  // One claiming task per worker; each loops over a shared atomic index,
  // so iteration cost imbalance self-levels without per-item queue churn.
  std::atomic<std::int64_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const int tasks = static_cast<int>(
      std::min<std::int64_t>(pool.thread_count(), count));
  for (int t = 0; t < tasks; ++t) {
    pool.submit([&] {
      for (;;) {
        const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace divpp::runtime
