#ifndef DIVPP_RUNTIME_THREAD_POOL_H
#define DIVPP_RUNTIME_THREAD_POOL_H

/// \file thread_pool.h
/// A small fixed-size worker pool for fanning independent simulation
/// replicas across cores.
///
/// The pool is deliberately minimal: tasks are fire-and-forget closures,
/// and `parallel_for` is the intended entry point for batch work.  All
/// determinism guarantees live one layer up in BatchRunner — the pool
/// itself makes no ordering promises beyond "every task runs exactly
/// once".

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace divpp::runtime {

/// Fixed-size pool of worker threads consuming a shared task queue.
///
/// Workers spawn lazily on the first `submit`, not in the constructor:
/// a process that constructs a pool but never submits (e.g. a
/// supervised SweepRunner that fans work out to forked worker
/// *processes* instead — see runtime/supervisor.h) stays genuinely
/// single-threaded, which is what makes fork() safe there, including
/// under ThreadSanitizer.  `thread_count()` reports the configured size
/// either way, so capacity arithmetic never depends on start state.
class ThreadPool {
 public:
  /// Configures \p threads workers; 0 means one per hardware thread.
  /// A pool of size 1 still runs its single worker, so `submit` never
  /// runs a task on the calling thread.
  explicit ThreadPool(int threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured number of worker threads (spawned or not).
  [[nodiscard]] int thread_count() const noexcept { return configured_; }

  /// Enqueues a task.  Tasks must not throw; use parallel_for for work
  /// that can fail (it captures and rethrows the first exception).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads() noexcept;

 private:
  void worker_loop();
  void ensure_started_locked();

  int configured_ = 1;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::int64_t active_ = 0;
  bool stopping_ = false;
};

/// A cancellable batch of tasks on a ThreadPool — the speculation task
/// group of the time-parallel engine (parallel/parallel_run.cpp).
///
/// Cancellation is *check-before-start only*: a cancelled task that has
/// not begun is skipped entirely, but a task already running completes
/// normally.  That coarse granularity is deliberate — a speculative
/// simulation window aborted mid-flight would leave its worker state
/// half-advanced and its RNG stream partially consumed, so the engine
/// discards completed speculation results instead of interrupting them.
/// Tasks must not throw (the ThreadPool contract); wait() therefore has
/// nothing to rethrow.
///
/// The group may be reused across rounds: wait(), then submit again
/// (cancel state persists until reset()).  Destruction cancels pending
/// tasks and waits for running ones.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Cancels whatever has not started, then blocks for the rest.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task`; it runs unless the group is cancelled before a
  /// worker picks it up.  A task submitted after cancel() is counted and
  /// immediately skippable — submit/cancel races resolve safely.
  void submit(std::function<void()> task);

  /// Marks the group cancelled: every not-yet-started task (present and
  /// future) is skipped.  Running tasks are unaffected.  Idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Clears the cancelled flag for the next round of submissions.
  /// \pre no tasks outstanding (call wait() first).
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

  /// Blocks until every submitted task has finished or been skipped.
  void wait();

  /// Tasks submitted and not yet finished/skipped (diagnostics).
  [[nodiscard]] std::int64_t outstanding() const;

 private:
  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable drained_;
  std::int64_t outstanding_ = 0;
  std::atomic<bool> cancelled_{false};
};

/// Runs fn(i) for every i in [0, count), spread across the pool's
/// workers, and blocks until all iterations finish.  Iterations are
/// claimed dynamically, so long and short items balance automatically.
/// If any iteration throws, the first exception (by completion order) is
/// rethrown after the remaining iterations have drained.
void parallel_for(ThreadPool& pool, std::int64_t count,
                  const std::function<void(std::int64_t)>& fn);

}  // namespace divpp::runtime

#endif  // DIVPP_RUNTIME_THREAD_POOL_H
