#ifndef DIVPP_RUNTIME_THREAD_POOL_H
#define DIVPP_RUNTIME_THREAD_POOL_H

/// \file thread_pool.h
/// A small fixed-size worker pool for fanning independent simulation
/// replicas across cores.
///
/// The pool is deliberately minimal: tasks are fire-and-forget closures,
/// and `parallel_for` is the intended entry point for batch work.  All
/// determinism guarantees live one layer up in BatchRunner — the pool
/// itself makes no ordering promises beyond "every task runs exactly
/// once".

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace divpp::runtime {

/// Fixed-size pool of worker threads consuming a shared task queue.
///
/// Workers spawn lazily on the first `submit`, not in the constructor:
/// a process that constructs a pool but never submits (e.g. a
/// supervised SweepRunner that fans work out to forked worker
/// *processes* instead — see runtime/supervisor.h) stays genuinely
/// single-threaded, which is what makes fork() safe there, including
/// under ThreadSanitizer.  `thread_count()` reports the configured size
/// either way, so capacity arithmetic never depends on start state.
class ThreadPool {
 public:
  /// Configures \p threads workers; 0 means one per hardware thread.
  /// A pool of size 1 still runs its single worker, so `submit` never
  /// runs a task on the calling thread.
  explicit ThreadPool(int threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured number of worker threads (spawned or not).
  [[nodiscard]] int thread_count() const noexcept { return configured_; }

  /// Enqueues a task.  Tasks must not throw; use parallel_for for work
  /// that can fail (it captures and rethrows the first exception).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads() noexcept;

 private:
  void worker_loop();
  void ensure_started_locked();

  int configured_ = 1;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::int64_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [0, count), spread across the pool's
/// workers, and blocks until all iterations finish.  Iterations are
/// claimed dynamically, so long and short items balance automatically.
/// If any iteration throws, the first exception (by completion order) is
/// rethrown after the remaining iterations have drained.
void parallel_for(ThreadPool& pool, std::int64_t count,
                  const std::function<void(std::int64_t)>& fn);

}  // namespace divpp::runtime

#endif  // DIVPP_RUNTIME_THREAD_POOL_H
