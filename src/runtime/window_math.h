#ifndef DIVPP_RUNTIME_WINDOW_MATH_H
#define DIVPP_RUNTIME_WINDOW_MATH_H

/// \file window_math.h
/// Period-aligned window-boundary arithmetic, shared by the durable
/// runner (runtime/durable_runner.cpp) and the time-parallel engine
/// (parallel/parallel_run.cpp).
///
/// Boundaries sit at the multiples of the period (absolute interaction
/// time), plus the run target — pure functions of (t, period), never of
/// where a previous run happened to die or which thread executed a
/// window.  That purity is what lets a resumed run replay the same
/// boundary sequence as the original, and what lets a speculation
/// thread name the window it is running before the leader has reached
/// it.

#include <algorithm>
#include <cstdint>

namespace divpp::runtime {

/// 0-based index of the window a boundary at absolute time `t` closes.
/// \pre t >= 1, period >= 1.
[[nodiscard]] constexpr std::int64_t window_index_at(
    std::int64_t t, std::int64_t period) noexcept {
  return (t - 1) / period;
}

/// The first period-aligned boundary strictly after `now`, clamped to
/// `target`: min(target, (now / period + 1) * period).
/// \pre now < target, period >= 1.
[[nodiscard]] constexpr std::int64_t next_window_boundary(
    std::int64_t now, std::int64_t period, std::int64_t target) noexcept {
  return std::min(target, (now / period + 1) * period);
}

}  // namespace divpp::runtime

#endif  // DIVPP_RUNTIME_WINDOW_MATH_H
