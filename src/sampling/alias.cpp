#include "sampling/alias.h"

#include <stdexcept>

#include "rng/distributions.h"

namespace divpp::sampling {

AliasTable::AliasTable(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("AliasTable: empty weights");
  const auto k = weights.size();
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (!(total > 0.0))
    throw std::invalid_argument("AliasTable: weights sum to zero");

  pmf_.resize(k);
  for (std::size_t i = 0; i < k; ++i) pmf_[i] = weights[i] / total;

  prob_.assign(k, 0.0);
  alias_.assign(k, 0);
  std::vector<double> scaled(k);
  for (std::size_t i = 0; i < k; ++i)
    scaled[i] = pmf_[i] * static_cast<double>(k);

  std::vector<std::int64_t> small;
  std::vector<std::int64_t> large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::int64_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::int64_t s = small.back();
    small.pop_back();
    const std::int64_t l = large.back();
    large.pop_back();
    prob_[static_cast<std::size_t>(s)] = scaled[static_cast<std::size_t>(s)];
    alias_[static_cast<std::size_t>(s)] = l;
    scaled[static_cast<std::size_t>(l)] =
        (scaled[static_cast<std::size_t>(l)] +
         scaled[static_cast<std::size_t>(s)]) -
        1.0;
    (scaled[static_cast<std::size_t>(l)] < 1.0 ? small : large).push_back(l);
  }
  for (const std::int64_t i : large) prob_[static_cast<std::size_t>(i)] = 1.0;
  for (const std::int64_t i : small) prob_[static_cast<std::size_t>(i)] = 1.0;
}

std::int64_t AliasTable::sample(rng::Xoshiro256& gen) const {
  const std::int64_t slot = rng::uniform_below(gen, size());
  const double u = rng::uniform01(gen);
  return u < prob_[static_cast<std::size_t>(slot)]
             ? slot
             : alias_[static_cast<std::size_t>(slot)];
}

double AliasTable::probability(std::int64_t i) const {
  if (i < 0 || i >= size())
    throw std::out_of_range("AliasTable::probability: index out of range");
  return pmf_[static_cast<std::size_t>(i)];
}

}  // namespace divpp::sampling
