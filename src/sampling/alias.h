#ifndef DIVPP_SAMPLING_ALIAS_H
#define DIVPP_SAMPLING_ALIAS_H

/// \file alias.h
/// Walker/Vose alias table for O(1) repeated sampling from a *fixed*
/// discrete distribution.
///
/// Part of the sampling subsystem: use AliasTable when the distribution
/// never changes between draws (e.g. the frozen palette of the trivial
/// global-sampling baseline), and the Fenwick samplers (fenwick.h) when
/// entries update between draws.

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro.h"

namespace divpp::sampling {

/// O(k) construction, O(1) draws, distribution frozen at construction.
class AliasTable {
 public:
  /// Builds the table in O(k).  \pre weights non-empty, all >= 0, sum > 0.
  explicit AliasTable(std::span<const double> weights);

  /// Draws an index in O(1).
  [[nodiscard]] std::int64_t sample(rng::Xoshiro256& gen) const;

  /// Number of categories.
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(prob_.size());
  }

  /// The probability assigned to category i (for tests).
  [[nodiscard]] double probability(std::int64_t i) const;

  /// Heap footprint of the three per-slot arrays — the unit of memory
  /// accounting for the shared-context cache (context/sampler_context.h).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(std::int64_t) +
           pmf_.capacity() * sizeof(double);
  }

 private:
  std::vector<double> prob_;        // acceptance probability per slot
  std::vector<std::int64_t> alias_; // alias per slot
  std::vector<double> pmf_;         // normalised input, kept for inspection
};

}  // namespace divpp::sampling

#endif  // DIVPP_SAMPLING_ALIAS_H
