#include "sampling/fenwick.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/invariant.h"
#include "rng/distributions.h"

namespace divpp::sampling {

namespace {

[[nodiscard]] std::int64_t highest_bit_at_most(std::int64_t n) noexcept {
  std::int64_t bit = 1;
  while ((bit << 1) <= n) bit <<= 1;
  return n >= 1 ? bit : 0;
}

[[nodiscard]] constexpr std::int64_t lowbit(std::int64_t i) noexcept {
  return i & -i;
}

}  // namespace

// ---- FenwickCounts --------------------------------------------------------

FenwickCounts::FenwickCounts(std::span<const std::int64_t> counts) {
  assign(counts);
}

void FenwickCounts::assign(std::span<const std::int64_t> counts) {
  for (const std::int64_t c : counts) {
    if (c < 0)
      throw std::invalid_argument("FenwickCounts: negative count");
  }
  leaf_.assign(counts.begin(), counts.end());
  const auto n = static_cast<std::int64_t>(leaf_.size());
  cap_ = 1;
  while (cap_ < n) cap_ <<= 1;
  if (n == 0) cap_ = 0;
  tree_.assign(static_cast<std::size_t>(cap_) + 1, 0);
  total_ = 0;
  // Linear-time build: push each leaf into its parent chain once.
  for (std::int64_t i = 1; i <= cap_; ++i) {
    if (i <= n)
      tree_[static_cast<std::size_t>(i)] +=
          leaf_[static_cast<std::size_t>(i - 1)];
    const std::int64_t parent = i + lowbit(i);
    if (parent <= cap_)
      tree_[static_cast<std::size_t>(parent)] +=
          tree_[static_cast<std::size_t>(i)];
  }
  for (const std::int64_t c : leaf_) total_ += c;
}

void FenwickCounts::push_back(std::int64_t value) {
  if (value < 0)
    throw std::invalid_argument("FenwickCounts::push_back: negative count");
  // Cold path (palette growth): rebuild over the extended leaf vector.
  std::vector<std::int64_t> extended = leaf_;
  extended.push_back(value);
  assign(extended);
}

void FenwickCounts::add(std::int64_t i, std::int64_t delta) noexcept {
  SIM_ASSERT(i >= 0 && i < static_cast<std::int64_t>(leaf_.size()));
  leaf_[static_cast<std::size_t>(i)] += delta;
  // Counts are agent tallies: they may never go negative, and the
  // running total mirrors the leaves exactly (integers don't drift).
  SIM_ASSERT(leaf_[static_cast<std::size_t>(i)] >= 0);
  total_ += delta;
  SIM_ASSERT(total_ >= 0);
  for (std::int64_t j = i + 1; j <= cap_; j += lowbit(j))
    tree_[static_cast<std::size_t>(j)] += delta;
}

void FenwickCounts::set(std::int64_t i, std::int64_t value) noexcept {
  add(i, value - leaf_[static_cast<std::size_t>(i)]);
}

std::int64_t FenwickCounts::prefix(std::int64_t i) const noexcept {
  std::int64_t sum = 0;
  for (std::int64_t j = i; j > 0; j -= lowbit(j))
    sum += tree_[static_cast<std::size_t>(j)];
  return sum;
}

std::int64_t FenwickCounts::find_excluding(std::int64_t target,
                                           std::int64_t excluded)
    const noexcept {
  // Branch-free descent over the padded tree: each level computes its
  // decision with mask arithmetic, so random targets cost no branch
  // mispredicts.  Zero padding keeps the mapping exact (a zero node can
  // never satisfy `node > target`... it is skipped by `node <= target`
  // only when the remaining mass lies further right, which the invariant
  // target < sum(remaining range) guarantees).
  const std::int64_t* const tree = tree_.data();
  std::int64_t pos = 0;  // 0-based count of leaves strictly left of cursor
  for (std::int64_t bit = cap_; bit > 0; bit >>= 1) {
    const std::int64_t next = pos + bit;
    // tree[next] covers 0-based leaves [pos, next); subtract the excluded
    // unit when its leaf falls inside (unsigned trick handles excluded<0).
    const std::int64_t node =
        tree[next] -
        static_cast<std::int64_t>(
            static_cast<std::uint64_t>(excluded - pos) <
            static_cast<std::uint64_t>(bit));
    const std::int64_t take = -static_cast<std::int64_t>(node <= target);
    target -= node & take;
    pos += bit & take;
  }
  return std::min(pos, static_cast<std::int64_t>(leaf_.size()) - 1);
}

std::int64_t FenwickCounts::sample(rng::Xoshiro256& gen) const {
  return find(rng::uniform_below(gen, total_));
}

// ---- FenwickPropensities --------------------------------------------------

FenwickPropensities::FenwickPropensities(std::span<const double> weights) {
  assign(weights);
}

void FenwickPropensities::assign(std::span<const double> weights) {
  for (const double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("FenwickPropensities: negative weight");
  }
  leaf_.assign(weights.begin(), weights.end());
  tree_.assign(leaf_.size() + 1, 0.0);
  top_bit_ = highest_bit_at_most(static_cast<std::int64_t>(leaf_.size()));
  rebuild();
}

void FenwickPropensities::push_back(double weight) {
  if (weight < 0.0)
    throw std::invalid_argument(
        "FenwickPropensities::push_back: negative weight");
  if (tree_.empty()) tree_.push_back(0.0);  // 1-based dummy slot
  leaf_.push_back(weight);
  const auto i = static_cast<std::int64_t>(leaf_.size());
  double node = weight;
  for (std::int64_t j = i - 1; j > i - lowbit(i); j -= lowbit(j))
    node += tree_[static_cast<std::size_t>(j)];
  tree_.push_back(node);
  total_ += weight;
  top_bit_ = highest_bit_at_most(i);
}

void FenwickPropensities::rebuild() noexcept {
  const auto n = static_cast<std::int64_t>(leaf_.size());
  std::fill(tree_.begin(), tree_.end(), 0.0);
  total_ = 0.0;
  for (std::int64_t i = 1; i <= n; ++i) {
    tree_[static_cast<std::size_t>(i)] += leaf_[static_cast<std::size_t>(i - 1)];
    const std::int64_t parent = i + lowbit(i);
    if (parent <= n)
      tree_[static_cast<std::size_t>(parent)] +=
          tree_[static_cast<std::size_t>(i)];
    total_ += leaf_[static_cast<std::size_t>(i - 1)];
  }
  updates_until_rebuild_ = std::max<std::int64_t>(n, 64);
}

void FenwickPropensities::set(std::int64_t i, double value) noexcept {
  SIM_ASSERT(i >= 0 && i < static_cast<std::int64_t>(leaf_.size()));
  SIM_ASSERT(value >= 0.0);
  const double delta = value - leaf_[static_cast<std::size_t>(i)];
  leaf_[static_cast<std::size_t>(i)] = value;
  if (--updates_until_rebuild_ <= 0) {
    SIM_IF_CHECKED({
      // Propensity-drift bound, checked at the moment the periodic
      // rebuild would wipe the evidence: the delta-maintained running
      // total may wander from the exactly-stored leaves by ~one rounding
      // per update over the rebuild period — a larger gap means a delta
      // was applied twice or to the wrong node.  1e-9 relative is ~4
      // decades of slack over the worst n·2⁻⁵² accumulation.
      double exact = 0.0;
      for (const double leaf : leaf_) exact += leaf;
      const double tol = 1e-9 * std::max(1.0, exact) + 1e-300;
      SIM_DCHECK_LE(std::fabs((total_ + delta) - exact), tol);
    });
    rebuild();
    return;
  }
  total_ += delta;
  const auto n = static_cast<std::int64_t>(leaf_.size());
  for (std::int64_t j = i + 1; j <= n; j += lowbit(j))
    tree_[static_cast<std::size_t>(j)] += delta;
}

std::int64_t FenwickPropensities::find(double target) const noexcept {
  const auto n = static_cast<std::int64_t>(leaf_.size());
  std::int64_t pos = 0;
  for (std::int64_t bit = top_bit_; bit > 0; bit >>= 1) {
    const std::int64_t next = pos + bit;
    if (next <= n) {
      const double node = tree_[static_cast<std::size_t>(next)];
      if (node <= target) {
        target -= node;
        pos = next;
      }
    }
  }
  pos = std::min(pos, n - 1);
  // Rounding in the descent can land on a zero-weight leaf; snap to the
  // nearest category that actually carries mass.
  if (leaf_[static_cast<std::size_t>(pos)] > 0.0) return pos;
  for (std::int64_t step = 1; step < n; ++step) {
    if (pos + step < n && leaf_[static_cast<std::size_t>(pos + step)] > 0.0)
      return pos + step;
    if (pos - step >= 0 && leaf_[static_cast<std::size_t>(pos - step)] > 0.0)
      return pos - step;
  }
  return pos;
}

std::int64_t FenwickPropensities::sample(rng::Xoshiro256& gen) const {
  return find(rng::uniform01(gen) * total());
}

// ---- MinTree --------------------------------------------------------------

MinTree::MinTree(std::span<const std::int64_t> values) { assign(values); }

void MinTree::assign(std::span<const std::int64_t> values) {
  size_ = static_cast<std::int64_t>(values.size());
  cap_ = 1;
  while (cap_ < std::max<std::int64_t>(size_, 1)) cap_ <<= 1;
  tree_.assign(static_cast<std::size_t>(2 * cap_),
               std::numeric_limits<std::int64_t>::max());
  for (std::int64_t i = 0; i < size_; ++i)
    tree_[static_cast<std::size_t>(cap_ + i)] =
        values[static_cast<std::size_t>(i)];
  for (std::int64_t i = cap_ - 1; i >= 1; --i)
    tree_[static_cast<std::size_t>(i)] =
        std::min(tree_[static_cast<std::size_t>(2 * i)],
                 tree_[static_cast<std::size_t>(2 * i + 1)]);
}

void MinTree::push_back(std::int64_t value) {
  if (size_ == cap_) {
    std::vector<std::int64_t> values(tree_.begin() + cap_,
                                     tree_.begin() + cap_ + size_);
    values.push_back(value);
    assign(values);
    return;
  }
  ++size_;
  set(size_ - 1, value);
}

void MinTree::set(std::int64_t i, std::int64_t value) noexcept {
  std::int64_t j = cap_ + i;
  tree_[static_cast<std::size_t>(j)] = value;
  for (j >>= 1; j >= 1; j >>= 1)
    tree_[static_cast<std::size_t>(j)] =
        std::min(tree_[static_cast<std::size_t>(2 * j)],
                 tree_[static_cast<std::size_t>(2 * j + 1)]);
}

std::int64_t MinTree::get(std::int64_t i) const noexcept {
  return tree_[static_cast<std::size_t>(cap_ + i)];
}

}  // namespace divpp::sampling
