#ifndef DIVPP_SAMPLING_FENWICK_H
#define DIVPP_SAMPLING_FENWICK_H

/// \file fenwick.h
/// Fenwick-tree (binary indexed tree) dynamic samplers.
///
/// The kinetic-Monte-Carlo workhorse for the lumped count chain: the
/// per-colour counts/propensities change by one entry per transition, so a
/// Fenwick tree gives O(log k) point updates and O(log k) weighted draws
/// where a linear scan pays O(k) per draw.  Two variants:
///
///  * FenwickCounts        — exact integer counts (agent classes);
///  * FenwickPropensities  — double propensities (flip rates), with a
///    periodic rebuild that bounds floating-point drift from incremental
///    deltas.
///
/// Draws map a target into the category ordering exactly like the linear
/// scans in rng/distributions.h (`sample_counts` / `sample_discrete`),
/// which stay as the reference implementations the distributional tests
/// pin these trees against.

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro.h"

namespace divpp::sampling {

/// Fenwick tree over non-negative integer counts with O(log k) point
/// update, prefix sum, and weighted category draw.
class FenwickCounts {
 public:
  FenwickCounts() = default;
  /// Builds over a copy of `counts` in O(k).  \pre all counts >= 0.
  explicit FenwickCounts(std::span<const std::int64_t> counts);

  /// Rebuilds over `counts` in O(k) (structural mutations).
  void assign(std::span<const std::int64_t> counts);

  /// Appends one category holding `value`.  \pre value >= 0.
  void push_back(std::int64_t value);

  /// counts[i] += delta.  \pre the result stays >= 0.  O(log k).
  void add(std::int64_t i, std::int64_t delta) noexcept;

  /// Overwrites counts[i].  \pre value >= 0.  O(log k).
  void set(std::int64_t i, std::int64_t value) noexcept;

  /// Current value of counts[i].  O(1).
  [[nodiscard]] std::int64_t get(std::int64_t i) const noexcept {
    return leaf_[static_cast<std::size_t>(i)];
  }

  /// Sum of counts[0..i) (i may equal size()).  O(log k).
  [[nodiscard]] std::int64_t prefix(std::int64_t i) const noexcept;

  /// Sum of all counts.  O(1).
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }

  /// Number of categories.
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(leaf_.size());
  }

  /// The category owning flattened position `target`: the smallest i with
  /// prefix(i+1) > target — identical to the linear scan's mapping.
  /// \pre 0 <= target < total().  O(log k).
  [[nodiscard]] std::int64_t find(std::int64_t target) const noexcept {
    return find_excluding(target, -1);
  }

  /// find() over the counts with one unit removed from category
  /// `excluded` (pass -1 for none) — the "minus the tagged/initiator
  /// agent" draw of the count chain, without mutating the tree.
  /// \pre excluded < size(); counts[excluded] >= 1 when excluded >= 0.
  [[nodiscard]] std::int64_t find_excluding(std::int64_t target,
                                            std::int64_t excluded)
      const noexcept;

  /// Draws a category with probability counts[i] / total().
  /// \pre total() >= 1.  Consumes one uniform_below draw.
  [[nodiscard]] std::int64_t sample(rng::Xoshiro256& gen) const;

 private:
  // The tree is padded to a power-of-two capacity with zero leaves: the
  // find descent then needs no bounds check, and its level decisions are
  // computed with mask arithmetic instead of data-dependent branches
  // (random targets mispredict ~50% per level otherwise).  Zero padding
  // is exact for integers: a zero node is always skipped.
  std::vector<std::int64_t> tree_;  // 1-based Fenwick nodes, cap_ + 1 slots
  std::vector<std::int64_t> leaf_;  // raw values, O(1) reads
  std::int64_t total_ = 0;
  std::int64_t cap_ = 0;  // power-of-two capacity >= size()
};

/// Fenwick tree over non-negative double propensities.  Point updates are
/// applied as deltas; every `k` updates the internal nodes are rebuilt
/// from the exactly-stored leaves, so rounding drift never accumulates
/// beyond one rebuild period (amortised O(1) extra per update).
class FenwickPropensities {
 public:
  FenwickPropensities() = default;
  /// Builds over a copy of `weights` in O(k).  \pre all >= 0.
  explicit FenwickPropensities(std::span<const double> weights);

  /// Rebuilds over `weights` in O(k).
  void assign(std::span<const double> weights);

  /// Appends one category holding `weight`.  \pre weight >= 0.
  void push_back(double weight);

  /// Overwrites weights[i].  \pre value >= 0.  Amortised O(log k).
  void set(std::int64_t i, double value) noexcept;

  /// Current value of weights[i].  O(1).
  [[nodiscard]] double get(std::int64_t i) const noexcept {
    return leaf_[static_cast<std::size_t>(i)];
  }

  /// Sum of all weights — O(1) running total, maintained by deltas and
  /// recomputed exactly from the leaves at each periodic rebuild.
  [[nodiscard]] double total() const noexcept { return total_; }

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(leaf_.size());
  }

  /// The category owning mass position `target` in [0, total()), with a
  /// fix-up to the nearest positive-weight category should floating-point
  /// descent land on a zero-weight leaf.  \pre some weight > 0.  O(log k).
  [[nodiscard]] std::int64_t find(double target) const noexcept;

  /// Draws category i with probability weights[i] / total().
  /// \pre total() > 0.  Consumes one uniform01 draw.
  [[nodiscard]] std::int64_t sample(rng::Xoshiro256& gen) const;

 private:
  void rebuild() noexcept;

  std::vector<double> tree_;  // 1-based Fenwick nodes
  std::vector<double> leaf_;  // exact values, drift-free
  double total_ = 0.0;
  std::int64_t top_bit_ = 0;
  std::int64_t updates_until_rebuild_ = 0;
};

/// Segment tree reporting the minimum of a dynamic integer array —
/// O(log k) point update, O(1) global minimum.  Backs the count chain's
/// min-dark sustainability observable.
class MinTree {
 public:
  MinTree() = default;
  explicit MinTree(std::span<const std::int64_t> values);

  void assign(std::span<const std::int64_t> values);
  void push_back(std::int64_t value);

  /// Overwrites values[i].  O(log k).
  void set(std::int64_t i, std::int64_t value) noexcept;

  [[nodiscard]] std::int64_t get(std::int64_t i) const noexcept;

  /// min over all values.  \pre size() >= 1.  O(1).
  [[nodiscard]] std::int64_t min() const noexcept { return tree_[1]; }

  [[nodiscard]] std::int64_t size() const noexcept { return size_; }

 private:
  std::vector<std::int64_t> tree_;  // 2*cap_ slots, leaves at [cap_, 2cap_)
  std::int64_t size_ = 0;
  std::int64_t cap_ = 0;  // power-of-two leaf capacity
};

}  // namespace divpp::sampling

#endif  // DIVPP_SAMPLING_FENWICK_H
