#ifndef DIVPP_SCHED_SCHEDULERS_H
#define DIVPP_SCHED_SCHEDULERS_H

/// \file schedulers.h
/// Alternative interaction schedulers.
///
/// The paper assumes the uniform random sequential scheduler (every step
/// schedules one uniformly random initiator) — that is Population::step.
/// The related work it contrasts with uses other schedules: Yasumi et
/// al. study adversarial/deterministic schedules, and the averaging
/// literature ([29]) uses synchronous random matchings.  These helpers
/// let the ablation benches run the same rules under those regimes.

#include <cstdint>
#include <vector>

#include "core/population.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"

namespace divpp::sched {

/// Runs `steps` time-steps where the initiator cycles deterministically
/// 0, 1, ..., n-1, 0, ... (responders remain random neighbours) — a mild
/// deterministic schedule, fair in the Yasumi et al. sense.
template <typename State, typename Rule, typename GraphT>
void run_round_robin(core::Population<State, Rule, GraphT>& population,
                     std::int64_t steps, rng::Xoshiro256& gen) {
  const std::int64_t n = population.size();
  for (std::int64_t i = 0; i < steps; ++i) {
    const std::int64_t u = population.time() % n;
    (void)population.step_with_initiator(u, gen);
  }
}

/// Runs one synchronous matching round: agents are paired by a uniformly
/// random perfect matching (one agent idles when n is odd) and the rule
/// fires once per pair with a random initiator direction.  Returns the
/// number of interactions executed (⌊n/2⌋).  This is the matching model
/// of the diffusion load-balancing literature ([29]).
template <typename State, typename Rule, typename GraphT>
std::int64_t run_matching_round(core::Population<State, Rule, GraphT>& population,
                                rng::Xoshiro256& gen) {
  const std::int64_t n = population.size();
  const std::vector<std::int64_t> order = rng::random_permutation(gen, n);
  std::int64_t interactions = 0;
  for (std::int64_t p = 0; p + 1 < n; p += 2) {
    const std::int64_t a = order[static_cast<std::size_t>(p)];
    const std::int64_t b = order[static_cast<std::size_t>(p + 1)];
    const bool a_initiates = rng::bernoulli(gen, 0.5);
    (void)population.force_interaction(a_initiates ? a : b,
                                       a_initiates ? b : a, gen);
    ++interactions;
  }
  return interactions;
}

/// Runs `rounds` matching rounds; returns total interactions executed.
template <typename State, typename Rule, typename GraphT>
std::int64_t run_matching(core::Population<State, Rule, GraphT>& population,
                          std::int64_t rounds, rng::Xoshiro256& gen) {
  std::int64_t total = 0;
  for (std::int64_t r = 0; r < rounds; ++r)
    total += run_matching_round(population, gen);
  return total;
}

}  // namespace divpp::sched

#endif  // DIVPP_SCHED_SCHEDULERS_H
