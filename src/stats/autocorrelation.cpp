#include "stats/autocorrelation.h"

#include <algorithm>
#include <stdexcept>

namespace divpp::stats {

namespace {

double series_mean(std::span<const double> values) {
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace

double autocorrelation(std::span<const double> values, std::int64_t lag) {
  const auto n = static_cast<std::int64_t>(values.size());
  if (n == 0) throw std::invalid_argument("autocorrelation: empty series");
  if (lag < 0 || lag >= n)
    throw std::invalid_argument("autocorrelation: lag out of range");
  const double mean = series_mean(values);
  double denom = 0.0;
  for (const double v : values) denom += (v - mean) * (v - mean);
  if (denom == 0.0) return 0.0;  // constant series
  double num = 0.0;
  for (std::int64_t i = 0; i + lag < n; ++i) {
    num += (values[static_cast<std::size_t>(i)] - mean) *
           (values[static_cast<std::size_t>(i + lag)] - mean);
  }
  return num / denom;
}

std::int64_t decorrelation_lag(std::span<const double> values,
                               double threshold, std::int64_t max_lag) {
  const auto n = static_cast<std::int64_t>(values.size());
  const std::int64_t cap = std::min(max_lag, n - 1);
  for (std::int64_t lag = 0; lag <= cap; ++lag) {
    if (autocorrelation(values, lag) <= threshold) return lag;
  }
  return -1;
}

double integrated_autocorrelation_time(std::span<const double> values,
                                       std::int64_t max_lag) {
  const auto n = static_cast<std::int64_t>(values.size());
  if (n < 2)
    throw std::invalid_argument(
        "integrated_autocorrelation_time: need >= 2 points");
  double iat = 1.0;
  const std::int64_t cap = std::min(max_lag, n - 1);
  for (std::int64_t lag = 1; lag <= cap; ++lag) {
    const double rho = autocorrelation(values, lag);
    if (rho <= 0.0) break;  // truncate at the first non-positive term
    iat += 2.0 * rho;
  }
  return iat;
}

double effective_sample_size(std::span<const double> values,
                             std::int64_t max_lag) {
  return static_cast<double>(values.size()) /
         integrated_autocorrelation_time(values, max_lag);
}

}  // namespace divpp::stats
