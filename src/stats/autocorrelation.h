#ifndef DIVPP_STATS_AUTOCORRELATION_H
#define DIVPP_STATS_AUTOCORRELATION_H

/// \file autocorrelation.h
/// Autocorrelation analysis of simulation time series.
///
/// The equilibrium experiments (E3/E4) sample the process at spaced probe
/// points; the spacing is justified by the integrated autocorrelation
/// time (IAT) of the observable, which these helpers estimate.  The IAT
/// also gives an honest effective-sample-size for every Monte Carlo
/// average the benches report.

#include <cstdint>
#include <span>
#include <vector>

namespace divpp::stats {

/// Sample autocorrelation ρ(lag) of a series (biased normalisation, the
/// standard estimator).  \pre 0 <= lag < values.size(), non-constant
/// series for a meaningful result (returns 0 when variance is 0).
[[nodiscard]] double autocorrelation(std::span<const double> values,
                                     std::int64_t lag);

/// First lag with ρ(lag) <= threshold, or -1 when none within max_lag.
[[nodiscard]] std::int64_t decorrelation_lag(std::span<const double> values,
                                             double threshold,
                                             std::int64_t max_lag);

/// Integrated autocorrelation time 1 + 2·Σ_{l>=1} ρ(l), truncated at the
/// first non-positive ρ (Geyer's initial positive sequence, simplified).
/// A white-noise series gives ~1.
[[nodiscard]] double integrated_autocorrelation_time(
    std::span<const double> values, std::int64_t max_lag);

/// Effective sample size  n / IAT.
[[nodiscard]] double effective_sample_size(std::span<const double> values,
                                           std::int64_t max_lag);

}  // namespace divpp::stats

#endif  // DIVPP_STATS_AUTOCORRELATION_H
