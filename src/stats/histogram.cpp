#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace divpp::stats {

Histogram::Histogram(double lo, double hi, std::int64_t bins)
    : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: need lo < hi");
  if (bins < 1) throw std::invalid_argument("Histogram: need bins >= 1");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  b = std::min(b, counts_.size() - 1);
  ++counts_[b];
}

std::int64_t Histogram::count(std::int64_t b) const {
  if (b < 0 || b >= bins())
    throw std::out_of_range("Histogram::count: bucket out of range");
  return counts_[static_cast<std::size_t>(b)];
}

double Histogram::bucket_lo(std::int64_t b) const {
  if (b < 0 || b >= bins())
    throw std::out_of_range("Histogram::bucket_lo: bucket out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(bins());
}

double Histogram::bucket_hi(std::int64_t b) const {
  if (b < 0 || b >= bins())
    throw std::out_of_range("Histogram::bucket_hi: bucket out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(b + 1) /
                   static_cast<double>(bins());
}

std::string Histogram::render(std::int64_t bar_width) const {
  std::int64_t peak = 1;
  for (const std::int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::int64_t b = 0; b < bins(); ++b) {
    const std::int64_t c = count(b);
    const auto stars = static_cast<std::int64_t>(
        std::llround(static_cast<double>(bar_width) * static_cast<double>(c) /
                     static_cast<double>(peak)));
    out << "[" << bucket_lo(b) << ", " << bucket_hi(b) << ") "
        << std::string(static_cast<std::size_t>(stars), '#') << " " << c
        << "\n";
  }
  if (underflow_ > 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

}  // namespace divpp::stats
