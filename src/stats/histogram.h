#ifndef DIVPP_STATS_HISTOGRAM_H
#define DIVPP_STATS_HISTOGRAM_H

/// \file histogram.h
/// Fixed-width histogram used by experiments to summarise distributions
/// (e.g. the distribution of per-colour support around the fair share).

#include <cstdint>
#include <string>
#include <vector>

namespace divpp::stats {

/// Histogram over [lo, hi) with `bins` equal-width buckets plus explicit
/// underflow/overflow counters.
class Histogram {
 public:
  /// \pre bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::int64_t bins);

  /// Adds one observation (routed to underflow/overflow when outside range).
  void add(double x) noexcept;

  /// Number of in-range buckets.
  [[nodiscard]] std::int64_t bins() const noexcept {
    return static_cast<std::int64_t>(counts_.size());
  }
  /// Count in bucket b.  \pre 0 <= b < bins().
  [[nodiscard]] std::int64_t count(std::int64_t b) const;
  /// Observations below lo / at-or-above hi.
  [[nodiscard]] std::int64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::int64_t overflow() const noexcept { return overflow_; }
  /// All observations, including out-of-range ones.
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  /// Left edge of bucket b.
  [[nodiscard]] double bucket_lo(std::int64_t b) const;
  /// Right edge of bucket b.
  [[nodiscard]] double bucket_hi(std::int64_t b) const;

  /// Multi-line ASCII rendering (one row per bucket with a bar).
  [[nodiscard]] std::string render(std::int64_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace divpp::stats

#endif  // DIVPP_STATS_HISTOGRAM_H
