#include "stats/online_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace divpp::stats {

OnlineStats::OnlineStats() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void OnlineStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double chi_square_statistic(std::span<const std::int64_t> observed,
                            std::span<const double> expected_p) {
  if (observed.size() != expected_p.size())
    throw std::invalid_argument("chi_square_statistic: size mismatch");
  if (observed.empty())
    throw std::invalid_argument("chi_square_statistic: empty input");
  std::int64_t total = 0;
  for (const std::int64_t c : observed) {
    if (c < 0)
      throw std::invalid_argument("chi_square_statistic: negative count");
    total += c;
  }
  if (total == 0)
    throw std::invalid_argument("chi_square_statistic: zero total count");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expect = expected_p[i] * static_cast<double>(total);
    if (!(expect > 0.0))
      throw std::invalid_argument(
          "chi_square_statistic: non-positive expected count");
    const double diff = static_cast<double>(observed[i]) - expect;
    stat += diff * diff / expect;
  }
  return stat;
}

double chi_square_critical_001(std::int64_t df) {
  if (df < 1)
    throw std::invalid_argument("chi_square_critical_001: df must be >= 1");
  // Wilson–Hilferty: X ~ df * (1 - 2/(9 df) + z * sqrt(2/(9 df)))^3,
  // with z the 0.999 standard-normal quantile (~3.0902).
  const double d = static_cast<double>(df);
  const double z = 3.090232306167813;
  const double term = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * term * term * term;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("linear_fit: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("linear_fit: need >= 2 points");
  const double n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (!(sxx > 0.0)) throw std::invalid_argument("linear_fit: degenerate xs");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace divpp::stats
