#ifndef DIVPP_STATS_ONLINE_STATS_H
#define DIVPP_STATS_ONLINE_STATS_H

/// \file online_stats.h
/// Streaming summary statistics (Welford) and small-sample utilities.

#include <cstdint>
#include <span>
#include <vector>

namespace divpp::stats {

/// Numerically stable streaming mean/variance/min/max (Welford's method).
/// Suitable for billions of observations without catastrophic cancellation.
class OnlineStats {
 public:
  /// Incorporates one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const OnlineStats& other) noexcept;

  /// Number of observations so far.
  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  /// Sample mean; 0 if empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 if fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  /// sqrt(variance()).
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation; +inf if empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation; -inf if empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;

 public:
  OnlineStats() noexcept;
};

/// Exact quantile of a sample (linear interpolation between order
/// statistics, the "type 7" definition used by R and NumPy).
/// \pre values non-empty, 0 <= q <= 1.  The input is copied, not mutated.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Convenience: median via quantile(values, 0.5).
[[nodiscard]] double median(std::span<const double> values);

/// Pearson chi-square statistic for observed counts vs expected
/// probabilities.  \pre sizes match, expected probabilities sum to ~1.
[[nodiscard]] double chi_square_statistic(
    std::span<const std::int64_t> observed, std::span<const double> expected_p);

/// Upper critical value of the chi-square distribution with df degrees of
/// freedom at significance ~0.001, via the Wilson–Hilferty approximation.
/// Used by statistical tests to obtain generous, deterministic thresholds.
[[nodiscard]] double chi_square_critical_001(std::int64_t df);

/// Ordinary least squares fit y ≈ a + b·x.  Returns {intercept, slope}.
/// \pre xs.size() == ys.size() >= 2 and xs not all equal.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

}  // namespace divpp::stats

#endif  // DIVPP_STATS_ONLINE_STATS_H
