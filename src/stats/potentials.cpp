#include "stats/potentials.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace divpp::stats {

namespace {

void check_inputs(std::span<const std::int64_t> values,
                  std::span<const double> weights, const char* who) {
  if (values.empty() || values.size() != weights.size())
    throw std::invalid_argument(std::string(who) + ": size mismatch or empty");
  for (const double w : weights) {
    if (!(w > 0.0))
      throw std::invalid_argument(std::string(who) +
                                  ": weights must be positive");
  }
}

}  // namespace

double pairwise_potential(std::span<const std::int64_t> values,
                          std::span<const double> weights) {
  check_inputs(values, weights, "pairwise_potential");
  // Σ_i Σ_j (q_i − q_j)² = 2k Σ q_i² − 2 (Σ q_i)², computed in O(k).
  const double k = static_cast<double>(values.size());
  double q1 = 0.0;
  double q2 = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double q = static_cast<double>(values[i]) / weights[i];
    q1 += q;
    q2 += q * q;
  }
  const double result = 2.0 * k * q2 - 2.0 * q1 * q1;
  // Guard tiny negative values caused by floating-point cancellation.
  return result < 0.0 ? 0.0 : result;
}

double phi_potential(std::span<const std::int64_t> dark_counts,
                     std::span<const double> weights) {
  return pairwise_potential(dark_counts, weights);
}

double psi_potential(std::span<const std::int64_t> light_counts,
                     std::span<const double> weights) {
  return pairwise_potential(light_counts, weights);
}

double sigma_potential(std::int64_t total_dark, std::int64_t total_light,
                       double total_weight) {
  if (!(total_weight > 0.0))
    throw std::invalid_argument("sigma_potential: total weight must be > 0");
  const double diff = static_cast<double>(total_dark) / total_weight -
                      static_cast<double>(total_light);
  return diff * diff;
}

double diversity_error(std::span<const std::int64_t> supports,
                       std::span<const double> weights) {
  check_inputs(supports, weights, "diversity_error");
  std::int64_t n = 0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < supports.size(); ++i) {
    n += supports[i];
    total_weight += weights[i];
  }
  if (n <= 0) throw std::invalid_argument("diversity_error: empty population");
  double worst = 0.0;
  for (std::size_t i = 0; i < supports.size(); ++i) {
    const double share = static_cast<double>(supports[i]) /
                         static_cast<double>(n);
    const double fair = weights[i] / total_weight;
    worst = std::max(worst, std::abs(share - fair));
  }
  return worst;
}

double l2_share_error(std::span<const std::int64_t> supports,
                      std::span<const double> weights) {
  check_inputs(supports, weights, "l2_share_error");
  std::int64_t n = 0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < supports.size(); ++i) {
    n += supports[i];
    total_weight += weights[i];
  }
  if (n <= 0) throw std::invalid_argument("l2_share_error: empty population");
  double sum = 0.0;
  for (std::size_t i = 0; i < supports.size(); ++i) {
    const double diff = static_cast<double>(supports[i]) /
                            static_cast<double>(n) -
                        weights[i] / total_weight;
    sum += diff * diff;
  }
  return sum;
}

double mean_centered_potential(std::span<const std::int64_t> values,
                               std::span<const double> weights) {
  const double k = static_cast<double>(values.size());
  return pairwise_potential(values, weights) / (2.0 * k * k);
}

}  // namespace divpp::stats
