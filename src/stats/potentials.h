#ifndef DIVPP_STATS_POTENTIALS_H
#define DIVPP_STATS_POTENTIALS_H

/// \file potentials.h
/// The potential functions driving the paper's analysis (Section 2).
///
/// All functions operate on plain count/weight spans so they can score
/// either the dark counts A_i(t), the light counts a_i(t), or the total
/// supports C_i(t) = A_i(t) + a_i(t):
///
///  * pairwise_potential == the paper's φ(t) (Eq. 10) when fed dark counts,
///    ψ(t) (Eq. 11) when fed light counts, and the Theorem 1.3 quantity
///    when fed total supports;
///  * sigma_potential == σ²(t) = (A(t)/W − a(t))² from Phase 3 (§2.3);
///  * diversity_error == the Definition 1.1(1) deviation
///    max_i |C_i(t)/n − w_i/W|.

#include <cstdint>
#include <span>

namespace divpp::stats {

/// Σ_i Σ_j (v_i/w_i − v_j/w_j)², the paper's generic pairwise potential.
/// \pre values.size() == weights.size() >= 1, all weights > 0.
[[nodiscard]] double pairwise_potential(std::span<const std::int64_t> values,
                                        std::span<const double> weights);

/// Identity on pairwise_potential, named for the paper's φ (dark counts).
[[nodiscard]] double phi_potential(std::span<const std::int64_t> dark_counts,
                                   std::span<const double> weights);

/// Identity on pairwise_potential, named for the paper's ψ (light counts).
[[nodiscard]] double psi_potential(std::span<const std::int64_t> light_counts,
                                   std::span<const double> weights);

/// σ²(t) = (A/W − a)², the Phase-3 potential (§2.3), where A and a are the
/// total dark and light populations and W the total weight.
[[nodiscard]] double sigma_potential(std::int64_t total_dark,
                                     std::int64_t total_light,
                                     double total_weight);

/// max_i |C_i/n − w_i/W|  (Definition 1.1(1) with the fair share w_i/W).
/// \pre values.size() == weights.size() >= 1, n = Σ values > 0.
[[nodiscard]] double diversity_error(std::span<const std::int64_t> supports,
                                     std::span<const double> weights);

/// Σ_i (C_i/n − w_i/W)², the squared L2 share error.
[[nodiscard]] double l2_share_error(std::span<const std::int64_t> supports,
                                    std::span<const double> weights);

/// The paper's Eq. (3) left-hand side: (1/k) Σ_i (C_i/w_i − x̄)² with
/// x̄ = (1/k) Σ_i C_i/w_i.  Equals pairwise_potential / (2 k²).
[[nodiscard]] double mean_centered_potential(
    std::span<const std::int64_t> values, std::span<const double> weights);

}  // namespace divpp::stats

#endif  // DIVPP_STATS_POTENTIALS_H
