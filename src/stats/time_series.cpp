#include "stats/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace divpp::stats {

TimeSeries::TimeSeries(std::int64_t stride, bool geometric, double growth)
    : stride_(stride), geometric_(geometric), growth_(growth) {
  if (stride < 1) throw std::invalid_argument("TimeSeries: stride must be >= 1");
  if (geometric && !(growth > 1.0))
    throw std::invalid_argument("TimeSeries: geometric growth must be > 1");
}

void TimeSeries::offer(std::int64_t t, double value) {
  if (t < next_due_) return;
  samples_.push_back({t, value});
  if (geometric_) {
    stride_ = std::max<std::int64_t>(
        stride_ + 1,
        static_cast<std::int64_t>(std::llround(static_cast<double>(stride_) *
                                               growth_)));
  }
  next_due_ = t + stride_;
}

void TimeSeries::force(std::int64_t t, double value) {
  samples_.push_back({t, value});
}

double TimeSeries::max_value() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  double best = -std::numeric_limits<double>::infinity();
  for (const Sample& s : samples_) best = std::max(best, s.value);
  return best;
}

double TimeSeries::last_value() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return samples_.back().value;
}

std::int64_t TimeSeries::first_time_below(double threshold) const noexcept {
  for (const Sample& s : samples_) {
    if (s.value <= threshold) return s.t;
  }
  return -1;
}

double TimeSeries::max_in_window(std::int64_t from,
                                 std::int64_t to) const noexcept {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const Sample& s : samples_) {
    if (s.t < from || s.t > to) continue;
    if (std::isnan(best) || s.value > best) best = s.value;
  }
  return best;
}

std::string TimeSeries::to_csv() const {
  std::ostringstream out;
  out << "t,value\n";
  for (const Sample& s : samples_) out << s.t << "," << s.value << "\n";
  return out.str();
}

}  // namespace divpp::stats
