#ifndef DIVPP_STATS_TIME_SERIES_H
#define DIVPP_STATS_TIME_SERIES_H

/// \file time_series.h
/// Lightweight recorder for (time-step, value) trajectories.
///
/// Experiments run for hundreds of millions of steps; recording every
/// point is wasteful, so the recorder samples on a stride (optionally
/// geometric, which matches the log-time structure of the paper's phases).

#include <cstdint>
#include <string>
#include <vector>

namespace divpp::stats {

/// One recorded trajectory point.
struct Sample {
  std::int64_t t = 0;
  double value = 0.0;
};

/// Decimating (time, value) recorder.
class TimeSeries {
 public:
  /// Records every `stride`-th offered point (stride >= 1).  When
  /// `geometric` is true, the stride is multiplied by `growth` after each
  /// recorded point (log-spaced sampling).
  explicit TimeSeries(std::int64_t stride = 1, bool geometric = false,
                      double growth = 1.25);

  /// Offers a point; it is stored only when due under the stride policy.
  void offer(std::int64_t t, double value);

  /// Stores a point unconditionally (e.g. phase boundaries).
  void force(std::int64_t t, double value);

  /// Recorded points, in offer order.
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// Largest recorded value (NaN if empty).
  [[nodiscard]] double max_value() const noexcept;
  /// Value of the last recorded sample (NaN if empty).
  [[nodiscard]] double last_value() const noexcept;

  /// First recorded time at which the value was <= threshold, or -1.
  [[nodiscard]] std::int64_t first_time_below(double threshold) const noexcept;

  /// Maximum value over recorded samples with t in [from, to].
  /// Returns NaN when no sample falls in the window.
  [[nodiscard]] double max_in_window(std::int64_t from,
                                     std::int64_t to) const noexcept;

  /// CSV rendering ("t,value" per line) for offline plotting.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<Sample> samples_;
  std::int64_t stride_;
  std::int64_t next_due_ = 0;
  bool geometric_;
  double growth_;
};

}  // namespace divpp::stats

#endif  // DIVPP_STATS_TIME_SERIES_H
