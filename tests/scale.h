// Test-scale knob for the heavy Monte-Carlo suites (ctest label `stat`).
//
// Sanitizer CI legs run the statistical suites at DIVPP_TEST_SCALE=10 —
// replica counts and horizons divide by the scale, so a 2-20x sanitizer
// slowdown doesn't push the matrix past the runner budget.  Every
// assertion that consumes a scaled count must tolerate the wider
// confidence interval at the reduced n: as a rule the suites assert at
// >= 5 sigma of the full-scale noise, so a sqrt(10) ~ 3.2x wider CI
// still leaves >= 1.5 sigma of margin.  Anything tighter than that must
// NOT go through scaled(); keep it on a fixed count.
//
// Unset or DIVPP_TEST_SCALE=1 reproduces the full-power suites exactly
// (scaled() is then the identity), so local runs and the plain CI job
// are unaffected.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>

namespace divpp::test {

/// The divisor from the environment, clamped to [1, 1000].  Read once.
inline std::int64_t test_scale() {
  static const std::int64_t scale = [] {
    const char* const env = std::getenv("DIVPP_TEST_SCALE");
    if (env == nullptr) return std::int64_t{1};
    const long long parsed = std::atoll(env);
    return std::clamp<std::int64_t>(parsed, 1, 1000);
  }();
  return scale;
}

/// `full / scale`, floored at `floor` so a suite never degenerates to a
/// sample size where its estimator is undefined (e.g. variance of one
/// replica).
inline std::int64_t scaled(std::int64_t full, std::int64_t floor = 8) {
  return std::max(full / test_scale(), std::min(full, floor));
}

}  // namespace divpp::test
