#ifndef DIVPP_TESTS_STAT_UTIL_H
#define DIVPP_TESTS_STAT_UTIL_H

/// Shared two-sample test statistics for the Monte-Carlo suites (the
/// harness behind tests/test_properties.cpp, tests/test_tagged_batch.cpp
/// and tests/test_parallel_stat.cpp): equal-size two-sample chi-square
/// with small-bin merging, the Wilson–Hilferty chi-square quantile, and
/// the two-sample Kolmogorov–Smirnov statistic with its 99.9% critical
/// value.  All deterministic under the suites' fixed seeds.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace divpp::test {

/// Two-sample chi-square for equal sample sizes: Σ (a−b)²/(a+b).  Bins
/// whose pooled count is below 10 are merged into one overflow bin so
/// near-empty cells cannot dominate the statistic; returns the statistic
/// and the resulting degrees of freedom through `df`.
inline double chi_square_two_sample_merged(const std::vector<std::int64_t>& a,
                                           const std::vector<std::int64_t>& b,
                                           std::size_t& df) {
  double chi2 = 0.0;
  std::size_t bins = 0;
  std::int64_t tail_a = 0, tail_b = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] + b[i] < 10) {
      tail_a += a[i];
      tail_b += b[i];
      continue;
    }
    const double diff = static_cast<double>(a[i] - b[i]);
    chi2 += diff * diff / static_cast<double>(a[i] + b[i]);
    ++bins;
  }
  if (tail_a + tail_b > 0) {
    const double diff = static_cast<double>(tail_a - tail_b);
    chi2 += diff * diff / static_cast<double>(tail_a + tail_b);
    ++bins;
  }
  df = bins > 1 ? bins - 1 : 1;
  return chi2;
}

/// 99.9% chi-square quantile (Wilson–Hilferty), deterministic under the
/// fixed seeds.
inline double chi2_crit(std::size_t df) {
  const double d = static_cast<double>(df);
  const double z = 3.09;  // 99.9% normal quantile
  const double t = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

/// Two-sample Kolmogorov–Smirnov statistic D = sup |F_a − F_b| (ties are
/// handled exactly; with discrete data the test is conservative).
inline double ks_two_sample(std::vector<std::int64_t> a,
                            std::vector<std::int64_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

/// 99.9% two-sample KS critical value: c(α)·√((na+nb)/(na·nb)),
/// c(0.001) = √(−ln(0.0005)/2) ≈ 1.9495.
inline double ks_crit(std::size_t na, std::size_t nb) {
  const double a = static_cast<double>(na);
  const double b = static_cast<double>(nb);
  return 1.9495 * std::sqrt((a + b) / (a * b));
}

}  // namespace divpp::test

#endif  // DIVPP_TESTS_STAT_UTIL_H
