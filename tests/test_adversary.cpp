// Tests for the adversary event machinery: individual events, the
// scheduled script runner, and the paper's robustness claims in miniature.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adversary/events.h"
#include "core/count_simulation.h"
#include "core/weights.h"
#include "rng/xoshiro.h"
#include "stats/potentials.h"

namespace {

using divpp::adversary::AddAgents;
using divpp::adversary::AddColor;
using divpp::adversary::Event;
using divpp::adversary::PartialRecolor;
using divpp::adversary::RemoveColor;
using divpp::adversary::Schedule;
using divpp::core::CountSimulation;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

CountSimulation fresh_sim(std::int64_t n = 40) {
  return CountSimulation::equal_start(WeightMap({1.0, 1.0}), n);
}

TEST(ApplyEvent, AddAgents) {
  auto sim = fresh_sim();
  divpp::adversary::apply_event(sim, AddAgents{1, 10, true});
  EXPECT_EQ(sim.dark(1), 30);
  EXPECT_EQ(sim.n(), 50);
}

TEST(ApplyEvent, AddColor) {
  auto sim = fresh_sim();
  divpp::adversary::apply_event(sim, AddColor{3.0, 4});
  EXPECT_EQ(sim.num_colors(), 3);
  EXPECT_EQ(sim.dark(2), 4);
  EXPECT_EQ(sim.weights().weight(2), 3.0);
}

TEST(ApplyEvent, RemoveColor) {
  auto sim = fresh_sim();
  divpp::adversary::apply_event(sim, RemoveColor{0, 1});
  EXPECT_EQ(sim.support(0), 0);
  EXPECT_EQ(sim.support(1), 40);
}

TEST(ApplyEvent, PartialRecolor) {
  auto sim = fresh_sim();  // 20 dark agents per colour
  divpp::adversary::apply_event(sim, PartialRecolor{0, 1, 0.5});
  EXPECT_EQ(sim.dark(0), 10);
  EXPECT_EQ(sim.dark(1), 30);
  EXPECT_EQ(sim.n(), 40);
  EXPECT_THROW(divpp::adversary::apply_event(
                   sim, PartialRecolor{0, 1, 1.5}),
               std::invalid_argument);
  EXPECT_THROW(divpp::adversary::apply_event(
                   sim, PartialRecolor{0, 0, 0.5}),
               std::invalid_argument);
}

TEST(Describe, MentionsKeyParameters) {
  EXPECT_NE(divpp::adversary::describe(AddAgents{2, 7, false}).find("7"),
            std::string::npos);
  EXPECT_NE(divpp::adversary::describe(AddColor{3.5, 2}).find("3.5"),
            std::string::npos);
  EXPECT_NE(divpp::adversary::describe(RemoveColor{0, 1}).find("recolour"),
            std::string::npos);
  EXPECT_NE(divpp::adversary::describe(PartialRecolor{0, 1, 0.25}).find("25"),
            std::string::npos);
}

TEST(ScheduleTest, EventsFireInTimeOrder) {
  Schedule schedule;
  schedule.at(3000, AddColor{2.0, 1}).at(1000, AddAgents{0, 5, true});
  ASSERT_EQ(schedule.events().size(), 2u);
  EXPECT_EQ(schedule.events()[0].time, 1000);
  EXPECT_EQ(schedule.events()[1].time, 3000);
  EXPECT_THROW(schedule.at(-1, AddAgents{}), std::invalid_argument);
}

TEST(ScheduleTest, RunAppliesEventsAndReachesHorizon) {
  auto sim = fresh_sim(100);
  Schedule schedule;
  schedule.at(500, AddAgents{0, 20, true});
  schedule.at(1500, AddColor{1.0, 2});
  Xoshiro256 gen(1);
  schedule.run(sim, 5000, gen);
  EXPECT_EQ(sim.time(), 5000);
  EXPECT_EQ(sim.num_colors(), 3);
  EXPECT_EQ(sim.n(), 122);
}

TEST(ScheduleTest, EventsBeyondHorizonAreSkipped) {
  auto sim = fresh_sim(100);
  Schedule schedule;
  schedule.at(10'000, AddColor{1.0, 1});
  Xoshiro256 gen(2);
  schedule.run(sim, 5000, gen);
  EXPECT_EQ(sim.num_colors(), 2);
  EXPECT_EQ(sim.time(), 5000);
}

TEST(ScheduleTest, PlainSteppingModeWorksToo) {
  auto sim = fresh_sim(60);
  Schedule schedule;
  schedule.at(100, AddAgents{1, 6, false});
  Xoshiro256 gen(3);
  schedule.run(sim, 2000, gen, /*use_jump_chain=*/false);
  EXPECT_EQ(sim.time(), 2000);
  EXPECT_EQ(sim.n(), 66);
}

TEST(ScheduleTest, StaleEventThrows) {
  auto sim = fresh_sim(60);
  Xoshiro256 gen(4);
  sim.run_to(500, gen);
  Schedule schedule;
  schedule.at(100, AddAgents{0, 1, true});
  EXPECT_THROW(schedule.run(sim, 1000, gen), std::invalid_argument);
}

TEST(ScheduleTest, RunsUnderEveryEngineWithoutHandSplitting) {
  // PR 4: Schedule::run registers its events on the simulation's own
  // event queue, so the batched and auto engines split their windows at
  // the event times automatically — the ROADMAP "hand-splitting
  // footgun" is gone.
  for (const divpp::core::Engine engine :
       {divpp::core::Engine::kStep, divpp::core::Engine::kJump,
        divpp::core::Engine::kBatch, divpp::core::Engine::kAuto}) {
    auto sim = fresh_sim(500);
    Schedule schedule;
    schedule.at(777, AddAgents{0, 20, true});
    schedule.at(2'001, AddColor{1.0, 2});
    Xoshiro256 gen(5);
    schedule.run(sim, 9'000, gen, engine);
    EXPECT_EQ(sim.time(), 9'000) << divpp::core::engine_name(engine);
    EXPECT_EQ(sim.num_colors(), 3);
    EXPECT_EQ(sim.n(), 522);
    EXPECT_EQ(sim.pending_event_count(), 0);
  }
}

TEST(ScheduleTest, ThrowingEventActionLeavesNoQueuedEvents) {
  // A malformed event that throws mid-run must not leave the rest of
  // the script queued on the simulation.
  auto sim = fresh_sim(200);
  Schedule schedule;
  schedule.at(100, RemoveColor{0, 0});  // victim == heir: throws
  schedule.at(500, AddAgents{0, 5, true});
  Xoshiro256 gen(7);
  EXPECT_THROW(schedule.run(sim, 2'000, gen, divpp::core::Engine::kBatch),
               std::invalid_argument);
  EXPECT_EQ(sim.pending_event_count(), 0);
  // The simulation stays usable.
  sim.advance_to(3'000, gen);
  EXPECT_EQ(sim.time(), 3'000);
  EXPECT_EQ(sim.n(), 200);
}

TEST(ScheduleTest, JumpEngineOverloadMatchesLegacyBoolOverload) {
  // The bool spelling must stay bit-identical to the Engine spelling it
  // forwards to.
  auto sim_a = fresh_sim(200);
  auto sim_b = fresh_sim(200);
  Schedule schedule;
  schedule.at(300, AddAgents{1, 4, false});
  Xoshiro256 gen_a(6);
  Xoshiro256 gen_b(6);
  schedule.run(sim_a, 4'000, gen_a, /*use_jump_chain=*/true);
  schedule.run(sim_b, 4'000, gen_b, divpp::core::Engine::kJump);
  EXPECT_EQ(gen_a, gen_b);
  for (divpp::core::ColorId c = 0; c < sim_a.num_colors(); ++c) {
    EXPECT_EQ(sim_a.dark(c), sim_b.dark(c));
    EXPECT_EQ(sim_a.light(c), sim_b.light(c));
  }
}

TEST(Robustness, RecoveryAfterColourInjection) {
  // Paper claim: after an adversary adds a colour, the protocol quickly
  // returns to diversity.  Miniature version: n = 400, inject a colour of
  // weight 2 and check its support approaches the new fair share.
  const WeightMap weights({1.0, 1.0});
  auto sim = CountSimulation::equal_start(weights, 400);
  Xoshiro256 gen(5);
  sim.advance_to(200'000, gen);  // settle first
  divpp::adversary::apply_event(sim, AddColor{2.0, 1});
  sim.advance_to(1'800'000, gen);
  const double share = static_cast<double>(sim.support(2)) /
                       static_cast<double>(sim.n());
  EXPECT_NEAR(share, 0.5, 0.12);
  // All colours still alive (sustainability through the shock).
  EXPECT_GE(sim.min_dark(), 1);
}

TEST(Robustness, RecoveryAfterMassRecolor) {
  const WeightMap weights({1.0, 1.0, 1.0});
  auto sim = CountSimulation::equal_start(weights, 300);
  Xoshiro256 gen(6);
  sim.advance_to(150'000, gen);
  // 90% of colour 0's dark agents defect to colour 1 — but at least one
  // dark agent of colour 0 survives, so the protocol must restore it.
  divpp::adversary::apply_event(sim, PartialRecolor{0, 1, 0.9});
  sim.advance_to(1'500'000, gen);
  const double share0 = static_cast<double>(sim.support(0)) / 300.0;
  EXPECT_NEAR(share0, 1.0 / 3.0, 0.1);
}

}  // namespace
