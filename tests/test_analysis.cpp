// Tests for the analysis module: equilibrium-region detectors, the §2.1
// phase-region ladder, fairness accounting, and sustainability monitors.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/convergence.h"
#include "analysis/fairness.h"
#include "analysis/phase_tracker.h"
#include "analysis/sustainability.h"
#include "core/count_simulation.h"
#include "core/equilibrium.h"
#include "core/population.h"
#include "core/weights.h"
#include "rng/xoshiro.h"

namespace {

using divpp::analysis::FairnessTracker;
using divpp::analysis::PhaseTracker;
using divpp::analysis::Region;
using divpp::analysis::SustainabilityMonitor;
using divpp::core::AgentState;
using divpp::core::CountSimulation;
using divpp::core::kDark;
using divpp::core::kLight;
using divpp::core::StepEvent;
using divpp::core::Transition;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

// A configuration sitting exactly at the Eq. (7) equilibrium for
// weights {1, 3} (W = 4) and n = 100: A = (20, 60), a = (5, 15).
CountSimulation equilibrium_sim() {
  return CountSimulation(WeightMap({1.0, 3.0}), {20, 60}, {5, 15});
}

TEST(ConvergenceRegion, EquilibriumConfigurationIsInside) {
  const CountSimulation sim = equilibrium_sim();
  EXPECT_TRUE(divpp::analysis::in_equilibrium_region(sim, 0.05));
  EXPECT_TRUE(divpp::analysis::in_fine_equilibrium(sim, 1.0));
}

TEST(ConvergenceRegion, SkewedConfigurationIsOutside) {
  const CountSimulation sim(WeightMap({1.0, 3.0}), {79, 1}, {10, 10});
  EXPECT_FALSE(divpp::analysis::in_equilibrium_region(sim, 0.25));
  EXPECT_FALSE(divpp::analysis::in_fine_equilibrium(sim, 0.5));
  EXPECT_THROW(
      (void)divpp::analysis::in_equilibrium_region(sim, 0.0),
      std::invalid_argument);
}

TEST(ConvergenceRegion, AllDarkStartIsOutside) {
  const auto sim =
      CountSimulation::proportional_start(WeightMap({1.0, 3.0}), 100);
  // a = 0 violates the light-total band.
  EXPECT_FALSE(divpp::analysis::in_equilibrium_region(sim, 0.25));
}

TEST(ConvergenceDetection, ReachesRegionOnSmallInstance) {
  auto sim = CountSimulation::equal_start(WeightMap({1.0, 3.0}), 200);
  Xoshiro256 gen(1);
  const std::int64_t entered = divpp::analysis::time_to_equilibrium_region(
      sim, 0.4, 2'000'000, 500, gen);
  ASSERT_GE(entered, 0) << "never entered E(0.4)";
  EXPECT_LT(entered, 2'000'000);
}

TEST(ConvergenceDetection, PersistenceAfterEntry) {
  auto sim = CountSimulation::equal_start(WeightMap({1.0, 1.0}), 300);
  Xoshiro256 gen(2);
  const auto report = divpp::analysis::probe_equilibrium_persistence(
      sim, 0.5, 1'500'000, 1000, gen);
  ASSERT_GE(report.entered, 0);
  // δ = 0.5 is generous: with n = 300 the region should hold to the
  // horizon (Theorem 2.5 promises n^10-scale persistence).
  EXPECT_FALSE(report.exited);
  EXPECT_EQ(report.held_until, 1'500'000);
}

TEST(PotentialEvaluation, MatchesStatsFunctions) {
  const CountSimulation sim = equilibrium_sim();
  EXPECT_NEAR(divpp::analysis::evaluate_potential(
                  sim, divpp::analysis::PotentialKind::kPhi),
              0.0, 1e-9);
  EXPECT_NEAR(divpp::analysis::evaluate_potential(
                  sim, divpp::analysis::PotentialKind::kPsi),
              0.0, 1e-9);
  EXPECT_NEAR(divpp::analysis::evaluate_potential(
                  sim, divpp::analysis::PotentialKind::kSupports),
              0.0, 1e-9);
}

TEST(PotentialDetection, PhiDropsBelowTheoremEnvelope) {
  const WeightMap weights({1.0, 2.0});
  auto sim = CountSimulation::adversarial_start(weights, 400);
  Xoshiro256 gen(3);
  const double threshold =
      divpp::core::theorem28_envelope(400, weights.total(), 2.0);
  const std::int64_t hit = divpp::analysis::time_to_potential_below(
      sim, divpp::analysis::PotentialKind::kPhi, threshold, 4'000'000, 1000,
      gen);
  ASSERT_GE(hit, 0);
}

// ---- phase tracker ---------------------------------------------------------

TEST(PhaseTrackerTest, ParameterValidation) {
  EXPECT_THROW(PhaseTracker(0.0), std::invalid_argument);
  EXPECT_THROW(PhaseTracker(0.3), std::invalid_argument);
  EXPECT_NO_THROW(PhaseTracker(0.1));
}

TEST(PhaseTrackerTest, EquilibriumIsInAllRegions) {
  const PhaseTracker tracker(0.1);
  const CountSimulation sim = equilibrium_sim();
  for (const Region r : {Region::kR1, Region::kS1, Region::kR2, Region::kS2,
                         Region::kS3, Region::kS4})
    EXPECT_TRUE(tracker.contains(sim, r)) << divpp::analysis::region_name(r);
}

TEST(PhaseTrackerTest, AllDarkStartFailsLightRegions) {
  const PhaseTracker tracker(0.1);
  const auto sim =
      CountSimulation::proportional_start(WeightMap({1.0, 3.0}), 100);
  EXPECT_FALSE(tracker.contains(sim, Region::kR1));
  EXPECT_FALSE(tracker.contains(sim, Region::kS1));
  EXPECT_FALSE(tracker.contains(sim, Region::kR2));  // requires S1
}

TEST(PhaseTrackerTest, RegionsAreNested) {
  // R_j ⊆ S_j by construction: any configuration in R1 is in S1, any in
  // R2 is in S2.
  const PhaseTracker tracker(0.05);
  // Slightly depleted light pool: in S1 (2ε slack) but not R1 (ε slack).
  // n=100, W=4: target a = 20; (1−ε)·20 = 19, (1−2ε)·20 = 18.
  const CountSimulation sim(WeightMap({1.0, 3.0}), {21, 61}, {5, 13});
  EXPECT_FALSE(tracker.contains(sim, Region::kR1));  // a = 18 < 19
  EXPECT_TRUE(tracker.contains(sim, Region::kS1));   // a = 18 >= 18
}

TEST(PhaseTrackerTest, ObserveRecordsFirstHitsInOrder) {
  const WeightMap weights({1.0, 2.0});
  auto sim = CountSimulation::adversarial_start(weights, 300);
  PhaseTracker tracker(0.2);
  Xoshiro256 gen(4);
  while (sim.time() < 1'200'000) {
    tracker.observe(sim);
    // S4 (looser dark bound, 4ε) can be reached before R2 (3ε), so wait
    // for both before stopping.
    if (tracker.first_hit(Region::kS4) >= 0 &&
        tracker.first_hit(Region::kR2) >= 0)
      break;
    sim.advance_to(sim.time() + 200, gen);
  }
  ASSERT_GE(tracker.first_hit(Region::kR1), 0) << "R1 never reached";
  ASSERT_GE(tracker.first_hit(Region::kR2), 0) << "R2 never reached";
  // The ladder is climbed in order: light pool rises first, then the
  // minorities (Phase 1 narrative).
  EXPECT_LE(tracker.first_hit(Region::kS1), tracker.first_hit(Region::kR2));
  EXPECT_LE(tracker.first_hit(Region::kR1), tracker.first_hit(Region::kR2));
}

TEST(PhaseTrackerTest, RegionNames) {
  EXPECT_EQ(divpp::analysis::region_name(Region::kR1), "R1");
  EXPECT_EQ(divpp::analysis::region_name(Region::kS4), "S4");
}

// ---- fairness tracker ------------------------------------------------------

StepEvent<AgentState> make_event(std::int64_t t, std::int64_t agent,
                                 AgentState before, AgentState after) {
  StepEvent<AgentState> event;
  event.time = t;
  event.initiator = agent;
  event.before = before;
  event.after = after;
  event.transition =
      before == after ? Transition::kNoOp : Transition::kAdopt;
  return event;
}

TEST(FairnessTrackerTest, ExactAccountingOnScriptedTrajectory) {
  // Agent 0: colour 0 on [0, 10), colour 1 on [10, 25).
  // Agent 1: colour 1 throughout [0, 25).
  const std::vector<AgentState> init = {{0, kDark}, {1, kDark}};
  FairnessTracker tracker(init, 2);
  tracker.observe(make_event(10, 0, {0, kDark}, {1, kDark}));
  tracker.finalize(25);
  EXPECT_EQ(tracker.color_time(0, 0), 10);
  EXPECT_EQ(tracker.color_time(0, 1), 15);
  EXPECT_EQ(tracker.color_time(1, 1), 25);
  EXPECT_EQ(tracker.horizon(), 25);
  EXPECT_NEAR(tracker.occupancy_fraction(0, 0), 0.4, 1e-12);
  EXPECT_NEAR(tracker.occupancy_fraction(0, 1), 0.6, 1e-12);
  EXPECT_NEAR(tracker.mean_occupancy(1), (0.6 + 1.0) / 2.0, 1e-12);
}

TEST(FairnessTrackerTest, ObserveChangeMatchesEventAccounting) {
  // The aggregate observe_change entry (PR 5 batched tagged engine) must
  // book exactly the same cell times as the per-event stream: a change
  // at time T switches the state effective at T.
  const std::vector<AgentState> init = {{0, kDark}, {1, kDark}};
  FairnessTracker by_events(init, 2);
  by_events.observe(make_event(10, 0, {0, kDark}, {1, kDark}));
  by_events.observe(make_event(18, 0, {1, kDark}, {1, kLight}));
  by_events.finalize(25);
  FairnessTracker by_changes(init, 2);
  by_changes.observe_change(0, 10, {1, kDark});
  by_changes.observe_change(0, 18, {1, kLight});
  by_changes.finalize(25);
  for (std::int64_t agent = 0; agent < 2; ++agent) {
    for (divpp::core::ColorId c = 0; c < 2; ++c) {
      for (const bool dark : {false, true}) {
        EXPECT_EQ(by_changes.cell_time(agent, c, dark),
                  by_events.cell_time(agent, c, dark))
            << agent << "/" << c << "/" << dark;
      }
    }
  }
}

TEST(FairnessTrackerTest, ObserveChangeValidates) {
  const std::vector<AgentState> init = {{0, kDark}};
  FairnessTracker tracker(init, 2);
  EXPECT_THROW(tracker.observe_change(1, 5, {0, kDark}), std::out_of_range);
  EXPECT_THROW(tracker.observe_change(0, 5, {2, kDark}),
               std::invalid_argument);
  tracker.observe_change(0, 5, {1, kDark});
  EXPECT_THROW(tracker.observe_change(0, 4, {0, kDark}),
               std::invalid_argument);  // out of time order
  tracker.finalize(10);
  EXPECT_THROW(tracker.observe_change(0, 11, {0, kDark}), std::logic_error);
}

TEST(FairnessTrackerTest, ZeroLengthHorizonReportsNoError) {
  // finalize(start_time) leaves nothing accounted: occupancies and both
  // worst-error helpers must report 0 instead of dividing by zero or
  // scoring the fair shares themselves as deviation.
  const std::vector<AgentState> init = {{0, kDark}};
  FairnessTracker tracker(init, 2, 7);
  tracker.finalize(7);
  EXPECT_EQ(tracker.horizon(), 0);
  EXPECT_EQ(tracker.occupancy_fraction(0, 0), 0.0);
  const WeightMap weights({1.0, 3.0});
  EXPECT_EQ(tracker.worst_absolute_error(weights), 0.0);
  EXPECT_EQ(tracker.worst_relative_error(weights), 0.0);
}

TEST(FairnessTrackerTest, TracksShadesSeparately) {
  const std::vector<AgentState> init = {{0, kDark}};
  FairnessTracker tracker(init, 1);
  tracker.observe(make_event(4, 0, {0, kDark}, {0, kLight}));
  tracker.observe(make_event(6, 0, {0, kLight}, {0, kDark}));
  tracker.finalize(10);
  EXPECT_EQ(tracker.cell_time(0, 0, /*dark=*/true), 8);
  EXPECT_EQ(tracker.cell_time(0, 0, /*dark=*/false), 2);
}

TEST(FairnessTrackerTest, ErrorMetricsAgainstWeights) {
  const std::vector<AgentState> init = {{0, kDark}};
  FairnessTracker tracker(init, 2);
  // Stays on colour 0 the whole horizon; fair share of colour 0 is 0.25.
  tracker.finalize(100);
  const WeightMap weights({1.0, 3.0});
  EXPECT_NEAR(tracker.worst_absolute_error(weights), 0.75, 1e-12);
  EXPECT_NEAR(tracker.worst_relative_error(weights), 3.0, 1e-12);
}

TEST(FairnessTrackerTest, RejectsInconsistentEventStream) {
  const std::vector<AgentState> init = {{0, kDark}};
  FairnessTracker tracker(init, 2);
  EXPECT_THROW(
      tracker.observe(make_event(5, 0, {1, kDark}, {0, kDark})),
      std::logic_error);
}

TEST(FairnessTrackerTest, LifecycleErrors) {
  const std::vector<AgentState> init = {{0, kDark}};
  FairnessTracker tracker(init, 1);
  EXPECT_THROW((void)tracker.horizon(), std::logic_error);
  EXPECT_THROW((void)tracker.color_time(0, 0), std::logic_error);
  tracker.finalize(10);
  EXPECT_THROW(tracker.finalize(20), std::logic_error);
  EXPECT_THROW(tracker.observe(make_event(11, 0, {0, kDark}, {0, kLight})),
               std::logic_error);
  EXPECT_THROW((void)tracker.color_time(5, 0), std::out_of_range);
}

TEST(FairnessTrackerTest, NoOpEventsAreCheap) {
  const std::vector<AgentState> init = {{0, kDark}};
  FairnessTracker tracker(init, 1);
  StepEvent<AgentState> event =
      make_event(3, 0, {0, kDark}, {0, kDark});
  event.transition = Transition::kNoOp;
  tracker.observe(event);
  tracker.finalize(10);
  EXPECT_EQ(tracker.color_time(0, 0), 10);
}

// ---- sustainability monitor -------------------------------------------------

TEST(SustainabilityMonitorTest, TracksMinimaAndDeaths) {
  SustainabilityMonitor monitor(3);
  monitor.observe(std::vector<std::int64_t>{5, 3, 1}, 0);
  monitor.observe(std::vector<std::int64_t>{4, 0, 2}, 7);
  monitor.observe(std::vector<std::int64_t>{4, 1, 2}, 9);
  EXPECT_EQ(monitor.min_count(0), 4);
  EXPECT_EQ(monitor.min_count(1), 0);
  EXPECT_EQ(monitor.min_count_ever(), 0);
  EXPECT_EQ(monitor.death_time(1), 7);
  EXPECT_EQ(monitor.death_time(0), -1);
  EXPECT_EQ(monitor.colors_died(), 1);
  EXPECT_FALSE(monitor.sustained());
}

TEST(SustainabilityMonitorTest, SustainedWhenNoDeath) {
  SustainabilityMonitor monitor(2);
  monitor.observe(std::vector<std::int64_t>{2, 2}, 0);
  monitor.observe(std::vector<std::int64_t>{1, 3}, 1);
  EXPECT_TRUE(monitor.sustained());
  EXPECT_EQ(monitor.min_count_ever(), 1);
}

TEST(SustainabilityMonitorTest, Validation) {
  EXPECT_THROW(SustainabilityMonitor(0), std::invalid_argument);
  SustainabilityMonitor monitor(2);
  EXPECT_THROW(monitor.observe(std::vector<std::int64_t>{1}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)monitor.min_count(5), std::out_of_range);
  EXPECT_THROW((void)monitor.death_time(-1), std::out_of_range);
}

TEST(SustainabilityIntegration, DiversificationNeverKillsDarkSupport) {
  const WeightMap weights({1.0, 2.0});
  auto sim = CountSimulation::adversarial_start(weights, 100);
  SustainabilityMonitor monitor(2);
  Xoshiro256 gen(5);
  for (int burst = 0; burst < 200; ++burst) {
    sim.advance_to(sim.time() + 1000, gen);
    monitor.observe(sim.dark_counts(), sim.time());
  }
  EXPECT_TRUE(monitor.sustained());
  EXPECT_GE(monitor.min_count_ever(), 1);
}

}  // namespace
