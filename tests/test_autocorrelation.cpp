// Tests for the autocorrelation toolkit: exact values on crafted series,
// white-noise and AR(1) behaviour, and the IAT/ESS identities.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "rng/distributions.h"
#include "rng/xoshiro.h"
#include "stats/autocorrelation.h"

namespace {

using divpp::rng::Xoshiro256;

std::vector<double> white_noise(std::int64_t n, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = divpp::rng::uniform01(gen);
  return xs;
}

std::vector<double> ar1(std::int64_t n, double rho, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  double state = 0.0;
  for (double& x : xs) {
    state = rho * state + (divpp::rng::uniform01(gen) - 0.5);
    x = state;
  }
  return xs;
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto xs = white_noise(1000, 1);
  EXPECT_NEAR(divpp::stats::autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(Autocorrelation, AlternatingSeriesIsNegativeAtLagOne) {
  const std::vector<double> xs = {1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  EXPECT_LT(divpp::stats::autocorrelation(xs, 1), -0.8);
  EXPECT_GT(divpp::stats::autocorrelation(xs, 2), 0.6);
}

TEST(Autocorrelation, ConstantSeriesReturnsZero) {
  const std::vector<double> xs(100, 3.25);
  EXPECT_EQ(divpp::stats::autocorrelation(xs, 1), 0.0);
}

TEST(Autocorrelation, WhiteNoiseDecorrelatesImmediately) {
  const auto xs = white_noise(20'000, 2);
  EXPECT_NEAR(divpp::stats::autocorrelation(xs, 1), 0.0, 0.03);
  EXPECT_NEAR(divpp::stats::autocorrelation(xs, 5), 0.0, 0.03);
}

TEST(Autocorrelation, Ar1MatchesRhoPowers) {
  const double rho = 0.8;
  const auto xs = ar1(200'000, rho, 3);
  EXPECT_NEAR(divpp::stats::autocorrelation(xs, 1), rho, 0.02);
  EXPECT_NEAR(divpp::stats::autocorrelation(xs, 2), rho * rho, 0.03);
  EXPECT_NEAR(divpp::stats::autocorrelation(xs, 3), rho * rho * rho, 0.04);
}

TEST(Autocorrelation, InputValidation) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW((void)divpp::stats::autocorrelation(xs, 2),
               std::invalid_argument);
  EXPECT_THROW((void)divpp::stats::autocorrelation(xs, -1),
               std::invalid_argument);
  EXPECT_THROW(
      (void)divpp::stats::autocorrelation(std::vector<double>{}, 0),
      std::invalid_argument);
}

TEST(DecorrelationLag, FindsFirstLagBelowThreshold) {
  const auto xs = ar1(100'000, 0.7, 4);
  const std::int64_t lag = divpp::stats::decorrelation_lag(xs, 0.1, 100);
  // 0.7^l <= 0.1 at l = 7 (0.7^7 ≈ 0.082).
  EXPECT_GE(lag, 5);
  EXPECT_LE(lag, 9);
  // Impossible threshold within a short cap.
  EXPECT_EQ(divpp::stats::decorrelation_lag(xs, -1.0, 3), -1);
}

TEST(IntegratedAutocorrelationTime, WhiteNoiseNearOne) {
  const auto xs = white_noise(50'000, 5);
  EXPECT_NEAR(divpp::stats::integrated_autocorrelation_time(xs, 100), 1.0,
              0.2);
}

TEST(IntegratedAutocorrelationTime, Ar1ClosedForm) {
  // IAT of AR(1) = (1+ρ)/(1−ρ) = 9 for ρ = 0.8.
  const auto xs = ar1(400'000, 0.8, 6);
  EXPECT_NEAR(divpp::stats::integrated_autocorrelation_time(xs, 200), 9.0,
              1.2);
}

TEST(EffectiveSampleSize, ConsistentWithIat) {
  const auto xs = ar1(100'000, 0.5, 7);
  const double iat = divpp::stats::integrated_autocorrelation_time(xs, 100);
  const double ess = divpp::stats::effective_sample_size(xs, 100);
  EXPECT_NEAR(ess, static_cast<double>(xs.size()) / iat, 1e-9);
  EXPECT_LT(ess, static_cast<double>(xs.size()));
}

TEST(IntegratedAutocorrelationTime, RejectsTinySeries) {
  EXPECT_THROW((void)divpp::stats::integrated_autocorrelation_time(
                   std::vector<double>{1.0}, 10),
               std::invalid_argument);
}

}  // namespace
