// Tests for the collision-batch engine (batch/): the birthday run-length
// sampler pinned against the exact survival law and a naive
// pair-drawing simulation, CollisionBatcher conservation/margin
// invariants, the CountSimulation::run_batched entry (fallback
// bit-identity, absorption short-circuit), the agent-level
// batch::run_batched, and — the headline distributional contract — a
// fixed-seed two-sample chi-square showing batch and step produce the
// same per-window count distributions at n = 2000.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "batch/agent_batch.h"
#include "batch/collision_batch.h"
#include "core/agent.h"
#include "core/count_simulation.h"
#include "core/diversification.h"
#include "core/population.h"
#include "core/weights.h"
#include "graph/topologies.h"
#include "rng/distributions.h"
#include "rng/xoshiro.h"
#include "runtime/batch_runner.h"
#include "scale.h"

namespace {

using divpp::test::scaled;

using divpp::batch::CollisionBatcher;
using divpp::batch::collision_free_run_length;
using divpp::core::CountSimulation;
using divpp::core::Engine;
using divpp::core::WeightMap;
using divpp::rng::Xoshiro256;

/// Pearson chi-square of observed hits against an expected pmf.
double chi_square(const std::vector<std::int64_t>& hits,
                  const std::vector<double>& pmf, std::int64_t draws) {
  double chi2 = 0.0;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const double expected = pmf[i] * static_cast<double>(draws);
    if (expected <= 0.0) {
      EXPECT_EQ(hits[i], 0) << "mass on a zero-probability category " << i;
      continue;
    }
    const double diff = static_cast<double>(hits[i]) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

/// Two-sample chi-square for equal sample sizes: Σ (a−b)²/(a+b),
/// asymptotically chi-square with (#non-empty bins − 1) dof under H0.
double chi_square_two_sample(const std::vector<std::int64_t>& a,
                             const std::vector<std::int64_t>& b) {
  double chi2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double total = static_cast<double>(a[i] + b[i]);
    if (total == 0.0) continue;
    const double diff = static_cast<double>(a[i] - b[i]);
    chi2 += diff * diff / total;
  }
  return chi2;
}

/// 99.9% chi-square quantile (Wilson–Hilferty), deterministic under the
/// fixed seeds.
double chi2_crit(std::size_t df) {
  const double d = static_cast<double>(df);
  const double z = 3.09;  // 99.9% normal quantile
  const double t = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

/// Exact run-length survival S(j) = P(no collision in j interactions)
/// by the defining product — the reference the sampler is pinned to.
std::vector<double> run_length_survival(std::int64_t n) {
  std::vector<double> s(static_cast<std::size_t>(n / 2) + 2, 0.0);
  s[0] = 1.0;
  s[1] = 1.0;
  const double dn = static_cast<double>(n);
  for (std::int64_t j = 1; j < n / 2; ++j) {
    const double t = 2.0 * static_cast<double>(j);
    s[static_cast<std::size_t>(j) + 1] =
        s[static_cast<std::size_t>(j)] * (1.0 - t / dn) *
        (1.0 - t / (dn - 1.0));
  }
  return s;  // s[n/2 + 1] stays 0
}

/// Bins each sample of `values` by the thresholds and returns hits; the
/// thresholds are right-open bin edges (value < edge → earlier bin).
std::vector<std::int64_t> bin_by_edges(const std::vector<std::int64_t>& values,
                                       const std::vector<std::int64_t>& edges) {
  std::vector<std::int64_t> hits(edges.size() + 1, 0);
  for (const std::int64_t v : values) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    ++hits[static_cast<std::size_t>(it - edges.begin())];
  }
  return hits;
}

/// Pooled-quantile bin edges so both samples spread over ~`bins` bins.
std::vector<std::int64_t> quantile_edges(std::vector<std::int64_t> pooled,
                                         int bins) {
  std::sort(pooled.begin(), pooled.end());
  std::vector<std::int64_t> edges;
  for (int q = 1; q < bins; ++q) {
    const std::int64_t edge =
        pooled[pooled.size() * static_cast<std::size_t>(q) /
               static_cast<std::size_t>(bins)];
    if (edges.empty() || edge > edges.back()) edges.push_back(edge);
  }
  return edges;
}

// ---- engine enum ----------------------------------------------------------

TEST(EngineEnum, ParseAndNameRoundTrip) {
  for (const Engine e :
       {Engine::kStep, Engine::kJump, Engine::kBatch, Engine::kAuto})
    EXPECT_EQ(divpp::core::parse_engine(divpp::core::engine_name(e)), e);
  EXPECT_THROW((void)divpp::core::parse_engine("turbo"),
               std::invalid_argument);
  EXPECT_THROW((void)divpp::core::parse_engine(""), std::invalid_argument);
}

// ---- collision-free run length --------------------------------------------

TEST(CollisionFreeRunLength, ValidatesAndBounds) {
  Xoshiro256 gen(1);
  EXPECT_THROW((void)collision_free_run_length(gen, 1),
               std::invalid_argument);
  for (const std::int64_t n : {2, 3}) {
    // With at most 3 agents the second interaction always repeats one.
    for (int i = 0; i < 100; ++i)
      EXPECT_EQ(collision_free_run_length(gen, n), 1);
  }
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t len = collision_free_run_length(gen, 100);
    EXPECT_GE(len, 1);
    EXPECT_LE(len, 50);
  }
}

TEST(CollisionFreeRunLengthChiSquare, PinnedToExactLawAndNaivePairDraws) {
  constexpr std::int64_t kN = 12;
  // Scalable (DIVPP_TEST_SCALE): at /10 the rarest run length (6, with
  // p ~ 1e-3) still expects ~20 hits per ensemble.
  const std::int64_t kDraws = scaled(200'000);
  const std::vector<double> survival = run_length_survival(kN);
  std::vector<double> pmf(static_cast<std::size_t>(kN / 2) + 1, 0.0);
  for (std::int64_t j = 1; j <= kN / 2; ++j)
    pmf[static_cast<std::size_t>(j)] =
        survival[static_cast<std::size_t>(j)] -
        survival[static_cast<std::size_t>(j) + 1];

  Xoshiro256 gen(2);
  std::vector<std::int64_t> fast(pmf.size(), 0);
  for (std::int64_t d = 0; d < kDraws; ++d)
    ++fast[static_cast<std::size_t>(collision_free_run_length(gen, kN))];

  // Naive reference: draw uniform ordered distinct pairs until an agent
  // repeats; the count of completed collision-free interactions is ℓ.
  Xoshiro256 ref_gen(3);
  std::vector<std::int64_t> naive(pmf.size(), 0);
  std::vector<bool> used(kN);
  for (std::int64_t d = 0; d < kDraws; ++d) {
    std::fill(used.begin(), used.end(), false);
    std::int64_t len = 0;
    while (true) {
      const auto [a, b] = divpp::rng::two_distinct(ref_gen, kN);
      if (used[static_cast<std::size_t>(a)] ||
          used[static_cast<std::size_t>(b)])
        break;
      used[static_cast<std::size_t>(a)] = true;
      used[static_cast<std::size_t>(b)] = true;
      ++len;
    }
    ++naive[static_cast<std::size_t>(len)];
  }

  const double crit = chi2_crit(pmf.size() - 2);  // pmf[0] == 0
  EXPECT_LT(chi_square(fast, pmf, kDraws), crit);
  EXPECT_LT(chi_square(naive, pmf, kDraws), crit);
}

TEST(CollisionFreeRunLength, LargeNMeanMatchesExactLaw) {
  // n = 2^17 takes the closed-form binary-search path; its mean must
  // match E[ℓ] = Σ_j S(j) computed from the exact product.
  constexpr std::int64_t kN = 1 << 17;
  // Scalable: the 5-sigma tolerance below widens with sqrt(kDraws).
  const int kDraws = static_cast<int>(scaled(20'000));
  const std::vector<double> survival = run_length_survival(kN);
  double expect = 0.0, expect2 = 0.0;
  for (std::int64_t j = 1; j <= kN / 2; ++j) {
    const double s = survival[static_cast<std::size_t>(j)];
    expect += s;                                          // Σ P(ℓ >= j)
    expect2 += (2.0 * static_cast<double>(j) - 1.0) * s;  // Σ (2j-1) P(>=j)
  }
  const double sd = std::sqrt(expect2 - expect * expect);
  Xoshiro256 gen(4);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(collision_free_run_length(gen, kN));
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, expect, 5.0 * sd / std::sqrt(static_cast<double>(kDraws)));
  // Sanity: the batch covers Θ(√n) interactions (≈ √(πn)/4 ≈ 160 here).
  EXPECT_GT(mean, 100.0);
  EXPECT_LT(mean, 300.0);
}

TEST(CollisionFreeRunLength, WalkPathMeanMatchesExactLaw) {
  // n just below the walk/binary-search cutoff exercises the other path.
  constexpr std::int64_t kN = 60'000;
  // Scalable: the 5-sigma tolerance below widens with sqrt(kDraws).
  const int kDraws = static_cast<int>(scaled(20'000));
  const std::vector<double> survival = run_length_survival(kN);
  double expect = 0.0, expect2 = 0.0;
  for (std::int64_t j = 1; j <= kN / 2; ++j) {
    const double s = survival[static_cast<std::size_t>(j)];
    expect += s;
    expect2 += (2.0 * static_cast<double>(j) - 1.0) * s;
  }
  const double sd = std::sqrt(expect2 - expect * expect);
  Xoshiro256 gen(5);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(collision_free_run_length(gen, kN));
  EXPECT_NEAR(sum / kDraws, expect, 5.0 * sd / std::sqrt(static_cast<double>(kDraws)));
}

TEST(RunLengthTable, ValidatesAndMatchesExactLaw) {
  EXPECT_THROW(divpp::batch::RunLengthTable(1), std::invalid_argument);
  // Chi-square of the cached-table inversion against the exact pmf at
  // n = 12 — the table path must realise the same law as the reference
  // sampler pinned above.
  constexpr std::int64_t kN = 12;
  // Scalable: same margin argument as the reference-sampler pin above.
  const std::int64_t kDraws = scaled(200'000);
  const divpp::batch::RunLengthTable table(kN);
  EXPECT_EQ(table.population(), kN);
  const std::vector<double> survival = run_length_survival(kN);
  std::vector<double> pmf(static_cast<std::size_t>(kN / 2) + 1, 0.0);
  for (std::int64_t j = 1; j <= kN / 2; ++j)
    pmf[static_cast<std::size_t>(j)] =
        survival[static_cast<std::size_t>(j)] -
        survival[static_cast<std::size_t>(j) + 1];
  Xoshiro256 gen(20);
  std::vector<std::int64_t> hits(pmf.size(), 0);
  for (std::int64_t d = 0; d < kDraws; ++d) {
    const std::int64_t len = table.sample(gen);
    ASSERT_GE(len, 1);
    ASSERT_LE(len, kN / 2);
    ++hits[static_cast<std::size_t>(len)];
  }
  EXPECT_LT(chi_square(hits, pmf, kDraws), chi2_crit(pmf.size() - 2));
}

TEST(RunLengthTable, LargeNMeanMatchesExactLaw) {
  constexpr std::int64_t kN = 1 << 20;
  // Scalable: the 5-sigma tolerance below widens with sqrt(kDraws).
  const int kDraws = static_cast<int>(scaled(40'000));
  const divpp::batch::RunLengthTable table(kN);
  const std::vector<double> survival = run_length_survival(kN);
  double expect = 0.0, expect2 = 0.0;
  for (std::int64_t j = 1; j <= kN / 2; ++j) {
    const double s = survival[static_cast<std::size_t>(j)];
    expect += s;
    expect2 += (2.0 * static_cast<double>(j) - 1.0) * s;
  }
  const double sd = std::sqrt(expect2 - expect * expect);
  Xoshiro256 gen(21);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(table.sample(gen));
  EXPECT_NEAR(sum / kDraws, expect,
              5.0 * sd / std::sqrt(static_cast<double>(kDraws)));
}

// ---- CollisionBatcher -----------------------------------------------------

TEST(CollisionBatcher, ValidatesArguments) {
  const WeightMap weights({1.0, 2.0});
  CollisionBatcher batcher(weights);
  std::vector<std::int64_t> dark = {50, 50};
  std::vector<std::int64_t> light = {0, 0};
  Xoshiro256 gen(6);
  std::vector<std::int64_t> short_span = {50};
  EXPECT_THROW((void)batcher.advance(short_span, light, 10, gen),
               std::invalid_argument);
  EXPECT_THROW((void)batcher.advance(dark, light, 0, gen),
               std::invalid_argument);
  std::vector<std::int64_t> one_dark = {1, 0};
  std::vector<std::int64_t> no_light = {0, 0};
  EXPECT_THROW((void)batcher.advance(one_dark, no_light, 10, gen),
               std::invalid_argument);
}

TEST(CollisionBatcher, ConservesPopulationAndMarginsMatchDeltas) {
  const WeightMap weights({1.0, 2.0, 4.0});
  CollisionBatcher batcher(weights);
  Xoshiro256 gen(7);
  std::vector<std::int64_t> dark = {400, 300, 300};
  std::vector<std::int64_t> light = {0, 0, 0};
  constexpr std::int64_t kN = 1000;
  for (int round = 0; round < 300; ++round) {
    const std::vector<std::int64_t> dark_before = dark;
    const std::vector<std::int64_t> light_before = light;
    const std::int64_t consumed = batcher.advance(dark, light, 1'000, gen);
    EXPECT_GE(consumed, 1);
    EXPECT_LE(consumed, 1'000);
    const auto& out = batcher.last_outcome();
    EXPECT_EQ(out.interactions, consumed);
    std::int64_t total = 0, adopt_in = 0, adopt_out = 0, fades = 0;
    for (std::size_t i = 0; i < dark.size(); ++i) {
      EXPECT_GE(dark[i], 0);
      EXPECT_GE(light[i], 0);
      total += dark[i] + light[i];
      adopt_in += out.adopt_in[i];
      adopt_out += out.adopt_out[i];
      fades += out.fade_by_color[i];
      // The outcome margins are exactly the applied count deltas.
      EXPECT_EQ(dark[i] - dark_before[i],
                out.adopt_in[i] - out.fade_by_color[i]);
      EXPECT_EQ(light[i] - light_before[i],
                out.fade_by_color[i] - out.adopt_out[i]);
    }
    EXPECT_EQ(total, kN);
    EXPECT_EQ(adopt_in, out.adopts);
    EXPECT_EQ(adopt_out, out.adopts);
    EXPECT_EQ(fades, out.fades);
    // State changes cannot outnumber interactions.
    EXPECT_LE(out.adopts + out.fades, consumed);
  }
}

TEST(CollisionBatcher, BudgetTruncationConsumesExactly) {
  const WeightMap weights({1.0, 1.0});
  CollisionBatcher batcher(weights);
  Xoshiro256 gen(8);
  std::vector<std::int64_t> dark = {500'000, 500'000};
  std::vector<std::int64_t> light = {0, 0};
  // With n = 10⁶ the mean run length is ~√(πn)/4 ≈ 440; budget 5 almost
  // surely truncates, and the contract is exact consumption == budget.
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(batcher.advance(dark, light, 5, gen), 5);
}

// ---- CountSimulation::run_batched -----------------------------------------

TEST(RunBatched, SmallPopulationFallbackIsBitIdenticalToRunTo) {
  const WeightMap weights({1.0, 2.0, 4.0});
  auto a = CountSimulation::equal_start(weights, 50);  // < batching cutoff
  auto b = CountSimulation::equal_start(weights, 50);
  Xoshiro256 gen_a(9);
  Xoshiro256 gen_b(9);
  a.run_batched(5'000, gen_a);
  b.run_to(5'000, gen_b);
  EXPECT_EQ(gen_a, gen_b);
  EXPECT_EQ(a.time(), b.time());
  for (divpp::core::ColorId i = 0; i < 3; ++i) {
    EXPECT_EQ(a.dark(i), b.dark(i));
    EXPECT_EQ(a.light(i), b.light(i));
  }
}

TEST(RunBatched, RejectsPastTarget) {
  auto sim = CountSimulation::equal_start(WeightMap({1.0, 2.0}), 1'000);
  Xoshiro256 gen(10);
  sim.run_batched(100, gen);
  EXPECT_THROW(sim.run_batched(50, gen), std::invalid_argument);
}

TEST(RunBatched, AbsorbedConfigurationBurnsWindow) {
  // All-dark with one agent per colour: no adopt (no light), no fade
  // (no colour with two darks) — the window must pass without changes.
  const std::int64_t k = 100;
  const WeightMap weights(
      std::vector<double>(static_cast<std::size_t>(k), 1.0));
  CountSimulation sim(
      weights, std::vector<std::int64_t>(static_cast<std::size_t>(k), 1),
      std::vector<std::int64_t>(static_cast<std::size_t>(k), 0));
  Xoshiro256 gen(11);
  const Xoshiro256 before = gen;
  sim.run_batched(1'000'000, gen);
  EXPECT_EQ(sim.time(), 1'000'000);
  EXPECT_EQ(sim.min_dark(), 1);
  EXPECT_EQ(sim.total_light(), 0);
  EXPECT_EQ(gen, before);  // absorption is detected without any draw

  // All-light is equally absorbed (no dark responder to adopt from).
  CountSimulation light_sim(
      weights, std::vector<std::int64_t>(static_cast<std::size_t>(k), 0),
      std::vector<std::int64_t>(static_cast<std::size_t>(k), 1));
  light_sim.run_batched(1'000'000, gen);
  EXPECT_EQ(light_sim.time(), 1'000'000);
  EXPECT_EQ(light_sim.total_dark(), 0);
}

TEST(RunBatched, ConservesPopulationAndDerivedState) {
  const WeightMap weights({1.0, 2.0, 3.0, 4.0});
  auto sim = CountSimulation::adversarial_start(weights, 100'000);
  Xoshiro256 gen(12);
  sim.run_batched(300'000, gen);
  EXPECT_EQ(sim.time(), 300'000);
  std::int64_t total = 0, dark_total = 0, min_dark = sim.n();
  for (divpp::core::ColorId i = 0; i < 4; ++i) {
    EXPECT_GE(sim.dark(i), 0);
    EXPECT_GE(sim.light(i), 0);
    total += sim.support(i);
    dark_total += sim.dark(i);
    min_dark = std::min(min_dark, sim.dark(i));
  }
  EXPECT_EQ(total, 100'000);
  // rebuild_derived() must have resynced the counters and trees.
  EXPECT_EQ(sim.total_dark(), dark_total);
  EXPECT_EQ(sim.min_dark(), min_dark);
  // The engine can keep running on the resynced state with any engine.
  sim.advance_to(301'000, gen);
  sim.run_to(301'100, gen);
  EXPECT_EQ(sim.time(), 301'100);
}

TEST(AdvanceWith, DispatchesToAllFourEngines) {
  const WeightMap weights({1.0, 2.0});
  Xoshiro256 gen(13);
  for (const Engine e :
       {Engine::kStep, Engine::kJump, Engine::kBatch, Engine::kAuto}) {
    auto sim = CountSimulation::equal_start(weights, 2'000);
    sim.advance_with(e, 4'000, gen);
    EXPECT_EQ(sim.time(), 4'000) << divpp::core::engine_name(e);
  }
}

// ---- the distributional contract: batch law == step law -------------------

TEST(BatchVsStepLaw, PerWindowCountDistributionsMatchAtN2000) {
  // The ISSUE-3 acceptance pin: at n = 2000, the per-window law of the
  // lumped counts under run_batched must equal the law under plain
  // stepping.  Two independent replica ensembles (fixed seeds), one per
  // engine, compared by two-sample chi-square on pooled-quantile bins of
  // two observables: the light total and the heaviest colour's dark
  // count after a window of 2n interactions from the adversarial start.
  constexpr std::int64_t kNAgents = 2'000;
  constexpr std::int64_t kWindow = 2 * kNAgents;
  // Scalable: two-sample construction — both ensembles shrink together
  // and the quantile bins re-derive from the pooled sample, so the test
  // stays calibrated (~25 pooled counts per bin at /10).
  const int kReplicas = static_cast<int>(scaled(3'000));
  const WeightMap weights({1.0, 2.0, 4.0});
  std::vector<std::int64_t> light_step, light_batch;
  std::vector<std::int64_t> dark0_step, dark0_batch;
  for (int r = 0; r < kReplicas; ++r) {
    auto step_sim = CountSimulation::adversarial_start(weights, kNAgents);
    Xoshiro256 step_gen(static_cast<std::uint64_t>(1'000 + r));
    step_sim.run_to(kWindow, step_gen);
    light_step.push_back(step_sim.total_light());
    dark0_step.push_back(step_sim.dark(0));

    auto batch_sim = CountSimulation::adversarial_start(weights, kNAgents);
    Xoshiro256 batch_gen(static_cast<std::uint64_t>(900'000 + r));
    batch_sim.run_batched(kWindow, batch_gen);
    light_batch.push_back(batch_sim.total_light());
    dark0_batch.push_back(batch_sim.dark(0));
  }
  const auto compare = [&](const std::vector<std::int64_t>& a,
                           const std::vector<std::int64_t>& b,
                           const char* label) {
    std::vector<std::int64_t> pooled = a;
    pooled.insert(pooled.end(), b.begin(), b.end());
    const std::vector<std::int64_t> edges = quantile_edges(pooled, 12);
    ASSERT_GE(edges.size(), 3u) << label;
    const auto hits_a = bin_by_edges(a, edges);
    const auto hits_b = bin_by_edges(b, edges);
    EXPECT_LT(chi_square_two_sample(hits_a, hits_b),
              chi2_crit(edges.size()))
        << label;
  };
  compare(light_step, light_batch, "total_light");
  compare(dark0_step, dark0_batch, "dark(0)");
}

TEST(BatchEngineRuntime, BitIdenticalStatsAtAnyThreadCount) {
  // The --engine=batch path under BatchRunner keeps the PR 1 contract:
  // replica streams depend only on (seed, replica), so statistics are
  // bit-identical at any thread count.
  const WeightMap weights({1.0, 2.0, 4.0});
  const auto replica = [&](std::int64_t, Xoshiro256& gen) {
    auto sim = CountSimulation::adversarial_start(weights, 10'000);
    sim.advance_with(Engine::kBatch, 30'000, gen);
    return static_cast<double>(sim.total_light());
  };
  divpp::runtime::BatchRunner serial(1);
  divpp::runtime::BatchRunner parallel_runner(4);
  const auto a = serial.run_stats(8, 1234, replica);
  const auto b = parallel_runner.run_stats(8, 1234, replica);
  EXPECT_EQ(a.stats.mean(), b.stats.mean());
  EXPECT_EQ(a.stats.variance(), b.stats.variance());
  EXPECT_EQ(a.stats.count(), b.stats.count());
}

// ---- agent-level batching -------------------------------------------------

TEST(AgentBatch, PreservesSizeStatesAndClock) {
  const WeightMap weights({1.0, 2.0, 4.0});
  const divpp::graph::CompleteGraph graph(1'000);
  auto pop = divpp::core::make_population(
      graph, std::vector<std::int64_t>{400, 300, 300},
      divpp::core::DiversificationRule(weights));
  Xoshiro256 gen(14);
  divpp::batch::run_batched(pop, 5'000, gen);
  EXPECT_EQ(pop.time(), 5'000);
  EXPECT_EQ(pop.size(), 1'000);
  const auto counts = divpp::core::tally(pop.states(), 3);
  EXPECT_EQ(counts.total_dark() + counts.total_light(), 1'000);
  for (const auto& s : pop.states()) {
    EXPECT_GE(s.color, 0);
    EXPECT_LT(s.color, 3);
  }
  EXPECT_THROW(divpp::batch::run_batched(pop, -1, gen),
               std::invalid_argument);
}

TEST(AgentBatchLaw, CountObservablesMatchStepEngine) {
  // Same two-sample construction as the lumped law test, on the
  // agent-based engine: batch::run_batched vs Population::run.
  constexpr std::int64_t kNAgents = 256;
  constexpr std::int64_t kWindow = 4 * kNAgents;
  // Scalable: same two-sample argument as the lumped-law test above.
  const int kReplicas = static_cast<int>(scaled(2'000));
  const WeightMap weights({1.0, 3.0});
  const divpp::graph::CompleteGraph graph(kNAgents);
  const std::vector<std::int64_t> supports = {kNAgents / 2, kNAgents / 2};
  const divpp::core::DiversificationRule rule(weights);
  std::vector<std::int64_t> light_step, light_batch;
  std::vector<std::int64_t> dark1_step, dark1_batch;
  for (int r = 0; r < kReplicas; ++r) {
    auto step_pop = divpp::core::make_population(graph, supports, rule);
    Xoshiro256 step_gen(static_cast<std::uint64_t>(5'000 + r));
    step_pop.run(kWindow, step_gen);
    const auto sc = divpp::core::tally(step_pop.states(), 2);
    light_step.push_back(sc.total_light());
    dark1_step.push_back(sc.dark[1]);

    auto batch_pop = divpp::core::make_population(graph, supports, rule);
    Xoshiro256 batch_gen(static_cast<std::uint64_t>(700'000 + r));
    divpp::batch::run_batched(batch_pop, kWindow, batch_gen);
    const auto bc = divpp::core::tally(batch_pop.states(), 2);
    light_batch.push_back(bc.total_light());
    dark1_batch.push_back(bc.dark[1]);
  }
  const auto compare = [&](const std::vector<std::int64_t>& a,
                           const std::vector<std::int64_t>& b,
                           const char* label) {
    std::vector<std::int64_t> pooled = a;
    pooled.insert(pooled.end(), b.begin(), b.end());
    const std::vector<std::int64_t> edges = quantile_edges(pooled, 10);
    ASSERT_GE(edges.size(), 3u) << label;
    EXPECT_LT(chi_square_two_sample(bin_by_edges(a, edges),
                                    bin_by_edges(b, edges)),
              chi2_crit(edges.size()))
        << label;
  };
  compare(light_step, light_batch, "total_light");
  compare(dark1_step, dark1_batch, "dark(1)");
}

}  // namespace
